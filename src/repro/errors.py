"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.

The campaign layer additionally uses :class:`PtpFailure` — not an
exception but the structured *record* of one caught per-PTP failure
(error code, pipeline stage, context) that campaign reports and
checkpoints carry around.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """Invalid instruction, operand, or encoding."""


class AssemblyError(IsaError):
    """Source-level assembly problem (syntax, unknown label, bad operand)."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line {}: {}".format(line, message)
        super().__init__(message)
        self.line = line


class EncodingError(IsaError):
    """An instruction cannot be encoded into (or decoded from) 64 bits."""


class NetlistError(ReproError):
    """Malformed gate-level netlist (dangling nets, cycles, bad gate arity)."""


class SimulationError(ReproError):
    """The GPU functional simulator reached an invalid state."""


class KernelLaunchError(SimulationError):
    """Invalid kernel launch configuration."""


class FaultSimError(ReproError):
    """Fault list / fault simulation misuse."""


class AtpgError(ReproError):
    """ATPG engine failure (untestable fault handling, bad backtrace)."""


class TestabilityError(ReproError):
    """Static testability analysis misuse — or, in ``strict`` prune mode,
    a soundness violation: a statically pruned fault was detected by the
    differential cross-check."""

    __test__ = False  # name starts with Test*; keep pytest from collecting


class CompactionError(ReproError):
    """The compaction pipeline was driven with inconsistent inputs."""


class VerificationError(CompactionError):
    """The static PTP verifier found error-severity diagnostics while the
    pipeline ran in strict mode.

    Attributes:
        report: the :class:`~repro.verify.VerificationReport` (None when
            raised without one).
        stage: always ``"verify"`` — lets campaign failure records place
            the abort at the verification stage boundary.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report
        self.stage = "verify"


class ReportError(ReproError):
    """A report file could not be parsed or round-tripped."""


class CampaignError(ReproError):
    """A compaction campaign was misconfigured or aborted (fail-fast)."""


class WatchdogError(CampaignError):
    """Base class for per-PTP watchdog breaches.

    Attributes:
        stage: name of the pipeline stage active at the breach.
    """

    def __init__(self, message, stage=None):
        super().__init__(message)
        self.stage = stage


class PtpTimeoutError(WatchdogError):
    """One PTP's compaction exceeded its wall-clock budget."""


class CycleBudgetError(WatchdogError):
    """One PTP's logic tracing exceeded its clock-cycle budget."""


class CheckpointError(CampaignError):
    """A campaign checkpoint file is missing, corrupt, or incompatible."""


class ExecError(ReproError):
    """Base class for parallel-execution-engine failures."""


class SchedulerError(ExecError):
    """The sharded fault-simulation scheduler was misconfigured or its
    worker pool failed irrecoverably."""


class CacheError(ExecError):
    """The artifact cache directory cannot be created or written."""


class IncrementalError(ExecError):
    """The incremental fault-state layer was misconfigured, or its
    strict-mode oracle found a restored result that differs from the
    from-scratch re-simulation (a soundness violation)."""


#: error_code used for failures that are not ReproError subclasses.
UNKNOWN_ERROR_CODE = "UnknownError"


@dataclass
class PtpFailure:
    """Structured record of one caught per-PTP campaign failure.

    Attributes:
        ptp_name: name of the PTP whose compaction failed.
        error_code: exception class name (e.g. ``"FaultSimError"``).
        stage: pipeline stage active when the error was raised
            (``"partition"`` ... ``"evaluation"``), or None if unknown.
        message: the exception's message text.
        context: free-form diagnostic details (module, thresholds, ...).
    """

    ptp_name: str
    error_code: str
    stage: str | None = None
    message: str = ""
    context: dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, ptp_name, exc, stage=None, context=None):
        """Build a failure record from a caught exception."""
        stage = getattr(exc, "stage", None) or stage
        return cls(ptp_name=ptp_name,
                   error_code=type(exc).__name__,
                   stage=stage,
                   message=str(exc),
                   context=dict(context or {}))

    def to_dict(self):
        return {
            "ptp_name": self.ptp_name,
            "error_code": self.error_code,
            "stage": self.stage,
            "message": self.message,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(ptp_name=data["ptp_name"],
                   error_code=data.get("error_code", UNKNOWN_ERROR_CODE),
                   stage=data.get("stage"),
                   message=data.get("message", ""),
                   context=dict(data.get("context", {})))

    def describe(self):
        """One-line human-readable summary."""
        where = " at stage {}".format(self.stage) if self.stage else ""
        return "{}: {}{}: {}".format(self.ptp_name, self.error_code, where,
                                     self.message)
