"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """Invalid instruction, operand, or encoding."""


class AssemblyError(IsaError):
    """Source-level assembly problem (syntax, unknown label, bad operand)."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line {}: {}".format(line, message)
        super().__init__(message)
        self.line = line


class EncodingError(IsaError):
    """An instruction cannot be encoded into (or decoded from) 64 bits."""


class NetlistError(ReproError):
    """Malformed gate-level netlist (dangling nets, cycles, bad gate arity)."""


class SimulationError(ReproError):
    """The GPU functional simulator reached an invalid state."""


class KernelLaunchError(SimulationError):
    """Invalid kernel launch configuration."""


class FaultSimError(ReproError):
    """Fault list / fault simulation misuse."""


class AtpgError(ReproError):
    """ATPG engine failure (untestable fault handling, bad backtrace)."""


class CompactionError(ReproError):
    """The compaction pipeline was driven with inconsistent inputs."""


class ReportError(ReproError):
    """A report file could not be parsed or round-tripped."""
