"""Disassembler: Instruction -> canonical assembly text.

The output round-trips through :func:`repro.isa.assembler.assemble` (branch
targets are emitted as absolute indices, which the assembler accepts).
"""

from __future__ import annotations

from .opcodes import Fmt, info


def _imm_hex(value):
    return "0x{:X}".format(value)


def format_instruction(instr):
    """Return the canonical one-line assembly text for *instr*."""
    fmt = info(instr.op).fmt
    name = instr.op.value
    if fmt is Fmt.RRR:
        body = "{} R{}, R{}, R{}".format(name, instr.dst, instr.src_a,
                                         instr.src_b)
    elif fmt is Fmt.RRRR:
        body = "{} R{}, R{}, R{}, R{}".format(name, instr.dst, instr.src_a,
                                              instr.src_b, instr.src_c)
    elif fmt is Fmt.RRI32:
        body = "{} R{}, R{}, {}".format(name, instr.dst, instr.src_a,
                                        _imm_hex(instr.imm))
    elif fmt is Fmt.RI32:
        body = "{} R{}, {}".format(name, instr.dst, _imm_hex(instr.imm))
    elif fmt is Fmt.RR:
        body = "{} R{}, R{}".format(name, instr.dst, instr.src_a)
    elif fmt is Fmt.RRC:
        body = "{} R{}, R{}, R{}, {}".format(name, instr.dst, instr.src_a,
                                             instr.src_b, instr.cmp.name)
    elif fmt is Fmt.PRC:
        body = "{} P{}, R{}, R{}, {}".format(name, instr.dst, instr.src_a,
                                             instr.src_b, instr.cmp.name)
    elif fmt is Fmt.RSEL:
        body = "{} R{}, P{}, R{}, R{}".format(name, instr.dst, instr.src_c,
                                              instr.src_a, instr.src_b)
    elif fmt is Fmt.RSREG:
        body = "{} R{}, {}".format(name, instr.dst, instr.sreg.name)
    elif fmt is Fmt.LD:
        body = "{} R{}, [R{}+{}]".format(name, instr.dst, instr.src_a,
                                         _imm_hex(instr.imm))
    elif fmt is Fmt.ST:
        body = "{} [R{}+{}], R{}".format(name, instr.src_a,
                                         _imm_hex(instr.imm), instr.src_b)
    elif fmt is Fmt.CONSTLD:
        body = "{} R{}, c[{}]".format(name, instr.dst, _imm_hex(instr.imm))
    elif fmt is Fmt.BRANCH:
        body = "{} {}".format(name, instr.target)
    else:  # Fmt.NONE
        body = name
    if instr.pred is not None:
        return "{} {}".format(instr.pred, body)
    return body


def disassemble(instructions):
    """Return the multi-line assembly text for an instruction sequence."""
    return "\n".join(format_instruction(i) for i in instructions)
