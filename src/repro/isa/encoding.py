"""64-bit binary encoding of the SASS-like ISA.

Layout (bit 63 = MSB):

    [63:56] opcode        (8 bits)
    [55:53] pred index    (3 bits; 7 = unguarded)
    [52]    pred negate   (1 bit)
    [51:46] dst           (6 bits; GPR, or predicate index for ISETP)
    [45:40] src A         (6 bits)
    [39:36] mod           (4 bits; cmp op, sreg index, spare)

    then, by format:
      imm32 forms (RRI32 / RI32):        [31:0]  imm32
      branch forms:                      [23:0]  target (instruction index)
      memory forms (LD / ST / CONSTLD):  [35:30] src B, [23:0] imm24 offset
      register forms (RRR / RRRR / ...): [35:30] src B, [29:24] src C

The Decoder Unit netlist (``repro.netlist.modules.decoder_unit``) implements
exactly this layout in gates, so the instruction words captured by the GPU
simulator's monitor double as gate-level test patterns for the DU.
"""

from __future__ import annotations

from ..errors import EncodingError
from .instruction import Instruction, Pred
from .opcodes import BY_CODE, CMP_BY_CODE, SREG_BY_CODE, Fmt, info

#: Width of one instruction word in bits.
WORD_BITS = 64

_PRED_NONE = 7


def _field(value, width, what):
    if not 0 <= value < (1 << width):
        raise EncodingError(
            "{} value {} does not fit in {} bits".format(what, value, width))
    return value


def encode(instr):
    """Encode an :class:`Instruction` into a 64-bit integer word."""
    inf = info(instr.op)
    word = _field(inf.code, 8, "opcode") << 56
    if instr.pred is None:
        word |= _PRED_NONE << 53
    else:
        word |= _field(instr.pred.index, 3, "pred") << 53
        word |= (1 if instr.pred.negate else 0) << 52
    word |= _field(instr.dst, 6, "dst") << 46
    word |= _field(instr.src_a, 6, "srcA") << 40

    fmt = inf.fmt
    if fmt in (Fmt.RRC, Fmt.PRC):
        word |= _field(instr.cmp.value, 4, "cmp") << 36
    elif fmt is Fmt.RSREG:
        word |= _field(instr.sreg.value, 4, "sreg") << 36

    if fmt in (Fmt.RRI32, Fmt.RI32):
        word |= _field(instr.imm, 32, "imm32")
    elif fmt is Fmt.BRANCH:
        word |= _field(instr.target, 24, "target")
    elif fmt in (Fmt.LD, Fmt.ST, Fmt.CONSTLD):
        word |= _field(instr.src_b, 6, "srcB") << 30
        word |= _field(instr.imm, 24, "imm24")
    elif fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL):
        word |= _field(instr.src_b, 6, "srcB") << 30
        word |= _field(instr.src_c, 6, "srcC") << 24
    # Fmt.RR / Fmt.RSREG / Fmt.NONE: no further fields.
    return word


def decode(word):
    """Decode a 64-bit integer word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << WORD_BITS):
        raise EncodingError("word out of 64-bit range: {!r}".format(word))
    code = (word >> 56) & 0xFF
    op = BY_CODE.get(code)
    if op is None:
        raise EncodingError("unknown opcode byte 0x{:02X}".format(code))
    inf = info(op)

    pred_idx = (word >> 53) & 0x7
    pred = None
    if pred_idx != _PRED_NONE:
        if pred_idx > 3:
            raise EncodingError("invalid predicate index {}".format(pred_idx))
        pred = Pred(pred_idx, bool((word >> 52) & 1))

    dst = (word >> 46) & 0x3F
    src_a = (word >> 40) & 0x3F
    mod = (word >> 36) & 0xF

    kwargs = {"op": op, "pred": pred}
    fmt = inf.fmt
    if fmt in (Fmt.RRC, Fmt.PRC):
        if mod not in CMP_BY_CODE:
            raise EncodingError("invalid cmp field {}".format(mod))
        kwargs["cmp"] = CMP_BY_CODE[mod]
    elif fmt is Fmt.RSREG:
        if mod not in SREG_BY_CODE:
            raise EncodingError("invalid sreg field {}".format(mod))
        kwargs["sreg"] = SREG_BY_CODE[mod]

    if fmt in (Fmt.RRI32, Fmt.RI32):
        kwargs["imm"] = word & 0xFFFFFFFF
    elif fmt is Fmt.BRANCH:
        kwargs["target"] = word & 0xFFFFFF
    elif fmt in (Fmt.LD, Fmt.ST, Fmt.CONSTLD):
        kwargs["src_b"] = (word >> 30) & 0x3F
        kwargs["imm"] = word & 0xFFFFFF
    elif fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL):
        kwargs["src_b"] = (word >> 30) & 0x3F
        kwargs["src_c"] = (word >> 24) & 0x3F

    if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RR, Fmt.RSEL,
               Fmt.RRI32, Fmt.RI32, Fmt.LD, Fmt.ST, Fmt.CONSTLD, Fmt.RSREG):
        kwargs["dst"] = dst
        kwargs["src_a"] = src_a
    return Instruction(**kwargs)


def encode_program(instructions):
    """Encode a sequence of instructions into a list of 64-bit words."""
    return [encode(i) for i in instructions]


def decode_program(words):
    """Decode a sequence of 64-bit words into a list of instructions."""
    return [decode(w) for w in words]


def word_to_bits(word, width=WORD_BITS):
    """Return *word* as a list of ``width`` ints (LSB first) — netlist input."""
    return [(word >> i) & 1 for i in range(width)]


def bits_to_word(bits):
    """Inverse of :func:`word_to_bits`."""
    word = 0
    for i, bit in enumerate(bits):
        if bit:
            word |= 1 << i
    return word
