"""Instruction and operand model for the SASS-like ISA.

An :class:`Instruction` is a fully-resolved machine instruction: opcode,
optional predicate guard, and format-specific operand fields.  Instances are
immutable; program transformations (e.g. the compaction reduction stage)
build new instruction lists instead of mutating in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import IsaError
from . import opcodes
from .opcodes import CmpOp, Fmt, Op, SpecialReg

#: Number of general-purpose registers addressable per thread.
NUM_REGS = 64

#: Number of predicate registers per thread.
NUM_PREDS = 4

#: Sentinel register index meaning "field unused".
RZ = 0

#: Mask for 32-bit integer wraparound.
MASK32 = 0xFFFFFFFF

#: Maximum encodable 24-bit unsigned immediate (memory offsets, shift counts).
IMM24_MAX = (1 << 24) - 1


def check_reg(index, what="register"):
    """Validate a GPR index, returning it; raise :class:`IsaError` otherwise."""
    if not isinstance(index, int) or not 0 <= index < NUM_REGS:
        raise IsaError("invalid {} index: {!r}".format(what, index))
    return index


def check_pred(index):
    """Validate a predicate register index."""
    if not isinstance(index, int) or not 0 <= index < NUM_PREDS:
        raise IsaError("invalid predicate index: {!r}".format(index))
    return index


def check_imm32(value):
    """Validate/normalize a 32-bit immediate (accepts signed or unsigned)."""
    if not isinstance(value, int):
        raise IsaError("immediate must be an int, got {!r}".format(value))
    if not -(1 << 31) <= value <= MASK32:
        raise IsaError("immediate out of 32-bit range: {!r}".format(value))
    return value & MASK32


def check_imm24(value):
    """Validate a 24-bit unsigned immediate (offsets / shift counts)."""
    if not isinstance(value, int) or not 0 <= value <= IMM24_MAX:
        raise IsaError("immediate out of 24-bit range: {!r}".format(value))
    return value


@dataclass(frozen=True)
class Pred:
    """Predicate guard ``@Pn`` / ``@!Pn`` on an instruction."""

    index: int
    negate: bool = False

    def __post_init__(self):
        check_pred(self.index)

    def __str__(self):
        return "@{}P{}".format("!" if self.negate else "", self.index)


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Only the fields relevant to ``op``'s format are meaningful; the rest stay
    at their defaults and encode as zero.  ``target`` holds an absolute
    instruction index for branch formats (the assembler resolves labels).
    """

    op: Op
    dst: int = 0            # destination GPR (or predicate index for ISETP)
    src_a: int = 0          # first source GPR
    src_b: int = 0          # second source GPR
    src_c: int = 0          # third source GPR (IMAD / FMAD / SEL predicate)
    imm: int = 0            # imm32 (RRI32/RI32) or imm24 (offsets)
    cmp: CmpOp = CmpOp.EQ   # comparison operator (ISET / ISETP / FSET)
    sreg: SpecialReg = SpecialReg.TID_X  # special register (S2R)
    target: int = 0         # branch target (absolute instruction index)
    pred: Pred = None       # optional guard

    # -- construction helpers ------------------------------------------------

    def __post_init__(self):
        if not isinstance(self.op, Op):
            raise IsaError("op must be an Op, got {!r}".format(self.op))
        fmt = self.fmt
        if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RR, Fmt.RSEL, Fmt.RSREG):
            check_reg(self.dst, "destination")
        if fmt in (Fmt.RRC,):
            check_reg(self.dst, "destination")
        if fmt is Fmt.PRC:
            check_pred(self.dst)
        if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RR, Fmt.RSEL,
                   Fmt.RRI32):
            check_reg(self.src_a, "source A")
        if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL):
            check_reg(self.src_b, "source B")
        if fmt is Fmt.RRRR:
            check_reg(self.src_c, "source C")
        if fmt is Fmt.RSEL:
            check_pred(self.src_c)
        if fmt in (Fmt.RRI32, Fmt.RI32):
            object.__setattr__(self, "imm", check_imm32(self.imm))
        if fmt in (Fmt.LD, Fmt.ST, Fmt.CONSTLD):
            object.__setattr__(self, "imm", check_imm24(self.imm))
        if fmt in (Fmt.LD,):
            check_reg(self.dst, "destination")
            check_reg(self.src_a, "address base")
        if fmt is Fmt.ST:
            check_reg(self.src_a, "address base")
            check_reg(self.src_b, "store data")
        if fmt is Fmt.CONSTLD:
            check_reg(self.dst, "destination")
        if fmt is Fmt.BRANCH and (not isinstance(self.target, int)
                                  or self.target < 0):
            raise IsaError("branch target must be a non-negative int")

    # -- metadata -------------------------------------------------------------

    @property
    def info(self):
        """Static :class:`~repro.isa.opcodes.OpcodeInfo` of this opcode."""
        return opcodes.info(self.op)

    @property
    def fmt(self):
        return opcodes.info(self.op).fmt

    @property
    def unit(self):
        return opcodes.info(self.op).unit

    def with_pred(self, index, negate=False):
        """Return a copy guarded by ``@Pindex`` (or ``@!Pindex``)."""
        return replace(self, pred=Pred(index, negate))

    def with_target(self, target):
        """Return a copy with the branch target rewritten (for relocation)."""
        if self.fmt is not Fmt.BRANCH:
            raise IsaError("{} has no branch target".format(self.op.value))
        return replace(self, target=target)

    # -- dataflow queries ------------------------------------------------------

    def regs_read(self):
        """Set of GPR indices this instruction reads."""
        fmt = self.fmt
        reads = set()
        if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RR, Fmt.RSEL,
                   Fmt.RRI32):
            reads.add(self.src_a)
        if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL):
            reads.add(self.src_b)
        if fmt is Fmt.RRRR:
            reads.add(self.src_c)
        if fmt is Fmt.LD:
            reads.add(self.src_a)
        if fmt is Fmt.ST:
            reads.update((self.src_a, self.src_b))
        return reads

    def regs_written(self):
        """Set of GPR indices this instruction writes."""
        if self.info.writes_reg:
            return {self.dst}
        return set()

    def preds_read(self):
        """Set of predicate indices read (guard and SEL selector)."""
        reads = set()
        if self.pred is not None:
            reads.add(self.pred.index)
        if self.fmt is Fmt.RSEL:
            reads.add(self.src_c)
        return reads

    def preds_written(self):
        """Set of predicate indices written (ISETP only)."""
        if self.op is Op.ISETP:
            return {self.dst}
        return set()

    # -- rendering ------------------------------------------------------------

    def __str__(self):
        from .disassembler import format_instruction

        return format_instruction(self)


@dataclass
class Program:
    """A flat instruction sequence plus optional label map.

    ``labels`` maps label name -> instruction index and is preserved by the
    assembler for round-tripping / debugging; it is not required for
    execution (branch targets are absolute indices).
    """

    instructions: list
    labels: dict = field(default_factory=dict)

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]
