"""SASS-like ISA for the FlexGripPlus-class GPU model.

Public surface:

* :class:`~repro.isa.opcodes.Op`, :class:`~repro.isa.opcodes.CmpOp`,
  :class:`~repro.isa.opcodes.SpecialReg`, :class:`~repro.isa.opcodes.Unit` —
  opcode enumeration and metadata.
* :class:`~repro.isa.instruction.Instruction`,
  :class:`~repro.isa.instruction.Pred`,
  :class:`~repro.isa.instruction.Program` — the machine-instruction model.
* :func:`~repro.isa.assembler.assemble` /
  :func:`~repro.isa.disassembler.disassemble` — text <-> instructions.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode` —
  instructions <-> 64-bit words (the Decoder Unit's input patterns).
"""

from .assembler import assemble
from .disassembler import disassemble, format_instruction
from .encoding import (
    WORD_BITS,
    bits_to_word,
    decode,
    decode_program,
    encode,
    encode_program,
    word_to_bits,
)
from .instruction import IMM24_MAX, MASK32, NUM_PREDS, NUM_REGS, Instruction, Pred, Program
from .opcodes import (
    NUM_OPCODES,
    CmpOp,
    Fmt,
    Op,
    OpcodeInfo,
    SpecialReg,
    Unit,
    info,
    is_branch,
    is_control,
    is_immediate_form,
    is_memory,
    unit_of,
)

__all__ = [
    "assemble", "disassemble", "format_instruction",
    "encode", "decode", "encode_program", "decode_program",
    "word_to_bits", "bits_to_word", "WORD_BITS",
    "Instruction", "Pred", "Program",
    "NUM_REGS", "NUM_PREDS", "MASK32", "IMM24_MAX",
    "Op", "OpcodeInfo", "CmpOp", "SpecialReg", "Unit", "Fmt", "NUM_OPCODES",
    "info", "unit_of", "is_branch", "is_control", "is_memory",
    "is_immediate_form",
]
