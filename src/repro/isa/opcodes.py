"""Opcode definitions for the FlexGripPlus-compatible SASS-like ISA.

FlexGripPlus (the open-source G80-class GPGPU model the paper evaluates on)
supports 52 assembly instructions of the NVIDIA Streaming ASSembler (SASS)
language.  This module defines a 52-entry instruction set with the same
functional mix: integer arithmetic/logic, 32-bit-immediate variants, FP32
arithmetic, SFU transcendental operations, data movement, global/shared/
constant memory accesses, and SIMT control flow.

Each opcode carries static metadata (:class:`OpcodeInfo`) used by the
assembler, the 64-bit encoder, the GPU functional simulator, and the Decoder
Unit netlist generator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Unit(enum.Enum):
    """Execution unit an instruction is dispatched to inside the SM."""

    SP = "sp"          # integer pipelines of the 8 SP cores
    FP32 = "fp32"      # the 8 FP32 units (paired with the SP cores)
    SFU = "sfu"        # the 2 Special Function Units
    MEM = "mem"        # load/store path (global / shared / constant)
    CTRL = "ctrl"      # warp control (branches, sync, barriers)


class Fmt(enum.Enum):
    """Operand format; drives assembly syntax and the 64-bit field layout."""

    RRR = "rrr"          # rd, ra, rb
    RRRR = "rrrr"        # rd, ra, rb, rc        (IMAD / FMAD)
    RRI32 = "rri32"      # rd, ra, imm32         (*32I binary forms)
    RI32 = "ri32"        # rd, imm32             (MOV32I)
    RR = "rr"            # rd, ra                (MOV / NOT / unary FP / SFU)
    RRC = "rrc"          # rd, ra, rb, cmp       (ISET)
    PRC = "prc"          # pd, ra, rb, cmp       (ISETP)
    RSREG = "rsreg"      # rd, sreg              (S2R)
    RSEL = "rsel"        # rd, pa, ra, rb        (SEL)
    LD = "ld"            # rd, [ra + imm]        (GLD / SLD / LLD)
    ST = "st"            # [ra + imm], rb        (GST / SST / LST)
    CONSTLD = "constld"  # rd, c[imm]            (CLD)
    BRANCH = "branch"    # label                 (BRA / SSY / CAL)
    NONE = "none"        # no operands           (JOIN / RET / BAR / EXIT / NOP)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode.

    Attributes:
        mnemonic: assembly mnemonic (upper case).
        code: 8-bit binary opcode used in the 64-bit encoding.
        unit: execution unit the instruction dispatches to.
        fmt: operand format.
        latency: execute-stage beats *per 8-thread group* in the timing model.
        writes_reg: True when the instruction writes a destination register.
        is_fp: True for single-precision floating point semantics.
    """

    mnemonic: str
    code: int
    unit: Unit
    fmt: Fmt
    latency: int
    writes_reg: bool
    is_fp: bool = False


class Op(enum.Enum):
    """The 52 supported opcodes (FlexGripPlus-class SASS subset)."""

    # --- integer arithmetic (SP) ------------------------------------------
    IADD = "IADD"
    IADD32I = "IADD32I"
    ISUB = "ISUB"
    IMUL = "IMUL"
    IMUL32I = "IMUL32I"
    IMAD = "IMAD"
    IMIN = "IMIN"
    IMAX = "IMAX"
    # --- integer logic / shift (SP) ---------------------------------------
    AND = "AND"
    AND32I = "AND32I"
    OR = "OR"
    OR32I = "OR32I"
    XOR = "XOR"
    XOR32I = "XOR32I"
    NOT = "NOT"
    SHL = "SHL"
    SHL32I = "SHL32I"
    SHR = "SHR"
    SHR32I = "SHR32I"
    # --- integer compare / predicate (SP) ----------------------------------
    ISET = "ISET"
    ISETP = "ISETP"
    # --- floating point (FP32) ---------------------------------------------
    FADD = "FADD"
    FADD32I = "FADD32I"
    FMUL = "FMUL"
    FMUL32I = "FMUL32I"
    FMAD = "FMAD"
    FSET = "FSET"
    F2I = "F2I"
    I2F = "I2F"
    # --- special function unit (SFU) ---------------------------------------
    RCP = "RCP"
    RSQ = "RSQ"
    SIN = "SIN"
    COS = "COS"
    LG2 = "LG2"
    EX2 = "EX2"
    # --- data movement -------------------------------------------------------
    MOV = "MOV"
    MOV32I = "MOV32I"
    SEL = "SEL"
    S2R = "S2R"
    # --- memory --------------------------------------------------------------
    GLD = "GLD"
    GST = "GST"
    SLD = "SLD"
    SST = "SST"
    CLD = "CLD"
    # --- control flow ----------------------------------------------------------
    BRA = "BRA"
    SSY = "SSY"
    JOIN = "JOIN"
    CAL = "CAL"
    RET = "RET"
    BAR = "BAR"
    EXIT = "EXIT"
    NOP = "NOP"


_SPEC = [
    # mnemonic        code  unit       fmt          lat  wr    fp
    (Op.IADD,    0x01, Unit.SP,   Fmt.RRR,    1, True),
    (Op.IADD32I, 0x02, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.ISUB,    0x03, Unit.SP,   Fmt.RRR,    1, True),
    (Op.IMUL,    0x04, Unit.SP,   Fmt.RRR,    2, True),
    (Op.IMUL32I, 0x05, Unit.SP,   Fmt.RRI32,  2, True),
    (Op.IMAD,    0x06, Unit.SP,   Fmt.RRRR,   2, True),
    (Op.IMIN,    0x07, Unit.SP,   Fmt.RRR,    1, True),
    (Op.IMAX,    0x08, Unit.SP,   Fmt.RRR,    1, True),
    (Op.AND,     0x09, Unit.SP,   Fmt.RRR,    1, True),
    (Op.AND32I,  0x0A, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.OR,      0x0B, Unit.SP,   Fmt.RRR,    1, True),
    (Op.OR32I,   0x0C, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.XOR,     0x0D, Unit.SP,   Fmt.RRR,    1, True),
    (Op.XOR32I,  0x0E, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.NOT,     0x0F, Unit.SP,   Fmt.RR,     1, True),
    (Op.SHL,     0x10, Unit.SP,   Fmt.RRR,    1, True),
    (Op.SHL32I,  0x11, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.SHR,     0x12, Unit.SP,   Fmt.RRR,    1, True),
    (Op.SHR32I,  0x13, Unit.SP,   Fmt.RRI32,  1, True),
    (Op.ISET,    0x14, Unit.SP,   Fmt.RRC,    1, True),
    (Op.ISETP,   0x15, Unit.SP,   Fmt.PRC,    1, False),
    (Op.FADD,    0x16, Unit.FP32, Fmt.RRR,    2, True, True),
    (Op.FADD32I, 0x17, Unit.FP32, Fmt.RRI32,  2, True, True),
    (Op.FMUL,    0x18, Unit.FP32, Fmt.RRR,    2, True, True),
    (Op.FMUL32I, 0x19, Unit.FP32, Fmt.RRI32,  2, True, True),
    (Op.FMAD,    0x1A, Unit.FP32, Fmt.RRRR,   3, True, True),
    (Op.FSET,    0x1B, Unit.FP32, Fmt.RRC,    2, True, True),
    (Op.F2I,     0x1C, Unit.FP32, Fmt.RR,     2, True, True),
    (Op.I2F,     0x1D, Unit.FP32, Fmt.RR,     2, True, True),
    (Op.RCP,     0x1E, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.RSQ,     0x1F, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.SIN,     0x20, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.COS,     0x21, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.LG2,     0x22, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.EX2,     0x23, Unit.SFU,  Fmt.RR,     4, True, True),
    (Op.MOV,     0x24, Unit.SP,   Fmt.RR,     1, True),
    (Op.MOV32I,  0x25, Unit.SP,   Fmt.RI32,   1, True),
    (Op.SEL,     0x26, Unit.SP,   Fmt.RSEL,   1, True),
    (Op.S2R,     0x27, Unit.SP,   Fmt.RSREG,  1, True),
    (Op.GLD,     0x28, Unit.MEM,  Fmt.LD,     8, True),
    (Op.GST,     0x29, Unit.MEM,  Fmt.ST,     8, False),
    (Op.SLD,     0x2A, Unit.MEM,  Fmt.LD,     2, True),
    (Op.SST,     0x2B, Unit.MEM,  Fmt.ST,     2, False),
    (Op.CLD,     0x2C, Unit.MEM,  Fmt.CONSTLD, 2, True),
    (Op.BRA,     0x2D, Unit.CTRL, Fmt.BRANCH, 1, False),
    (Op.SSY,     0x2E, Unit.CTRL, Fmt.BRANCH, 1, False),
    (Op.JOIN,    0x2F, Unit.CTRL, Fmt.NONE,   1, False),
    (Op.CAL,     0x30, Unit.CTRL, Fmt.BRANCH, 1, False),
    (Op.RET,     0x31, Unit.CTRL, Fmt.NONE,   1, False),
    (Op.BAR,     0x32, Unit.CTRL, Fmt.NONE,   1, False),
    (Op.EXIT,    0x33, Unit.CTRL, Fmt.NONE,   1, False),
    (Op.NOP,     0x34, Unit.CTRL, Fmt.NONE,   1, False),
]


def _build_info_table():
    table = {}
    for row in _SPEC:
        op, code, unit, fmt, lat, writes = row[:6]
        is_fp = row[6] if len(row) > 6 else False
        table[op] = OpcodeInfo(
            mnemonic=op.value,
            code=code,
            unit=unit,
            fmt=fmt,
            latency=lat,
            writes_reg=writes,
            is_fp=is_fp,
        )
    return table


#: Op -> OpcodeInfo
INFO = _build_info_table()

#: 8-bit binary opcode -> Op
BY_CODE = {info.code: op for op, info in INFO.items()}

#: mnemonic string -> Op
BY_MNEMONIC = {op.value: op for op in Op}

#: Number of supported instructions (FlexGripPlus supports up to 52).
NUM_OPCODES = len(INFO)


class CmpOp(enum.Enum):
    """Comparison operator for ISET / ISETP / FSET (3-bit `cmp` field)."""

    LT = 0
    LE = 1
    GT = 2
    GE = 3
    EQ = 4
    NE = 5


CMP_BY_NAME = {c.name: c for c in CmpOp}
CMP_BY_CODE = {c.value: c for c in CmpOp}


class SpecialReg(enum.Enum):
    """Special registers readable via S2R (4-bit `sreg` field)."""

    TID_X = 0     # thread index within the block
    NTID_X = 1    # threads per block
    CTAID_X = 2   # block index within the grid
    NCTAID_X = 3  # blocks in the grid
    LANEID = 4    # thread index within the warp
    WARPID = 5    # warp index within the block


SREG_BY_NAME = {s.name: s for s in SpecialReg}
SREG_BY_CODE = {s.value: s for s in SpecialReg}


def info(op):
    """Return the :class:`OpcodeInfo` for *op* (an :class:`Op`)."""
    return INFO[op]


def unit_of(op):
    """Return the execution :class:`Unit` of *op*."""
    return INFO[op].unit


def is_branch(op):
    """True for instructions that may redirect the PC (BRA / CAL / RET / EXIT)."""
    return op in (Op.BRA, Op.CAL, Op.RET, Op.EXIT)


def is_control(op):
    """True for every control-flow related instruction (including SSY/JOIN/BAR)."""
    return INFO[op].unit is Unit.CTRL


def is_memory(op):
    """True for load/store/constant-access instructions."""
    return INFO[op].unit is Unit.MEM


def is_immediate_form(op):
    """True for instructions carrying a 32-bit immediate operand."""
    return INFO[op].fmt in (Fmt.RRI32, Fmt.RI32)
