"""Two-pass assembler for the SASS-like textual assembly syntax.

Syntax by example::

    ; a comment
    loop:                       ; labels end with ':'
    @P0  IADD   R1, R2, R3      ; optional @Pn / @!Pn guard
         MOV32I R4, 0xDEADBEEF
         ISETP  P0, R1, R4, LT
         ISET   R5, R1, R4, GE
         SEL    R6, P0, R1, R4
         S2R    R7, TID_X
         GLD    R8, [R7+0x10]
         GST    [R7+0x10], R8
         CLD    R9, c[0x4]
         IMAD   R10, R1, R2, R3
         BRA    loop
         EXIT

Branch targets may be labels or absolute instruction indices.
"""

from __future__ import annotations

import re

from ..errors import AssemblyError
from .instruction import Instruction, Pred, Program
from .opcodes import BY_MNEMONIC, CMP_BY_NAME, SREG_BY_NAME, Fmt, info

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):$")
_PRED_RE = re.compile(r"^@(!?)P([0-3])$")
_REG_RE = re.compile(r"^R([0-9]+)$", re.IGNORECASE)
_PREG_RE = re.compile(r"^P([0-3])$", re.IGNORECASE)
_MEM_RE = re.compile(r"^\[R([0-9]+)(?:\s*\+\s*(0x[0-9A-Fa-f]+|[0-9]+))?\]$",
                     re.IGNORECASE)
_CONST_RE = re.compile(r"^c\[(0x[0-9A-Fa-f]+|[0-9]+)\]$", re.IGNORECASE)


def _strip_comment(line):
    for marker in (";", "//", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_int(text, lineno):
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError("invalid integer literal {!r}".format(text),
                            lineno) from exc


def _parse_reg(text, lineno):
    match = _REG_RE.match(text)
    if not match:
        raise AssemblyError("expected register, got {!r}".format(text),
                            lineno)
    return int(match.group(1))


def _parse_preg(text, lineno):
    match = _PREG_RE.match(text)
    if not match:
        raise AssemblyError("expected predicate register, got {!r}"
                            .format(text), lineno)
    return int(match.group(1))


def _parse_cmp(text, lineno):
    cmp_op = CMP_BY_NAME.get(text.upper())
    if cmp_op is None:
        raise AssemblyError("unknown comparison {!r}".format(text), lineno)
    return cmp_op


def _split_operands(rest):
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _PendingBranch:
    """Branch instruction awaiting label resolution in pass two."""

    def __init__(self, kwargs, target_text, lineno):
        self.kwargs = kwargs
        self.target_text = target_text
        self.lineno = lineno


def assemble(source):
    """Assemble *source* text into a :class:`~repro.isa.instruction.Program`.

    Raises :class:`~repro.errors.AssemblyError` with a line number on any
    syntax or semantic problem.
    """
    labels = {}
    items = []  # Instruction or _PendingBranch, in program order

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblyError("duplicate label {!r}".format(name),
                                    lineno)
            labels[name] = len(items)
            continue

        pred = None
        tokens = line.split(None, 1)
        if tokens and tokens[0].startswith("@"):
            pred_match = _PRED_RE.match(tokens[0])
            if not pred_match:
                raise AssemblyError("bad predicate guard {!r}"
                                    .format(tokens[0]), lineno)
            pred = Pred(int(pred_match.group(2)),
                        negate=bool(pred_match.group(1)))
            line = tokens[1] if len(tokens) > 1 else ""
            tokens = line.split(None, 1)
        if not tokens:
            raise AssemblyError("guard without instruction", lineno)

        mnemonic = tokens[0].upper()
        op = BY_MNEMONIC.get(mnemonic)
        if op is None:
            raise AssemblyError("unknown mnemonic {!r}".format(mnemonic),
                                lineno)
        operands = _split_operands(tokens[1] if len(tokens) > 1 else "")
        items.append(_parse_instruction(op, operands, pred, lineno))

    instructions = []
    for item in items:
        if isinstance(item, _PendingBranch):
            target_text = item.target_text
            if target_text in labels:
                target = labels[target_text]
            else:
                try:
                    target = int(target_text, 0)
                except ValueError as exc:
                    raise AssemblyError(
                        "undefined label {!r}".format(target_text),
                        item.lineno) from exc
            # An out-of-range target would escape assembly only to crash
            # later in CFG construction (find_leaders indexes by target)
            # or tracing; reject it here with the source location.  This
            # also catches labels placed after the last instruction.
            if not 0 <= target < len(items):
                raise AssemblyError(
                    "branch target {} is outside the program "
                    "(valid range 0..{})".format(target, len(items) - 1),
                    item.lineno)
            instructions.append(Instruction(target=target, **item.kwargs))
        else:
            instructions.append(item)
    return Program(instructions, labels)


def _expect(operands, count, op, lineno):
    if len(operands) != count:
        raise AssemblyError("{} expects {} operand(s), got {}"
                            .format(op.value, count, len(operands)), lineno)


def _parse_instruction(op, operands, pred, lineno):
    fmt = info(op).fmt
    kw = {"op": op, "pred": pred}
    if fmt is Fmt.RRR:
        _expect(operands, 3, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno),
                  src_b=_parse_reg(operands[2], lineno))
    elif fmt is Fmt.RRRR:
        _expect(operands, 4, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno),
                  src_b=_parse_reg(operands[2], lineno),
                  src_c=_parse_reg(operands[3], lineno))
    elif fmt is Fmt.RRI32:
        _expect(operands, 3, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno),
                  imm=_parse_int(operands[2], lineno))
    elif fmt is Fmt.RI32:
        _expect(operands, 2, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  imm=_parse_int(operands[1], lineno))
    elif fmt is Fmt.RR:
        _expect(operands, 2, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno))
    elif fmt is Fmt.RRC:
        _expect(operands, 4, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno),
                  src_b=_parse_reg(operands[2], lineno),
                  cmp=_parse_cmp(operands[3], lineno))
    elif fmt is Fmt.PRC:
        _expect(operands, 4, op, lineno)
        kw.update(dst=_parse_preg(operands[0], lineno),
                  src_a=_parse_reg(operands[1], lineno),
                  src_b=_parse_reg(operands[2], lineno),
                  cmp=_parse_cmp(operands[3], lineno))
    elif fmt is Fmt.RSEL:
        _expect(operands, 4, op, lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_c=_parse_preg(operands[1], lineno),
                  src_a=_parse_reg(operands[2], lineno),
                  src_b=_parse_reg(operands[3], lineno))
    elif fmt is Fmt.RSREG:
        _expect(operands, 2, op, lineno)
        sreg = SREG_BY_NAME.get(operands[1].upper())
        if sreg is None:
            raise AssemblyError("unknown special register {!r}"
                                .format(operands[1]), lineno)
        kw.update(dst=_parse_reg(operands[0], lineno), sreg=sreg)
    elif fmt is Fmt.LD:
        _expect(operands, 2, op, lineno)
        mem = _MEM_RE.match(operands[1])
        if not mem:
            raise AssemblyError("bad memory operand {!r}".format(operands[1]),
                                lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  src_a=int(mem.group(1)),
                  imm=_parse_int(mem.group(2), lineno) if mem.group(2) else 0)
    elif fmt is Fmt.ST:
        _expect(operands, 2, op, lineno)
        mem = _MEM_RE.match(operands[0])
        if not mem:
            raise AssemblyError("bad memory operand {!r}".format(operands[0]),
                                lineno)
        kw.update(src_a=int(mem.group(1)),
                  imm=_parse_int(mem.group(2), lineno) if mem.group(2) else 0,
                  src_b=_parse_reg(operands[1], lineno))
    elif fmt is Fmt.CONSTLD:
        _expect(operands, 2, op, lineno)
        const = _CONST_RE.match(operands[1])
        if not const:
            raise AssemblyError("bad constant operand {!r}"
                                .format(operands[1]), lineno)
        kw.update(dst=_parse_reg(operands[0], lineno),
                  imm=_parse_int(const.group(1), lineno))
    elif fmt is Fmt.BRANCH:
        _expect(operands, 1, op, lineno)
        return _PendingBranch(kw, operands[0], lineno)
    elif fmt is Fmt.NONE:
        _expect(operands, 0, op, lineno)
    else:  # pragma: no cover - exhaustive over Fmt
        raise AssemblyError("unhandled format {!r}".format(fmt), lineno)
    return Instruction(**kw)
