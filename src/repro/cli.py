"""Command-line interface: the compaction tool of Section IV.

"The proposed compaction approach was implemented as a tool written in
Python language.  This tool interacts with one logic simulator and one
fault injector simulator, composing an environment to analyze and compact
the GPU's STLs."  This module is that tool's front end::

    python -m repro info      --module decoder_unit
    python -m repro analyze   --module decoder_unit --json
    python -m repro generate  --ptp IMM --seed 0 --sbs 60 --out ptp_imm/
    python -m repro lint      --ptp-dir ptp_imm/ --json
    python -m repro compact   --ptp-dir ptp_imm/ --out compacted/ --reports
    python -m repro campaign  --stl-dir stl/ --out compacted/ --resume \
                              --max-fc-drop 0.5 --ptp-timeout 300
    python -m repro tables    --scale smoke

All simulation artifacts are written as text files (tracing report, VCDE
pattern report, fault-sim report, labeled program), as in the paper.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analysis import experiments as _experiments
from .analysis.tables import render_table1, table1_rows
from .core.campaign import run_stl_campaign
from .core.checkpoint import CampaignCheckpoint
from .core.patterns import write_pattern_report
from .core.pipeline import CompactionPipeline
from .core.reports import (
    write_campaign_summary,
    write_compaction_summary,
    write_fault_sim_report,
    write_labeled_ptp,
)
from .errors import ReproError
from .exec import ArtifactCache, RunMetrics, resolve_jobs
from .gpu.trace import write_trace_report
from .netlist.modules import build_decoder_unit, build_sfu, build_sp_core
from .stl.io import load_ptp, load_stl, save_ptp, save_stl
from .verify import verify_ptp

_MODULE_BUILDERS = {
    "decoder_unit": lambda width: build_decoder_unit(),
    "sp_core": build_sp_core,
    "sfu": build_sfu,
}

_GENERATORS = {
    "IMM": ("decoder_unit", "generate_imm"),
    "MEM": ("decoder_unit", "generate_mem"),
    "CNTRL": ("decoder_unit", "generate_cntrl"),
    "RAND": ("sp_core", "generate_rand"),
}


def _build_module(name, width):
    try:
        return _MODULE_BUILDERS[name](width)
    except KeyError:
        raise SystemExit("unknown module {!r}; pick one of {}".format(
            name, ", ".join(sorted(_MODULE_BUILDERS)))) from None


def cmd_info(args):
    module = _build_module(args.module, args.width)
    from .faults import FaultList

    stats = module.netlist.stats()
    fault_list = FaultList(module.netlist)
    print("module    : {}".format(module.name))
    print("gates     : {}".format(stats["gates"]))
    print("depth     : {}".format(stats["depth"]))
    print("inputs    : {} nets ({})".format(
        stats["inputs"], ", ".join(sorted(module.input_words))))
    print("outputs   : {} nets ({})".format(
        stats["outputs"], ", ".join(sorted(module.output_words))))
    print("faults    : {} collapsed stuck-at".format(len(fault_list)))
    by_type = ", ".join("{} {}".format(count, name)
                        for name, count in sorted(stats["by_type"].items()))
    print("cell mix  : {}".format(by_type))
    return 0


def cmd_generate(args):
    if args.ptp not in _GENERATORS:
        raise SystemExit(
            "unknown PTP {!r}; this command generates {} (TPGEN/SFU_IMM "
            "need an ATPG run: see examples/compact_functional_units.py)"
            .format(args.ptp, ", ".join(sorted(_GENERATORS))))
    target, fn_name = _GENERATORS[args.ptp]
    from .stl import generators

    generator = getattr(generators, fn_name)
    ptp = generator(seed=args.seed, num_sbs=args.sbs)
    save_ptp(ptp, args.out)
    print("wrote {} ({} instructions, target {}) to {}".format(
        ptp.name, ptp.size, ptp.target, args.out))
    return 0


def _exec_options(args):
    """(jobs, cache, metrics) from the shared exec CLI flags."""
    jobs = (args.jobs if args.jobs is not None
            else resolve_jobs(None, default=os.cpu_count() or 1))
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    return jobs, cache, RunMetrics()


def _finish_metrics(metrics, cache, path):
    """Fold in cache counters, persist (optional), print the summary."""
    if cache is not None:
        metrics.absorb_cache_stats(cache.stats)
    if path:
        metrics.save(path)
    print(metrics.summary_table())


def cmd_lint(args):
    """Statically verify saved PTPs; exit 1 on error diagnostics."""
    if args.ptp_dir:
        ptps = [load_ptp(args.ptp_dir)]
    else:
        ptps = list(load_stl(args.stl_dir))
    reports = [verify_ptp(ptp) for ptp in ptps]
    errors = sum(len(report.errors) for report in reports)
    warnings = sum(len(report.warnings) for report in reports)
    if args.json:
        # Per-rule-id totals over every linted PTP, so consumers get the
        # aggregate without re-walking the diagnostic arrays.
        rule_counts = {}
        for report in reports:
            for diagnostic in report.diagnostics:
                rule_counts[diagnostic.rule] = (
                    rule_counts.get(diagnostic.rule, 0) + 1)
        print(json.dumps({
            "ptps": [report.to_dict() for report in reports],
            "errors": errors,
            "warnings": warnings,
            "rule_counts": rule_counts,
        }, indent=1, sort_keys=True))
    else:
        for report in reports:
            print(report.render_text())
        print("lint: {} PTP(s), {} error(s), {} warning(s)".format(
            len(reports), errors, warnings))
    return 1 if errors else 0


def cmd_analyze(args):
    """Static testability report (SCOAP, dominance, untestability)."""
    from .testability import analyze_module

    names = [args.module] if args.module else sorted(_MODULE_BUILDERS)
    reports = []
    for name in names:
        module = _build_module(name, args.width)
        reports.append((module,
                        analyze_module(module.netlist, name=module.name)))
    if args.json:
        print(json.dumps([report.to_dict() for __, report in reports],
                         indent=1, sort_keys=True))
    else:
        for module, report in reports:
            print(report.render_text(module.netlist,
                                     max_proofs=args.max_proofs))
    return 0


def cmd_compact(args):
    ptp = load_ptp(args.ptp_dir)
    module = _build_module(ptp.target, args.width)
    jobs, cache, metrics = _exec_options(args)
    with CompactionPipeline(module, jobs=jobs, cache=cache,
                            metrics=metrics, engine=args.engine,
                            verify=args.verify,
                            chunk_size=args.chunk_size,
                            pool=not args.no_pool,
                            static_prune=args.static_prune,
                            rank=args.rank,
                            incremental=args.incremental) as pipeline:
        outcome = pipeline.compact(ptp, reverse_patterns=args.reverse,
                                   evaluate=not args.no_evaluate)
    save_ptp(outcome.compacted, args.out)
    print(write_compaction_summary(outcome))
    if outcome.verification is not None and outcome.verification.diagnostics:
        print(outcome.verification.render_text())
    _finish_metrics(metrics, cache, args.metrics_out)
    if args.reports:
        reports_dir = os.path.join(args.out, "reports")
        os.makedirs(reports_dir, exist_ok=True)
        with open(os.path.join(reports_dir, "trace.txt"), "w") as handle:
            handle.write(write_trace_report(outcome.tracing.trace))
        with open(os.path.join(reports_dir, "patterns.vcde"), "w") as handle:
            handle.write(write_pattern_report(
                outcome.tracing.pattern_report))
        with open(os.path.join(reports_dir, "fault_sim.txt"), "w") as handle:
            handle.write(write_fault_sim_report(
                outcome.fault_result, outcome.tracing.pattern_report))
        with open(os.path.join(reports_dir, "labeled.txt"), "w") as handle:
            handle.write(write_labeled_ptp(outcome.labeled))
        print("reports written to {}".format(reports_dir))
    return 0


def cmd_campaign(args):
    stl = load_stl(args.stl_dir)
    targets = []
    for ptp in stl:
        if ptp.target not in targets:
            targets.append(ptp.target)
    modules = {name: _build_module(name, args.width) for name in targets}
    checkpoint_path = args.checkpoint or os.path.join(args.out,
                                                     "campaign.json")
    checkpoint = CampaignCheckpoint.load_or_create(checkpoint_path,
                                                   resume=args.resume)
    jobs, cache, metrics = _exec_options(args)
    reports = run_stl_campaign(
        stl, modules,
        checkpoint=checkpoint,
        resume=args.resume,
        evaluate=not args.no_evaluate,
        max_fc_drop=args.max_fc_drop,
        ptp_timeout=args.ptp_timeout,
        max_trace_cycles=args.max_trace_cycles,
        keep_going=args.keep_going,
        jobs=jobs,
        cache=cache,
        metrics=metrics,
        engine=args.engine,
        verify=args.verify,
        chunk_size=args.chunk_size,
        pool=not args.no_pool,
        static_prune=args.static_prune,
        rank=args.rank,
        incremental=args.incremental,
    )
    for report in reports:
        print(write_campaign_summary(report))
    save_stl(stl, args.out)
    # Metrics land next to the checkpoint unless routed elsewhere.
    metrics_path = args.metrics_out or os.path.join(
        os.path.dirname(os.path.abspath(checkpoint_path)), "metrics.json")
    _finish_metrics(metrics, cache, metrics_path)
    print("STL ({} PTPs) written to {}; checkpoint at {}; metrics at {}"
          .format(len(stl), args.out, checkpoint_path, metrics_path))
    return 1 if any(report.num_failed for report in reports) else 0


def cmd_tables(args):
    scale = _experiments.SMOKE if args.scale == "smoke" else (
        _experiments.DEFAULT)
    experiment = _experiments.Experiment(scale)
    print(render_table1(table1_rows(experiment.table1_features())))
    if args.table1_only:
        return 0
    from .analysis import paper_data
    from .analysis.tables import combined_outcome_row, compaction_rows, render_compaction_table

    du_outcomes, __ = experiment.run_du_campaign()
    fc_orig, fc_comp = experiment.combined_fc_pair(
        du_outcomes, ("IMM", "MEM", "CNTRL"))
    rows = dict(du_outcomes)
    rows["IMM+MEM+CNTRL"] = combined_outcome_row(
        list(du_outcomes.values()), fc_orig, fc_comp)
    print(render_compaction_table(compaction_rows(rows, paper_data.TABLE2),
                                  "TABLE II (measured | paper)"))

    sp_outcomes, __ = experiment.run_sp_campaign()
    sfu_outcomes, __s = experiment.run_sfu_campaign()
    fc_orig, fc_comp = experiment.combined_fc_pair(sp_outcomes,
                                                   ("TPGEN", "RAND"))
    rows = dict(sp_outcomes)
    rows["TPGEN+RAND"] = combined_outcome_row(
        list(sp_outcomes.values()), fc_orig, fc_comp)
    rows["SFU_IMM"] = sfu_outcomes["SFU_IMM"]
    print(render_compaction_table(compaction_rows(rows, paper_data.TABLE3),
                                  "TABLE III (measured | paper)"))
    return 0


def _add_exec_arguments(parser):
    """Parallel-execution-engine flags shared by compact and campaign."""
    group = parser.add_argument_group("execution engine")
    group.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="fault-simulation worker processes (default: "
                            "$REPRO_JOBS or the CPU count; results are "
                            "bit-identical at any job count)")
    group.add_argument("--chunk-size", type=int, default=None, metavar="F",
                       help="faults per streamed worker-pool chunk "
                            "(default: dynamic, about 4 chunks per "
                            "worker)")
    group.add_argument("--no-pool", action="store_true",
                       help="disable the persistent worker pool (every "
                            "fault simulation runs inline, whatever "
                            "--jobs says)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="artifact cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    group.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed artifact cache "
                            "(every stage-2 simulation recomputes)")
    group.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the run-metrics JSON here (campaign "
                            "default: metrics.json next to the checkpoint)")
    group.add_argument("--engine", choices=("event", "cone", "batch"),
                       default="event",
                       help="fault-propagation engine (default: event; "
                            "results are bit-identical across all three: "
                            "the cone walk is the slower reference, batch "
                            "is the vectorized numpy backend)")
    group.add_argument("--verify", choices=("strict", "warn", "off"),
                       default="warn",
                       help="static verification of the reduced PTP "
                            "before stage 5 (default: warn; strict "
                            "aborts the compaction on error-severity "
                            "diagnostics, off skips the gate)")
    group.add_argument("--static-prune", choices=("off", "safe", "strict"),
                       default="off",
                       help="static testability pruning (default: off; "
                            "safe drops provably-untestable faults "
                            "before simulation and removes them from "
                            "the FC denominator, strict additionally "
                            "re-simulates every pruned fault per PTP "
                            "and aborts if one is detected)")
    group.add_argument("--rank", choices=("none", "scoap"), default="none",
                       help="stage-3 fault worklist ordering (default: "
                            "none; scoap simulates easiest-to-detect "
                            "faults first so dropping fires earlier — "
                            "detected sets are unchanged)")
    group.add_argument("--incremental", choices=("off", "on", "strict"),
                       default="off",
                       help="cross-run fault-state restore (default: off; "
                            "on restores detection state from the cache "
                            "for faults whose cone-support pattern values "
                            "are unchanged since the last run and "
                            "re-simulates only the invalidated remainder; "
                            "strict re-simulates everything anyway and "
                            "aborts unless the restored state is "
                            "bit-identical; requires the artifact cache, "
                            "so it rejects --no-cache)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STL compaction tool (DATE 2022 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe a target module")
    p_info.add_argument("--module", default="decoder_unit")
    p_info.add_argument("--width", type=int, default=16,
                        help="datapath width for sp_core/sfu")
    p_info.set_defaults(func=cmd_info)

    p_gen = sub.add_parser("generate", help="generate a PTP to a directory")
    p_gen.add_argument("--ptp", required=True,
                       help="IMM | MEM | CNTRL | RAND")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--sbs", type=int, default=60,
                       help="number of Small Blocks")
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=cmd_generate)

    p_lint = sub.add_parser(
        "lint",
        help="statically verify saved PTPs (exit 1 on error-severity "
             "diagnostics, 0 otherwise)")
    what = p_lint.add_mutually_exclusive_group(required=True)
    what.add_argument("--ptp-dir", help="one saved PTP directory")
    what.add_argument("--stl-dir", help="an STL directory (every PTP)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit machine-readable diagnostics instead "
                             "of the text listing")
    p_lint.set_defaults(func=cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="static testability report: SCOAP scores, dominance "
             "classes, untestability proofs")
    p_analyze.add_argument("--module", default=None,
                           help="target module (default: all modules)")
    p_analyze.add_argument("--width", type=int, default=16,
                           help="datapath width for sp_core/sfu")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the machine-readable report "
                                "(includes every proof)")
    p_analyze.add_argument("--max-proofs", type=int, default=20,
                           metavar="N",
                           help="proof lines in the text report "
                                "(default: 20)")
    p_analyze.set_defaults(func=cmd_analyze)

    p_compact = sub.add_parser("compact",
                               help="compact a saved PTP directory")
    p_compact.add_argument("--ptp-dir", required=True)
    p_compact.add_argument("--out", required=True)
    p_compact.add_argument("--width", type=int, default=16)
    p_compact.add_argument("--reverse", action="store_true",
                           help="apply stage-3 patterns in reverse order")
    p_compact.add_argument("--no-evaluate", action="store_true",
                           help="skip the stage-5 validation fault sims")
    p_compact.add_argument("--reports", action="store_true",
                           help="also write trace/VCDE/FSR/LPTP files")
    _add_exec_arguments(p_compact)
    p_compact.set_defaults(func=cmd_compact)

    p_campaign = sub.add_parser(
        "campaign",
        help="resiliently compact a whole STL directory, with "
             "checkpoint/resume")
    p_campaign.add_argument("--stl-dir", required=True,
                            help="STL directory (stl.json manifest + one "
                                 "subdirectory per PTP)")
    p_campaign.add_argument("--out", required=True,
                            help="output STL directory")
    p_campaign.add_argument("--width", type=int, default=16)
    p_campaign.add_argument("--checkpoint",
                            help="checkpoint file (default: "
                                 "<out>/campaign.json)")
    p_campaign.add_argument("--resume", action="store_true",
                            help="skip PTPs recorded in the checkpoint and "
                                 "restore the fault-dropping state")
    p_campaign.add_argument("--max-fc-drop", type=float, default=None,
                            metavar="PP",
                            help="FC-regression guard: roll a compaction "
                                 "back when it loses more than PP "
                                 "percentage points of FC (default: off; "
                                 "0.0 = roll back any loss)")
    p_campaign.add_argument("--ptp-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-PTP wall-clock watchdog budget")
    p_campaign.add_argument("--max-trace-cycles", type=int, default=None,
                            metavar="CCS",
                            help="per-PTP traced-kernel cycle budget")
    keep = p_campaign.add_mutually_exclusive_group()
    keep.add_argument("--keep-going", dest="keep_going",
                      action="store_true", default=True,
                      help="continue past failed PTPs (default)")
    keep.add_argument("--fail-fast", dest="keep_going",
                      action="store_false",
                      help="abort the campaign at the first failed PTP")
    p_campaign.add_argument("--no-evaluate", action="store_true",
                            help="skip stage-5 FC evaluation (disables the "
                                 "FC-regression guard)")
    _add_exec_arguments(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_tables = sub.add_parser("tables",
                              help="regenerate the paper's tables")
    p_tables.add_argument("--scale", choices=("smoke", "default"),
                          default="smoke")
    p_tables.add_argument("--table1-only", action="store_true")
    p_tables.set_defaults(func=cmd_tables)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("repro: {}: {}".format(type(exc).__name__, exc),
              file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
