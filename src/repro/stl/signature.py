"""Signature-per-thread (SpT): the MISR-like observability mechanism.

PTPs targeting the SP cores do not store every result; each thread folds its
test-operation results into a signature register with a MISR-like update
(Section IV: "The SpT is updated by the SP-cores, applying a MISR-like
algorithm, taking each test operation's result"), and stores the signature
once at the end.  The update implemented by the generated code is::

    sig = rotl(sig, 1) ^ result        (32-bit)

This module provides the software model of that fold (used to predict
signatures), the emitter for the corresponding 4-instruction sequence, and
the *difference fold* used by the signature-observability FC evaluation: by
linearity of XOR, a fault's effect on the final signature equals the fold
of its per-result difference values, so aliasing (cancellation) can be
computed from module-level fault simulation diffs alone.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.opcodes import Op

MASK32 = 0xFFFFFFFF


def rotl(value, amount, width=32):
    """Rotate *value* left by *amount* within *width* bits."""
    amount %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << amount) | (value >> (width - amount))) & mask


def misr_update(signature, result, width=32):
    """One SpT update step: ``rotl(sig, 1) ^ result``."""
    return rotl(signature, 1, width) ^ (result & ((1 << width) - 1))


def misr_fold(values, width=32, initial=0):
    """Fold a result sequence into a final signature."""
    signature = initial
    for value in values:
        signature = misr_update(signature, value, width)
    return signature


def difference_fold(diff_by_position, length, width=32):
    """Final-signature difference caused by per-step result differences.

    Args:
        diff_by_position: dict position -> result-difference value, where
            *position* indexes the thread's update sequence (0-based).
        length: total number of updates the thread performs.
        width: MISR width.

    Returns:
        The XOR difference of the final signature; 0 means the fault
        aliases (is NOT observable through the signature).
    """
    total = 0
    for position, diff in diff_by_position.items():
        remaining = length - 1 - position
        total ^= rotl(diff, remaining, width)
    return total


#: Registers reserved by generated PTPs for the SpT machinery.
SIG_REG = 1       # running signature
SIG_TMP_A = 28    # rotl partial (left shift)
SIG_TMP_B = 29    # rotl partial (right shift)
SIG_TMP_C = 30    # rotated signature


def emit_misr_update(result_reg):
    """Instruction sequence performing ``sig = rotl(sig,1) ^ result_reg``.

    Four SP-core instructions (they apply additional SP test patterns, as
    the paper notes the SpT procedure "detects additional faults in the
    SPs").
    """
    return [
        Instruction(Op.SHL32I, dst=SIG_TMP_A, src_a=SIG_REG, imm=1),
        Instruction(Op.SHR32I, dst=SIG_TMP_B, src_a=SIG_REG, imm=31),
        Instruction(Op.OR, dst=SIG_TMP_C, src_a=SIG_TMP_A, src_b=SIG_TMP_B),
        Instruction(Op.XOR, dst=SIG_REG, src_a=SIG_TMP_C, src_b=result_reg),
    ]
