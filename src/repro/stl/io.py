"""PTP/STL persistence: directories of text artifacts, and JSON dicts.

A saved PTP directory contains::

    program.asm   the instruction sequence (assembler syntax)
    ptp.json      metadata: name, target, style, kernel geometry, constant
                  bank, SB hints, signature flag
    memory.json   the initial global-memory image (operand arrays)

A saved STL directory contains one PTP subdirectory per PTP plus an
``stl.json`` manifest recording the STL order (the order is load-bearing:
fault dropping makes compaction results depend on it).

:func:`ptp_to_dict` / :func:`ptp_from_dict` are the same representation
as one JSON value (program as assembly text) — campaign checkpoints embed
compacted PTPs this way.

Everything is human-readable, mirroring the paper's text-file toolchain,
and round-trips exactly.
"""

from __future__ import annotations

import json
import os

from ..errors import ReportError
from ..gpu.config import KernelConfig
from ..isa.assembler import assemble
from ..isa.disassembler import disassemble
from .ptp import ParallelTestProgram, SelfTestLibrary

_PROGRAM_FILE = "program.asm"
_META_FILE = "ptp.json"
_MEMORY_FILE = "memory.json"
_STL_MANIFEST = "stl.json"


def _ptp_meta(ptp):
    return {
        "name": ptp.name,
        "target": ptp.target,
        "style": ptp.style,
        "description": ptp.description,
        "uses_signature": ptp.uses_signature,
        "sb_hints": [list(pair) for pair in ptp.sb_hints],
        "kernel": {
            "grid_blocks": ptp.kernel.grid_blocks,
            "block_threads": ptp.kernel.block_threads,
            "const_words": {str(k): v
                            for k, v in ptp.kernel.const_words.items()},
        },
    }


def _ptp_from_parts(program, meta, memory):
    kernel_meta = meta.get("kernel", {})
    kernel = KernelConfig(
        grid_blocks=kernel_meta.get("grid_blocks", 1),
        block_threads=kernel_meta.get("block_threads", 32),
        const_words={int(k): v for k, v in kernel_meta.get(
            "const_words", {}).items()},
    )
    return ParallelTestProgram(
        name=meta["name"],
        target=meta["target"],
        program=program,
        kernel=kernel,
        global_image=memory,
        style=meta.get("style", "pseudorandom"),
        description=meta.get("description", ""),
        sb_hints=[tuple(pair) for pair in meta.get("sb_hints", [])],
        uses_signature=meta.get("uses_signature", False),
    )


def ptp_to_dict(ptp):
    """One JSON-serializable value holding the whole PTP."""
    data = _ptp_meta(ptp)
    data["program"] = disassemble(list(ptp.program)) + "\n"
    data["memory"] = {str(k): v for k, v in ptp.global_image.items()}
    return data


def ptp_from_dict(data):
    """Inverse of :func:`ptp_to_dict`."""
    try:
        program = assemble(data["program"])
        memory = {int(k): v for k, v in data.get("memory", {}).items()}
        return _ptp_from_parts(program, data, memory)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReportError("malformed PTP dict: {!r}".format(exc)) from exc


def save_ptp(ptp, directory):
    """Write *ptp* into *directory* (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, _PROGRAM_FILE), "w") as handle:
        handle.write(disassemble(list(ptp.program)) + "\n")
    with open(os.path.join(directory, _META_FILE), "w") as handle:
        json.dump(_ptp_meta(ptp), handle, indent=2, sort_keys=True)
    with open(os.path.join(directory, _MEMORY_FILE), "w") as handle:
        json.dump({str(k): v for k, v in ptp.global_image.items()},
                  handle, indent=0, sort_keys=True)


def load_ptp(directory):
    """Load a PTP previously written by :func:`save_ptp`."""
    try:
        with open(os.path.join(directory, _PROGRAM_FILE)) as handle:
            program = assemble(handle.read())
        with open(os.path.join(directory, _META_FILE)) as handle:
            meta = json.load(handle)
        with open(os.path.join(directory, _MEMORY_FILE)) as handle:
            memory = {int(k): v for k, v in json.load(handle).items()}
    except OSError as exc:
        raise ReportError("cannot load PTP from {!r}: {}"
                          .format(directory, exc)) from exc
    except (json.JSONDecodeError, ValueError) as exc:
        raise ReportError("corrupt PTP files in {!r}: {}"
                          .format(directory, exc)) from exc
    return _ptp_from_parts(program, meta, memory)


def save_stl(stl, directory):
    """Write every PTP of *stl* plus the order manifest to *directory*."""
    os.makedirs(directory, exist_ok=True)
    for ptp in stl:
        save_ptp(ptp, os.path.join(directory, ptp.name))
    with open(os.path.join(directory, _STL_MANIFEST), "w") as handle:
        json.dump({"ptps": [ptp.name for ptp in stl]}, handle, indent=2)


def load_stl(directory):
    """Load an STL directory written by :func:`save_stl`.

    Without an ``stl.json`` manifest, every subdirectory containing a
    ``ptp.json`` is loaded in sorted-name order (a warning-free fallback
    for hand-assembled directories — but note the STL order matters).
    """
    manifest = os.path.join(directory, _STL_MANIFEST)
    if os.path.exists(manifest):
        try:
            with open(manifest) as handle:
                names = json.load(handle)["ptps"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ReportError("corrupt STL manifest {!r}: {}".format(
                manifest, exc)) from exc
    else:
        if not os.path.isdir(directory):
            raise ReportError("no STL directory {!r}".format(directory))
        names = sorted(
            entry for entry in os.listdir(directory)
            if os.path.exists(os.path.join(directory, entry, _META_FILE)))
        if not names:
            raise ReportError("no PTP subdirectories in {!r}".format(
                directory))
    return SelfTestLibrary(
        [load_ptp(os.path.join(directory, name)) for name in names])
