"""PTP persistence: save/load a PTP as a directory of text artifacts.

A saved PTP directory contains::

    program.asm   the instruction sequence (assembler syntax)
    ptp.json      metadata: name, target, style, kernel geometry, constant
                  bank, SB hints, signature flag
    memory.json   the initial global-memory image (operand arrays)

Everything is human-readable, mirroring the paper's text-file toolchain,
and round-trips exactly.
"""

from __future__ import annotations

import json
import os

from ..errors import ReportError
from ..gpu.config import KernelConfig
from ..isa.assembler import assemble
from ..isa.disassembler import disassemble
from .ptp import ParallelTestProgram

_PROGRAM_FILE = "program.asm"
_META_FILE = "ptp.json"
_MEMORY_FILE = "memory.json"


def save_ptp(ptp, directory):
    """Write *ptp* into *directory* (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, _PROGRAM_FILE), "w") as handle:
        handle.write(disassemble(list(ptp.program)) + "\n")
    meta = {
        "name": ptp.name,
        "target": ptp.target,
        "style": ptp.style,
        "description": ptp.description,
        "uses_signature": ptp.uses_signature,
        "sb_hints": [list(pair) for pair in ptp.sb_hints],
        "kernel": {
            "grid_blocks": ptp.kernel.grid_blocks,
            "block_threads": ptp.kernel.block_threads,
            "const_words": {str(k): v
                            for k, v in ptp.kernel.const_words.items()},
        },
    }
    with open(os.path.join(directory, _META_FILE), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
    with open(os.path.join(directory, _MEMORY_FILE), "w") as handle:
        json.dump({str(k): v for k, v in ptp.global_image.items()},
                  handle, indent=0, sort_keys=True)


def load_ptp(directory):
    """Load a PTP previously written by :func:`save_ptp`."""
    try:
        with open(os.path.join(directory, _PROGRAM_FILE)) as handle:
            program = assemble(handle.read())
        with open(os.path.join(directory, _META_FILE)) as handle:
            meta = json.load(handle)
        with open(os.path.join(directory, _MEMORY_FILE)) as handle:
            memory = {int(k): v for k, v in json.load(handle).items()}
    except OSError as exc:
        raise ReportError("cannot load PTP from {!r}: {}".format(directory,
                                                                 exc))
    kernel_meta = meta.get("kernel", {})
    kernel = KernelConfig(
        grid_blocks=kernel_meta.get("grid_blocks", 1),
        block_threads=kernel_meta.get("block_threads", 32),
        const_words={int(k): v for k, v in kernel_meta.get(
            "const_words", {}).items()},
    )
    return ParallelTestProgram(
        name=meta["name"],
        target=meta["target"],
        program=program,
        kernel=kernel,
        global_image=memory,
        style=meta.get("style", "pseudorandom"),
        description=meta.get("description", ""),
        sb_hints=[tuple(pair) for pair in meta.get("sb_hints", [])],
        uses_signature=meta.get("uses_signature", False),
    )
