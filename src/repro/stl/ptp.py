"""Parallel Test Program (PTP) and Self-Test Library (STL) containers.

An STL for GPUs is composed of several PTPs, each targeting one module with
a given kernel configuration (Section II.C).  A :class:`ParallelTestProgram`
bundles the instruction sequence, the kernel launch geometry, the initial
global-memory image holding the PTP's test operands, and bookkeeping the
compaction tool uses (target module name, generation style, observable
memory ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import CompactionError
from ..gpu.config import KernelConfig
from ..isa.instruction import Program


@dataclass
class ParallelTestProgram:
    """One PTP of an STL.

    Attributes:
        name: PTP identifier (e.g. ``"IMM"``).
        target: fault-target module name (``"decoder_unit"``, ``"sp_core"``,
            ``"sfu"``).
        program: the instruction sequence.
        kernel: the kernel launch configuration.
        global_image: initial global-memory contents (test operand arrays).
        style: generation style, ``"pseudorandom"`` or ``"atpg"``.
        description: free-text provenance note.
        sb_hints: optional list of (start, end) instruction-index pairs the
            generator knows to be Small Blocks — used by tests to validate
            the structural SB detector, never by the compaction flow itself.
        uses_signature: True when the PTP accumulates results in a
            signature-per-thread (SpT) instead of storing each result.
    """

    name: str
    target: str
    program: Program
    kernel: KernelConfig = field(default_factory=KernelConfig)
    global_image: dict = field(default_factory=dict)
    style: str = "pseudorandom"
    description: str = ""
    sb_hints: list = field(default_factory=list)
    uses_signature: bool = False

    def __post_init__(self):
        size = len(self.program)
        previous_end = 0
        for hint in self.sb_hints:
            try:
                start, end = hint
            except (TypeError, ValueError) as exc:
                raise CompactionError(
                    "PTP {!r}: sb_hint {!r} is not a (start, end) pair"
                    .format(self.name, hint)) from exc
            if not (isinstance(start, int) and isinstance(end, int)) \
                    or not 0 <= start < end <= size:
                raise CompactionError(
                    "PTP {!r}: sb_hint ({!r}, {!r}) must satisfy "
                    "0 <= start < end <= {} (the program size)".format(
                        self.name, start, end, size))
            if start < previous_end:
                raise CompactionError(
                    "PTP {!r}: sb_hints must be ordered and "
                    "non-overlapping, but ({}, {}) starts before pc {}"
                    .format(self.name, start, end, previous_end))
            previous_end = end

    @property
    def size(self):
        """Static size in instructions (the paper's Table I 'Size')."""
        return len(self.program)

    def with_program(self, program, name=None):
        """Copy of this PTP with a replaced instruction sequence."""
        return replace(self, program=program, sb_hints=[],
                       name=name or self.name)


class SelfTestLibrary:
    """An ordered collection of PTPs (the STL)."""

    def __init__(self, ptps=()):
        self.ptps = list(ptps)
        names = [p.name for p in self.ptps]
        if len(set(names)) != len(names):
            raise CompactionError("duplicate PTP names in STL")

    def __iter__(self):
        return iter(self.ptps)

    def __len__(self):
        return len(self.ptps)

    def __getitem__(self, key):
        if isinstance(key, str):
            for ptp in self.ptps:
                if ptp.name == key:
                    return ptp
            raise KeyError(key)
        return self.ptps[key]

    def add(self, ptp):
        if any(p.name == ptp.name for p in self.ptps):
            raise CompactionError("PTP {!r} already in STL".format(ptp.name))
        self.ptps.append(ptp)

    def replace(self, name, new_ptp):
        """Swap the PTP called *name* for *new_ptp* (STL reassembly)."""
        for i, ptp in enumerate(self.ptps):
            if ptp.name == name:
                self.ptps[i] = new_ptp
                return
        raise KeyError(name)

    def targeting(self, module_name):
        """PTPs that target *module_name*, in STL order."""
        return [p for p in self.ptps if p.target == module_name]

    @property
    def total_size(self):
        return sum(p.size for p in self.ptps)
