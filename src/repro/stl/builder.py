"""Small-Block-structured PTP construction.

PTPs follow the canonical three-part structure of Section II.C: (i) thread
registers load, (ii) parallel operation execution, (iii) propagation of the
result to an observable point.  A *Small Block* (SB) is one such
load/execute/propagate sequence (Section III stage 4); the generators in
:mod:`repro.stl.generators` drive a :class:`PtpBuilder` to emit SBs, the
shared prologue/epilogue, divergence constructs, and the PTP's test-operand
arrays in global memory.

Register conventions of generated PTPs:

====  =======================================
R0    thread id (S2R TID_X in the prologue)
R1    signature-per-thread accumulator
R2-9  operand / result pool of the SBs
R20+  control scratch (CNTRL loops)
R28-30  MISR temporaries
====  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompactionError
from ..gpu.config import KernelConfig
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import Op, SpecialReg
from .ptp import ParallelTestProgram
from .signature import SIG_REG, emit_misr_update

#: Word address where PTP input-data arrays start in global memory.
DATA_BASE = 0x0000

#: Word address of the PTP's observable output region.
OUTPUT_BASE = 0x8000

#: Word address where each thread stores its final signature.
SIGNATURE_BASE = 0xF000

TID_REG = 0


@dataclass
class _OpenSb:
    start: int


class PtpBuilder:
    """Incremental builder for an SB-structured PTP."""

    def __init__(self, name, target, kernel=None, uses_signature=False,
                 style="pseudorandom", description=""):
        self.name = name
        self.target = target
        self.kernel = kernel or KernelConfig()
        self.uses_signature = uses_signature
        self.style = style
        self.description = description
        self.instructions = []
        self.global_image = {}
        self.sb_hints = []
        self._open_sb = None
        self._data_ptr = DATA_BASE
        self._labels = {}
        self._pending_targets = []  # (instr_index, label)
        self._output_slot = 0

    # -- data -----------------------------------------------------------------

    def alloc_data(self, values):
        """Place *values* (one word per thread) in global memory.

        Returns the load offset: thread ``t`` reads ``[R0 + offset]``.
        """
        offset = self._data_ptr
        for i, value in enumerate(values):
            self.global_image[offset + i] = value & 0xFFFFFFFF
        self._data_ptr += max(len(values), self.kernel.block_threads)
        if self._data_ptr >= OUTPUT_BASE:
            raise CompactionError("PTP data region overflow")
        return offset

    def next_output_offset(self):
        """Rotating per-SB output slot in the observable region."""
        offset = OUTPUT_BASE + (self._output_slot % 64) * (
            self.kernel.block_threads)
        self._output_slot += 1
        return offset

    # -- instructions -----------------------------------------------------------

    def emit(self, instr):
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def emit_all(self, instrs):
        for instr in instrs:
            self.emit(instr)

    def label(self, name):
        """Bind *name* to the next instruction index."""
        if name in self._labels:
            raise CompactionError("duplicate label {!r}".format(name))
        self._labels[name] = len(self.instructions)

    def emit_branch(self, op, label, pred=None):
        """Emit a branch to a (possibly forward) label."""
        instr = Instruction(op, target=0, pred=pred)
        index = self.emit(instr)
        self._pending_targets.append((index, label))
        return index

    # -- small blocks --------------------------------------------------------------

    def begin_sb(self):
        if self._open_sb is not None:
            raise CompactionError("begin_sb inside an open SB")
        self._open_sb = _OpenSb(len(self.instructions))

    def end_sb(self):
        if self._open_sb is None:
            raise CompactionError("end_sb without begin_sb")
        end = len(self.instructions)
        if end > self._open_sb.start:
            self.sb_hints.append((self._open_sb.start, end))
        self._open_sb = None

    # -- canonical pieces -------------------------------------------------------------

    def emit_prologue(self):
        """tid and signature initialization (never removable)."""
        self.emit(Instruction(Op.S2R, dst=TID_REG, sreg=SpecialReg.TID_X))
        if self.uses_signature:
            self.emit(Instruction(Op.MOV32I, dst=SIG_REG, imm=0))

    def emit_epilogue(self):
        """Signature store (when used) and EXIT."""
        if self.uses_signature:
            self.emit(Instruction(Op.GST, src_a=TID_REG, src_b=SIG_REG,
                                  imm=SIGNATURE_BASE))
        self.emit(Instruction(Op.EXIT))

    def emit_misr_update(self, result_reg):
        self.emit_all(emit_misr_update(result_reg))

    def emit_store_result(self, result_reg):
        """Propagate *result_reg* to the observable output region."""
        self.emit(Instruction(Op.GST, src_a=TID_REG, src_b=result_reg,
                              imm=self.next_output_offset()))

    # -- finish ----------------------------------------------------------------------

    def build(self):
        """Resolve labels and return the :class:`ParallelTestProgram`."""
        if self._open_sb is not None:
            raise CompactionError("unclosed SB at build()")
        for index, label in self._pending_targets:
            if label not in self._labels:
                raise CompactionError("undefined label {!r}".format(label))
            self.instructions[index] = self.instructions[index].with_target(
                self._labels[label])
        program = Program(list(self.instructions), dict(self._labels))
        return ParallelTestProgram(
            name=self.name,
            target=self.target,
            program=program,
            kernel=self.kernel,
            global_image=dict(self.global_image),
            style=self.style,
            description=self.description,
            sb_hints=list(self.sb_hints),
            uses_signature=self.uses_signature,
        )
