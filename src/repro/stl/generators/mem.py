"""MEM PTP generator — Decoder Unit, memory-access instruction formats.

"The MEM PTP is composed of instructions that perform memory accesses
(global memory and shared memory)." (Section IV).  Configuration: one
block, 32 threads.

Each SB loads address/data registers, then issues a pseudorandom mix of
GLD/GST/SLD/SST/CLD with varied offsets — every memory instruction word is
a DU pattern exercising the load/store decode paths — and propagates a
loaded value back to the observable region.
"""

from __future__ import annotations

from ...gpu.config import KernelConfig
from ...isa.instruction import Instruction
from ...isa.opcodes import Op
from ..builder import TID_REG, PtpBuilder
from . import base

#: Shared-memory scratch window used by SLD/SST (per-thread addressed).
SHARED_WINDOW = 1024

#: Constant-bank words preloaded for CLD coverage.
CONST_WINDOW = 64


def generate_mem(seed=0, num_sbs=120, kernel=None):
    """Generate the MEM PTP (see module docstring)."""
    rng = base.make_rng(seed, "mem")
    kernel = kernel or KernelConfig(grid_blocks=1, block_threads=32)
    const_words = dict(kernel.const_words)
    for i in range(CONST_WINDOW):
        const_words[i] = base.random_word(rng)
    kernel = KernelConfig(grid_blocks=kernel.grid_blocks,
                          block_threads=kernel.block_threads,
                          const_words=const_words)

    builder = PtpBuilder(
        name="MEM", target="decoder_unit", kernel=kernel,
        style="pseudorandom",
        description="DU test, global/shared/constant memory access formats")
    builder.emit_prologue()

    threads = kernel.block_threads
    for __ in range(num_sbs):
        builder.begin_sb()
        # (i) load data registers to be stored and an input-data array.
        data_reg, aux_reg = rng.sample(base.POOL_REGS, 2)
        builder.emit(Instruction(Op.MOV32I, dst=data_reg,
                                 imm=base.random_word(rng)))
        input_off = builder.alloc_data(
            [base.random_word(rng) for __t in range(threads)])
        # (ii) memory-access body with varied formats and offsets.
        body = rng.randint(9, 12)
        loaded_reg = data_reg
        for __i in range(body):
            kind = rng.random()
            if kind < 0.25:
                loaded_reg = base.random_pool_reg(rng)
                builder.emit(Instruction(Op.GLD, dst=loaded_reg,
                                         src_a=TID_REG, imm=input_off))
            elif kind < 0.45:
                builder.emit(Instruction(
                    Op.GST, src_a=TID_REG, src_b=loaded_reg,
                    imm=builder.next_output_offset()))
            elif kind < 0.65:
                offset = rng.randrange(0, SHARED_WINDOW - threads)
                builder.emit(Instruction(Op.SST, src_a=TID_REG,
                                         src_b=data_reg, imm=offset))
                builder.emit(Instruction(Op.SLD, dst=aux_reg,
                                         src_a=TID_REG, imm=offset))
            elif kind < 0.8:
                builder.emit(Instruction(Op.CLD, dst=aux_reg,
                                         imm=rng.randrange(CONST_WINDOW)))
            else:
                # Register-format address arithmetic keeps the DU's
                # non-memory decode paths toggling between accesses.
                builder.emit(base.random_test_instruction(
                    rng, base.REGISTER_OPS))
        # (iii) propagate the last loaded value.
        builder.emit(Instruction(Op.GST, src_a=TID_REG, src_b=loaded_reg,
                                 imm=builder.next_output_offset()))
        builder.end_sb()

    builder.emit_epilogue()
    return builder.build()
