"""Shared utilities for the PTP generators.

The paper's PTPs were "developed by a specialized test engineer resorting to
a pseudorandom approach using all instruction formats of the supported
assembly language" (IMM/MEM/CNTRL/RAND) or converted from ATPG patterns
(TPGEN/SFU_IMM).  These helpers provide the deterministic pseudorandom
machinery those styles share.
"""

from __future__ import annotations

import random

from ...isa.instruction import Instruction
from ...isa.opcodes import CmpOp, Op

#: Operand-pool registers the SBs load and operate on.
POOL_REGS = (2, 3, 4, 5, 6, 7, 8, 9)

#: Interesting corner words mixed into pseudorandom operand streams.
CORNER_VALUES = (0x00000000, 0xFFFFFFFF, 0x00000001, 0x80000000,
                 0x7FFFFFFF, 0x55555555, 0xAAAAAAAA, 0x0000FFFF,
                 0xFFFF0000, 0x00FF00FF)

#: Register-to-register ops usable in pseudorandom DU/SP test bodies.
REGISTER_OPS = (Op.IADD, Op.ISUB, Op.IMUL, Op.IMAD, Op.IMIN, Op.IMAX,
                Op.AND, Op.OR, Op.XOR, Op.NOT, Op.SHL, Op.SHR,
                Op.ISET, Op.MOV)

#: Immediate-operand ops ("all instruction formats using at least one
#: immediate operand", Section IV).
IMMEDIATE_OPS = (Op.IADD32I, Op.IMUL32I, Op.AND32I, Op.OR32I, Op.XOR32I,
                 Op.SHL32I, Op.SHR32I, Op.MOV32I, Op.FADD32I, Op.FMUL32I)

#: FP register ops (decoded by the DU, executed by the FP32 units).
FP_OPS = (Op.FADD, Op.FMUL, Op.FMAD, Op.FSET, Op.F2I, Op.I2F)

#: SP-core ops whose result lands in a pool register (for SpT updates).
SP_TEST_OPS = (Op.IADD, Op.ISUB, Op.IMUL, Op.IMAD, Op.IMIN, Op.IMAX,
               Op.AND, Op.OR, Op.XOR, Op.NOT, Op.SHL, Op.SHR, Op.ISET)


def random_word(rng):
    """Pseudorandom 32-bit operand with corner-value bias."""
    if rng.random() < 0.25:
        return rng.choice(CORNER_VALUES)
    return rng.getrandbits(32)


def random_pool_reg(rng):
    return rng.choice(POOL_REGS)


def random_cmp(rng):
    return rng.choice(list(CmpOp))


def random_test_instruction(rng, ops, dst=None):
    """One pseudorandom test instruction over the pool registers.

    Operands are drawn from :data:`POOL_REGS`; immediate forms get a
    pseudorandom 32-bit immediate.
    """
    from ...isa.opcodes import Fmt, info

    op = rng.choice(list(ops))
    dst = dst if dst is not None else random_pool_reg(rng)
    a = random_pool_reg(rng)
    b = random_pool_reg(rng)
    c = random_pool_reg(rng)
    kwargs = {"op": op, "dst": dst}
    fmt = info(op).fmt
    if fmt is Fmt.RRR:
        kwargs.update(src_a=a, src_b=b)
    elif fmt is Fmt.RRRR:
        kwargs.update(src_a=a, src_b=b, src_c=c)
    elif fmt is Fmt.RRI32:
        kwargs.update(src_a=a, imm=random_word(rng))
    elif fmt is Fmt.RI32:
        kwargs.update(imm=random_word(rng))
    elif fmt is Fmt.RR:
        kwargs.update(src_a=a)
    elif fmt is Fmt.RRC:
        kwargs.update(src_a=a, src_b=b, cmp=random_cmp(rng))
    else:
        raise ValueError("unsupported test op format {!r}".format(fmt))
    return Instruction(**kwargs)


def make_rng(seed, salt):
    """Deterministic per-generator RNG (independent streams per salt)."""
    mixed = (seed * 0x9E3779B1 + sum(ord(ch) * 131 for ch in salt))
    return random.Random(mixed & 0x7FFFFFFF)
