"""IMM PTP generator — Decoder Unit, immediate-format coverage.

"The IMM PTP targets the execution of all instruction formats using at
least one immediate operand.  This PTP also includes the Register-based
instructions." (Section IV).  Configuration: one block, 32 threads.

Each SB loads 2-3 pool registers with pseudorandom immediates, executes a
pseudorandom mix of immediate-format, register-format, FP, and predicated
instructions (every executed instruction word is one DU test pattern), and
propagates one result to global memory.  SB length lands in the paper's
15-18 instruction band.
"""

from __future__ import annotations

from ...gpu.config import KernelConfig
from ...isa.instruction import Instruction
from ...isa.opcodes import Op, SpecialReg
from ..builder import PtpBuilder
from . import base


def generate_imm(seed=0, num_sbs=125, kernel=None):
    """Generate the IMM PTP.

    Args:
        seed: deterministic generation seed.
        num_sbs: number of Small Blocks (paper scale: ~2000 SBs; the
            default here is laptop scale).
        kernel: kernel configuration (default 1 block x 32 threads).

    Returns:
        A :class:`~repro.stl.ptp.ParallelTestProgram`.
    """
    rng = base.make_rng(seed, "imm")
    builder = PtpBuilder(
        name="IMM", target="decoder_unit",
        kernel=kernel or KernelConfig(grid_blocks=1, block_threads=32),
        style="pseudorandom",
        description="DU test, immediate + register instruction formats")
    builder.emit_prologue()

    for __ in range(num_sbs):
        builder.begin_sb()
        # (i) thread registers load.
        for reg in rng.sample(base.POOL_REGS, rng.randint(2, 3)):
            builder.emit(Instruction(Op.MOV32I, dst=reg,
                                     imm=base.random_word(rng)))
        # (ii) parallel operation execution: immediate-heavy op mix.
        result_reg = base.random_pool_reg(rng)
        body = rng.randint(10, 13)
        for i in range(body):
            pool = (base.IMMEDIATE_OPS if rng.random() < 0.55 else
                    base.REGISTER_OPS + base.FP_OPS)
            dst = result_reg if i == body - 1 else None
            instr = base.random_test_instruction(rng, pool, dst=dst)
            if rng.random() < 0.12:
                # Exercise the DU's predicate-guard decode path; P3 is never
                # written by IMM, so guarded instructions are decode-only.
                instr = instr.with_pred(3, negate=rng.random() < 0.5)
                if instr.dst == result_reg:
                    instr = base.random_test_instruction(rng, pool,
                                                         dst=result_reg)
            builder.emit(instr)
        if rng.random() < 0.3:
            builder.emit(Instruction(Op.S2R, dst=base.random_pool_reg(rng),
                                     sreg=rng.choice(list(SpecialReg))))
        # (iii) propagation to the observable point.
        builder.emit_store_result(result_reg)
        builder.end_sb()

    builder.emit_epilogue()
    return builder.build()
