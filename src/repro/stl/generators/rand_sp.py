"""RAND PTP generator — SP cores, pseudorandom patterns.

"RAND is a pseudorandom-based PTP specially designed to test all SP cores
of any SM in the GPU." (Section IV).  Configuration: one block, 32 threads
(so all 8 SP lanes see patterns on every beat).

Each SB loads pool registers with pseudorandom immediates, decorrelates
them across threads by XOR-ing with the thread id (each lane then applies a
distinct pattern to its SP core), executes a handful of pseudorandom SP
operations, and folds the last result into the signature-per-thread.
"""

from __future__ import annotations

from ...gpu.config import KernelConfig
from ...isa.instruction import Instruction
from ...isa.opcodes import Op
from ..builder import TID_REG, PtpBuilder
from . import base


def generate_rand(seed=0, num_sbs=220, kernel=None):
    """Generate the RAND PTP (see module docstring)."""
    rng = base.make_rng(seed, "rand")
    builder = PtpBuilder(
        name="RAND", target="sp_core",
        kernel=kernel or KernelConfig(grid_blocks=1, block_threads=32),
        style="pseudorandom", uses_signature=True,
        description="SP-core test, pseudorandom operations and operands")
    builder.emit_prologue()

    for __ in range(num_sbs):
        builder.begin_sb()
        # (i) operand load: random immediates, thread-decorrelated.
        operand_regs = rng.sample(base.POOL_REGS, 3)
        for reg in operand_regs:
            builder.emit(Instruction(Op.MOV32I, dst=reg,
                                     imm=base.random_word(rng)))
            if rng.random() < 0.5:
                builder.emit(Instruction(Op.XOR, dst=reg, src_a=reg,
                                         src_b=TID_REG))
        # (ii) pseudorandom SP operations over the pool.
        result_reg = operand_regs[-1]
        ops = rng.randint(2, 4)
        for i in range(ops):
            dst = result_reg if i == ops - 1 else None
            builder.emit(base.random_test_instruction(rng, base.SP_TEST_OPS,
                                                      dst=dst))
        # (iii) propagate into the SpT.
        builder.emit_misr_update(result_reg)
        builder.end_sb()

    builder.emit_epilogue()
    return builder.build()
