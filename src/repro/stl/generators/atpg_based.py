"""ATPG-based PTP generators: TPGEN (SP cores) and SFU_IMM (SFUs).

"The TPGEN resorts to test patterns extracted from an ATPG.  A parser tool
converted the ATPG test patterns into valid instructions for the GPU.  The
test patterns are converted partially due to a lack of fully equivalent
instructions ...  The SFU_IMM employs an ATPG tool that generates the test
patterns to test the SFU; then, a parser tool converts those test patterns
into GPU instructions." (Section IV).

The parser here performs the same partial conversion:

* SP patterns whose 4-bit ``op`` field does not encode a valid
  :class:`~repro.netlist.modules.sp_core.SPOp`, or whose ``cmp`` field is
  not a valid comparison for SET/SETP patterns, are skipped (no equivalent
  instruction exists);
* convertible patterns are grouped by (micro-op, cmp) — one machine
  instruction carries a single opcode for all 32 threads — and each group
  chunk becomes one SB whose per-thread operands are loaded from global
  memory arrays initialized with the pattern data;
* SFU patterns with an out-of-range ``func`` field are skipped; each
  surviving pattern becomes one immediate-based SB (MOV32I / SFU-op / GST),
  identical across threads.
"""

from __future__ import annotations

from ...errors import CompactionError
from ...faults.atpg import run_atpg
from ...gpu.config import KernelConfig
from ...isa.instruction import Instruction
from ...isa.opcodes import CmpOp, Op
from ...netlist.modules.sfu import FUNC_CODES
from ...netlist.modules.sp_core import SPOp
from ..builder import TID_REG, PtpBuilder

#: SP micro-op -> ISA instruction used to realize its patterns.
SPOP_TO_ISA = {
    SPOp.ADD: Op.IADD, SPOp.SUB: Op.ISUB, SPOp.MUL: Op.IMUL,
    SPOp.MAD: Op.IMAD, SPOp.MIN: Op.IMIN, SPOp.MAX: Op.IMAX,
    SPOp.AND: Op.AND, SPOp.OR: Op.OR, SPOp.XOR: Op.XOR,
    SPOp.NOT: Op.NOT, SPOp.SHL: Op.SHL, SPOp.SHR: Op.SHR,
    SPOp.SET: Op.ISET, SPOp.SETP: Op.ISETP, SPOp.PASS: Op.MOV,
}

#: SFU func code -> ISA instruction.
FUNC_TO_ISA = {
    FUNC_CODES["RCP"]: Op.RCP, FUNC_CODES["RSQ"]: Op.RSQ,
    FUNC_CODES["SIN"]: Op.SIN, FUNC_CODES["COS"]: Op.COS,
    FUNC_CODES["LG2"]: Op.LG2, FUNC_CODES["EX2"]: Op.EX2,
}

_OPERAND_REGS = (2, 3, 4)
_RESULT_REG = 5


def _sp_pattern_tuples(module, atpg_result):
    """Decode the ATPG pattern set into (op, cmp, a, b, c) tuples."""
    patterns = atpg_result.patterns
    words = module.input_words
    tuples = []

    def word_value(port, k):
        value = 0
        for i, net in enumerate(words[port]):
            value |= patterns.value_of(net, k) << i
        return value

    for k in range(patterns.count):
        tuples.append((word_value("op", k), word_value("cmp", k),
                       word_value("a", k), word_value("b", k),
                       word_value("c", k)))
    return tuples


def generate_tpgen(sp_module, seed=0, atpg_random_patterns=512,
                   atpg_max_backtracks=25, atpg_podem_fault_limit=None,
                   kernel=None, max_sbs=None):
    """Generate the TPGEN PTP from an ATPG campaign on *sp_module*.

    Args:
        sp_module: the SP-core :class:`HardwareModule` (the ATPG target).
        seed: deterministic seed for the ATPG's random phase and padding.
        atpg_random_patterns / atpg_max_backtracks: ATPG effort knobs.
        kernel: kernel configuration (default 1 block x 32 threads).
        max_sbs: optional cap on emitted SBs (truncates the campaign).

    Returns:
        (ptp, atpg_result): the PTP plus the raw ATPG outcome, so callers
        can report pattern counts and conversion losses.
    """
    if sp_module.name != "sp_core":
        raise CompactionError("TPGEN needs the sp_core module")
    atpg_result = run_atpg(sp_module, seed=seed,
                           random_patterns=atpg_random_patterns,
                           max_backtracks=atpg_max_backtracks,
                           podem_fault_limit=atpg_podem_fault_limit)
    tuples = _sp_pattern_tuples(sp_module, atpg_result)

    kernel = kernel or KernelConfig(grid_blocks=1, block_threads=32)
    threads = kernel.block_threads
    builder = PtpBuilder(
        name="TPGEN", target="sp_core", kernel=kernel,
        style="atpg", uses_signature=True,
        description="SP-core test converted from ATPG patterns")
    builder.emit_prologue()

    valid_spops = {e.value: e for e in SPOp}
    valid_cmps = {c.value for c in CmpOp}
    groups = {}  # (SPOp, cmp) -> list of (a, b, c), in discovery order
    order = []
    skipped = 0
    for op_code, cmp_code, a, b, c in tuples:
        spop = valid_spops.get(op_code)
        if spop is None:
            skipped += 1  # no equivalent instruction: partial conversion
            continue
        if spop in (SPOp.SET, SPOp.SETP) and cmp_code not in valid_cmps:
            skipped += 1
            continue
        cmp_code = cmp_code if cmp_code in valid_cmps else 0
        key = (spop, cmp_code)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((a, b, c))

    sbs = 0
    done = False
    for key in order:
        if done:
            break
        spop, cmp_code = key
        data = groups[key]
        for chunk_start in range(0, len(data), threads):
            if max_sbs is not None and sbs >= max_sbs:
                done = True
                break
            chunk = data[chunk_start:chunk_start + threads]
            while len(chunk) < threads:
                chunk.append(chunk[-1])  # pad ragged chunks
            _emit_tpgen_sb(builder, spop, cmp_code, chunk)
            sbs += 1

    builder.emit_epilogue()
    ptp = builder.build()
    ptp.description += " ({} patterns, {} skipped in conversion)".format(
        len(tuples), skipped)
    return ptp, atpg_result


def _emit_tpgen_sb(builder, spop, cmp_code, chunk):
    """One TPGEN SB: per-thread operand loads, the op, the SpT update."""
    builder.begin_sb()
    isa_op = SPOP_TO_ISA[spop]
    needs_c = spop is SPOp.MAD
    # (i) operand arrays -> registers, one element per thread.
    off_a = builder.alloc_data([a for a, __, __ in chunk])
    builder.emit(Instruction(Op.GLD, dst=_OPERAND_REGS[0], src_a=TID_REG,
                             imm=off_a))
    if isa_op not in (Op.NOT, Op.MOV):
        off_b = builder.alloc_data([b for __, b, __ in chunk])
        builder.emit(Instruction(Op.GLD, dst=_OPERAND_REGS[1],
                                 src_a=TID_REG, imm=off_b))
    if needs_c:
        off_c = builder.alloc_data([c for __, __, c in chunk])
        builder.emit(Instruction(Op.GLD, dst=_OPERAND_REGS[2],
                                 src_a=TID_REG, imm=off_c))
    # (ii) the converted test operation.
    if isa_op is Op.ISETP:
        builder.emit(Instruction(Op.ISETP, dst=2, src_a=_OPERAND_REGS[0],
                                 src_b=_OPERAND_REGS[1],
                                 cmp=CmpOp(cmp_code)))
        # Make the predicate observable through the SpT.
        builder.emit(Instruction(Op.SEL, dst=_RESULT_REG, src_c=2,
                                 src_a=_OPERAND_REGS[0],
                                 src_b=_OPERAND_REGS[1]))
    elif isa_op is Op.ISET:
        builder.emit(Instruction(Op.ISET, dst=_RESULT_REG,
                                 src_a=_OPERAND_REGS[0],
                                 src_b=_OPERAND_REGS[1],
                                 cmp=CmpOp(cmp_code)))
    elif isa_op in (Op.NOT, Op.MOV):
        builder.emit(Instruction(isa_op, dst=_RESULT_REG,
                                 src_a=_OPERAND_REGS[0]))
    elif isa_op is Op.IMAD:
        builder.emit(Instruction(Op.IMAD, dst=_RESULT_REG,
                                 src_a=_OPERAND_REGS[0],
                                 src_b=_OPERAND_REGS[1],
                                 src_c=_OPERAND_REGS[2]))
    else:
        builder.emit(Instruction(isa_op, dst=_RESULT_REG,
                                 src_a=_OPERAND_REGS[0],
                                 src_b=_OPERAND_REGS[1]))
    # (iii) propagate into the SpT.
    builder.emit_misr_update(_RESULT_REG)
    builder.end_sb()


def generate_sfu_imm(sfu_module, seed=0, atpg_random_patterns=256,
                     atpg_max_backtracks=15, atpg_podem_fault_limit=None,
                     kernel=None, max_sbs=None):
    """Generate the SFU_IMM PTP from an ATPG campaign on *sfu_module*.

    Each surviving ATPG pattern becomes one immediate-based SB; there is no
    data dependence between SBs (results are stored directly), which is why
    compaction cannot change this PTP's FC (Section IV).

    Returns:
        (ptp, atpg_result).
    """
    if sfu_module.name != "sfu":
        raise CompactionError("SFU_IMM needs the sfu module")
    atpg_result = run_atpg(sfu_module, seed=seed,
                           random_patterns=atpg_random_patterns,
                           max_backtracks=atpg_max_backtracks,
                           podem_fault_limit=atpg_podem_fault_limit)
    patterns = atpg_result.patterns
    words = sfu_module.input_words

    kernel = kernel or KernelConfig(grid_blocks=1, block_threads=32)
    builder = PtpBuilder(
        name="SFU_IMM", target="sfu", kernel=kernel, style="atpg",
        description="SFU test converted from ATPG patterns")
    builder.emit_prologue()

    skipped = 0
    emitted = 0
    for k in range(patterns.count):
        if max_sbs is not None and emitted >= max_sbs:
            break
        func = 0
        for i, net in enumerate(words["func"]):
            func |= patterns.value_of(net, k) << i
        x = 0
        for i, net in enumerate(words["x"]):
            x |= patterns.value_of(net, k) << i
        isa_op = FUNC_TO_ISA.get(func)
        if isa_op is None:
            skipped += 1  # func 6/7: no SFU instruction exists
            continue
        builder.begin_sb()
        builder.emit(Instruction(Op.MOV32I, dst=_OPERAND_REGS[0], imm=x))
        builder.emit(Instruction(isa_op, dst=_RESULT_REG,
                                 src_a=_OPERAND_REGS[0]))
        builder.emit_store_result(_RESULT_REG)
        builder.end_sb()
        emitted += 1

    builder.emit_epilogue()
    ptp = builder.build()
    ptp.description += " ({} patterns, {} skipped in conversion)".format(
        patterns.count, skipped)
    return ptp, atpg_result
