"""CNTRL PTP generator — Decoder Unit, control-flow conditions.

"The CNTRL PTP uses immediate-based instructions, memory-addressing
instructions, and register-based instructions to generate special
conditions to be used by the control flow instructions." (Section IV).
Paper configuration: one block, 1024 threads (32 warps); the scaled default
here is 128 threads.

The program has two region kinds:

* *divergence SBs* (admissible): set a per-thread condition with ISETP,
  then exercise SSY / predicated-BRA / JOIN reconvergence, and store a
  result;
* a *parametric loop* (inadmissible): the trip count is loaded from
  constant memory at run time, so the loop's BBs are excluded from the ARC
  (Section III stage 1) — this is why CNTRL's ARC is 90% and its duration
  compacts far less than its size (Table II).
"""

from __future__ import annotations

from ...gpu.config import KernelConfig
from ...isa.instruction import Instruction, Pred
from ...isa.opcodes import CmpOp, Op
from ..builder import TID_REG, PtpBuilder
from . import base

#: Constant-memory word holding the parametric loop's trip count.
TRIP_COUNT_SLOT = 0x10

#: Registers used by the parametric loop (outside the SB pool).
LOOP_COUNT_REG = 20
LOOP_LIMIT_REG = 21
LOOP_ACC_REG = 22


def generate_cntrl(seed=0, num_sbs=18, loop_trip=12, loop_body_sbs=2,
                   kernel=None):
    """Generate the CNTRL PTP (see module docstring).

    Args:
        seed: deterministic generation seed.
        num_sbs: divergence SBs in the admissible region.
        loop_trip: runtime trip count placed in constant memory.
        loop_body_sbs: SB-shaped bodies inside the parametric loop
            (inadmissible region, roughly 10% of the PTP).
        kernel: kernel configuration (default 1 block x 128 threads — the
            paper uses 1024; scaled for pure-Python runtimes).
    """
    rng = base.make_rng(seed, "cntrl")
    kernel = kernel or KernelConfig(grid_blocks=1, block_threads=128)
    const_words = dict(kernel.const_words)
    const_words[TRIP_COUNT_SLOT] = loop_trip
    kernel = KernelConfig(grid_blocks=kernel.grid_blocks,
                          block_threads=kernel.block_threads,
                          const_words=const_words)

    builder = PtpBuilder(
        name="CNTRL", target="decoder_unit", kernel=kernel,
        style="pseudorandom",
        description="DU test, control-flow conditions with divergence and "
                    "a parametric loop")
    builder.emit_prologue()

    for sb_index in range(num_sbs):
        builder.begin_sb()
        cond_reg, work_reg = rng.sample(base.POOL_REGS, 2)
        # (i) condition operands: immediate, register, or memory sourced.
        builder.emit(Instruction(Op.MOV32I, dst=cond_reg,
                                 imm=rng.randrange(kernel.block_threads)))
        builder.emit(Instruction(Op.MOV32I, dst=work_reg,
                                 imm=base.random_word(rng)))
        # (ii) per-thread condition and a divergent region.
        builder.emit(Instruction(Op.ISETP, dst=0, src_a=TID_REG,
                                 src_b=cond_reg, cmp=base.random_cmp(rng)))
        join_label = "join_{}".format(sb_index)
        builder.emit_branch(Op.SSY, join_label)
        builder.emit_branch(Op.BRA, join_label, pred=Pred(0))
        for __ in range(rng.randint(2, 4)):
            builder.emit(base.random_test_instruction(
                rng, base.REGISTER_OPS + base.IMMEDIATE_OPS, dst=work_reg))
        builder.label(join_label)
        builder.emit(Instruction(Op.JOIN))
        # (iii) propagate.
        builder.emit_store_result(work_reg)
        builder.end_sb()

    # Inadmissible region: parametric loop, trip count from constant memory.
    builder.emit(Instruction(Op.CLD, dst=LOOP_LIMIT_REG,
                             imm=TRIP_COUNT_SLOT))
    builder.emit(Instruction(Op.MOV32I, dst=LOOP_COUNT_REG, imm=0))
    builder.emit(Instruction(Op.MOV32I, dst=LOOP_ACC_REG, imm=0))
    builder.label("loop")
    for __ in range(loop_body_sbs):
        builder.emit(Instruction(Op.MOV32I, dst=base.random_pool_reg(rng),
                                 imm=base.random_word(rng)))
        for __i in range(3):
            builder.emit(base.random_test_instruction(
                rng, base.REGISTER_OPS, dst=LOOP_ACC_REG))
        builder.emit(Instruction(Op.GST, src_a=TID_REG, src_b=LOOP_ACC_REG,
                                 imm=builder.next_output_offset()))
    builder.emit(Instruction(Op.IADD32I, dst=LOOP_COUNT_REG,
                             src_a=LOOP_COUNT_REG, imm=1))
    builder.emit(Instruction(Op.ISETP, dst=1, src_a=LOOP_COUNT_REG,
                             src_b=LOOP_LIMIT_REG, cmp=CmpOp.LT))
    builder.emit_branch(Op.BRA, "loop", pred=Pred(1))

    builder.emit_epilogue()
    return builder.build()
