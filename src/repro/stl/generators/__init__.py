"""The six PTP generators of the evaluated STL (Table I of the paper).

* Decoder Unit: :func:`generate_imm`, :func:`generate_mem`,
  :func:`generate_cntrl` (pseudorandom styles);
* SP cores: :func:`generate_tpgen` (ATPG-based), :func:`generate_rand`
  (pseudorandom);
* SFUs: :func:`generate_sfu_imm` (ATPG-based).
"""

from .atpg_based import generate_sfu_imm, generate_tpgen
from .cntrl import generate_cntrl
from .imm import generate_imm
from .mem import generate_mem
from .rand_sp import generate_rand

__all__ = ["generate_imm", "generate_mem", "generate_cntrl",
           "generate_rand", "generate_tpgen", "generate_sfu_imm"]
