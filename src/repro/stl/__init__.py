"""Self-Test Library layer: PTP containers, SB builder, generators, SpT.

Reproduces the evaluated STL of Section IV: six PTPs over three target
modules, built with the pseudorandom and ATPG-based styles the paper
describes, all structured as Small Blocks (load / execute / propagate).
"""

from .builder import DATA_BASE, OUTPUT_BASE, SIGNATURE_BASE, TID_REG, PtpBuilder
from .generators import (
    generate_cntrl,
    generate_imm,
    generate_mem,
    generate_rand,
    generate_sfu_imm,
    generate_tpgen,
)
from .ptp import ParallelTestProgram, SelfTestLibrary
from .signature import difference_fold, emit_misr_update, misr_fold, misr_update, rotl

__all__ = [
    "ParallelTestProgram", "SelfTestLibrary", "PtpBuilder",
    "DATA_BASE", "OUTPUT_BASE", "SIGNATURE_BASE", "TID_REG",
    "generate_imm", "generate_mem", "generate_cntrl", "generate_rand",
    "generate_tpgen", "generate_sfu_imm",
    "misr_update", "misr_fold", "difference_fold", "rotl",
    "emit_misr_update",
]
