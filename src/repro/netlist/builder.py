"""Word-level construction helpers ("synthesis macros") for netlists.

A *word* is a list of net indices, LSB first.  These helpers compose the
2-input cell library into the arithmetic/steering blocks the module
generators need: adders, subtractors, comparators, barrel shifters, array
multipliers, one-hot decoders, ROMs, and reduction trees.

All helpers append gates to the provided :class:`~repro.netlist.netlist.Netlist`
and return output nets / words; none of them finalizes the netlist.
"""

from __future__ import annotations

from ..errors import NetlistError
from .gates import GateType
from .netlist import CONST0, CONST1


def constant_word(value, width):
    """Word of constant nets for *value* (LSB first)."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def not_word(nl, word):
    return [nl.add_gate(GateType.NOT, b) for b in word]


def _binary_word(nl, gate_type, a, b):
    if len(a) != len(b):
        raise NetlistError("word width mismatch: {} vs {}".format(
            len(a), len(b)))
    return [nl.add_gate(gate_type, x, y) for x, y in zip(a, b)]


def and_word(nl, a, b):
    return _binary_word(nl, GateType.AND, a, b)


def or_word(nl, a, b):
    return _binary_word(nl, GateType.OR, a, b)


def xor_word(nl, a, b):
    return _binary_word(nl, GateType.XOR, a, b)


def mux_word(nl, a, b, sel):
    """Per-bit 2:1 mux: returns ``b if sel else a``."""
    if len(a) != len(b):
        raise NetlistError("mux word width mismatch")
    return [nl.add_gate(GateType.MUX, x, y, sel) for x, y in zip(a, b)]


def and_reduce(nl, nets):
    """Balanced AND tree over *nets*; returns one net."""
    return _reduce_tree(nl, GateType.AND, nets, CONST1)
def or_reduce(nl, nets):
    """Balanced OR tree over *nets*; returns one net."""
    return _reduce_tree(nl, GateType.OR, nets, CONST0)
def xor_reduce(nl, nets):
    """Balanced XOR (parity) tree over *nets*; returns one net."""
    return _reduce_tree(nl, GateType.XOR, nets, CONST0)


def _reduce_tree(nl, gate_type, nets, empty_value):
    nets = list(nets)
    if not nets:
        return empty_value
    while len(nets) > 1:
        nxt = []
        for i in range(0, len(nets) - 1, 2):
            nxt.append(nl.add_gate(gate_type, nets[i], nets[i + 1]))
        if len(nets) % 2:
            nxt.append(nets[-1])
        nets = nxt
    return nets[0]


def full_adder(nl, a, b, cin):
    """Full adder; returns (sum, carry-out)."""
    axb = nl.add_gate(GateType.XOR, a, b)
    total = nl.add_gate(GateType.XOR, axb, cin)
    carry = nl.add_gate(
        GateType.OR,
        nl.add_gate(GateType.AND, a, b),
        nl.add_gate(GateType.AND, axb, cin),
    )
    return total, carry


def ripple_adder(nl, a, b, cin=CONST0):
    """Ripple-carry adder; returns (sum word, carry-out net)."""
    if len(a) != len(b):
        raise NetlistError("adder word width mismatch")
    total = []
    carry = cin
    for x, y in zip(a, b):
        bit, carry = full_adder(nl, x, y, carry)
        total.append(bit)
    return total, carry


def subtractor(nl, a, b):
    """Two's complement subtractor ``a - b``; returns (diff, borrow-free)."""
    diff, carry = ripple_adder(nl, a, not_word(nl, b), CONST1)
    return diff, carry


def equality_comparator(nl, word, value):
    """Single net = 1 iff *word* equals constant *value*."""
    bits = []
    for i, net in enumerate(word):
        if (value >> i) & 1:
            bits.append(net)
        else:
            bits.append(nl.add_gate(GateType.NOT, net))
    return and_reduce(nl, bits)


def equal_words(nl, a, b):
    """Single net = 1 iff words *a* and *b* are bit-equal."""
    return and_reduce(nl, [nl.add_gate(GateType.XNOR, x, y)
                           for x, y in zip(a, b)])


def less_than_unsigned(nl, a, b):
    """Single net = 1 iff unsigned(a) < unsigned(b) (via subtract borrow)."""
    __, carry = subtractor(nl, a, b)
    return nl.add_gate(GateType.NOT, carry)


def less_than_signed(nl, a, b):
    """Single net = 1 iff signed(a) < signed(b)."""
    diff, carry = subtractor(nl, a, b)
    sign_a, sign_b = a[-1], b[-1]
    # overflow = sign_a ^ sign_b ? (borrow logic): lt = (a<b) =
    #   sign_a & ~sign_b | (sign_a XNOR sign_b) & diff_sign
    sign_diff = diff[-1]
    differs = nl.add_gate(GateType.XOR, sign_a, sign_b)
    same = nl.add_gate(GateType.NOT, differs)
    neg_a_pos_b = nl.add_gate(GateType.AND, sign_a,
                              nl.add_gate(GateType.NOT, sign_b))
    same_and_neg = nl.add_gate(GateType.AND, same, sign_diff)
    return nl.add_gate(GateType.OR, neg_a_pos_b, same_and_neg)


def barrel_shifter(nl, word, amount, right=False, arithmetic=False):
    """Logarithmic barrel shifter.

    Args:
        word: data word.
        amount: shift-amount word (only ``ceil(log2(len(word)))`` low bits
            are used; higher amount bits force zero/sign output).
        right: shift right when True, else left.
        arithmetic: replicate the sign bit on right shifts.
    """
    width = len(word)
    stages = max(1, (width - 1).bit_length())
    fill = word[-1] if (right and arithmetic) else CONST0
    current = list(word)
    for stage in range(min(stages, len(amount))):
        step = 1 << stage
        shifted = []
        for i in range(width):
            src = i + step if right else i - step
            if 0 <= src < width:
                shifted.append(current[src])
            else:
                shifted.append(fill)
        current = mux_word(nl, current, shifted, amount[stage])
    if len(amount) > stages:
        overflow = or_reduce(nl, amount[stages:])
        flush = [fill] * width
        current = mux_word(nl, current, flush, overflow)
    return current


def array_multiplier(nl, a, b, out_width=None):
    """Unsigned array multiplier; returns the low *out_width* product bits."""
    width = len(a)
    if out_width is None:
        out_width = width
    rows = []
    for j, b_bit in enumerate(b):
        if j >= out_width:
            break
        row = [CONST0] * j
        for i, a_bit in enumerate(a):
            if i + j >= out_width:
                break
            row.append(nl.add_gate(GateType.AND, a_bit, b_bit))
        row += [CONST0] * (out_width - len(row))
        rows.append(row)
    if not rows:
        return [CONST0] * out_width
    acc = rows[0]
    for row in rows[1:]:
        acc, __ = ripple_adder(nl, acc, row)
    return acc


def one_hot_decoder(nl, word):
    """Decode *word* into ``2**len(word)`` one-hot nets."""
    lines = [CONST1]
    for bit in word:
        inv = nl.add_gate(GateType.NOT, bit)
        lines = ([nl.add_gate(GateType.AND, line, inv) for line in lines] +
                 [nl.add_gate(GateType.AND, line, bit) for line in lines])
    return lines


def rom(nl, address_word, contents, data_width):
    """Synchronous-free ROM as an AND-OR plane.

    Args:
        address_word: address nets (LSB first).
        contents: list of integer words, one per address (missing -> 0).
        data_width: output word width.

    Returns:
        Output data word.
    """
    select = one_hot_decoder(nl, address_word)
    out = []
    for bit in range(data_width):
        terms = [select[addr] for addr, value in enumerate(contents)
                 if (value >> bit) & 1 and addr < len(select)]
        out.append(or_reduce(nl, terms))
    return out


def mux_tree(nl, words, select_word):
    """Select one of *words* by binary *select_word* (out-of-range -> word 0)."""
    if not words:
        raise NetlistError("mux_tree needs at least one word")
    width = len(words[0])
    current = list(words)
    for stage, sel in enumerate(select_word):
        if len(current) == 1:
            break
        nxt = []
        for i in range(0, len(current), 2):
            if i + 1 < len(current):
                nxt.append(mux_word(nl, current[i], current[i + 1], sel))
            else:
                zeros = [CONST0] * width
                nxt.append(mux_word(nl, current[i], zeros, sel))
        current = nxt
    return current[0]
