"""Gate-level module generators for the fault-targeted GPU units.

Each generator plays the role of the synthesis step in the paper's flow
(FlexGripPlus units synthesized on the Nangate 15nm library): it produces a
:class:`HardwareModule` — a finalized combinational netlist with named input
and output words — for one of the three target modules:

* :func:`~repro.netlist.modules.decoder_unit.build_decoder_unit` — the
  Decoder Unit (DU), consuming 64-bit instruction words;
* :func:`~repro.netlist.modules.sp_core.build_sp_core` — one SP core's
  integer datapath;
* :func:`~repro.netlist.modules.sfu.build_sfu` — the Special Function Unit's
  segmented-polynomial datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import NetlistError
from ..netlist import Netlist
from ..simulator import LogicSimulator, PatternSet


@dataclass
class HardwareModule:
    """A synthesized target module: netlist + named port words.

    Attributes:
        name: module name ("decoder_unit", "sp_core", "sfu").
        netlist: the finalized :class:`~repro.netlist.netlist.Netlist`.
        input_words: port name -> list of input net indices (LSB first).
        output_words: port name -> list of output net indices (LSB first).
        params: generator parameters (e.g. datapath width).
    """

    name: str
    netlist: Netlist
    input_words: dict
    output_words: dict
    params: dict = field(default_factory=dict)

    def new_pattern_set(self):
        """Fresh empty :class:`~repro.netlist.simulator.PatternSet`."""
        return PatternSet(self.netlist)

    def add_pattern(self, patterns, **port_values):
        """Append a pattern given per-port integer values.

        Unlisted ports default to 0.  Returns the pattern index.
        """
        pairs = []
        for port, value in port_values.items():
            if port not in self.input_words:
                raise NetlistError("{!r} has no input port {!r}".format(
                    self.name, port))
            pairs.append((self.input_words[port], value))
        return patterns.add_words(pairs)

    def simulate(self, patterns):
        """Fault-free simulation; returns port name -> list of values."""
        return LogicSimulator(self.netlist).run_words(patterns,
                                                      self.output_words)

from .decoder_unit import build_decoder_unit  # noqa: E402
from .sfu import build_sfu  # noqa: E402
from .sp_core import SPOp, build_sp_core  # noqa: E402

__all__ = ["HardwareModule", "build_decoder_unit", "build_sp_core",
           "build_sfu", "SPOp"]
