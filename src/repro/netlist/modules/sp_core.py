"""Gate-level integer datapath of one SP (Streaming Processor) core.

FlexGripPlus SMs contain 8 SP cores executing the integer pipeline of a warp
(32 threads in 4 beats of 8 lanes).  This generator synthesizes one SP core's
execute datapath: adder/subtractor, array multiplier, multiply-accumulate,
min/max, logic unit, barrel shifter, compare/set, and the result selection
mux.  The paper fault-targets the SP cores with the TPGEN and RAND PTPs
(Table I/III); this netlist is the corresponding fault-injection target.

Ports (LSB first words):

* inputs: ``op`` (4 bits, :class:`SPOp` code), ``cmp`` (3 bits,
  :class:`~repro.isa.opcodes.CmpOp` code), ``a``/``b``/``c`` (W bits each).
* outputs: ``result`` (W bits), ``pred`` (1 bit compare flag).
"""

from __future__ import annotations

import enum

from ...isa.opcodes import CmpOp, Op
from .. import builder as bd
from ..gates import GateType
from ..netlist import CONST0, Netlist


class SPOp(enum.Enum):
    """4-bit micro-operation code on the SP core's ``op`` port."""

    ADD = 0
    SUB = 1
    MUL = 2
    MAD = 3
    MIN = 4
    MAX = 5
    AND = 6
    OR = 7
    XOR = 8
    NOT = 9
    SHL = 10
    SHR = 11
    SET = 12
    SETP = 13
    PASS = 14


#: ISA opcode -> SP micro-op (instructions executed by the SP integer path).
ISA_TO_SPOP = {
    Op.IADD: SPOp.ADD, Op.IADD32I: SPOp.ADD,
    Op.ISUB: SPOp.SUB,
    Op.IMUL: SPOp.MUL, Op.IMUL32I: SPOp.MUL,
    Op.IMAD: SPOp.MAD,
    Op.IMIN: SPOp.MIN, Op.IMAX: SPOp.MAX,
    Op.AND: SPOp.AND, Op.AND32I: SPOp.AND,
    Op.OR: SPOp.OR, Op.OR32I: SPOp.OR,
    Op.XOR: SPOp.XOR, Op.XOR32I: SPOp.XOR,
    Op.NOT: SPOp.NOT,
    Op.SHL: SPOp.SHL, Op.SHL32I: SPOp.SHL,
    Op.SHR: SPOp.SHR, Op.SHR32I: SPOp.SHR,
    Op.ISET: SPOp.SET,
    Op.ISETP: SPOp.SETP,
    Op.MOV: SPOp.PASS, Op.MOV32I: SPOp.PASS, Op.SEL: SPOp.PASS,
    Op.S2R: SPOp.PASS,
}

#: Default datapath width used by the experiments (tests use 8).
DEFAULT_WIDTH = 16


def sp_reference_result(op, a, b, c, cmp_op, width=DEFAULT_WIDTH):
    """Pure-Python reference model of the SP datapath (for verification).

    Returns ``(result, pred)`` with *result* truncated to *width* bits.
    """
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    c &= mask

    def signed(value):
        return value - (1 << width) if value >> (width - 1) else value

    # The barrel shifter consumes log2(width)+1 low bits of b: the top one
    # flushes the output, bits above it are ignored (hardware truncation).
    shift_ceiling = max(1, (width - 1).bit_length())
    shamt_field = b & ((1 << (shift_ceiling + 1)) - 1)
    shamt = width if shamt_field >> shift_ceiling else (
        shamt_field & ((1 << shift_ceiling) - 1))
    lt = signed(a) < signed(b)
    eq = a == b
    cmp_true = {
        CmpOp.LT: lt,
        CmpOp.LE: lt or eq,
        CmpOp.GT: not (lt or eq),
        CmpOp.GE: not lt,
        CmpOp.EQ: eq,
        CmpOp.NE: not eq,
    }[cmp_op]
    results = {
        SPOp.ADD: (a + b) & mask,
        SPOp.SUB: (a - b) & mask,
        SPOp.MUL: (a * b) & mask,
        SPOp.MAD: (a * b + c) & mask,
        SPOp.MIN: a if lt else b,
        SPOp.MAX: b if lt else a,
        SPOp.AND: a & b,
        SPOp.OR: a | b,
        SPOp.XOR: a ^ b,
        SPOp.NOT: (~a) & mask,
        SPOp.SHL: (a << shamt) & mask if shamt < width else 0,
        SPOp.SHR: (a >> shamt) if shamt < width else 0,
        SPOp.SET: mask if cmp_true else 0,
        SPOp.SETP: 0,
        SPOp.PASS: a,
    }
    pred = 1 if (op in (SPOp.SET, SPOp.SETP) and cmp_true) else 0
    return results[op], pred


def build_sp_core(width=DEFAULT_WIDTH):
    """Synthesize one SP core datapath; returns a ``HardwareModule``."""
    from . import HardwareModule

    nl = Netlist("sp_core")
    op = nl.add_inputs(4, "op")
    cmp_word = nl.add_inputs(3, "cmp")
    a = nl.add_inputs(width, "a")
    b = nl.add_inputs(width, "b")
    c = nl.add_inputs(width, "c")

    add_out, __ = bd.ripple_adder(nl, a, b)
    sub_out, sub_carry = bd.subtractor(nl, a, b)
    mul_out = bd.array_multiplier(nl, a, b, out_width=width)
    mad_out, __ = bd.ripple_adder(nl, mul_out, c)

    lt_signed = bd.less_than_signed(nl, a, b)
    eq = bd.equal_words(nl, a, b)
    min_out = bd.mux_word(nl, b, a, lt_signed)
    max_out = bd.mux_word(nl, a, b, lt_signed)

    and_out = bd.and_word(nl, a, b)
    or_out = bd.or_word(nl, a, b)
    xor_out = bd.xor_word(nl, a, b)
    not_out = bd.not_word(nl, a)

    shift_bits = max(1, (width - 1).bit_length()) + 1
    shamt = b[:shift_bits]
    shl_out = bd.barrel_shifter(nl, a, shamt, right=False)
    shr_out = bd.barrel_shifter(nl, a, shamt, right=True)

    # Compare decode: cmp_true per CmpOp code.
    not_lt = nl.add_gate(GateType.NOT, lt_signed)
    not_eq = nl.add_gate(GateType.NOT, eq)
    le = nl.add_gate(GateType.OR, lt_signed, eq)
    gt = nl.add_gate(GateType.NOT, le)
    cmp_lines = bd.one_hot_decoder(nl, cmp_word)
    cmp_results = [lt_signed, le, gt, not_lt, eq, not_eq, CONST0, CONST0]
    cmp_true = bd.or_reduce(
        nl, [nl.add_gate(GateType.AND, line, res)
             for line, res in zip(cmp_lines, cmp_results)])
    set_out = [cmp_true] * width  # replicate flag across the word

    zero = [CONST0] * width
    by_code = {
        SPOp.ADD: add_out, SPOp.SUB: sub_out, SPOp.MUL: mul_out,
        SPOp.MAD: mad_out, SPOp.MIN: min_out, SPOp.MAX: max_out,
        SPOp.AND: and_out, SPOp.OR: or_out, SPOp.XOR: xor_out,
        SPOp.NOT: not_out, SPOp.SHL: shl_out, SPOp.SHR: shr_out,
        SPOp.SET: set_out, SPOp.SETP: zero, SPOp.PASS: a,
    }
    valid_codes = {e.value: e for e in SPOp}
    words = [by_code[valid_codes[code]] if code in valid_codes else zero
             for code in range(16)]
    result = bd.mux_tree(nl, words, op)

    is_set = bd.equality_comparator(nl, op, SPOp.SET.value)
    is_setp = bd.equality_comparator(nl, op, SPOp.SETP.value)
    sets_pred = nl.add_gate(GateType.OR, is_set, is_setp)
    pred = nl.add_gate(GateType.AND, sets_pred, cmp_true)

    for i, net in enumerate(result):
        nl.mark_output(net, "result[{}]".format(i))
    nl.mark_output(pred, "pred")
    nl.finalize()
    return HardwareModule(
        name="sp_core",
        netlist=nl,
        input_words={"op": op, "cmp": cmp_word, "a": a, "b": b, "c": c},
        output_words={"result": result, "pred": [pred]},
        params={"width": width},
    )
