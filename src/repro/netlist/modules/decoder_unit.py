"""Gate-level Decoder Unit (DU) of the FlexGripPlus SM.

The DU consumes the 64-bit instruction word produced by the fetch stage and
produces the SM's control signals: execution-unit select, register-file
addresses, immediate bus, predicate guard controls, memory-space select,
branch controls, and the SP micro-op code.  The paper devotes the IMM, MEM,
and CNTRL PTPs to this module (47.6% of the GPU's faults live in the DU and
the parallel functional units).

The netlist implements exactly the field layout of
:mod:`repro.isa.encoding`, so encoded instruction words double as the DU's
gate-level test patterns, and the fault-free netlist output can be checked
against :mod:`repro.isa.opcodes` metadata instruction by instruction.

Ports:

* input: ``instr`` (64 bits).
* outputs: ``valid``, ``illegal``, ``unit`` (5-bit one-hot: SP, FP32, SFU,
  MEM, CTRL), ``writes_reg``, ``alu_op`` (4), ``cmp`` (3), ``dst`` (6),
  ``src_a`` (6), ``src_b`` (6), ``src_c`` (6), ``imm`` (32), ``uses_imm``,
  ``pred_idx`` (2), ``pred_neg``, ``pred_en``, ``is_load``, ``is_store``,
  ``mem_space`` (2), ``branch_en``, ``target`` (24), ``sreg`` (4),
  ``is_exit``, ``is_ssy``, ``is_join``, ``is_bar``.
"""

from __future__ import annotations

from ...isa.opcodes import INFO, Fmt, Op, Unit
from .. import builder as bd
from ..gates import GateType
from ..netlist import CONST0, Netlist
from .sp_core import ISA_TO_SPOP, SPOp

#: Order of the one-hot ``unit`` output word.
UNIT_ORDER = (Unit.SP, Unit.FP32, Unit.SFU, Unit.MEM, Unit.CTRL)

#: Memory-space codes on the ``mem_space`` output.
MEM_SPACE = {Op.GLD: 0, Op.GST: 0, Op.SLD: 1, Op.SST: 1, Op.CLD: 2}

_REG_FIELD_FORMATS = {
    "dst": {Fmt.RRR, Fmt.RRRR, Fmt.RRI32, Fmt.RI32, Fmt.RR, Fmt.RRC,
            Fmt.PRC, Fmt.RSEL, Fmt.RSREG, Fmt.LD, Fmt.CONSTLD},
    "src_a": {Fmt.RRR, Fmt.RRRR, Fmt.RRI32, Fmt.RR, Fmt.RRC, Fmt.PRC,
              Fmt.RSEL, Fmt.LD, Fmt.ST},
    "src_b": {Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL, Fmt.LD, Fmt.ST},
    "src_c": {Fmt.RRRR, Fmt.RSEL},
}


def build_decoder_unit():
    """Synthesize the Decoder Unit; returns a ``HardwareModule``."""
    from . import HardwareModule

    nl = Netlist("decoder_unit")
    instr = nl.add_inputs(64, "instr")

    opcode_field = instr[56:64]
    pred_field = instr[53:56]
    pred_negate_bit = instr[52]
    dst_field = instr[46:52]
    src_a_field = instr[40:46]
    mod_field = instr[36:40]
    src_b_field = instr[30:36]
    src_c_field = instr[24:30]
    imm24_field = instr[0:24]
    imm32_field = instr[0:32]

    # One-hot opcode recognition: one 8-bit equality comparator per opcode.
    one_hot = {op: bd.equality_comparator(nl, opcode_field, info.code)
               for op, info in INFO.items()}
    valid = bd.or_reduce(nl, list(one_hot.values()))
    illegal = nl.add_gate(GateType.NOT, valid)

    def or_plane(ops):
        """OR of the one-hot lines of *ops* (CONST0 when empty)."""
        return bd.or_reduce(nl, [one_hot[op] for op in ops])

    unit_lines = [or_plane([op for op, info in INFO.items()
                            if info.unit is unit]) for unit in UNIT_ORDER]
    writes_reg = or_plane([op for op, info in INFO.items()
                           if info.writes_reg])

    # SP micro-op code as a 4-bit OR plane over ISA one-hots.
    alu_op = []
    for bit in range(4):
        ops = [op for op, spop in ISA_TO_SPOP.items()
               if (spop.value >> bit) & 1]
        alu_op.append(or_plane(ops))
    # Non-SP instructions fall through to 0 (SPOp.ADD) with unit != SP;
    # force PASS for them so downstream don't-cares are stable.
    not_sp = nl.add_gate(GateType.NOT, unit_lines[0])
    pass_word = bd.constant_word(SPOp.PASS.value, 4)
    alu_op = bd.mux_word(nl, alu_op, pass_word, not_sp)

    # Formats and field enables.
    fmt_line = {fmt: or_plane([op for op, info in INFO.items()
                               if info.fmt is fmt]) for fmt in Fmt}
    uses_imm32 = nl.add_gate(GateType.OR, fmt_line[Fmt.RRI32],
                             fmt_line[Fmt.RI32])

    def field_enable(field_name):
        return or_plane([op for op, info in INFO.items()
                         if info.fmt in _REG_FIELD_FORMATS[field_name]])

    def masked(word, enable):
        return [nl.add_gate(GateType.AND, bit, enable) for bit in word]

    dst_out = masked(dst_field, field_enable("dst"))
    src_a_out = masked(src_a_field, field_enable("src_a"))
    src_b_en = field_enable("src_b")
    # src_b overlaps imm32 bits [35:30]; suppress it for imm32 forms.
    src_b_en = nl.add_gate(GateType.AND, src_b_en,
                           nl.add_gate(GateType.NOT, uses_imm32))
    src_b_out = masked(src_b_field, src_b_en)
    src_c_out = masked(src_c_field, field_enable("src_c"))

    # Immediate bus: imm32 for *32I forms, zero-extended imm24 for
    # memory/constant offsets, zero otherwise.
    uses_imm24 = bd.or_reduce(nl, [fmt_line[f]
                                   for f in (Fmt.LD, Fmt.ST, Fmt.CONSTLD)])
    imm24_ext = masked(imm24_field, uses_imm24) + [CONST0] * 8
    imm_bus = bd.mux_word(nl, imm24_ext, imm32_field, uses_imm32)

    # Predicate guard: index 7 means unguarded.
    pred_none = bd.equality_comparator(nl, pred_field, 7)
    pred_en = nl.add_gate(GateType.NOT, pred_none)
    pred_idx = masked(pred_field[:2], pred_en)
    pred_neg = nl.add_gate(GateType.AND, pred_negate_bit, pred_en)

    # Memory controls.
    is_load = or_plane([Op.GLD, Op.SLD, Op.CLD])
    is_store = or_plane([Op.GST, Op.SST])
    mem_space = [
        or_plane([op for op, code in MEM_SPACE.items() if code & 1]),
        or_plane([op for op, code in MEM_SPACE.items() if code & 2]),
    ]

    # Branch / control signals.
    branch_en = or_plane([Op.BRA, Op.SSY, Op.CAL])
    target_out = masked(imm24_field, branch_en)
    is_exit = one_hot[Op.EXIT]
    is_ssy = one_hot[Op.SSY]
    is_join = one_hot[Op.JOIN]
    is_bar = one_hot[Op.BAR]

    cmp_en = nl.add_gate(GateType.OR, fmt_line[Fmt.RRC], fmt_line[Fmt.PRC])
    cmp_out = masked(mod_field[:3], cmp_en)
    sreg_out = masked(mod_field, fmt_line[Fmt.RSREG])

    outputs = {
        "valid": [valid], "illegal": [illegal], "unit": unit_lines,
        "writes_reg": [writes_reg], "alu_op": alu_op, "cmp": cmp_out,
        "dst": dst_out, "src_a": src_a_out, "src_b": src_b_out,
        "src_c": src_c_out, "imm": imm_bus, "uses_imm": [uses_imm32],
        "pred_idx": pred_idx, "pred_neg": [pred_neg], "pred_en": [pred_en],
        "is_load": [is_load], "is_store": [is_store], "mem_space": mem_space,
        "branch_en": [branch_en], "target": target_out, "sreg": sreg_out,
        "is_exit": [is_exit], "is_ssy": [is_ssy], "is_join": [is_join],
        "is_bar": [is_bar],
    }
    for port, word in outputs.items():
        for i, net in enumerate(word):
            nl.mark_output(net, "{}[{}]".format(port, i))
    nl.finalize()
    return HardwareModule(
        name="decoder_unit",
        netlist=nl,
        input_words={"instr": instr},
        output_words=outputs,
        params={},
    )


def reference_decode(word):
    """Pure-Python reference of the DU outputs for instruction *word*.

    Returns a dict port name -> integer value, matching the netlist ports.
    Used by tests to cross-check the synthesized DU gate by gate.
    """
    from ...isa.opcodes import BY_CODE

    code = (word >> 56) & 0xFF
    op = BY_CODE.get(code)
    out = {name: 0 for name in (
        "valid", "illegal", "unit", "writes_reg", "alu_op", "cmp", "dst",
        "src_a", "src_b", "src_c", "imm", "uses_imm", "pred_idx", "pred_neg",
        "pred_en", "is_load", "is_store", "mem_space", "branch_en", "target",
        "sreg", "is_exit", "is_ssy", "is_join", "is_bar")}
    if op is None:
        out["illegal"] = 1
        # The hardware forces the SP micro-op to PASS whenever the unit
        # select is not SP (stable don't-care), including illegal words,
        # and decodes the guard field independently of opcode legality.
        out["alu_op"] = SPOp.PASS.value
        pred_field = (word >> 53) & 0x7
        if pred_field != 7:
            out["pred_en"] = 1
            out["pred_idx"] = pred_field & 0x3
            out["pred_neg"] = (word >> 52) & 1
        return out
    info = INFO[op]
    out["valid"] = 1
    out["unit"] = 1 << UNIT_ORDER.index(info.unit)
    out["writes_reg"] = 1 if info.writes_reg else 0
    spop = ISA_TO_SPOP.get(op, SPOp.PASS)
    out["alu_op"] = (spop.value if info.unit is Unit.SP else SPOp.PASS.value)

    fmt = info.fmt
    dst = (word >> 46) & 0x3F
    src_a = (word >> 40) & 0x3F
    mod = (word >> 36) & 0xF
    if fmt in _REG_FIELD_FORMATS["dst"]:
        out["dst"] = dst
    if fmt in _REG_FIELD_FORMATS["src_a"]:
        out["src_a"] = src_a
    uses_imm32 = fmt in (Fmt.RRI32, Fmt.RI32)
    if fmt in _REG_FIELD_FORMATS["src_b"] and not uses_imm32:
        out["src_b"] = (word >> 30) & 0x3F
    if fmt in _REG_FIELD_FORMATS["src_c"]:
        out["src_c"] = (word >> 24) & 0x3F
    if uses_imm32:
        out["imm"] = word & 0xFFFFFFFF
        out["uses_imm"] = 1
    elif fmt in (Fmt.LD, Fmt.ST, Fmt.CONSTLD):
        out["imm"] = word & 0xFFFFFF
    pred_field = (word >> 53) & 0x7
    if pred_field != 7:
        out["pred_en"] = 1
        out["pred_idx"] = pred_field & 0x3
        out["pred_neg"] = (word >> 52) & 1
    if op in (Op.GLD, Op.SLD, Op.CLD):
        out["is_load"] = 1
    if op in (Op.GST, Op.SST):
        out["is_store"] = 1
    if op in MEM_SPACE:
        out["mem_space"] = MEM_SPACE[op]
    if op in (Op.BRA, Op.SSY, Op.CAL):
        out["branch_en"] = 1
        out["target"] = word & 0xFFFFFF
    if fmt in (Fmt.RRC, Fmt.PRC):
        out["cmp"] = mod & 0x7
    if fmt is Fmt.RSREG:
        out["sreg"] = mod
    out["is_exit"] = 1 if op is Op.EXIT else 0
    out["is_ssy"] = 1 if op is Op.SSY else 0
    out["is_join"] = 1 if op is Op.JOIN else 0
    out["is_bar"] = 1 if op is Op.BAR else 0
    return out
