"""Gate-level Special Function Unit (SFU) datapath.

FlexGripPlus SMs contain two SFUs evaluating transcendental functions (RCP,
RSQ, SIN, COS, LG2, EX2).  Real G80-class SFUs use segmented quadratic
interpolation: the operand's top bits address a coefficient ROM and the low
bits enter a Horner evaluation ``y = (c2 * dx + c1) * dx + c0``.  This
generator synthesizes exactly that structure in fixed point:

* input ``func`` (3 bits) selects the function, ``x`` (W bits) is the
  operand's fraction field;
* the top ``SEG_BITS`` bits of ``x`` plus ``func`` address a coefficient ROM
  (an AND-OR plane) holding per-segment (c0, c1, c2) triples computed from
  the actual math functions at build time;
* two array multipliers and two adders implement the Horner recurrence;
* output ``y`` (W bits).

The SFU_IMM PTP of the paper targets this module (Table I/III); the paper
notes that SFU SBs have no data dependence among them (the SFU only performs
transcendental operations), which is why its compaction leaves FC untouched.
"""

from __future__ import annotations

import functools
import math

from .. import builder as bd
from ..netlist import Netlist

#: Function-select codes on the ``func`` port.
FUNC_CODES = {"RCP": 0, "RSQ": 1, "SIN": 2, "COS": 3, "LG2": 4, "EX2": 5}

#: Number of operand MSBs used to select the interpolation segment.
SEG_BITS = 3

#: Default operand width used by the experiments (tests use 8).
DEFAULT_WIDTH = 16


def _reference_function(code, u):
    """Mathematical function over the normalized operand u in [1, 2)."""
    if code == FUNC_CODES["RCP"]:
        return 1.0 / u
    if code == FUNC_CODES["RSQ"]:
        return 1.0 / math.sqrt(u)
    if code == FUNC_CODES["SIN"]:
        return math.sin(u)
    if code == FUNC_CODES["COS"]:
        return math.cos(u)
    if code == FUNC_CODES["LG2"]:
        return math.log2(u)
    return math.exp2(u) / 4.0 if hasattr(math, "exp2") else (2.0 ** u) / 4.0


@functools.lru_cache(maxsize=None)
def _coefficient_tables(width):
    """Fixed-point (c0, c1, c2) per (func, segment), as ROM word lists."""
    mask = (1 << width) - 1
    scale = 1 << (width - 2)
    segments = 1 << SEG_BITS
    c0_tab, c1_tab, c2_tab = [], [], []
    for func in range(8):
        for seg in range(segments):
            if func >= len(FUNC_CODES):
                c0_tab.append(0)
                c1_tab.append(0)
                c2_tab.append(0)
                continue
            u0 = 1.0 + seg / segments
            h = 1.0 / segments
            f0 = _reference_function(func, u0)
            f1 = _reference_function(func, u0 + h / 2)
            f2 = _reference_function(func, u0 + h)
            # Quadratic through three points, expressed in dx in [0, 1).
            a0 = f0
            a1 = (-3 * f0 + 4 * f1 - f2)
            a2 = (2 * f0 - 4 * f1 + 2 * f2)
            c0_tab.append(int(abs(a0) * scale) & mask)
            c1_tab.append(int(abs(a1) * scale) & mask)
            c2_tab.append(int(abs(a2) * scale) & mask)
    return c0_tab, c1_tab, c2_tab


def sfu_reference_result(func, x, width=DEFAULT_WIDTH):
    """Pure-Python reference of the SFU netlist output (bit-exact)."""
    mask = (1 << width) - 1
    x &= mask
    seg = x >> (width - SEG_BITS)
    dx = x & ((1 << (width - SEG_BITS)) - 1)
    address = (func & 0x7) * (1 << SEG_BITS) + seg
    c0_tab, c1_tab, c2_tab = _coefficient_tables(width)
    c0, c1, c2 = c0_tab[address], c1_tab[address], c2_tab[address]
    t1 = (c2 * dx) & mask
    t2 = (t1 + c1) & mask
    t3 = (t2 * dx) & mask
    return (t3 + c0) & mask


def build_sfu(width=DEFAULT_WIDTH):
    """Synthesize the SFU datapath; returns a ``HardwareModule``."""
    from . import HardwareModule

    nl = Netlist("sfu")
    func = nl.add_inputs(3, "func")
    x = nl.add_inputs(width, "x")

    from ..netlist import CONST0

    seg = x[width - SEG_BITS:]
    dx = x[:width - SEG_BITS]
    # Pad dx to full width for the multipliers.
    dx_full = list(dx) + [CONST0] * SEG_BITS

    address = seg + func  # LSB first: segment bits low, func bits high
    c0_tab, c1_tab, c2_tab = _coefficient_tables(width)
    c0 = bd.rom(nl, address, c0_tab, width)
    c1 = bd.rom(nl, address, c1_tab, width)
    c2 = bd.rom(nl, address, c2_tab, width)

    t1 = bd.array_multiplier(nl, c2, dx_full, out_width=width)
    t2, __ = bd.ripple_adder(nl, t1, c1)
    t3 = bd.array_multiplier(nl, t2, dx_full, out_width=width)
    y, __ = bd.ripple_adder(nl, t3, c0)

    for i, net in enumerate(y):
        nl.mark_output(net, "y[{}]".format(i))
    nl.finalize()
    return HardwareModule(
        name="sfu",
        netlist=nl,
        input_words={"func": func, "x": x},
        output_words={"y": y},
        params={"width": width},
    )
