"""Bit-parallel logic simulation over gate-level netlists.

Patterns are packed into arbitrary-precision Python integers: the value of a
net is an int whose bit ``k`` is the net's logic level under pattern ``k``.
One bitwise operation per gate simulates the entire pattern set, which makes
whole-program gate-level simulation tractable in pure Python.
"""

from __future__ import annotations

from ..errors import NetlistError
from .gates import evaluate
from .netlist import CONST0, CONST1


def iter_set_bits(word):
    """Yield the set-bit indices of *word*, ascending.

    The canonical ``word & -word`` lowest-set-bit walk — every consumer of
    packed pattern/detection words iterates through this one helper, so
    pattern indices are derived identically everywhere (the fault layer
    re-exports it as ``repro.faults.fault_sim.iter_set_bits``).

    Raises:
        ValueError: *word* is negative.  A Python int's two's-complement
        view of a negative number has infinitely many set bits, so the
        walk would never terminate — fail loudly instead.
    """
    if word < 0:
        raise ValueError(
            "iter_set_bits requires a non-negative word, got {}"
            .format(word))
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


class PatternSet:
    """A set of input assignments for a netlist.

    Stores, for each primary input net, a packed integer whose bit ``k`` is
    the input's value in pattern ``k``.

    Attributes:
        version: mutation counter, bumped by every :meth:`add` (and hence
            :meth:`add_words`).  Consumers that memoize derived state on a
            pattern set's identity (good-machine values, packed numpy
            limbs, pooled-worker priming) key on ``(id, version)`` so a
            set mutated after being cached is re-derived instead of
            silently served stale.
    """

    def __init__(self, netlist, count=0):
        netlist.finalize()
        self.netlist = netlist
        self.count = count
        self.version = 0
        self.packed = {net: 0 for net in netlist.inputs}

    @property
    def mask(self):
        """Integer with one bit set per pattern."""
        return (1 << self.count) - 1

    def add(self, assignment):
        """Append one pattern.

        Args:
            assignment: dict mapping input net index -> 0/1.  Missing inputs
                default to 0.

        Returns:
            The index of the added pattern.
        """
        index = self.count
        for net, value in assignment.items():
            if net not in self.packed:
                raise NetlistError("net {} is not a primary input".format(net))
            if value:
                self.packed[net] |= 1 << index
        self.count += 1
        self.version += 1
        return index

    def add_words(self, word_values):
        """Append one pattern given word-level values.

        Args:
            word_values: iterable of ``(word, value)`` pairs where *word* is a
                list of input net indices (LSB first) and *value* the integer
                to apply.

        Raises:
            NetlistError: *value* has set bits at positions >= ``len(word)``
                (those bits have no net to land on and were previously
                discarded silently), *value* is negative, or two words in
                the same call assign the same net (the later word silently
                overwrote the earlier one's bit).
        """
        assignment = {}
        for word, value in word_values:
            if value < 0:
                raise NetlistError(
                    "word value {} is negative".format(value))
            if value >> len(word):
                raise NetlistError(
                    "word value {:#x} does not fit the {}-net word (extra "
                    "high bits would be dropped)".format(value, len(word)))
            for i, net in enumerate(word):
                if net in assignment:
                    raise NetlistError(
                        "net {} is assigned by more than one word in the "
                        "same pattern".format(net))
                assignment[net] = (value >> i) & 1
        return self.add(assignment)

    def value_of(self, net, pattern_index):
        """Value of input *net* under pattern *pattern_index*.

        Raises:
            IndexError: *pattern_index* is negative or >= :attr:`count`
                (a silent 0 here would let stale indices from a reduced
                PTP masquerade as real all-zero patterns).
        """
        if not 0 <= pattern_index < self.count:
            raise IndexError(
                "pattern index {} out of range for {} pattern(s)".format(
                    pattern_index, self.count))
        return (self.packed[net] >> pattern_index) & 1

    def subset(self, indices):
        """New :class:`PatternSet` containing only *indices*, in order.

        Raises:
            IndexError: any index is negative or >= :attr:`count`.
        """
        indices = list(indices)
        for index in indices:
            if not 0 <= index < self.count:
                raise IndexError(
                    "pattern index {} out of range for {} pattern(s)".format(
                        index, self.count))
        # old index -> new bit positions (duplicates allowed), built once so
        # each net repacks in O(set bits) instead of O(len(indices)).
        positions = {}
        for new_index, old_index in enumerate(indices):
            positions.setdefault(old_index, []).append(new_index)
        out = PatternSet(self.netlist)
        mask = self.mask
        for net, packed in self.packed.items():
            repacked = 0
            for old_index in iter_set_bits(packed & mask):
                for new_index in positions.get(old_index, ()):
                    repacked |= 1 << new_index
            out.packed[net] = repacked
        out.count = len(indices)
        return out

    def reversed(self):
        """New :class:`PatternSet` with the pattern order reversed."""
        return self.subset(list(range(self.count - 1, -1, -1)))


class LogicSimulator:
    """Levelized bit-parallel simulator for a finalized netlist."""

    def __init__(self, netlist):
        netlist.finalize()
        self.netlist = netlist

    def run(self, patterns):
        """Simulate the fault-free netlist over *patterns*.

        Returns:
            A dict net index -> packed value covering constants, inputs, and
            every gate output.
        """
        if patterns.netlist is not self.netlist:
            raise NetlistError("pattern set belongs to a different netlist")
        mask = patterns.mask
        values = {CONST0: 0, CONST1: mask}
        values.update(patterns.packed)
        for gate in self.netlist.levelized_gates:
            ins = tuple(values[n] for n in gate.inputs)
            values[gate.output] = evaluate(gate.gate_type, ins, mask)
        return values

    def run_words(self, patterns, output_words):
        """Simulate and return word-level outputs.

        Args:
            patterns: a :class:`PatternSet`.
            output_words: dict name -> list of net indices (LSB first).

        Returns:
            dict name -> list of integer values, one per pattern.
        """
        values = self.run(patterns)
        mask = patterns.mask
        results = {}
        for name, word in output_words.items():
            # Transpose packed net words into per-pattern values by walking
            # each net's set bits once — O(patterns + set bits) instead of
            # the per-(pattern, bit) probe loop.
            per_pattern = [0] * patterns.count
            for i, net in enumerate(word):
                bit = 1 << i
                for k in iter_set_bits(values[net] & mask):
                    per_pattern[k] |= bit
            results[name] = per_pattern
        return results
