"""Gate-level netlist data structure.

A :class:`Netlist` is a DAG of combinational gates over integer-indexed nets.
Net 0 and net 1 are the constant-0 and constant-1 nets.  Each non-constant
net is driven either by a primary input or by exactly one gate.

The structure is append-only during construction and validated/levelized
once finalized; simulation and fault analysis use the levelized gate order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetlistError
from .gates import ARITY, GateType

#: Net index of the constant-0 / constant-1 nets.
CONST0 = 0
CONST1 = 1


@dataclass(frozen=True)
class Gate:
    """One gate instance: ``output = gate_type(*inputs)``."""

    index: int
    gate_type: GateType
    inputs: tuple
    output: int


@dataclass
class Netlist:
    """A combinational gate-level netlist.

    Attributes:
        name: human-readable module name (e.g. ``"decoder_unit"``).
        gates: list of :class:`Gate`, in creation order.
        inputs: primary-input net indices, in declared order.
        outputs: primary-output net indices, in declared order.
        net_names: optional net index -> name map for ports and debug.
    """

    name: str
    gates: list = field(default_factory=list)
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    net_names: dict = field(default_factory=dict)
    _next_net: int = 2  # nets 0/1 are the constants
    _driver: dict = field(default_factory=dict)  # net -> gate index
    _finalized: bool = False
    _levelized: list = None
    _fanout: dict = None
    _level: dict = None  # net -> topological level

    # -- construction ---------------------------------------------------------

    def new_net(self, name=None):
        """Allocate a fresh net index (undriven until used)."""
        if self._finalized:
            raise NetlistError("netlist {!r} is finalized".format(self.name))
        net = self._next_net
        self._next_net += 1
        if name is not None:
            self.net_names[net] = name
        return net

    def add_input(self, name=None):
        """Declare a new primary input net and return its index."""
        net = self.new_net(name)
        self.inputs.append(net)
        return net

    def add_inputs(self, count, prefix):
        """Declare *count* primary inputs named ``prefix[i]`` (LSB first)."""
        return [self.add_input("{}[{}]".format(prefix, i))
                for i in range(count)]

    def add_gate(self, gate_type, *inputs, name=None):
        """Add a gate driving a fresh net; returns the output net index."""
        if self._finalized:
            raise NetlistError("netlist {!r} is finalized".format(self.name))
        if len(inputs) != ARITY[gate_type]:
            raise NetlistError("{} expects {} inputs, got {}".format(
                gate_type.name, ARITY[gate_type], len(inputs)))
        for net in inputs:
            if not 0 <= net < self._next_net:
                raise NetlistError("gate input references unknown net {}"
                                   .format(net))
        out = self.new_net(name)
        gate = Gate(len(self.gates), gate_type, tuple(inputs), out)
        self.gates.append(gate)
        self._driver[out] = gate.index
        return out

    def mark_output(self, net, name=None):
        """Declare *net* as a primary output."""
        if not 0 <= net < self._next_net:
            raise NetlistError("unknown output net {}".format(net))
        self.outputs.append(net)
        if name is not None:
            self.net_names[net] = name

    # -- finalized views --------------------------------------------------------

    @property
    def num_nets(self):
        return self._next_net

    @property
    def num_gates(self):
        return len(self.gates)

    def driver_of(self, net):
        """Gate index driving *net*, or None for PIs/constants."""
        return self._driver.get(net)

    def finalize(self):
        """Validate the netlist, compute levels and fanout; idempotent."""
        if self._finalized:
            return self
        input_set = set(self.inputs)
        driven = set(self._driver) | input_set | {CONST0, CONST1}
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        "gate {} of {!r} reads undriven net {}".format(
                            gate.index, self.name, net))
        for net in self.outputs:
            if net not in driven:
                raise NetlistError("output net {} is undriven".format(net))
        for net in input_set:
            if net in self._driver:
                raise NetlistError("primary input net {} is gate-driven"
                                   .format(net))

        # Levelize: gates in creation order are already topological because
        # add_gate only references existing nets; verify and store.
        level = {CONST0: 0, CONST1: 0}
        for net in self.inputs:
            level[net] = 0
        levelized = []
        for gate in self.gates:
            glev = 0
            for net in gate.inputs:
                if net not in level:
                    raise NetlistError(
                        "netlist {!r} is not topologically ordered at gate {}"
                        .format(self.name, gate.index))
                glev = max(glev, level[net])
            level[gate.output] = glev + 1
            levelized.append(gate)
        self._levelized = levelized
        self._level = level

        fanout = {}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate.index)
        self._fanout = fanout
        self._finalized = True
        return self

    @property
    def levelized_gates(self):
        """Gates in topological order (requires :meth:`finalize`)."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        return self._levelized

    def fanout_gates(self, net):
        """Gate indices reading *net* (requires :meth:`finalize`)."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        return self._fanout.get(net, [])

    def net_level(self, net):
        """Topological level of *net*: 0 for constants/primary inputs,
        ``1 + max(input levels)`` for gate outputs (requires
        :meth:`finalize`).  Undriven (never-read) nets are level 0."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        return self._level.get(net, 0)

    @property
    def logic_depth(self):
        """Maximum gate level of the netlist (requires :meth:`finalize`)."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        return max(self._level.values(), default=0)

    def cone_from_gate(self, gate_index):
        """Gate indices in the transitive fanout of *gate_index*, in
        topological order and including the gate itself."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        seen = {gate_index}
        frontier_nets = [self.gates[gate_index].output]
        while frontier_nets:
            net = frontier_nets.pop()
            for g_idx in self.fanout_gates(net):
                if g_idx not in seen:
                    seen.add(g_idx)
                    frontier_nets.append(self.gates[g_idx].output)
        return sorted(seen)

    def cone_from_net(self, net):
        """Gate indices in the transitive fanout of *net*, topological."""
        if not self._finalized:
            raise NetlistError("finalize() the netlist first")
        seen = set()
        frontier = [net]
        while frontier:
            current = frontier.pop()
            for g_idx in self.fanout_gates(current):
                if g_idx not in seen:
                    seen.add(g_idx)
                    frontier.append(self.gates[g_idx].output)
        return sorted(seen)

    def stats(self):
        """Summary dict: gate counts by type, net/IO counts, logic depth."""
        by_type = {}
        for gate in self.gates:
            by_type[gate.gate_type.name] = by_type.get(gate.gate_type.name,
                                                       0) + 1
        depth = self.logic_depth if self._finalized else 0
        return {
            "name": self.name,
            "gates": self.num_gates,
            "nets": self.num_nets,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "depth": depth,
            "by_type": by_type,
        }
