"""Gate-level netlist substrate: IR, synthesis macros, logic simulation.

This package replaces the paper's synthesized (Nangate 15nm) gate-level
descriptions and the commercial gate-level logic simulator:

* :mod:`repro.netlist.gates` / :mod:`repro.netlist.netlist` — the cell
  library and the netlist DAG;
* :mod:`repro.netlist.builder` — word-level composition helpers (adders,
  multipliers, shifters, ROMs, decoders);
* :mod:`repro.netlist.simulator` — bit-parallel logic simulation
  (whole pattern sets per gate evaluation);
* :mod:`repro.netlist.modules` — the three fault-targeted GPU modules
  (Decoder Unit, SP core, SFU).
"""

from .gates import ARITY, CONTROLLING_VALUE, GateType, evaluate, is_inverting
from .netlist import CONST0, CONST1, Gate, Netlist
from .simulator import LogicSimulator, PatternSet, iter_set_bits

__all__ = [
    "GateType", "ARITY", "CONTROLLING_VALUE", "evaluate", "is_inverting",
    "Netlist", "Gate", "CONST0", "CONST1",
    "LogicSimulator", "PatternSet", "iter_set_bits",
]
