"""Gate primitives for the gate-level netlist IR.

The cell set mirrors the combinational subset of a standard-cell library such
as the 15nm Nangate OpenCell library used in the paper (Section IV): 1- and
2-input logic cells plus a 2:1 multiplexer.  Wider functions are composed from
these by the builder.

Evaluation is *bit-parallel*: every net value is a Python integer whose bit
``k`` holds the net's logic value under pattern ``k``.  A single bitwise
operation therefore simulates the gate for the entire pattern set at once.
"""

from __future__ import annotations

import enum


class GateType(enum.Enum):
    """Combinational cell types."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs (a, b, sel): out = b if sel else a


#: Number of input pins per gate type.
ARITY = {
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.MUX: 3,
}

_INVERTING = {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}


def evaluate(gate_type, inputs, mask):
    """Evaluate *gate_type* over bit-parallel *inputs*.

    Args:
        gate_type: a :class:`GateType`.
        inputs: tuple of packed pattern integers, one per input pin.
        mask: integer with one bit set per valid pattern; inverting gates AND
            with the mask so unused high bits stay zero.

    Returns:
        The packed output value.
    """
    if gate_type is GateType.BUF:
        return inputs[0]
    if gate_type is GateType.NOT:
        return ~inputs[0] & mask
    if gate_type is GateType.AND:
        return inputs[0] & inputs[1]
    if gate_type is GateType.OR:
        return inputs[0] | inputs[1]
    if gate_type is GateType.NAND:
        return ~(inputs[0] & inputs[1]) & mask
    if gate_type is GateType.NOR:
        return ~(inputs[0] | inputs[1]) & mask
    if gate_type is GateType.XOR:
        return inputs[0] ^ inputs[1]
    if gate_type is GateType.XNOR:
        return ~(inputs[0] ^ inputs[1]) & mask
    if gate_type is GateType.MUX:
        a, b, sel = inputs
        return (a & ~sel | b & sel) & mask
    raise ValueError("unknown gate type {!r}".format(gate_type))


def is_inverting(gate_type):
    """True when the cell's output inverts (for fault-collapsing rules)."""
    return gate_type in _INVERTING


#: Controlling input value per gate type (None when no single value controls).
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}
