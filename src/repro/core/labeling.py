"""Stage 3 (second step) — instruction labeling (Fig. 2 of the paper).

Each instruction of the PTP is matched with its execution clock cycles via
the tracing report; for every warp that executed it, and for every cc of
that execution, the Fault Sim Report is consulted: if the test pattern
applied at that cc detects faults, the instruction is *essential*,
otherwise it stays *unessential* and becomes a removal candidate.

Fault dropping concentrates detections on the earliest application of each
effective pattern, which is what gives the method its compaction power: a
pattern repeated later detects nothing new, so redundant instructions stay
unessential.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompactionError

ESSENTIAL = "essential"
UNESSENTIAL = "unessential"


@dataclass
class LabeledPtp:
    """The Labeled Parallel Test Program (LPTP).

    Attributes:
        ptp: the analyzed PTP.
        labels: per-pc label, :data:`ESSENTIAL` or :data:`UNESSENTIAL`.
        executed: per-pc bool — whether any warp executed the pc.
        detecting_ccs: the set of clock cycles whose patterns detected
            faults (diagnostic).
    """

    ptp: object
    labels: list
    executed: list
    detecting_ccs: set = field(default_factory=set)

    @property
    def num_essential(self):
        return sum(1 for label in self.labels if label == ESSENTIAL)

    @property
    def num_unessential(self):
        return len(self.labels) - self.num_essential


def label_instructions(ptp, trace, pattern_report, fault_result,
                       dropping=True):
    """Run the Fig. 2 labeling algorithm.

    Args:
        ptp: the PTP under compaction.
        trace: tracing report (list of TraceRecord) from stage 2.
        pattern_report: the module PatternReport from stage 2 — its pattern
            order must match *fault_result*'s pattern indices.
        fault_result: :class:`~repro.faults.fault_sim.FaultSimResult` from
            the stage-3 optimized fault simulation.
        dropping: count each fault only at its first detecting pattern
            (the paper's configuration).

    Returns:
        A :class:`LabeledPtp`.
    """
    if fault_result.pattern_count != pattern_report.count:
        raise CompactionError(
            "fault sim saw {} patterns but the report has {}".format(
                fault_result.pattern_count, pattern_report.count))

    # FSR_cc: clock cycles whose pattern detects at least one fault.
    detecting = fault_result.detecting_patterns(dropping=dropping)
    cc_of_pattern = pattern_report.cc_of_pattern()
    detecting_ccs = {cc_of_pattern[k] for k in detecting}

    size = len(ptp.program)
    labels = [UNESSENTIAL] * size
    executed = [False] * size
    for record in trace:  # one record per (instruction, warp) execution
        if not 0 <= record.pc < size:
            raise CompactionError("trace pc {} outside the PTP".format(
                record.pc))
        executed[record.pc] = True
        if labels[record.pc] == ESSENTIAL:
            continue  # "go to next instruction"
        for cc in range(record.decode_cc, record.exec_end_cc + 1):
            if cc in detecting_ccs:
                labels[record.pc] = ESSENTIAL
                break
    return LabeledPtp(ptp=ptp, labels=labels, executed=executed,
                      detecting_ccs=detecting_ccs)
