"""Stage 4 — PTP reduction (Fig. 3 of the paper).

The LPTP is divided into BBs; each admissible BB is segmented into Small
Blocks (load operands / execute / propagate); an SB is removed when ALL of
its instructions are unessential, and kept untouched otherwise.  Removing
an SB "may also imply the additional removal and relocation of associated
input data from the main memory" — orphaned operand arrays are dropped from
the PTP's global-memory image.

Segmentation is structural (the tool sees only the instruction stream):

* control-flow instructions and inadmissible BBs are *pinned* (never
  removable) — deleting them would break the CFG or touch regions stage 1
  excluded from the ARC;
* for signature-based PTPs, a store that immediately precedes the PTP's
  EXIT is pinned (it is the signature flush, the PTP's sole observable
  mechanism); store-per-SB PTPs have no such flush;
* within an admissible BB, a new SB starts at a load-class instruction
  (MOV32I / S2R / GLD / SLD / CLD) that follows a propagation instruction
  (a store, or a write to the signature register).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Program
from ..isa.opcodes import Fmt, Op, Unit, info
from ..stl.builder import DATA_BASE, OUTPUT_BASE, TID_REG
from ..stl.signature import SIG_REG
from .labeling import ESSENTIAL

_LOAD_OPS = {Op.MOV32I, Op.S2R, Op.GLD, Op.SLD, Op.CLD}
_STORE_OPS = {Op.GST, Op.SST}


@dataclass
class SmallBlock:
    """One segmented Small Block: pcs ``[start, end)`` within a BB."""

    start: int
    end: int
    removable: bool

    @property
    def size(self):
        return self.end - self.start

    def pcs(self):
        return range(self.start, self.end)


@dataclass
class ReductionResult:
    """Outcome of stage 4.

    Attributes:
        compacted: the Compacted PTP (CPTP).
        small_blocks: the segmentation used.
        removed_blocks / kept_blocks: SBs deleted / retained.
        pc_map: old pc -> new pc for kept instructions (None if removed).
    """

    compacted: object
    small_blocks: list
    removed_blocks: list = field(default_factory=list)
    kept_blocks: list = field(default_factory=list)
    pc_map: list = field(default_factory=list)

    @property
    def removed_instructions(self):
        return sum(sb.size for sb in self.removed_blocks)


def _is_propagation(instr):
    """Store, or a write to the signature accumulator."""
    if instr.op in _STORE_OPS:
        return True
    return (info(instr.op).writes_reg and instr.dst == SIG_REG
            and instr.op is not Op.MOV32I)


def _final_flush_pcs(instructions):
    """Stores immediately preceding an EXIT (the PTP's observable flush)."""
    pinned = set()
    for pc, instr in enumerate(instructions):
        if instr.op is Op.EXIT:
            back = pc - 1
            while back >= 0 and instructions[back].op in _STORE_OPS:
                pinned.add(back)
                back -= 1
    return pinned


def _preamble_pcs(instructions):
    """The PTP preamble: leading thread-index / signature-accumulator
    setup (S2R reads, MOV32I into the signature register).  It establishes
    the test mechanism every SB relies on, so it is never a removable SB.
    """
    pinned = set()
    for pc, instr in enumerate(instructions):
        if instr.op is Op.S2R or (instr.op is Op.MOV32I
                                  and instr.dst == SIG_REG):
            pinned.add(pc)
        else:
            break
    return pinned


def _hammock_spans(instructions, partition):
    """Self-contained SSY..JOIN divergence regions, as {start: end} (both
    inclusive).

    A span [s, j] qualifies when: instruction s is SSY targeting j, j holds
    the matching JOIN, the whole span is admissible, every branch inside
    stays inside (targets in (s, j]), and no branch from outside targets
    the span's interior.  Such a region executes as one unit, so the
    reduction may remove it wholly — this is what lets control-flow test
    SBs (the CNTRL PTP's divergence constructs) be compacted.
    """
    external_targets = {}
    for pc, instr in enumerate(instructions):
        if instr.op in (Op.BRA, Op.CAL, Op.SSY):
            external_targets.setdefault(instr.target, []).append(pc)

    spans = {}
    for s, instr in enumerate(instructions):
        if instr.op is not Op.SSY:
            continue
        j = instr.target
        if j <= s or j >= len(instructions):
            continue
        if instructions[j].op is not Op.JOIN:
            continue
        if not all(partition.is_admissible_pc(pc) for pc in range(s, j + 1)):
            continue
        contained = True
        for pc in range(s + 1, j):
            inner = instructions[pc]
            if inner.op in (Op.CAL, Op.RET, Op.EXIT, Op.BAR, Op.SSY):
                contained = False
                break
            if inner.op is Op.BRA and not s < inner.target <= j:
                contained = False
                break
        if not contained:
            continue
        entered_from_outside = False
        for target, sources in external_targets.items():
            if s < target <= j and any(src < s or src > j
                                       for src in sources):
                entered_from_outside = True
                break
        if entered_from_outside:
            continue
        spans[s] = j
    return spans


def segment_small_blocks(ptp, partition):
    """Segment *ptp* into :class:`SmallBlock` lists (pinned ones included,
    flagged non-removable)."""
    instructions = list(ptp.program)
    pinned_flush = _preamble_pcs(instructions)
    if ptp.uses_signature:
        pinned_flush |= _final_flush_pcs(instructions)
    hammocks = _hammock_spans(instructions, partition)
    leaders = {bb.start for bb in partition.cfg.blocks}

    blocks = []

    def close(start, end, removable):
        if end > start:
            blocks.append(SmallBlock(start, end, removable))

    run_start = None
    seen_prop = False

    def close_run(pc):
        nonlocal run_start, seen_prop
        if run_start is not None:
            close(run_start, pc, True)
            run_start = None
        seen_prop = False

    pc = 0
    size = len(instructions)
    while pc < size:
        if pc in hammocks and pc not in pinned_flush:
            close_run(pc)
            close(pc, hammocks[pc] + 1, True)
            pc = hammocks[pc] + 1
            continue
        if pc in leaders:
            close_run(pc)
        instr = instructions[pc]
        pin = (not partition.is_admissible_pc(pc)
               or info(instr.op).unit is Unit.CTRL
               or pc in pinned_flush)
        if pin:
            close_run(pc)
            close(pc, pc + 1, False)
            pc += 1
            continue
        if run_start is None:
            run_start = pc
            seen_prop = False
        elif seen_prop and instr.op in _LOAD_OPS:
            close_run(pc)
            run_start = pc
        if _is_propagation(instr):
            seen_prop = True
        pc += 1
    close_run(size)
    blocks.sort(key=lambda sb: sb.start)
    return blocks


def _referenced_data_offsets(instructions, block_threads):
    """Global-memory words read by the instruction list's GLDs."""
    referenced = set()
    for instr in instructions:
        if instr.op is Op.GLD and instr.src_a == TID_REG:
            for address in range(instr.imm, instr.imm + block_threads):
                referenced.add(address)
        elif instr.op is Op.GLD:
            # Unknown base register: keep the whole data region around it.
            return None
    return referenced


def reduce_ptp(labeled, partition, name_suffix="_compacted"):
    """Run the Fig. 3 reduction on a labeled PTP.

    Returns a :class:`ReductionResult` whose ``compacted`` PTP has branch
    targets remapped and orphaned operand data dropped from its
    global-memory image.
    """
    ptp = labeled.ptp
    instructions = list(ptp.program)
    small_blocks = segment_small_blocks(ptp, partition)

    kept_blocks, removed_blocks = [], []
    keep = [False] * len(instructions)
    for sb in small_blocks:
        essential = any(labeled.labels[pc] == ESSENTIAL for pc in sb.pcs())
        if sb.removable and not essential:
            removed_blocks.append(sb)
        else:
            kept_blocks.append(sb)
            for pc in sb.pcs():
                keep[pc] = True
    # Any instruction not covered by segmentation (defensive) is kept.
    covered = {pc for sb in small_blocks for pc in sb.pcs()}
    for pc in range(len(instructions)):
        if pc not in covered:
            keep[pc] = True

    pc_map = [None] * len(instructions)
    new_instructions = []
    for pc, kept in enumerate(keep):
        if kept:
            pc_map[pc] = len(new_instructions)
            new_instructions.append(instructions[pc])

    def remap(old_target):
        # Targets normally point at pinned instructions; if the target was
        # removed, fall through to the next kept instruction.
        for candidate in range(old_target, len(pc_map)):
            if pc_map[candidate] is not None:
                return pc_map[candidate]
        return len(new_instructions) - 1

    for i, instr in enumerate(new_instructions):
        if info(instr.op).fmt is Fmt.BRANCH:
            new_instructions[i] = instr.with_target(remap(instr.target))

    # Data relocation: drop operand arrays only referenced by removed SBs.
    image = dict(ptp.global_image)
    referenced = _referenced_data_offsets(new_instructions,
                                          ptp.kernel.block_threads)
    if referenced is not None:
        image = {address: value for address, value in image.items()
                 if address >= OUTPUT_BASE or address < DATA_BASE
                 or address in referenced}

    new_labels = {}
    for label, target in ptp.program.labels.items():
        mapped = remap(target)
        new_labels[label] = mapped
    compacted = ptp.with_program(Program(new_instructions, new_labels),
                                 name=ptp.name + name_suffix)
    compacted.global_image = image
    return ReductionResult(
        compacted=compacted,
        small_blocks=small_blocks,
        removed_blocks=removed_blocks,
        kept_blocks=kept_blocks,
        pc_map=pc_map,
    )
