"""The paper's contribution: the five-stage STL compaction method.

* Stage 1 — :func:`~repro.core.partition.partition_ptp` (BBs, CFG, ARCs);
* Stage 2 — :func:`~repro.core.tracing.run_logic_tracing` (tracing report +
  VCDE pattern report);
* Stage 3 — one :class:`~repro.faults.fault_sim.FaultSimulator` run +
  :func:`~repro.core.labeling.label_instructions` (Fig. 2);
* Stage 4 — :func:`~repro.core.reduction.reduce_ptp` (Fig. 3);
* Stage 5 — :func:`~repro.core.fc_eval.evaluate_fc` and STL reassembly.

:class:`~repro.core.pipeline.CompactionPipeline` drives all five stages with
cross-PTP fault dropping; :class:`~repro.core.campaign.CompactionCampaign`
wraps it into a resilient multi-PTP campaign (failure isolation, watchdog
budgets, FC-regression guard, checkpoint/resume).
"""

from .campaign import CampaignReport, CompactionCampaign, PtpRecord, Watchdog, run_stl_campaign
from .cfg import BasicBlock, ControlFlowGraph, build_cfg, find_loops
from .checkpoint import CampaignCheckpoint
from .fc_eval import FcEvaluation, combined_fc, evaluate_fc
from .labeling import ESSENTIAL, UNESSENTIAL, LabeledPtp, label_instructions
from .partition import PartitionResult, partition_ptp
from .patterns import PatternReport, parse_pattern_report, write_pattern_report
from .pipeline import CompactionOutcome, CompactionPipeline
from .reduction import ReductionResult, SmallBlock, reduce_ptp, segment_small_blocks
from .reports import (
    parse_fault_sim_report,
    parse_labeled_ptp,
    write_campaign_summary,
    write_compaction_summary,
    write_fault_sim_report,
    write_labeled_ptp,
)
from .tracing import TracingResult, collector_for, run_logic_tracing

__all__ = [
    "partition_ptp", "PartitionResult", "build_cfg", "find_loops",
    "BasicBlock", "ControlFlowGraph",
    "run_logic_tracing", "TracingResult", "collector_for",
    "PatternReport", "write_pattern_report", "parse_pattern_report",
    "label_instructions", "LabeledPtp", "ESSENTIAL", "UNESSENTIAL",
    "reduce_ptp", "segment_small_blocks", "ReductionResult", "SmallBlock",
    "evaluate_fc", "combined_fc", "FcEvaluation",
    "CompactionPipeline", "CompactionOutcome",
    "CompactionCampaign", "CampaignReport", "PtpRecord", "Watchdog",
    "run_stl_campaign", "CampaignCheckpoint",
    "write_fault_sim_report", "parse_fault_sim_report",
    "write_labeled_ptp", "parse_labeled_ptp",
    "write_compaction_summary", "write_campaign_summary",
]
