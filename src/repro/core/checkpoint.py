"""Campaign checkpoint persistence (write-temp-then-rename JSON).

A campaign checkpoint is one JSON file capturing everything a resumed
campaign needs to continue *exactly* where the previous run stopped:

* per-PTP outcome records — status (``compacted`` / ``rolled-back`` /
  ``failed``), the structured :class:`~repro.errors.PtpFailure` for
  failed PTPs, the Table-II/III numbers, and (for compacted PTPs) the
  full compacted PTP as a :func:`~repro.stl.io.ptp_to_dict` value;
* per-module fault-dropping state — the
  :meth:`~repro.faults.dropping.FaultListReport.state_dict` snapshot,
  so the ordering-sensitive MEM-after-IMM / RAND-after-TPGEN semantics
  survive the interruption bit-identically.

Every :meth:`CampaignCheckpoint.save` writes the whole document to a
temporary file in the same directory and ``os.replace``-renames it over
the target, so a kill at any instant leaves either the previous complete
checkpoint or the new complete checkpoint — never a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile

from ..errors import CheckpointError

#: Bumped whenever the checkpoint document layout changes incompatibly.
FORMAT_VERSION = 1


class CampaignCheckpoint:
    """In-memory campaign checkpoint document bound to one file path.

    The document is a plain dict so the campaign runner can stay
    ignorant of the file layout::

        {
          "version": 1,
          "ptps": {name: {"status": ..., "failure": {...} | null,
                          "numbers": {...}, "compacted": {...} | null,
                          "cache_keys": {...}, "diagnostics": [...]}},
          "order": [names in completion order],
          "modules": {module_name: <FaultListReport.state_dict()>}
        }

    ``cache_keys`` (added by the exec subsystem) maps artifact names to
    the SHA-256 content keys the PTP's compaction touched in the
    :class:`~repro.exec.cache.ArtifactCache`; a resumed campaign reuses
    those artifacts without recomputing their keys.  Under
    ``--incremental`` the dict additionally carries
    ``fault_state_record`` — the key of the per-(PTP, module, engine)
    fault-state record the incremental layer read and rewrote for that
    PTP (:meth:`~repro.exec.cache.ArtifactCache.fault_state_key`).  The
    field is optional, so version-1 checkpoints written before it
    existed still load.
    """

    def __init__(self, path):
        self.path = path
        self.ptps = {}
        self.order = []
        self.modules = {}

    # -- content ---------------------------------------------------------

    def has_ptp(self, name):
        return name in self.ptps

    def ptp_entry(self, name):
        return self.ptps.get(name)

    def record_ptp(self, name, status, numbers=None, failure=None,
                   compacted=None, cache_keys=None, diagnostics=None):
        """Record one PTP's final campaign outcome.

        Args:
            name: PTP name.
            status: ``"compacted"``, ``"rolled-back"`` or ``"failed"``.
            numbers: optional dict of summary numbers (sizes, FC, ...).
            failure: optional :class:`~repro.errors.PtpFailure`.
            compacted: the compacted PTP (status ``"compacted"`` only).
            cache_keys: optional artifact-name -> content-key dict from
                :attr:`~repro.core.pipeline.CompactionOutcome.cache_keys`.
            diagnostics: optional list of static-verifier diagnostic
                dicts (:meth:`repro.verify.Diagnostic.to_dict`) — the
                pipeline's verification gate findings for this PTP.
        """
        from ..stl.io import ptp_to_dict

        entry = {
            "status": status,
            "numbers": dict(numbers or {}),
            "failure": failure.to_dict() if failure is not None else None,
            "compacted": (ptp_to_dict(compacted)
                          if compacted is not None else None),
            "cache_keys": dict(cache_keys or {}),
            "diagnostics": list(diagnostics or []),
        }
        if name not in self.ptps:
            self.order.append(name)
        self.ptps[name] = entry

    def ptp_diagnostics(self, name):
        """Static-verifier diagnostic dicts recorded for *name* ([] when
        absent — including checkpoints written before the verifier)."""
        entry = self.ptps.get(name)
        if entry is None:
            return []
        return list(entry.get("diagnostics") or [])

    def ptp_cache_keys(self, name):
        """Artifact cache keys recorded for *name* ({} when absent —
        including checkpoints written before the exec subsystem)."""
        entry = self.ptps.get(name)
        if entry is None:
            return {}
        return dict(entry.get("cache_keys") or {})

    def record_module_state(self, module_name, state):
        """Record a module's fault-dropping :meth:`state_dict` snapshot."""
        self.modules[module_name] = state

    def module_state(self, module_name):
        return self.modules.get(module_name)

    def compacted_ptp(self, name):
        """The checkpointed compacted PTP for *name*, or None."""
        from ..stl.io import ptp_from_dict

        entry = self.ptps.get(name)
        if entry is None or entry.get("compacted") is None:
            return None
        return ptp_from_dict(entry["compacted"])

    # -- persistence -----------------------------------------------------

    def save(self):
        """Atomically persist the document (write temp, then rename)."""
        document = {
            "version": FORMAT_VERSION,
            "ptps": self.ptps,
            "order": self.order,
            "modules": self.modules,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory,
                                         prefix=".checkpoint-",
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path):
        """Load a checkpoint file written by :meth:`save`.

        Raises:
            CheckpointError: missing file, invalid JSON, wrong layout, or
                an incompatible :data:`FORMAT_VERSION`.
        """
        try:
            with open(path) as handle:
                document = json.load(handle)
        except OSError as exc:
            raise CheckpointError("cannot read checkpoint {!r}: {}".format(
                path, exc)) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError("corrupt checkpoint {!r}: {}".format(
                path, exc)) from exc
        if not isinstance(document, dict):
            raise CheckpointError("corrupt checkpoint {!r}: not an object"
                                  .format(path))
        version = document.get("version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                "checkpoint {!r} has format version {!r}, expected {}"
                .format(path, version, FORMAT_VERSION))
        checkpoint = cls(path)
        ptps = document.get("ptps", {})
        order = document.get("order", sorted(ptps))
        modules = document.get("modules", {})
        if not isinstance(ptps, dict) or not isinstance(order, list) \
                or not isinstance(modules, dict):
            raise CheckpointError("corrupt checkpoint {!r}: bad sections"
                                  .format(path))
        unknown = [name for name in order if name not in ptps]
        if unknown:
            raise CheckpointError(
                "corrupt checkpoint {!r}: order names {} have no entries"
                .format(path, unknown))
        checkpoint.ptps = ptps
        checkpoint.order = list(order)
        checkpoint.modules = modules
        return checkpoint

    @classmethod
    def load_or_create(cls, path, resume=False):
        """Open *path* for a campaign run.

        With *resume*, the file must exist and parse; without, any
        existing file is ignored (the campaign starts fresh and
        overwrites it at the first PTP boundary).
        """
        if resume:
            return cls.load(path)
        return cls(path)
