"""Stage 5 support — fault-coverage evaluation of (compacted) PTPs.

"In this stage, a final fault simulation is employed to evaluate the FC
features of the CPTPs in the new STL." (Section III stage 5.)

Observability follows the PTP's detection mechanism (Section II.C: "the
fault detection of a PTP is commonly performed using ... thread signatures
... out of the values on any observation point or memory output"):

* module-output observability for DU and SFU PTPs (results are stored
  straight to memory);
* signature-per-thread observability for SP PTPs (TPGEN / RAND fold their
  results into an SpT) — the MISR fold makes aliasing a real effect, which
  is what moves the SP FC numbers under compaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimulator


@dataclass
class FcEvaluation:
    """FC of one PTP against one module fault list.

    Attributes:
        ptp: the evaluated PTP.
        fc_percent: fault coverage over the full module fault list.
        detected: set of detected faults.
        cycles: the PTP's duration in clock cycles.
        pattern_count: patterns applied to the module.
        observability: "module" or "signature".
    """

    ptp: object
    fc_percent: float
    detected: set
    cycles: int
    pattern_count: int
    observability: str
    #: artifact-cache key of the tracing this evaluation used (None when
    #: no cache was attached).
    cache_key: str | None = None


def evaluate_fc(ptp, module, fault_list=None, gpu=None, observability=None,
                reverse_patterns=False, cache=None, scheduler=None,
                metrics=None, engine="event", incremental=None):
    """Fault-simulate *ptp* end to end and report its FC.

    Args:
        ptp: the PTP to evaluate.
        module: the target :class:`HardwareModule`.
        fault_list: faults to measure against (default: the module's full
            collapsed list — the denominator is always this list's size).
        gpu: optional shared :class:`~repro.gpu.gpu.Gpu`.
        observability: "module" or "signature"; default picks "signature"
            for PTPs with ``uses_signature`` and "module" otherwise.
        reverse_patterns: apply the pattern sequence in reverse order (the
            paper does this for SFU_IMM).
        cache: optional :class:`~repro.exec.cache.ArtifactCache` — the
            tracing is looked up/stored by content key (a repeated
            evaluation, e.g. the FC-guard's stage-5 re-run, skips the
            RTL/GL simulation entirely).
        scheduler: optional
            :class:`~repro.exec.scheduler.ShardedFaultScheduler` for the
            module-observability fault simulation (the signature fold is
            sequential — its per-thread MISR state does not shard).  A
            campaign-shared scheduler reuses its already-primed worker
            pool here; evaluation always simulates the *full* fault list,
            so broadcast drop-skipping never applies to it.
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`.
        engine: fault-propagation engine (``"event"``/``"cone"``/
            ``"batch"``); results are bit-identical either way.
        incremental: optional
            :class:`~repro.exec.incremental.IncrementalFaultSim` — the
            module-observability simulation then restores unchanged-cone
            detection state from the fault-state record keyed by
            (*ptp* name, *module*, *engine*) and re-simulates only the
            invalidated remainder.  Signature-observability evaluations
            ignore it (the MISR fold consumes result-bus value *diffs*,
            which the record does not carry).

    Returns:
        An :class:`FcEvaluation`.
    """
    from ..exec.cache import cached_logic_tracing

    if fault_list is None:
        fault_list = FaultList(module.netlist)
    if observability is None:
        observability = "signature" if ptp.uses_signature else "module"

    tracing, cache_key, __ = cached_logic_tracing(ptp, module, gpu, cache,
                                                  metrics)
    report = tracing.pattern_report
    if reverse_patterns:
        report = report.reversed()
    patterns = report.to_pattern_set()
    simulator = FaultSimulator(module.netlist, engine=engine)

    if observability == "signature":
        result, signature_detected = simulator.run_signature(
            patterns, fault_list, module.output_words["result"],
            report.thread_sequences())
        detected = {fault for fault, hit in zip(fault_list,
                                                signature_detected) if hit}
    elif incremental is not None:
        key = incremental.cache.fault_state_key(ptp.name, module, engine)
        result, __info = incremental.run(scheduler, simulator, patterns,
                                         fault_list, key)
        detected = set(result.detected_faults)
    elif scheduler is not None:
        result = scheduler.run(simulator, patterns, fault_list)
        detected = set(result.detected_faults)
    else:
        result = simulator.run(patterns, fault_list)
        detected = set(result.detected_faults)

    fc = 100.0 * len(detected) / len(fault_list) if len(fault_list) else 0.0
    return FcEvaluation(
        ptp=ptp,
        fc_percent=fc,
        detected=detected,
        cycles=tracing.cycles,
        pattern_count=patterns.count,
        observability=observability,
        cache_key=cache_key,
    )


def combined_fc(evaluations, total_faults):
    """FC of several PTPs taken together (union of detected faults)."""
    union = set()
    for evaluation in evaluations:
        union |= evaluation.detected
    return 100.0 * len(union) / total_faults if total_faults else 0.0
