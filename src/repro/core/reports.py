"""Text report writers/parsers (the tool's file interchange formats).

"The simulation reports, employed during the compaction process, are
generated as text files." (Section IV.)  Besides the tracing report
(:mod:`repro.gpu.trace`) and the VCDE pattern report
(:mod:`repro.core.patterns`), this module renders:

* the Fault Sim Report — per pattern: cc, activated faults, detected
  faults (stage 3);
* the Labeled PTP listing — per instruction: label + assembly (Fig. 2's
  output);
* a compaction summary block (one per PTP, Table II/III shaped).
"""

from __future__ import annotations

from ..errors import ReportError
from ..isa.disassembler import format_instruction
from .labeling import ESSENTIAL


def write_fault_sim_report(fault_result, pattern_report, dropping=True):
    """Render the stage-3 Fault Sim Report.

    One line per pattern: pattern index, clock cycle, number of faults
    detected at that pattern (first detections when *dropping*).
    """
    counts = fault_result.detections_per_pattern(dropping=dropping)
    ccs = pattern_report.cc_of_pattern()
    lines = ["#FSR module={} patterns={} faults={} detected={}".format(
        pattern_report.module.name, fault_result.pattern_count,
        len(fault_result.fault_list), fault_result.num_detected)]
    for k, (cc, count) in enumerate(zip(ccs, counts)):
        lines.append("{} {} {}".format(k, cc, count))
    return "\n".join(lines) + "\n"


def _parse_header(line, tag):
    """Parse a ``#TAG key=value ...`` header line; raises with line 1."""
    header = {}
    for part in line.split()[1:]:
        if "=" not in part:
            raise ReportError(
                "{} line 1: malformed header field {!r} (expected "
                "key=value)".format(tag, part))
        key, value = part.split("=", 1)
        header[key] = value
    return header


def parse_fault_sim_report(text):
    """Parse a Fault Sim Report; returns (header dict, rows).

    Rows are (pattern_index, cc, detected_count) tuples.

    Raises:
        ReportError: truncated or malformed input; the message carries
            the offending 1-based line number.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#FSR"):
        raise ReportError("missing FSR header")
    header = _parse_header(lines[0], "FSR")
    rows = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ReportError("FSR line {}: expected 3 fields, got {}"
                              .format(lineno, len(parts)))
        try:
            row = tuple(int(p) for p in parts)
        except ValueError as exc:
            raise ReportError("FSR line {}: non-integer field in {!r}"
                              .format(lineno, line)) from exc
        if any(value < 0 for value in row):
            raise ReportError("FSR line {}: negative field in {!r}"
                              .format(lineno, line))
        rows.append(row)
    if "patterns" in header:
        try:
            declared = int(header["patterns"])
        except ValueError as exc:
            raise ReportError("FSR line 1: non-integer patterns={!r}"
                              .format(header["patterns"])) from exc
        if len(rows) != declared:
            raise ReportError(
                "FSR truncated: header declares {} pattern row(s), found "
                "{} (last row at line {})".format(
                    declared, len(rows), len(lines)))
    return header, rows


def write_labeled_ptp(labeled):
    """Render the LPTP: ``<label> <pc> <assembly>`` per instruction."""
    lines = ["#LPTP name={} essential={} unessential={}".format(
        labeled.ptp.name, labeled.num_essential, labeled.num_unessential)]
    for pc, (label, instr) in enumerate(zip(labeled.labels,
                                            labeled.ptp.program)):
        flag = "E" if label == ESSENTIAL else "u"
        lines.append("{} {:5d}  {}".format(flag, pc,
                                           format_instruction(instr)))
    return "\n".join(lines) + "\n"


def parse_labeled_ptp(text):
    """Parse a Labeled PTP listing; returns (header dict, rows).

    Rows are (essential: bool, pc, assembly text) tuples.

    Raises:
        ReportError: truncated or malformed input; the message carries
            the offending 1-based line number.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#LPTP"):
        raise ReportError("missing LPTP header")
    header = _parse_header(lines[0], "LPTP")
    rows = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            raise ReportError("LPTP line {}: expected '<E|u> <pc> "
                              "<assembly>'".format(lineno))
        flag, pc_text, assembly = parts
        if flag not in ("E", "u"):
            raise ReportError("LPTP line {}: bad label flag {!r}".format(
                lineno, flag))
        try:
            pc = int(pc_text)
        except ValueError as exc:
            raise ReportError("LPTP line {}: non-integer pc {!r}".format(
                lineno, pc_text)) from exc
        if pc != len(rows):
            raise ReportError(
                "LPTP line {}: pc {} out of sequence (expected {})"
                .format(lineno, pc, len(rows)))
        rows.append((flag == "E", pc, assembly))
    for key in ("essential", "unessential"):
        if key not in header:
            continue
        try:
            declared = int(header[key])
        except ValueError as exc:
            raise ReportError("LPTP line 1: non-integer {}={!r}".format(
                key, header[key])) from exc
        counted = sum(1 for essential, __, __t in rows
                      if essential == (key == "essential"))
        if counted != declared:
            raise ReportError(
                "LPTP truncated: header declares {} {} instruction(s), "
                "found {}".format(declared, key, counted))
    return header, rows


def write_compaction_summary(outcome):
    """One PTP's compaction summary (the Table II/III row, as text)."""
    lines = [
        "PTP {}".format(outcome.ptp.name),
        "  size:     {} -> {} instructions ({:+.2f}%)".format(
            outcome.original_size, outcome.compacted_size,
            outcome.size_reduction_percent),
        "  duration: {} -> {} ccs ({:+.2f}%)".format(
            outcome.original_cycles, outcome.compacted_cycles,
            outcome.duration_reduction_percent),
    ]
    if outcome.fc_diff is not None:
        lines.append("  FC:       {:.2f}% -> {:.2f}% (diff {:+.2f})".format(
            outcome.original_fc, outcome.compacted_fc, outcome.fc_diff))
    lines.append("  compaction time: {:.2f}s ({} fault simulation{} total, "
                 "1 for the compaction itself)".format(
                     outcome.compaction_seconds, outcome.fault_simulations,
                     "s" if outcome.fault_simulations != 1 else ""))
    return "\n".join(lines) + "\n"


def write_campaign_summary(report):
    """Render a :class:`~repro.core.campaign.CampaignReport` as text.

    One line per PTP — status, then sizes and FC when available, or the
    failure diagnostic — plus the module's cumulative coverage footer.
    """
    lines = ["CAMPAIGN {} — {} PTP(s)".format(report.module_name,
                                              len(report.records))]
    for record in report.records:
        status = record.status
        if record.prior_status is not None:
            status = "{} ({} in interrupted run)".format(
                status, record.prior_status)
        detail = ""
        if record.failure is not None:
            detail = "  [{} at {}: {}]".format(
                record.failure.error_code, record.failure.stage or "?",
                record.failure.message)
        elif record.numbers.get("original_size"):
            numbers = record.numbers
            detail = "  size {} -> {}".format(numbers["original_size"],
                                              numbers["compacted_size"])
            if numbers.get("fc_diff") is not None:
                detail += ", FC diff {:+.2f}pp".format(numbers["fc_diff"])
        lines.append("  {:<12} {:<12}{}".format(record.name, status,
                                                detail))
    lines.append("  coverage: {:.2f}% ({}/{} faults dropped)".format(
        report.coverage_percent,
        report.total_faults - report.remaining_faults,
        report.total_faults))
    return "\n".join(lines) + "\n"
