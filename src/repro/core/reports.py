"""Text report writers/parsers (the tool's file interchange formats).

"The simulation reports, employed during the compaction process, are
generated as text files." (Section IV.)  Besides the tracing report
(:mod:`repro.gpu.trace`) and the VCDE pattern report
(:mod:`repro.core.patterns`), this module renders:

* the Fault Sim Report — per pattern: cc, activated faults, detected
  faults (stage 3);
* the Labeled PTP listing — per instruction: label + assembly (Fig. 2's
  output);
* a compaction summary block (one per PTP, Table II/III shaped).
"""

from __future__ import annotations

from ..errors import ReportError
from ..isa.disassembler import format_instruction
from .labeling import ESSENTIAL


def write_fault_sim_report(fault_result, pattern_report, dropping=True):
    """Render the stage-3 Fault Sim Report.

    One line per pattern: pattern index, clock cycle, number of faults
    detected at that pattern (first detections when *dropping*).
    """
    counts = fault_result.detections_per_pattern(dropping=dropping)
    ccs = pattern_report.cc_of_pattern()
    lines = ["#FSR module={} patterns={} faults={} detected={}".format(
        pattern_report.module.name, fault_result.pattern_count,
        len(fault_result.fault_list), fault_result.num_detected)]
    for k, (cc, count) in enumerate(zip(ccs, counts)):
        lines.append("{} {} {}".format(k, cc, count))
    return "\n".join(lines) + "\n"


def parse_fault_sim_report(text):
    """Parse a Fault Sim Report; returns (header dict, rows).

    Rows are (pattern_index, cc, detected_count) tuples.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#FSR"):
        raise ReportError("missing FSR header")
    header = dict(part.split("=", 1) for part in lines[0].split()[1:])
    rows = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ReportError("FSR line {}: expected 3 fields".format(
                lineno))
        rows.append(tuple(int(p) for p in parts))
    return header, rows


def write_labeled_ptp(labeled):
    """Render the LPTP: ``<label> <pc> <assembly>`` per instruction."""
    lines = ["#LPTP name={} essential={} unessential={}".format(
        labeled.ptp.name, labeled.num_essential, labeled.num_unessential)]
    for pc, (label, instr) in enumerate(zip(labeled.labels,
                                            labeled.ptp.program)):
        flag = "E" if label == ESSENTIAL else "u"
        lines.append("{} {:5d}  {}".format(flag, pc,
                                           format_instruction(instr)))
    return "\n".join(lines) + "\n"


def write_compaction_summary(outcome):
    """One PTP's compaction summary (the Table II/III row, as text)."""
    lines = [
        "PTP {}".format(outcome.ptp.name),
        "  size:     {} -> {} instructions ({:+.2f}%)".format(
            outcome.original_size, outcome.compacted_size,
            outcome.size_reduction_percent),
        "  duration: {} -> {} ccs ({:+.2f}%)".format(
            outcome.original_cycles, outcome.compacted_cycles,
            outcome.duration_reduction_percent),
    ]
    if outcome.fc_diff is not None:
        lines.append("  FC:       {:.2f}% -> {:.2f}% (diff {:+.2f})".format(
            outcome.original_fc, outcome.compacted_fc, outcome.fc_diff))
    lines.append("  compaction time: {:.2f}s ({} fault simulation{} total, "
                 "1 for the compaction itself)".format(
                     outcome.compaction_seconds, outcome.fault_simulations,
                     "s" if outcome.fault_simulations != 1 else ""))
    return "\n".join(lines) + "\n"
