"""Test-pattern report (the paper's VCDE-format interchange file).

Stage 2's gate-level simulation produces, per target module, "the sequence
of test patterns per clock cycle applied to the target module"; the paper
stores them in VCDE (extended value-change-dump) text files consumed by the
optimized fault simulation.  This module provides:

* :class:`PatternReport` — the in-memory pattern sequence with its cc /
  warp / thread bookkeeping, plus conversion to a netlist
  :class:`~repro.netlist.simulator.PatternSet`;
* a VCDE-like text serialization that round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReportError
from ..gpu.stimuli import StimulusRecord
from ..netlist.simulator import PatternSet


@dataclass
class PatternReport:
    """The per-module test-pattern sequence extracted from a PTP run.

    Attributes:
        module: the target :class:`HardwareModule`.
        records: :class:`~repro.gpu.stimuli.StimulusRecord` list in
            application order (the fault simulator consumes them 1:1).
    """

    module: object
    records: list

    @property
    def count(self):
        return len(self.records)

    def to_pattern_set(self):
        """Build the netlist :class:`PatternSet` (one pattern per record)."""
        patterns = PatternSet(self.module.netlist)
        words = self.module.input_words
        for record in self.records:
            patterns.add_words([(words[port], value)
                                for port, value in record.values])
        return patterns

    def reversed(self):
        """Pattern report with application order reversed (the paper
        applies SFU_IMM's patterns in reverse order in stage 3)."""
        return PatternReport(self.module, list(reversed(self.records)))

    def cc_of_pattern(self):
        """List: pattern index -> clock cycle."""
        return [record.cc for record in self.records]

    def thread_sequences(self):
        """Per-thread ordered pattern indices: {(block, thread): [k, ...]}.

        Used by the signature-per-thread observability model.
        """
        sequences = {}
        for k, record in enumerate(self.records):
            key = (record.block, record.thread)
            sequences.setdefault(key, []).append(k)
        return sequences


_HEADER = "#VCDE module={} ports={}"


def write_pattern_report(report):
    """Serialize a :class:`PatternReport` to VCDE-like text."""
    ports = sorted({port for record in report.records
                    for port, __ in record.values})
    if not ports:
        ports = sorted(report.module.input_words)
    lines = [_HEADER.format(report.module.name, ",".join(ports))]
    for record in report.records:
        values = dict(record.values)
        lines.append("{} {} {} {} {} {} {}".format(
            record.cc, record.block, record.warp, record.lane, record.pc,
            record.thread,
            " ".join("0x{:X}".format(values.get(p, 0)) for p in ports)))
    return "\n".join(lines) + "\n"


def parse_pattern_report(text, module):
    """Parse VCDE-like text back into a :class:`PatternReport`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#VCDE"):
        raise ReportError("missing VCDE header")
    header = lines[0].split()
    fields = dict(part.split("=", 1) for part in header[1:])
    if fields.get("module") != module.name:
        raise ReportError("pattern report is for module {!r}, not {!r}"
                          .format(fields.get("module"), module.name))
    ports = fields["ports"].split(",") if fields.get("ports") else []
    records = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 6 + len(ports):
            raise ReportError("VCDE line {}: expected {} fields, got {}"
                              .format(lineno, 6 + len(ports), len(parts)))
        try:
            cc, block, warp, lane, pc, thread = (int(p) for p in parts[:6])
            values = tuple(sorted(
                (port, int(parts[6 + i], 16))
                for i, port in enumerate(ports)))
        except ValueError as exc:
            raise ReportError("VCDE line {}: {}".format(lineno,
                                                          exc)) from exc
        records.append(StimulusRecord(cc, block, warp, lane, pc, values,
                                      thread))
    return PatternReport(module, records)
