"""Stage 2 — logic tracing.

"The logic tracing stage performs two logic simulations (one RTL and one
GL) with the PTPs in the microarchitectural description of the GPU":

* the RTL simulation, with the embedded hardware monitor, yields the
  *tracing report* (per-cc decoded instruction / PC / warp / cc);
* the GL simulation yields the *test pattern report* (per-cc module input
  patterns, VCDE).

Our cycle-level model produces both artifacts from one kernel execution —
the two paper simulations observe the same run at different abstraction
levels — exposed here as one :func:`run_logic_tracing` call returning both
reports plus the kernel duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompactionError
from ..gpu.gpu import Gpu
from ..gpu.stimuli import DecoderUnitCollector, SfuCollector, SpCoreCollector
from .patterns import PatternReport


@dataclass
class TracingResult:
    """Artifacts of the logic-tracing stage for one PTP.

    Attributes:
        trace: list of :class:`~repro.gpu.trace.TraceRecord` (the tracing
            report).
        pattern_report: the per-module :class:`PatternReport` (the VCDE
            test-pattern report).
        cycles: kernel duration in clock cycles (Table I 'Duration').
        instructions: dynamically executed instruction count.
        kernel_result: the raw :class:`~repro.gpu.gpu.KernelResult`.
    """

    trace: list
    pattern_report: object
    cycles: int
    instructions: int
    kernel_result: object


def collector_for(module):
    """StimulusCollector matching a target :class:`HardwareModule`."""
    if module.name == "decoder_unit":
        return DecoderUnitCollector()
    if module.name == "sp_core":
        return SpCoreCollector(module.params["width"])
    if module.name == "sfu":
        return SfuCollector(module.params["width"])
    raise CompactionError("no collector for module {!r}".format(module.name))


def run_logic_tracing(ptp, module, gpu=None):
    """Run stage 2 for *ptp* against target *module*.

    Returns a :class:`TracingResult`.
    """
    if module.name != ptp.target:
        raise CompactionError(
            "PTP {!r} targets {!r}, but module is {!r}".format(
                ptp.name, ptp.target, module.name))
    gpu = gpu or Gpu()
    collector = collector_for(module)
    result = gpu.run_kernel(ptp.program, ptp.kernel, collectors=[collector],
                            global_image=ptp.global_image)
    report = PatternReport(module, result.stimuli[module.name])
    return TracingResult(
        trace=result.trace,
        pattern_report=report,
        cycles=result.cycles,
        instructions=result.instructions,
        kernel_result=result,
    )
