"""Basic blocks, control-flow graph, and natural-loop detection.

Stage 1 of the compaction method partitions each PTP into Basic Blocks —
"a group of instructions that are always executed in sequence (no in/out
jumps or loops in the BB)"; in the GPU case, "a group of embarrassingly
parallel plain sequences of SIMD or SIMT instructions" (Section III) — and
analyzes the control flow graph to find loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Fmt, Op, info


@dataclass
class BasicBlock:
    """One basic block: instruction indices ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: list = field(default_factory=list)
    predecessors: list = field(default_factory=list)

    def __contains__(self, pc):
        return self.start <= pc < self.end

    @property
    def size(self):
        return self.end - self.start


def _branch_targets(instructions):
    """pc -> target for PC-redirecting instructions (BRA / CAL)."""
    targets = {}
    for pc, instr in enumerate(instructions):
        if instr.op in (Op.BRA, Op.CAL):
            targets[pc] = instr.target
    return targets


def find_leaders(instructions):
    """Instruction indices that start a basic block."""
    if not instructions:
        return []
    leaders = {0}
    for pc, instr in enumerate(instructions):
        if instr.op in (Op.BRA, Op.CAL):
            leaders.add(instr.target)
            if pc + 1 < len(instructions):
                leaders.add(pc + 1)
        elif instr.op in (Op.RET, Op.EXIT):
            if pc + 1 < len(instructions):
                leaders.add(pc + 1)
        elif instr.op is Op.SSY:
            # The SSY target is the reconvergence point: a JOIN that both
            # divergent paths reach, hence a control join = block leader.
            leaders.add(instr.target)
    return sorted(leaders)


@dataclass
class ControlFlowGraph:
    """CFG over the basic blocks of one instruction sequence."""

    blocks: list
    block_of_pc: list  # pc -> block index

    def block_at(self, pc):
        return self.blocks[self.block_of_pc[pc]]

    @property
    def num_blocks(self):
        return len(self.blocks)


def build_cfg(instructions):
    """Build the :class:`ControlFlowGraph` of *instructions*."""
    instructions = list(instructions)
    leaders = find_leaders(instructions)
    blocks = []
    for i, start in enumerate(leaders):
        end = leaders[i + 1] if i + 1 < len(leaders) else len(instructions)
        blocks.append(BasicBlock(index=i, start=start, end=end))

    block_of_pc = [0] * len(instructions)
    for block in blocks:
        for pc in range(block.start, block.end):
            block_of_pc[pc] = block.index

    for block in blocks:
        if block.size == 0:
            continue
        last_pc = block.end - 1
        last = instructions[last_pc]
        succs = []
        if last.op is Op.BRA:
            succs.append(block_of_pc[last.target])
            if last.pred is not None and last_pc + 1 < len(instructions):
                succs.append(block_of_pc[last_pc + 1])
        elif last.op is Op.CAL:
            succs.append(block_of_pc[last.target])
            # The call returns to the fall-through block.
            if last_pc + 1 < len(instructions):
                succs.append(block_of_pc[last_pc + 1])
        elif last.op in (Op.EXIT, Op.RET):
            pass
        elif last_pc + 1 < len(instructions):
            succs.append(block_of_pc[last_pc + 1])
        for succ in succs:
            if succ not in block.successors:
                block.successors.append(succ)
                blocks[succ].predecessors.append(block.index)
    return ControlFlowGraph(blocks=blocks, block_of_pc=block_of_pc)


def find_back_edges(cfg):
    """(tail, head) block-index pairs forming loop back edges (DFS)."""
    back_edges = []
    color = ["white"] * cfg.num_blocks  # white / grey / black
    stack = [(0, iter(cfg.blocks[0].successors))] if cfg.blocks else []
    color[0] = "grey" if cfg.blocks else None
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if color[succ] == "grey":
                back_edges.append((node, succ))
            elif color[succ] == "white":
                color[succ] = "grey"
                stack.append((succ, iter(cfg.blocks[succ].successors)))
                advanced = True
                break
        if not advanced:
            color[node] = "black"
            stack.pop()
    return back_edges


def natural_loop(cfg, tail, head):
    """Block indices of the natural loop for back edge *tail* -> *head*.

    Standard worklist algorithm: the body is the head plus every block that
    reaches the tail without passing through the head (the head's own
    predecessors are never explored, which also handles single-block loops
    where ``tail == head``).
    """
    body = {head}
    worklist = [tail]
    while worklist:
        node = worklist.pop()
        if node in body:
            continue
        body.add(node)
        worklist.extend(cfg.blocks[node].predecessors)
    return body


def find_loops(cfg):
    """List of loops, each a dict with 'head', 'tail', and 'body' keys."""
    loops = []
    for tail, head in find_back_edges(cfg):
        loops.append({
            "head": head,
            "tail": tail,
            "body": natural_loop(cfg, tail, head),
        })
    return loops


def defining_instructions(instructions, reg):
    """Instruction indices that may write GPR *reg*."""
    return [pc for pc, instr in enumerate(instructions)
            if reg in instr.regs_written()]


def is_immediate_only_def(instructions, pc, _depth=0):
    """True when the value written at *pc* derives only from immediates.

    Conservative recursive check used by the parametric-loop analysis: a
    definition is immediate-only when the instruction is MOV32I, or all of
    its source registers are themselves defined solely by immediate-only
    definitions (bounded recursion; anything else, including memory loads
    and special registers, is runtime-parametric).
    """
    instr = instructions[pc]
    if instr.op is Op.MOV32I:
        return True
    if _depth > 8:
        return False
    if info(instr.op).fmt in (Fmt.LD, Fmt.CONSTLD, Fmt.RSREG):
        return False
    reads = instr.regs_read()
    if not reads and instr.op is not Op.MOV32I:
        return False
    for reg in reads:
        defs = [d for d in defining_instructions(instructions, reg)
                if d < pc]
        if not defs:
            return False
        if not all(is_immediate_only_def(instructions, d, _depth + 1)
                   for d in defs):
            return False
    return True
