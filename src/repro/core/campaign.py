"""Resilient multi-PTP compaction campaigns.

:class:`CompactionCampaign` wraps a
:class:`~repro.core.pipeline.CompactionPipeline` and drives a whole STL
through it the way :meth:`~CompactionPipeline.compact_stl` does, but a
campaign survives what would abort the plain loop:

* **per-PTP failure isolation** — any :class:`~repro.errors.ReproError`
  raised while compacting one PTP (including watchdog breaches, below)
  is caught and recorded as a structured
  :class:`~repro.errors.PtpFailure`; the original PTP stays in the STL,
  so the STL never loses coverage and the campaign continues;
* a **watchdog** — a wall-clock budget (``ptp_timeout``) checked at
  every pipeline stage boundary, plus a clock-cycle budget
  (``max_trace_cycles``) on the traced kernel duration, both raised as
  :class:`~repro.errors.WatchdogError` subtypes and isolated like any
  other per-PTP failure;
* an **FC-regression guard** — when stage-5 evaluation reports an
  ``fc_diff`` below ``-max_fc_drop`` percentage points, the compaction
  is *rolled back*: the original PTP is retained and the event recorded,
  enforcing the paper's "almost preserves FC" claim as an invariant
  (detected faults stay dropped — they were detected by the original
  PTP's patterns, and the original PTP remains in the STL);
* **checkpoint/resume** — after every PTP the campaign atomically
  persists the per-PTP outcomes plus the module's fault-dropping state;
  a resumed campaign skips completed PTPs, re-applies their compacted
  programs to the STL, and restores the fault list bit-identically,
  preserving the ordering-sensitive MEM-after-IMM / RAND-after-TPGEN
  dropping semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import CampaignError, CycleBudgetError, PtpFailure, PtpTimeoutError, ReproError
from ..exec.scheduler import ShardedFaultScheduler
from .pipeline import CompactionPipeline

#: Per-PTP campaign statuses (the summary report's vocabulary).
COMPACTED = "compacted"
ROLLED_BACK = "rolled-back"
FAILED = "failed"
SKIPPED = "skipped"


class Watchdog:
    """Stage-boundary watchdog, usable directly as a pipeline stage hook.

    The pipeline is pure Python, so the watchdog cannot preempt a stage
    mid-flight; it checks the wall-clock budget on entry to every stage
    and the cycle budget as soon as tracing reports the kernel duration.

    Args:
        timeout: wall-clock seconds allowed per PTP (None: unlimited).
        max_trace_cycles: clock-cycle cap on the traced kernel duration
            (None: unlimited) — a PTP whose kernel runs away (e.g. a
            corrupted CNTRL loop bound) breaches this before its fault
            simulation is attempted.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, timeout=None, max_trace_cycles=None,
                 clock=time.monotonic):
        self.timeout = timeout
        self.max_trace_cycles = max_trace_cycles
        self.clock = clock
        self.stage = None
        self._deadline = None

    def start(self):
        """Arm the wall-clock budget for one PTP."""
        self.stage = None
        self._deadline = (self.clock() + self.timeout
                          if self.timeout is not None else None)

    def __call__(self, stage, **info):
        self.stage = stage
        if self._deadline is not None and self.clock() > self._deadline:
            raise PtpTimeoutError(
                "PTP compaction exceeded its {}s budget (entering stage "
                "{})".format(self.timeout, stage), stage=stage)
        cycles = info.get("cycles")
        if (self.max_trace_cycles is not None and cycles is not None
                and cycles > self.max_trace_cycles):
            raise CycleBudgetError(
                "traced kernel ran {} cycles, budget is {}".format(
                    cycles, self.max_trace_cycles), stage="tracing")


@dataclass
class PtpRecord:
    """One PTP's campaign outcome (one row of the summary report).

    Attributes:
        name: PTP name.
        status: :data:`COMPACTED`, :data:`ROLLED_BACK`, :data:`FAILED`
            or :data:`SKIPPED` (completed by a previous, resumed run).
        outcome: the :class:`~repro.core.pipeline.CompactionOutcome`
            (None for failed PTPs and for PTPs skipped on resume).
        failure: the :class:`~repro.errors.PtpFailure` (failed only).
        numbers: summary numbers (sizes, cycles, FC, fc_diff) — survives
            checkpointing, unlike the full outcome.
        prior_status: for :data:`SKIPPED` records, the status the PTP
            reached in the interrupted run.
    """

    name: str
    status: str
    outcome: object = None
    failure: PtpFailure | None = None
    numbers: dict = field(default_factory=dict)
    prior_status: str | None = None

    @property
    def kept_original(self):
        """True when the original PTP (not a CPTP) is in the final STL."""
        if self.status == SKIPPED:
            return self.prior_status != COMPACTED
        return self.status != COMPACTED


@dataclass
class CampaignReport:
    """Everything :meth:`CompactionCampaign.run` produced.

    Attributes:
        module_name: the target module the campaign compacted for.
        records: per-PTP :class:`PtpRecord`, in STL order.
        total_faults / remaining_faults / coverage_percent: the module
            fault-report state after the campaign.
    """

    module_name: str
    records: list
    total_faults: int = 0
    remaining_faults: int = 0
    coverage_percent: float = 0.0

    def by_status(self, status):
        return [r for r in self.records if r.status == status]

    @property
    def num_failed(self):
        return len(self.by_status(FAILED))

    @property
    def num_compacted(self):
        return len(self.by_status(COMPACTED))


def _outcome_numbers(outcome):
    numbers = {
        "original_size": outcome.original_size,
        "compacted_size": outcome.compacted_size,
        "original_cycles": outcome.original_cycles,
        "compacted_cycles": outcome.compacted_cycles,
        "original_fc": outcome.original_fc,
        "compacted_fc": outcome.compacted_fc,
        "fc_diff": outcome.fc_diff,
        "compaction_seconds": outcome.compaction_seconds,
        "newly_dropped_faults": outcome.newly_dropped_faults,
    }
    if outcome.verification is not None:
        numbers["verify_errors"] = len(outcome.verification.errors)
        numbers["verify_warnings"] = len(outcome.verification.warnings)
    return numbers


class CompactionCampaign:
    """Resilient campaign driver for one pipeline (one target module).

    Args:
        pipeline: the :class:`CompactionPipeline` to drive.
        max_fc_drop: FC-regression guard threshold in percentage points
            (None disables the guard; ``0.0`` rolls back any FC loss).
            Requires stage-5 evaluation — with ``evaluate=False`` the
            guard has nothing to check and is inert.
        ptp_timeout: per-PTP wall-clock budget in seconds (None: off).
        max_trace_cycles: per-PTP traced-kernel cycle budget (None: off).
        keep_going: continue past failed PTPs (the default); False
            re-raises the first failure as a :class:`CampaignError`
            after recording and checkpointing it.
        checkpoint: optional
            :class:`~repro.core.checkpoint.CampaignCheckpoint` to
            persist progress into (saved after every PTP).
        clock: monotonic time source for the watchdog (test hook).
    """

    def __init__(self, pipeline, max_fc_drop=None, ptp_timeout=None,
                 max_trace_cycles=None, keep_going=True, checkpoint=None,
                 clock=time.monotonic):
        if max_fc_drop is not None and max_fc_drop < 0:
            raise CampaignError(
                "max_fc_drop must be >= 0 percentage points (got {})"
                .format(max_fc_drop))
        self.pipeline = pipeline
        self.max_fc_drop = max_fc_drop
        self.keep_going = keep_going
        self.checkpoint = checkpoint
        self.watchdog = Watchdog(timeout=ptp_timeout,
                                 max_trace_cycles=max_trace_cycles,
                                 clock=clock)

    @property
    def module_name(self):
        return self.pipeline.module.name

    @property
    def metrics(self):
        """The pipeline's :class:`~repro.exec.metrics.RunMetrics`
        accumulator (None when the pipeline runs without metrics)."""
        return self.pipeline.metrics

    # -- resume ----------------------------------------------------------

    def _restore(self):
        """Restore the pipeline's fault-dropping state from the
        checkpoint (no-op when the checkpoint has none for this
        module — e.g. the interrupted run died before this module's
        first PTP)."""
        state = self.checkpoint.module_state(self.module_name)
        if state is not None:
            self.pipeline.fault_report.restore_state(state)

    def _skip(self, stl, ptp):
        """Re-apply one checkpointed PTP; returns its SKIPPED record."""
        entry = self.checkpoint.ptp_entry(ptp.name)
        prior = entry["status"]
        if prior == COMPACTED:
            compacted = self.checkpoint.compacted_ptp(ptp.name)
            if compacted is None:
                raise CampaignError(
                    "checkpoint marks {!r} compacted but holds no "
                    "compacted program".format(ptp.name))
            stl.replace(ptp.name, compacted)
        failure = (PtpFailure.from_dict(entry["failure"])
                   if entry.get("failure") else None)
        return PtpRecord(name=ptp.name, status=SKIPPED,
                         numbers=dict(entry.get("numbers", {})),
                         failure=failure, prior_status=prior)

    # -- one PTP ---------------------------------------------------------

    def _compact_one(self, stl, ptp, reverse_patterns, evaluate):
        self.watchdog.start()
        try:
            outcome = self.pipeline.compact(
                ptp, reverse_patterns=reverse_patterns, evaluate=evaluate,
                stage_hook=self.watchdog)
        except ReproError as exc:
            context = {"module": self.module_name,
                       "ptp_timeout": self.watchdog.timeout,
                       "max_trace_cycles": self.watchdog.max_trace_cycles}
            # A strict verification failure carries its report; persist
            # the diagnostics so the checkpoint explains the rejection.
            report = getattr(exc, "report", None)
            if report is not None:
                context["diagnostics"] = [d.to_dict()
                                          for d in report.diagnostics]
            failure = PtpFailure.from_exception(
                ptp.name, exc, stage=self.watchdog.stage, context=context)
            return PtpRecord(name=ptp.name, status=FAILED, failure=failure)

        numbers = _outcome_numbers(outcome)
        if (self.max_fc_drop is not None and outcome.fc_diff is not None
                and outcome.fc_diff < -self.max_fc_drop):
            return PtpRecord(name=ptp.name, status=ROLLED_BACK,
                             outcome=outcome, numbers=numbers)
        stl.replace(ptp.name, outcome.compacted)
        return PtpRecord(name=ptp.name, status=COMPACTED, outcome=outcome,
                         numbers=numbers)

    def _persist(self, record):
        if self.checkpoint is None:
            return
        compacted = (record.outcome.compacted
                     if record.status == COMPACTED else None)
        # Checkpoint the artifact content keys this PTP touched, plus the
        # fingerprint of the dropping state it left behind — a resumed
        # campaign reuses the artifacts and can verify it restored the
        # exact fault list they were produced under.
        cache_keys = (dict(record.outcome.cache_keys)
                      if record.outcome is not None else {})
        cache_keys["fault_state"] = self.pipeline.fault_report.fingerprint()
        diagnostics = None
        if (record.outcome is not None
                and record.outcome.verification is not None):
            diagnostics = [d.to_dict() for d
                           in record.outcome.verification.diagnostics]
        elif record.failure is not None:
            # A strict-gate rejection has no outcome; its findings
            # travel in the failure context instead.
            diagnostics = record.failure.context.get("diagnostics")
        self.checkpoint.record_ptp(record.name, record.status,
                                   numbers=record.numbers,
                                   failure=record.failure,
                                   compacted=compacted,
                                   cache_keys=cache_keys,
                                   diagnostics=diagnostics)
        self.checkpoint.record_module_state(
            self.module_name, self.pipeline.fault_report.state_dict())
        self.checkpoint.save()

    # -- the campaign ----------------------------------------------------

    def run(self, stl, reverse_for=("SFU_IMM",), evaluate=True,
            resume=False):
        """Compact every PTP of *stl* targeting this module, resiliently.

        Compacted PTPs replace their originals inside *stl* (as
        :meth:`CompactionPipeline.compact_stl` does); rolled-back and
        failed PTPs keep their originals.  Returns a
        :class:`CampaignReport`.

        With *resume* (requires a checkpoint), PTPs already recorded in
        the checkpoint are skipped and their checkpointed results
        re-applied; the fault-dropping state is restored first so the
        remaining PTPs see exactly the fault list an uninterrupted run
        would have shown them.
        """
        if resume:
            if self.checkpoint is None:
                raise CampaignError("resume requires a checkpoint")
            self._restore()
        records = []
        for ptp in list(stl.targeting(self.module_name)):
            if resume and self.checkpoint.has_ptp(ptp.name):
                records.append(self._skip(stl, ptp))
                continue
            record = self._compact_one(stl, ptp,
                                       ptp.name in reverse_for, evaluate)
            records.append(record)
            self._persist(record)
            if record.status == FAILED and not self.keep_going:
                raise CampaignError(
                    "campaign aborted (fail-fast) — {}".format(
                        record.failure.describe()))
        report = self.pipeline.fault_report
        return CampaignReport(
            module_name=self.module_name,
            records=records,
            total_faults=report.total_faults,
            remaining_faults=report.remaining_faults,
            coverage_percent=report.coverage(),
        )


def run_stl_campaign(stl, modules, gpu=None, checkpoint=None, resume=False,
                     reverse_for=("SFU_IMM",), evaluate=True, jobs=None,
                     cache=None, metrics=None, engine="event",
                     verify="warn", scheduler=None, chunk_size=None,
                     pool=True, static_prune="off", rank=None,
                     incremental="off", **kwargs):
    """Run one campaign per target module of *stl*, sharing a checkpoint.

    Modules are processed in order of first appearance in the STL, each
    through its own fresh :class:`CompactionPipeline`; the shared
    checkpoint keys fault-dropping state by module name, so a kill at
    any PTP boundary resumes every module correctly.  ONE
    :class:`~repro.exec.scheduler.ShardedFaultScheduler` (and therefore
    one persistent worker pool) spans every module and PTP of the
    campaign — workers are spawned once, primed per netlist context, and
    torn down when the last module finishes.

    Args:
        stl: the :class:`~repro.stl.ptp.SelfTestLibrary` (mutated).
        modules: mapping of module name to built
            :class:`HardwareModule` — must cover every PTP target.
        gpu: optional shared GPU model.
        checkpoint / resume: as for :class:`CompactionCampaign`.
        jobs: stage-3/5 fault-simulation worker processes, shared by
            every per-module pipeline (None: ``$REPRO_JOBS`` or 1).
        cache: optional shared
            :class:`~repro.exec.cache.ArtifactCache`.
        metrics: optional shared
            :class:`~repro.exec.metrics.RunMetrics` accumulating over
            the whole multi-module campaign.
        engine: fault-propagation engine for every per-module pipeline
            (``"event"``/``"cone"``/``"batch"``; bit-identical results).
        verify: static-verification mode for every per-module pipeline
            (``"strict"``/``"warn"``/``"off"``); a strict failure is
            isolated like any other per-PTP error and the diagnostics
            land in the checkpoint.
        scheduler: optional caller-owned scheduler (the campaign then
            leaves it open on return); without one a campaign-lifetime
            scheduler is built from *jobs*/*chunk_size*/*pool* and closed
            in a ``finally``.
        chunk_size: faults per streamed pool chunk (None: dynamic).
        pool: False disables the worker pool (every run inline).
        static_prune: static-testability pruning mode for every
            per-module pipeline (``"off"``/``"safe"``/``"strict"``; see
            :class:`CompactionPipeline`).
        rank: stage-3 worklist ordering for every per-module pipeline
            (``None``/``"none"``/``"scoap"``).
        incremental: cross-run fault-state restore mode for every
            per-module pipeline (``"off"``/``"on"``/``"strict"``; see
            :class:`CompactionPipeline` and
            :mod:`repro.exec.incremental`).  A re-entered campaign —
            same cache directory, edited STL — then restores detection
            state for every fault whose cone-support pattern values are
            unchanged and re-simulates only the invalidated remainder;
            requires *cache*.
        **kwargs: forwarded to every :class:`CompactionCampaign`.

    Returns:
        List of per-module :class:`CampaignReport`, in campaign order.
    """
    targets = []
    for ptp in stl:
        if ptp.target not in targets:
            targets.append(ptp.target)
    missing = [t for t in targets if t not in modules]
    if missing:
        raise CampaignError("no module build for target(s) {}".format(
            ", ".join(sorted(missing))))
    owns_scheduler = scheduler is None
    if owns_scheduler:
        scheduler = ShardedFaultScheduler(jobs=jobs, metrics=metrics,
                                          chunk_size=chunk_size, pool=pool)
    reports = []
    try:
        for target in targets:
            campaign = CompactionCampaign(
                CompactionPipeline(modules[target], gpu=gpu, jobs=jobs,
                                   cache=cache, metrics=metrics,
                                   engine=engine, verify=verify,
                                   scheduler=scheduler,
                                   static_prune=static_prune, rank=rank,
                                   incremental=incremental),
                checkpoint=checkpoint, **kwargs)
            reports.append(campaign.run(stl, reverse_for=reverse_for,
                                        evaluate=evaluate, resume=resume))
    finally:
        if owns_scheduler:
            scheduler.close()
    return reports
