"""Stage 1 — PTP partitioning: Admissible Regions for Compaction (ARCs).

"The identification of the ARC follows three steps.  The first step defines
and finds the Basic Blocks of each PTP. ...  The second step analyzes the
control flow graph of the PTP and incorporates in the ARC all BBs in the
PTP except those BBs involved in parametric loops whose iterative parameter
is calculated by any BB inside or outside the loop.  Once the ARCs are
identified and chosen, the third step ... extracts these regions from the
PTPs.  In contrast, other regions of the PTPs are discarded as candidates
for compaction and remain unaffected." (Section III)

A loop is *parametric* when the register steering its back-edge branch
condition is computed at run time (memory loads, special registers, or
values derived from them) rather than from immediate constants only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from .cfg import build_cfg, defining_instructions, find_loops, is_immediate_only_def


@dataclass
class PartitionResult:
    """Outcome of the partitioning stage for one PTP.

    Attributes:
        cfg: the :class:`~repro.core.cfg.ControlFlowGraph`.
        admissible_blocks: BB indices inside the ARC.
        inadmissible_blocks: BB indices excluded (parametric loops).
        loops: the detected loops (as returned by
            :func:`~repro.core.cfg.find_loops`), each annotated with a
            ``"parametric"`` flag.
    """

    cfg: object
    admissible_blocks: set
    inadmissible_blocks: set
    loops: list = field(default_factory=list)

    @property
    def arc_instruction_count(self):
        return sum(self.cfg.blocks[b].size for b in self.admissible_blocks)

    @property
    def total_instruction_count(self):
        return sum(block.size for block in self.cfg.blocks)

    def arc_percent(self):
        """Static ARC share in percent (the paper's Table I 'ARC (%)')."""
        total = self.total_instruction_count
        if total == 0:
            return 0.0
        return 100.0 * self.arc_instruction_count / total

    def is_admissible_pc(self, pc):
        return self.cfg.block_of_pc[pc] in self.admissible_blocks


def _loop_condition_registers(instructions, cfg, loop):
    """Registers steering the loop's back-edge branch."""
    tail_block = cfg.blocks[loop["tail"]]
    if tail_block.size == 0:
        return set()
    branch = instructions[tail_block.end - 1]
    if branch.op is not Op.BRA or branch.pred is None:
        return set()
    pred_index = branch.pred.index
    # Find ISETP definitions of that predicate inside the loop.
    registers = set()
    for block_index in loop["body"]:
        block = cfg.blocks[block_index]
        for pc in range(block.start, block.end):
            instr = instructions[pc]
            if instr.op is Op.ISETP and instr.dst == pred_index:
                registers.update(instr.regs_read())
    return registers


def _is_parametric(instructions, cfg, loop):
    """A loop is parametric when any steering register has a runtime def."""
    registers = _loop_condition_registers(instructions, cfg, loop)
    if not registers:
        # Unconditional back edge (infinite loop) or untracked condition:
        # be conservative and treat as parametric.
        return True
    for reg in registers:
        for def_pc in defining_instructions(instructions, reg):
            if not is_immediate_only_def(instructions, def_pc):
                return True
    return False


def partition_ptp(ptp):
    """Run stage 1 on *ptp*; returns a :class:`PartitionResult`."""
    instructions = list(ptp.program)
    cfg = build_cfg(instructions)
    loops = find_loops(cfg)

    inadmissible = set()
    for loop in loops:
        loop["parametric"] = _is_parametric(instructions, cfg, loop)
        if loop["parametric"]:
            inadmissible.update(loop["body"])

    admissible = {b.index for b in cfg.blocks} - inadmissible
    return PartitionResult(
        cfg=cfg,
        admissible_blocks=admissible,
        inadmissible_blocks=inadmissible,
        loops=loops,
    )
