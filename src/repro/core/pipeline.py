"""The five-stage compaction pipeline (Fig. 1 of the paper).

:class:`CompactionPipeline` owns one target module and its persistent
fault-list report; :meth:`CompactionPipeline.compact` drives one PTP
through:

1. PTP partitioning (ARC identification);
2. logic tracing (tracing report + VCDE pattern report);
3. ONE optimized fault simulation + instruction labeling;
4. PTP reduction (SB removal, data relocation);
5. reassembly support (final FC evaluation of original vs compacted PTP).

Fault dropping is applied across PTPs targeting the same module: the
detected faults of each compacted PTP are removed from the module's fault
list before the next PTP's fault simulation (this ordering sensitivity is
the paper's MEM-after-IMM and RAND-after-TPGEN effect).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..errors import CompactionError, VerificationError
from ..exec.cache import cached_logic_tracing
from ..exec.incremental import IncrementalFaultSim, validate_incremental_mode
from ..exec.scheduler import ShardedFaultScheduler
from ..faults.dropping import FaultListReport
from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimulator
from ..gpu.gpu import Gpu
from .fc_eval import evaluate_fc
from .labeling import label_instructions
from .partition import partition_ptp
from .reduction import reduce_ptp


#: Pipeline stage names, in execution order.  ``stage_hook`` callbacks and
#: :class:`~repro.errors.PtpFailure.stage` use these exact strings.
#: ``verify`` is the static-verification gate between reduction and the
#: stage-5 evaluation (skipped when the pipeline runs with
#: ``verify="off"``).
STAGES = ("partition", "tracing", "fault_simulation", "reduction",
          "verify", "evaluation")

#: Accepted values of the pipeline's ``verify`` mode.
VERIFY_MODES = ("strict", "warn", "off")


@dataclass
class CompactionOutcome:
    """Everything produced by compacting one PTP.

    Size/duration/FC fields mirror the columns of Tables II and III.
    """

    ptp: object                     # original PTP
    compacted: object               # the CPTP
    partition: object = None
    labeled: object = None
    reduction: object = None
    tracing: object = None
    fault_result: object = None
    #: the static verifier's :class:`~repro.verify.VerificationReport`
    #: over the (original, compacted) pair (None with ``verify="off"``).
    verification: object = None

    original_size: int = 0
    compacted_size: int = 0
    original_cycles: int = 0
    compacted_cycles: int = 0
    original_fc: float | None = None
    compacted_fc: float | None = None
    compaction_seconds: float = 0.0
    fault_simulations: int = 0
    newly_dropped_faults: int = 0
    #: artifact-cache keys touched by this compaction (name -> SHA-256),
    #: e.g. ``{"tracing": ..., "evaluation_compacted": ...}``; campaign
    #: checkpoints persist them so resumed runs reuse the artifacts.
    cache_keys: dict = field(default_factory=dict)

    @property
    def size_reduction_percent(self):
        """Size change in percent of the original size (Table II/III
        column 3).  Sign convention: negative means the CPTP is *smaller*
        (a -73% value reads "73% fewer instructions"); 0.0 means no
        change.  Positive values cannot be produced by the pipeline."""
        if self.original_size == 0:
            return 0.0
        return -100.0 * (self.original_size - self.compacted_size) / (
            self.original_size)

    @property
    def duration_reduction_percent(self):
        """Duration change in percent of the original clock-cycle count.
        Same sign convention as :attr:`size_reduction_percent`: negative
        means the CPTP runs *shorter*."""
        if self.original_cycles == 0:
            return 0.0
        return -100.0 * (self.original_cycles - self.compacted_cycles) / (
            self.original_cycles)

    @property
    def fc_diff(self):
        """Compacted minus original FC, in percentage points (negative
        means the compaction *lost* coverage); None unless stage 5 ran."""
        if self.original_fc is None or self.compacted_fc is None:
            return None
        return self.compacted_fc - self.original_fc


class CompactionPipeline:
    """Compaction tool for PTPs targeting one GPU module.

    Args:
        module: the target :class:`HardwareModule`.
        gpu: optional shared GPU model.
        collapse: build the collapsed module fault list (the default).
        jobs: worker processes for stage-3/5 fault simulation (None:
            ``$REPRO_JOBS`` or sequential; sharded results are
            bit-identical to sequential ones).
        cache: optional :class:`~repro.exec.cache.ArtifactCache`
            memoizing stage-2 tracing artifacts across runs.
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`
            accumulating stage timings, throughput, and cache counters.
        engine: stage-3/5 fault-propagation engine, ``"event"`` (default),
            ``"cone"``, or the vectorized ``"batch"`` — bit-identical
            results either way (see :mod:`repro.faults.propagate` and
            :mod:`repro.faults.batch`).
        scheduler: optional shared
            :class:`~repro.exec.scheduler.ShardedFaultScheduler` — a
            campaign passes one scheduler to every per-module pipeline so
            the worker pool (and its primed netlist/pattern state)
            persists across modules and PTPs.  The caller that built the
            scheduler owns its lifetime; without one the pipeline builds
            its own from *jobs*/*chunk_size*/*pool* and :meth:`close`
            shuts it down.
        chunk_size: faults per streamed pool chunk (None: dynamic);
            ignored when *scheduler* is given.
        pool: False forces every fault simulation inline (the CLI's
            ``--no-pool``); ignored when *scheduler* is given.
        verify: static-verification gate on the reduced PTP, run between
            stage 4 and stage 5 (:func:`repro.verify.verify_compaction`):
            ``"warn"`` (default) records the diagnostics on the outcome,
            ``"strict"`` additionally raises
            :class:`~repro.errors.VerificationError` on error-severity
            diagnostics *before* the fault report is mutated, ``"off"``
            skips verification entirely.
        static_prune: static-testability pruning mode
            (:data:`repro.testability.analysis.PRUNE_MODES`).  ``"safe"``
            moves the provably-untestable faults into the report's
            untestable bucket before any simulation — they skip stage-3
            chunking entirely and leave the FC denominator; ``"strict"``
            additionally re-simulates every pruned fault per PTP under
            the differential oracle and raises
            :class:`~repro.errors.TestabilityError` if one is detected.
            ``"off"`` (default) is the seed behavior, bit for bit.
        rank: stage-3 worklist ordering
            (:data:`repro.testability.analysis.RANK_MODES`); ``"scoap"``
            simulates easiest-to-detect faults first so fault dropping
            fires earlier.  A pure permutation: every detected set is
            unchanged.
        incremental: cross-run fault-state restore mode
            (:data:`repro.exec.incremental.INCREMENTAL_MODES`).  ``"on"``
            stores a per-(PTP, module, engine) fault-state record in the
            artifact cache after every module-observability fault
            simulation and, on the next run, restores detection state
            verbatim for faults whose cone-support pattern values are
            unchanged, re-simulating only the invalidated remainder;
            ``"strict"`` additionally re-simulates everything and raises
            :class:`~repro.errors.IncrementalError` unless the restored
            result is bit-identical (the soundness oracle).  Requires a
            *cache*; ``"off"`` (default) is the seed behavior.
    """

    def __init__(self, module, gpu=None, collapse=True, jobs=None,
                 cache=None, metrics=None, engine="event", verify="warn",
                 scheduler=None, chunk_size=None, pool=True,
                 static_prune="off", rank=None, incremental="off"):
        if verify not in VERIFY_MODES:
            raise CompactionError(
                "verify must be one of {}, got {!r}".format(
                    "/".join(VERIFY_MODES), verify))
        self.verify = verify
        self.module = module
        self.gpu = gpu or Gpu()
        if static_prune in (None, "off") and rank in (None, "none"):
            self.static_prune, self.rank = "off", "none"
            self._analysis = None
        else:
            from ..testability.analysis import (
                TestabilityAnalysis,
                validate_prune_mode,
                validate_rank_mode,
            )
            self.static_prune = validate_prune_mode(static_prune)
            self.rank = validate_rank_mode(rank)
            self._analysis = TestabilityAnalysis(module.netlist)
        self.fault_report = FaultListReport(module.netlist,
                                            collapse=collapse,
                                            static_prune=self.static_prune)
        if metrics is not None and (self.static_prune != "off"
                                    or self.rank != "none"):
            dominance = self._analysis.dominance(self.fault_report.full_list)
            metrics.record_static_triage(
                self.static_prune, self.rank,
                self.fault_report.untestable_faults, dominance.num_classes)
        self.simulator = FaultSimulator(module.netlist, engine=engine)
        self.engine = engine
        self.cache = cache
        self.metrics = metrics
        self.incremental = validate_incremental_mode(incremental or "off")
        if self.incremental == "off":
            self._incremental = None
        else:
            self._incremental = IncrementalFaultSim(
                cache, metrics=metrics, mode=self.incremental)
        if scheduler is not None:
            self.scheduler = scheduler
            self._owns_scheduler = False
        else:
            self.scheduler = ShardedFaultScheduler(
                jobs=jobs, metrics=metrics, chunk_size=chunk_size,
                pool=pool)
            self._owns_scheduler = True
        self.outcomes = []
        self._eval_list = None

    def _worklist(self, dropping):
        """The stage-3 target fault list: the remaining list under
        dropping (already minus the untestable bucket), the testable list
        otherwise — pruned faults never reach the scheduler's chunking in
        any mode.  ``rank="scoap"`` reorders the list (a permutation, so
        detection sets are invariant)."""
        if dropping:
            target = self.fault_report.remaining
        else:
            target = self.evaluation_fault_list
        if self.rank == "scoap":
            target = FaultList(self.module.netlist,
                               self._analysis.rank(list(target)))
        return target

    @property
    def evaluation_fault_list(self):
        """The FC fault list: the full collapsed list under
        ``static_prune="off"`` (seed accounting), the testable list
        otherwise (proven-untestable faults leave the denominator)."""
        if self.static_prune == "off":
            return self.fault_report.full_list
        if self._eval_list is None:
            pruned = frozenset(self.fault_report.untestable)
            self._eval_list = FaultList(
                self.module.netlist,
                [f for f in self.fault_report.full_list
                 if f not in pruned])
        return self._eval_list

    @property
    def jobs(self):
        """Resolved stage-3 worker process count (1 = sequential)."""
        return self.scheduler.jobs

    def close(self):
        """Shut down the pipeline's worker pool.  No-op when the
        scheduler was passed in (the owner closes it)."""
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _timed(self, stage):
        """Stage-timer context (no-op without a metrics object)."""
        if self.metrics is None:
            return nullcontext()
        return self.metrics.stage_timer(stage)

    def compact(self, ptp, reverse_patterns=False, evaluate=True,
                dropping=True, stage_hook=None):
        """Compact one PTP; returns a :class:`CompactionOutcome`.

        Args:
            ptp: the PTP (must target this pipeline's module).
            reverse_patterns: apply the stage-3 pattern sequence in reverse
                (the paper's SFU_IMM configuration).
            evaluate: run the stage-5 validation fault simulations and fill
                the FC columns (two extra fault simulations, evaluation
                only — the compaction itself still uses ONE).
            dropping: label against the module's *remaining* fault list and
                update it afterwards (the paper's configuration); False
                uses the full list and leaves the report untouched.
            stage_hook: optional ``hook(stage, **info)`` called on entry to
                each stage of :data:`STAGES`; after tracing completes the
                ``fault_simulation`` call carries ``cycles=<kernel ccs>``.
                Campaign watchdogs hook in here; an exception raised from
                a stage-1..4 or verify hook aborts the compaction before
                the fault report is mutated (drops land between the
                verification gate and evaluation, and detected faults
                stay covered by the original PTP either way).  A strict
                verification failure aborts at the same point.
        """
        if ptp.target != self.module.name:
            raise CompactionError("PTP {!r} targets {!r}, pipeline is for "
                                  "{!r}".format(ptp.name, ptp.target,
                                                self.module.name))
        hook = stage_hook or (lambda stage, **info: None)
        started = time.perf_counter()

        cache_keys = {}
        # Stage 1: partitioning.
        hook("partition")
        with self._timed("partition"):
            partition = partition_ptp(ptp)
        # Stage 2: logic tracing (RTL trace + GL pattern report),
        # memoized by the artifact cache when one is attached.
        hook("tracing")
        with self._timed("tracing"):
            tracing, key, __ = cached_logic_tracing(
                ptp, self.module, self.gpu, self.cache, self.metrics)
            if key is not None:
                cache_keys["tracing"] = key
        report = tracing.pattern_report
        if reverse_patterns:
            report = report.reversed()
        patterns = report.to_pattern_set()
        # Stage 3: ONE optimized fault simulation + labeling.  Sharding
        # happens *after* the drop filter (the scheduler sees the already
        # filtered target list) and the merged result feeds the drop
        # below, so cross-PTP dropping survives parallel execution.
        hook("fault_simulation", cycles=tracing.cycles)
        target_list = self._worklist(dropping)
        with self._timed("fault_simulation"):
            if self._incremental is not None:
                state_key = self.cache.fault_state_key(
                    ptp.name, self.module, self.engine)
                cache_keys["fault_state_record"] = state_key
                fault_result, __info = self._incremental.run(
                    self.scheduler, self.simulator, patterns, target_list,
                    state_key, skip_dropped=dropping)
            else:
                fault_result = self.scheduler.run(self.simulator, patterns,
                                                  target_list,
                                                  skip_dropped=dropping)
        # Strict mode: re-simulate the statically pruned faults against
        # this PTP's patterns under the differential oracle.  Raises (and
        # aborts before the fault report is mutated) if any proof is
        # contradicted by an actual detection.
        if (self.static_prune == "strict"
                and self.fault_report.untestable_faults):
            from ..testability.analysis import cross_check_pruned
            checked = cross_check_pruned(self.module.netlist, patterns,
                                         list(self.fault_report.untestable))
            if self.metrics is not None:
                self.metrics.record_cross_check(checked)
        labeled = label_instructions(ptp, tracing.trace, report,
                                     fault_result)
        # Stage 4: reduction.
        hook("reduction")
        with self._timed("reduction"):
            reduction = reduce_ptp(labeled, partition)
        compaction_seconds = time.perf_counter() - started

        # Static verification gate: prove the reduced PTP structurally
        # sound and the stage-4 invariants intact BEFORE the fault report
        # is mutated — a strict failure aborts with no side effects, like
        # a stage-1..4 hook exception.
        verification = None
        if self.verify != "off":
            hook("verify")
            with self._timed("verify"):
                # Imported lazily: repro.verify pulls in repro.core
                # submodules at import time, so a module-level import
                # here would be circular on first import of the verify
                # package.
                from ..verify import verify_compaction

                verification = verify_compaction(
                    ptp, reduction.compacted, pc_map=reduction.pc_map,
                    partition=partition)
            if self.metrics is not None:
                self.metrics.record_verification(
                    len(verification.errors), len(verification.warnings))
            if self.verify == "strict" and not verification.ok:
                first = verification.errors[0]
                raise VerificationError(
                    "compacted PTP {!r} failed static verification with "
                    "{} error(s), e.g. {}".format(
                        reduction.compacted.name,
                        len(verification.errors), first.render()),
                    report=verification)

        if dropping:
            dropped, drop_records = self.fault_report.drop_result(
                fault_result, ptp.name)
            # Publish the drops to the worker pool: later skip_dropped
            # runs (this module's next PTPs) never re-simulate them, with
            # detection credit staying attributed exactly as the report
            # recorded it.
            self.scheduler.broadcast_drops(self.simulator, drop_records)
        else:
            dropped = 0

        outcome = CompactionOutcome(
            ptp=ptp, compacted=reduction.compacted, partition=partition,
            labeled=labeled, reduction=reduction, tracing=tracing,
            fault_result=fault_result, verification=verification,
            original_size=ptp.size,
            compacted_size=reduction.compacted.size,
            original_cycles=tracing.cycles,
            compaction_seconds=compaction_seconds,
            fault_simulations=1,
            newly_dropped_faults=dropped,
            cache_keys=cache_keys,
        )

        # Stage 5: reassembly validation (evaluation-only fault sims).
        # The original PTP's tracing hits the stage-2 cache entry; the
        # compacted PTP gets its own content key.
        hook("evaluation")
        with self._timed("evaluation"):
            if evaluate:
                # Under static pruning the FC denominator is the testable
                # list; under "off" evaluate_fc keeps building its own
                # full list (the seed accounting, bit for bit).
                eval_list = (self.evaluation_fault_list
                             if self.static_prune != "off" else None)
                original_eval = evaluate_fc(
                    ptp, self.module, fault_list=eval_list, gpu=self.gpu,
                    reverse_patterns=reverse_patterns, cache=self.cache,
                    scheduler=self.scheduler, metrics=self.metrics,
                    engine=self.engine, incremental=self._incremental)
                compacted_eval = evaluate_fc(
                    reduction.compacted, self.module, fault_list=eval_list,
                    gpu=self.gpu,
                    reverse_patterns=reverse_patterns, cache=self.cache,
                    scheduler=self.scheduler, metrics=self.metrics,
                    engine=self.engine, incremental=self._incremental)
                if original_eval.cache_key is not None:
                    cache_keys["evaluation_original"] = (
                        original_eval.cache_key)
                if compacted_eval.cache_key is not None:
                    cache_keys["evaluation_compacted"] = (
                        compacted_eval.cache_key)
                outcome.original_fc = original_eval.fc_percent
                outcome.compacted_fc = compacted_eval.fc_percent
                outcome.original_cycles = original_eval.cycles
                outcome.compacted_cycles = compacted_eval.cycles
                outcome.fault_simulations += 2
            else:
                compacted_tracing, key, __ = cached_logic_tracing(
                    reduction.compacted, self.module, self.gpu, self.cache,
                    self.metrics)
                if key is not None:
                    cache_keys["evaluation_compacted"] = key
                outcome.compacted_cycles = compacted_tracing.cycles

        self.outcomes.append(outcome)
        return outcome

    def compact_stl(self, stl, reverse_for=("SFU_IMM",), evaluate=True):
        """Compact every PTP of *stl* that targets this module, in STL
        order (fault dropping carries across them); returns the outcomes
        and replaces the PTPs inside *stl* with their compacted versions."""
        outcomes = []
        for ptp in list(stl.targeting(self.module.name)):
            outcome = self.compact(ptp,
                                   reverse_patterns=ptp.name in reverse_for,
                                   evaluate=evaluate)
            stl.replace(ptp.name, outcome.compacted)
            outcomes.append(outcome)
        return outcomes
