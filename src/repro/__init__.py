"""Reproduction of "A Compaction Method for STLs for GPU in-field test"
(Guerrero-Balaguera, Rodriguez Condia, Sonza Reorda - DATE 2022).

Subpackages:

* :mod:`repro.isa` - the FlexGripPlus-class SASS-like ISA (52 opcodes).
* :mod:`repro.gpu` - the cycle-level SIMT GPU model + tracing monitor.
* :mod:`repro.netlist` - the gate-level substrate and the three target
  modules (Decoder Unit, SP core, SFU).
* :mod:`repro.faults` - stuck-at fault lists, fault simulation, dropping,
  and ATPG.
* :mod:`repro.stl` - the STL layer: PTP containers, the SB builder, the
  six generators of Table I, and the signature-per-thread model.
* :mod:`repro.core` - **the paper's contribution**: the five-stage
  compaction pipeline.
* :mod:`repro.baselines` - prior-work comparison baselines.
* :mod:`repro.analysis` - the experiment harness regenerating every table.

Quickstart::

    from repro.netlist.modules import build_decoder_unit
    from repro.stl import generate_imm
    from repro.core import CompactionPipeline

    pipeline = CompactionPipeline(build_decoder_unit())
    outcome = pipeline.compact(generate_imm(seed=0, num_sbs=40))
    print(outcome.size_reduction_percent, outcome.fc_diff)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core.pipeline import CompactionOutcome, CompactionPipeline

__version__ = "1.0.0"

__all__ = ["CompactionPipeline", "CompactionOutcome", "__version__"]
