"""Diagnostic model of the static PTP verifier.

A :class:`Diagnostic` is one finding: a rule id from :data:`RULES`, a
severity (:data:`ERROR` / :data:`WARNING`), an optional pc / basic-block
location, and a human-readable message.  A :class:`VerificationReport`
collects every diagnostic of one verified PTP and renders them as text
(the ``repro lint`` output) or as a JSON-serializable dict (checkpoints,
``repro lint --json``).

Severity policy (see DESIGN.md §10 for the full catalog):

* **errors** are structural violations no well-formed PTP can carry —
  out-of-range branch targets, loads from absent memory words, a
  signature PTP without its flush store, or a compaction that broke a
  stage-4 invariant.  ``repro lint`` exits 1 on them and the pipeline's
  strict gate refuses the compaction.
* **warnings** flag suspicious-but-architecturally-defined constructs:
  GPRs are zero-initialized and predicates launch as False on the
  modeled GPU, so a use-before-def reads a defined value — legitimate
  pseudorandom seed PTPs do this on purpose (the IMM generator's
  never-written guard predicate, the RAND pool registers).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, in decreasing order of gravity.
ERROR = "error"
WARNING = "warning"

#: Rule catalog: rule id -> (severity, one-line title).  The id namespace
#: mirrors the verifier passes: CFG (well-formedness), DF (def-use
#: dataflow), MEM (memory-image consistency), OBS (observability
#: reachability), CMP (compaction-safety diff).
RULES = {
    "CFG001": (ERROR, "control-flow target out of range"),
    "CFG002": (ERROR, "execution can fall off the end of the program"),
    "CFG003": (ERROR, "no EXIT is reachable from the entry block"),
    "CFG004": (WARNING, "unreachable basic block"),
    "CFG005": (WARNING, "SSY does not target a JOIN"),
    "CFG006": (WARNING, "JOIN with no SSY naming it"),
    "CFG007": (WARNING, "RET without any CAL in the program"),
    "DF001": (WARNING, "register read with no reaching definition"),
    "DF002": (WARNING, "dead write (result is never read)"),
    "DF003": (WARNING, "predicate read before its first definition"),
    "MEM001": (ERROR, "load from an address missing from the image"),
    "MEM002": (WARNING, "orphaned operand words in the global image"),
    "MEM003": (WARNING, "store into the non-observable operand region"),
    "OBS001": (WARNING, "result never reaches an observable sink"),
    "OBS002": (ERROR, "signature PTP lost its final flush store"),
    "OBS003": (WARNING, "PTP has no observable sink at all"),
    "CMP001": (ERROR, "compacted program is not a subsequence"),
    "CMP002": (ERROR, "inadmissible basic block was altered"),
    "CMP003": (ERROR, "pinned instruction removed"),
    "CMP004": (ERROR, "compaction broke a loop region"),
    "CMP005": (ERROR, "compacted image adds or alters memory words"),
    "CMP006": (ERROR, "kernel or target configuration changed"),
    "CMP007": (ERROR, "branch retargeted inconsistently"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    Attributes:
        rule: rule id from :data:`RULES` (e.g. ``"CFG001"``).
        severity: :data:`ERROR` or :data:`WARNING`.
        message: human-readable description of this occurrence.
        pc: instruction index the finding anchors to (None when the
            finding is program-wide, e.g. a missing EXIT).
        block: basic-block index (None when not block-scoped).
    """

    rule: str
    severity: str
    message: str
    pc: int | None = None
    block: int | None = None

    @classmethod
    def of(cls, rule, message, pc=None, block=None):
        """Build a diagnostic with the severity the catalog assigns."""
        severity, __ = RULES[rule]
        return cls(rule=rule, severity=severity, message=message, pc=pc,
                   block=block)

    def render(self):
        """One-line text form: ``[RULE severity] pc N: message``."""
        where = ""
        if self.pc is not None:
            where = "pc {}: ".format(self.pc)
        elif self.block is not None:
            where = "BB{}: ".format(self.block)
        return "[{} {}] {}{}".format(self.rule, self.severity, where,
                                     self.message)

    def to_dict(self):
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "pc": self.pc,
            "block": self.block,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(rule=data["rule"],
                   severity=data.get("severity", ERROR),
                   message=data.get("message", ""),
                   pc=data.get("pc"),
                   block=data.get("block"))


def _sort_key(diagnostic):
    # Errors first, then program order; program-wide findings trail.
    return (0 if diagnostic.severity == ERROR else 1,
            diagnostic.pc is None,
            diagnostic.pc if diagnostic.pc is not None else -1,
            diagnostic.rule)


class VerificationReport:
    """Every diagnostic of one verified PTP (or compaction pair).

    Attributes:
        ptp_name: name of the verified PTP.
        diagnostics: the findings, errors first, then in program order.
    """

    def __init__(self, ptp_name="", diagnostics=()):
        self.ptp_name = ptp_name
        self.diagnostics = []
        self.extend(diagnostics)

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)
        self.diagnostics.sort(key=_sort_key)

    def extend(self, diagnostics):
        self.diagnostics.extend(diagnostics)
        self.diagnostics.sort(key=_sort_key)

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self):
        """True when no error-severity diagnostic fired (warnings may)."""
        return not self.errors

    def by_rule(self, rule):
        return [d for d in self.diagnostics if d.rule == rule]

    @property
    def rule_ids(self):
        """Set of rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def to_dict(self):
        return {
            "ptp": self.ptp_name,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(ptp_name=data.get("ptp", ""),
                   diagnostics=[Diagnostic.from_dict(d)
                                for d in data.get("diagnostics", [])])

    def render_text(self):
        """Multi-line lint listing (one header line + one per finding)."""
        header = "{}: {} error(s), {} warning(s)".format(
            self.ptp_name or "<ptp>", len(self.errors), len(self.warnings))
        if not self.diagnostics:
            return header + " — clean"
        lines = [header]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)
