"""Verifier driver: composes the passes over one PTP (or a pair).

:func:`verify_ptp` runs the single-PTP passes (CFG, dataflow, memory,
observability); :func:`verify_compaction` additionally runs the
compaction-safety diff of :mod:`repro.verify.diffcheck` against the
original.  :class:`PtpVerifier` is the composable form — hand it a
subset of passes to run a custom lint.

Each pass is a plain function ``pass_fn(ctx) -> [Diagnostic]`` over a
shared :class:`VerifyContext`.  The context builds the CFG at most once
— and only when every control-flow target is in range, since
:func:`~repro.core.cfg.build_cfg` indexes its pc table by target; with
out-of-range targets the CFG-dependent passes stand down and CFG001
carries the report alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cfg import build_cfg
from .cfg_rules import check_cfg, out_of_range_targets, reachable_blocks
from .dataflow import check_dataflow
from .diagnostics import VerificationReport
from .diffcheck import check_compaction
from .memory import check_memory
from .observability import check_observability


@dataclass
class VerifyContext:
    """Shared analysis state handed to every pass.

    Attributes:
        ptp: the verified :class:`~repro.stl.ptp.ParallelTestProgram`.
        instructions: its instruction list (materialized once).
        cfg: the :class:`~repro.core.cfg.ControlFlowGraph`, or None when
            an out-of-range target makes it unbuildable.
        reachable: block indices reachable from entry (empty when
            ``cfg`` is None).
    """

    ptp: object
    instructions: list
    cfg: object = None
    reachable: frozenset = frozenset()
    _masks: list = None

    @property
    def masks(self):
        """Per-pc dataflow masks, computed once and shared by the
        dataflow and observability passes."""
        if self._masks is None:
            from .dataflow import _instruction_masks

            self._masks = _instruction_masks(self.instructions)
        return self._masks


def build_context(ptp):
    """Build the :class:`VerifyContext` for *ptp*."""
    instructions = list(ptp.program)
    if instructions and not out_of_range_targets(instructions):
        cfg = build_cfg(instructions)
        reachable = frozenset(reachable_blocks(cfg))
    else:
        cfg = None
        reachable = frozenset()
    return VerifyContext(ptp=ptp, instructions=instructions, cfg=cfg,
                         reachable=reachable)


#: The default pass lineup, in execution order.
DEFAULT_PASSES = (check_cfg, check_dataflow, check_memory,
                  check_observability)


def _suppress_shadowed(diagnostics):
    """Drop OBS001 findings on pcs already flagged as dead writes —
    DF002 subsumes them (a dead write is trivially unobservable)."""
    dead_pcs = {d.pc for d in diagnostics
                if d.rule == "DF002" and d.pc is not None}
    return [d for d in diagnostics
            if not (d.rule == "OBS001" and d.pc in dead_pcs)]


class PtpVerifier:
    """Rule-based static analyzer over PTPs.

    Args:
        passes: iterable of pass functions (default:
            :data:`DEFAULT_PASSES`).
    """

    def __init__(self, passes=DEFAULT_PASSES):
        self.passes = tuple(passes)

    def verify(self, ptp):
        """Run every pass over *ptp*; a :class:`VerificationReport`."""
        return self._verify(build_context(ptp))

    def _verify(self, ctx):
        diagnostics = []
        for pass_fn in self.passes:
            diagnostics.extend(pass_fn(ctx))
        return VerificationReport(ctx.ptp.name,
                                  _suppress_shadowed(diagnostics))

    def verify_compaction(self, original, compacted, pc_map=None,
                          partition=None):
        """Verify *compacted* standalone, then diff it against
        *original*; one merged :class:`VerificationReport` (named after
        the compacted PTP)."""
        ctx = build_context(compacted)
        report = self._verify(ctx)
        report.extend(check_compaction(original, compacted, pc_map=pc_map,
                                       partition=partition,
                                       compacted_cfg=ctx.cfg))
        return report


def verify_ptp(ptp):
    """Run the default pass lineup over one PTP."""
    return PtpVerifier().verify(ptp)


def verify_compaction(original, compacted, pc_map=None, partition=None):
    """Verify a stage-4 (original, compacted) pair end to end."""
    return PtpVerifier().verify_compaction(original, compacted,
                                           pc_map=pc_map,
                                           partition=partition)
