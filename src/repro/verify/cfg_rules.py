"""CFG well-formedness pass (rules CFG001..CFG007).

Reuses :mod:`repro.core.cfg` for block structure and reachability.  The
target-range check (CFG001) runs *before* any CFG is built: an
out-of-range target would crash :func:`~repro.core.cfg.build_cfg` (its
``block_of_pc`` table is indexed by target pc), so the verifier only
builds the CFG — and only runs the CFG-dependent rules — when every
control-flow target is in range.
"""

from __future__ import annotations

from collections import deque

from ..isa.opcodes import Fmt, Op, info
from .diagnostics import Diagnostic

#: Opcodes with a control-flow target (set lookup beats an info() call
#: in the per-instruction scans).
BRANCH_OPS = frozenset(op for op in Op if info(op).fmt is Fmt.BRANCH)


def out_of_range_targets(instructions):
    """``(pc, instruction)`` pairs whose branch target leaves the program."""
    size = len(instructions)
    return [(pc, instr) for pc, instr in enumerate(instructions)
            if instr.op in BRANCH_OPS
            and not 0 <= instr.target < size]


def reachable_blocks(cfg):
    """Block indices reachable from the entry block (BFS)."""
    if not cfg.blocks:
        return set()
    seen = {0}
    queue = deque([0])
    while queue:
        block = queue.popleft()
        for succ in cfg.blocks[block].successors:
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


#: Last-instruction opcodes that cannot fall through past the program end.
_TERMINATORS = (Op.EXIT, Op.RET)


def check_cfg(ctx):
    """Run the CFG well-formedness rules over a :class:`VerifyContext`."""
    instructions = ctx.instructions
    diagnostics = []

    for pc, instr in out_of_range_targets(instructions):
        diagnostics.append(Diagnostic.of(
            "CFG001",
            "{} targets pc {}, but the program has {} instruction(s)"
            .format(instr.op.value, instr.target, len(instructions)),
            pc=pc))

    if not instructions:
        diagnostics.append(Diagnostic.of(
            "CFG003", "the program is empty (no EXIT to reach)"))
        return diagnostics
    if ctx.cfg is None:
        # CFG001 fired; block-level rules need a buildable CFG.
        return diagnostics
    cfg, reachable = ctx.cfg, ctx.reachable

    # CFG002 — a reachable block ending at the program boundary whose last
    # instruction can fall through would run off the end.
    for block in cfg.blocks:
        if block.index not in reachable or block.size == 0:
            continue
        if block.end != len(instructions):
            continue
        last = instructions[block.end - 1]
        falls = not (last.op in _TERMINATORS
                     or (last.op is Op.BRA and last.pred is None))
        if falls:
            diagnostics.append(Diagnostic.of(
                "CFG002",
                "last instruction {} can fall through past the end of "
                "the program".format(last.op.value),
                pc=block.end - 1, block=block.index))

    # CFG003 — some reachable path must terminate in EXIT.
    has_exit = any(
        instructions[pc].op is Op.EXIT
        for index in reachable
        for pc in range(cfg.blocks[index].start, cfg.blocks[index].end))
    if not has_exit:
        diagnostics.append(Diagnostic.of(
            "CFG003", "no EXIT instruction is reachable from pc 0"))

    # CFG004 — unreachable blocks (dead code the reduction cannot see).
    for block in cfg.blocks:
        if block.size and block.index not in reachable:
            diagnostics.append(Diagnostic.of(
                "CFG004",
                "basic block BB{} (pc {}..{}) is unreachable".format(
                    block.index, block.start, block.end - 1),
                pc=block.start, block=block.index))

    # CFG005 / CFG006 — SSY reconvergence pairing.
    ssy_targets = set()
    for pc, instr in enumerate(instructions):
        if instr.op is Op.SSY:
            ssy_targets.add(instr.target)
            if instructions[instr.target].op is not Op.JOIN:
                diagnostics.append(Diagnostic.of(
                    "CFG005",
                    "SSY targets pc {} which holds {}, not the expected "
                    "JOIN reconvergence point".format(
                        instr.target, instructions[instr.target].op.value),
                    pc=pc))
    for pc, instr in enumerate(instructions):
        if instr.op is Op.JOIN and pc not in ssy_targets:
            diagnostics.append(Diagnostic.of(
                "CFG006",
                "JOIN at pc {} is not named by any SSY (divergence "
                "bookkeeping cannot reconverge here)".format(pc),
                pc=pc))

    # CFG007 — a RET with no CAL anywhere returns to a stale (or empty)
    # call stack.
    if not any(instr.op is Op.CAL for instr in instructions):
        for pc, instr in enumerate(instructions):
            if instr.op is Op.RET:
                diagnostics.append(Diagnostic.of(
                    "CFG007",
                    "RET at pc {} but the program contains no CAL".format(
                        pc),
                    pc=pc))
    return diagnostics
