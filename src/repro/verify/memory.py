"""Memory-image consistency pass (rules MEM001..MEM003).

The generators address operand arrays as ``GLD Rd, [TID_REG + base]`` —
each of the kernel's ``block_threads`` threads reads one word of the
array at ``base``.  That makes the address set of TID-based loads
statically derivable, exactly like the reduction stage's orphan-array
analysis (:func:`repro.core.reduction._referenced_data_offsets`):

* MEM001 (error): a TID-based GLD whose per-thread words are missing
  from ``global_image``, or a CLD of a constant word the kernel's
  constant bank does not define — the PTP would test against zeros
  instead of its operands, silently gutting fault coverage.
* MEM002 (warning): words in the operand data region
  (``[DATA_BASE, OUTPUT_BASE)``) that no GLD references — dead payload
  the reduction should have relocated away.  Skipped entirely when any
  GLD uses a non-TID base register (the address is runtime-dependent,
  so every word may be live — same conservatism as the reduction).
* MEM003 (warning): a TID-based GST landing inside the operand data
  region — the store clobbers test operands and is invisible to the
  module/signature observability models.

Shared-memory SLD/SST live in a separate address space and are not
checked against ``global_image``.
"""

from __future__ import annotations

from ..isa.opcodes import Op
from ..stl.builder import DATA_BASE, OUTPUT_BASE, TID_REG
from .diagnostics import Diagnostic


def _runs(sorted_words):
    """Group a sorted word list into contiguous (start, end) runs."""
    runs = []
    for word in sorted_words:
        if runs and word == runs[-1][1]:
            runs[-1][1] = word + 1
        else:
            runs.append([word, word + 1])
    return [(start, end) for start, end in runs]


def check_memory(ctx):
    """Run MEM001/MEM002/MEM003 over a :class:`VerifyContext`."""
    ptp = ctx.ptp
    instructions = ctx.instructions
    image = ptp.global_image
    const_words = ptp.kernel.const_words
    threads = ptp.kernel.block_threads
    diagnostics = []

    referenced = set()
    unknown_base = False
    for pc, instr in enumerate(instructions):
        if instr.op is Op.GLD:
            if instr.src_a != TID_REG:
                unknown_base = True
                continue
            if instr.imm >= OUTPUT_BASE:
                continue
            words = range(instr.imm, instr.imm + threads)
            referenced.update(words)
            missing = [word for word in words if word not in image]
            if missing:
                diagnostics.append(Diagnostic.of(
                    "MEM001",
                    "GLD reads the operand array at 0x{:04X}, but {} of "
                    "its {} per-thread word(s) are missing from the "
                    "global image (first: 0x{:04X})".format(
                        instr.imm, len(missing), threads, missing[0]),
                    pc=pc))
        elif instr.op is Op.CLD:
            if instr.imm not in const_words:
                diagnostics.append(Diagnostic.of(
                    "MEM001",
                    "CLD reads c[0x{:X}], which the kernel's constant "
                    "bank does not define".format(instr.imm),
                    pc=pc))
        elif instr.op is Op.GST:
            if instr.src_a == TID_REG and instr.imm < OUTPUT_BASE:
                diagnostics.append(Diagnostic.of(
                    "MEM003",
                    "GST writes the operand data region at 0x{:04X} "
                    "(below OUTPUT_BASE 0x{:04X}); the result is not "
                    "observable and clobbers test operands".format(
                        instr.imm, OUTPUT_BASE),
                    pc=pc))

    if not unknown_base:
        orphaned = sorted(word for word in image
                          if DATA_BASE <= word < OUTPUT_BASE
                          and word not in referenced)
        for start, end in _runs(orphaned):
            diagnostics.append(Diagnostic.of(
                "MEM002",
                "operand words 0x{:04X}..0x{:04X} ({} word(s)) are never "
                "loaded by any GLD".format(start, end - 1, end - start)))
    return diagnostics
