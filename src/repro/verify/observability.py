"""Observability reachability pass (rules OBS001..OBS003).

A PTP only detects a fault if the corrupted value reaches an observation
point (Section II.C): a memory output (GST/SST operand) or, for
signature PTPs, the per-thread signature register that the pinned flush
store emits at EXIT.  This pass runs a backward "observably live"
analysis — a register is observably live when some path carries its
value into a store operand, an ISETP compare (control steers which
stores execute), or the signature accumulation:

* OBS001 (warning): a computed result that never reaches any sink — the
  instruction exercises the module but its outcome can never flip an
  observation point, so any fault it excites is silently lost.
* OBS002 (error): a ``uses_signature`` PTP without its final flush
  store (a GST of ``SIG_REG`` immediately before an EXIT).  The flush
  is the PTP's *sole* observable mechanism; stage 4 pins it for exactly
  this reason.
* OBS003 (warning): the PTP has no store at all — nothing it computes
  can be observed.

The verifier suppresses OBS001 on pcs already flagged DF002 (a dead
write is trivially unobservable; one finding is enough).
"""

from __future__ import annotations

from ..isa.opcodes import Op
from ..stl.signature import SIG_REG
from .dataflow import _block_order
from .diagnostics import Diagnostic

_STORE_OPS = (Op.GST, Op.SST)


def _flush_store_pcs(instructions):
    """Stores in the run immediately preceding each EXIT (stage 4's
    pinned-flush definition, mirrored from the reduction)."""
    pinned = set()
    for pc, instr in enumerate(instructions):
        if instr.op is Op.EXIT:
            back = pc - 1
            while back >= 0 and instructions[back].op in _STORE_OPS:
                pinned.add(back)
                back -= 1
    return pinned


def _observable_out(ctx, masks):
    """Per-block observably-live-out register masks (backward fixpoint)."""
    instructions = ctx.instructions
    order = _block_order(ctx)
    exit_regs = (1 << SIG_REG) if ctx.ptp.uses_signature else 0

    def transfer(block, regs):
        for pc in range(block.end - 1, block.start - 1, -1):
            instr = instructions[pc]
            reads, writes, __, __p, guarded = masks[pc]
            if instr.op in _STORE_OPS or instr.op is Op.ISETP:
                regs |= reads
            elif writes:
                if regs & writes:
                    if not guarded:
                        regs &= ~writes
                    regs |= reads
        return regs

    in_regs = {block.index: 0 for block in order}
    out_regs = dict(in_regs)
    changed = True
    while changed:
        changed = False
        for block in reversed(order):
            if block.successors:
                regs = 0
                for succ in block.successors:
                    regs |= in_regs.get(succ, 0)
            else:
                regs = exit_regs
            out_regs[block.index] = regs
            new_regs = transfer(block, regs)
            if new_regs != in_regs[block.index]:
                in_regs[block.index] = new_regs
                changed = True
    return out_regs


def check_observability(ctx):
    """Run OBS001/OBS002/OBS003 over a :class:`VerifyContext`."""
    if ctx.cfg is None:
        return []
    ptp = ctx.ptp
    instructions = ctx.instructions
    diagnostics = []

    store_pcs = [pc for pc, instr in enumerate(instructions)
                 if instr.op in _STORE_OPS]

    if ptp.uses_signature:
        flush = _flush_store_pcs(instructions)
        has_flush = any(instructions[pc].op is Op.GST
                        and instructions[pc].src_b == SIG_REG
                        for pc in flush)
        if not has_flush:
            diagnostics.append(Diagnostic.of(
                "OBS002",
                "signature PTP has no pinned flush store (a GST of R{} "
                "immediately before an EXIT); the signature is never "
                "emitted".format(SIG_REG)))

    if not store_pcs:
        diagnostics.append(Diagnostic.of(
            "OBS003",
            "the program contains no GST/SST; nothing it computes is "
            "observable"))

    masks = ctx.masks
    out_regs = _observable_out(ctx, masks)
    for block in _block_order(ctx):
        regs = out_regs[block.index]
        for pc in range(block.end - 1, block.start - 1, -1):
            instr = instructions[pc]
            reads, writes, __, __p, guarded = masks[pc]
            unobserved = writes & ~regs
            if unobserved and instr.op not in _STORE_OPS:
                names = ", ".join(
                    "R{}".format(r) for r in range(64)
                    if unobserved >> r & 1)
                diagnostics.append(Diagnostic.of(
                    "OBS001",
                    "{} result in {} never reaches a store, compare, or "
                    "signature update".format(instr.op.value, names),
                    pc=pc, block=block.index))
            if instr.op in _STORE_OPS or instr.op is Op.ISETP:
                regs |= reads
            elif writes:
                if regs & writes:
                    if not guarded:
                        regs &= ~writes
                    regs |= reads
    return diagnostics
