"""Static PTP verifier: a rule-based lint over ParallelTestPrograms.

Five composable passes prove (or flag) what a PTP's structure promises
before any simulation is spent on it:

* :mod:`~repro.verify.cfg_rules` — CFG well-formedness (CFG001..007);
* :mod:`~repro.verify.dataflow` — def-use register/predicate dataflow
  (DF001..003);
* :mod:`~repro.verify.memory` — memory-image consistency (MEM001..003);
* :mod:`~repro.verify.observability` — observability reachability
  (OBS001..003);
* :mod:`~repro.verify.diffcheck` — compaction-safety invariants over
  (original, compacted) pairs (CMP001..007).

Entry points: :func:`verify_ptp`, :func:`verify_compaction`, and the
``repro lint`` CLI subcommand.  The compaction pipeline runs
:func:`verify_compaction` on every reduced PTP before stage 5
(``verify="strict"/"warn"/"off"``).  See DESIGN.md §10 for the rule
catalog.
"""

from .diagnostics import ERROR, RULES, WARNING, Diagnostic, VerificationReport
from .diffcheck import check_compaction
from .verifier import (
    DEFAULT_PASSES,
    PtpVerifier,
    VerifyContext,
    build_context,
    verify_compaction,
    verify_ptp,
)

__all__ = [
    "Diagnostic", "VerificationReport", "RULES", "ERROR", "WARNING",
    "PtpVerifier", "VerifyContext", "build_context", "DEFAULT_PASSES",
    "verify_ptp", "verify_compaction", "check_compaction",
]
