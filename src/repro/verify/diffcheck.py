"""Compaction-safety diff pass (rules CMP001..CMP007).

Given an (original, compacted) PTP pair, assert the invariants the
stage-4 reduction promises (Fig. 3 and :mod:`repro.core.reduction`):

* CMP001: the compacted program is a *subsequence* of the original —
  the reduction only deletes Small Blocks, it never inserts, reorders,
  or rewrites instructions (branch targets excepted, see CMP007).
* CMP002: inadmissible basic blocks (regions stage 1 excluded from the
  ARC) survive untouched.
* CMP003: pinned instructions — the S2R/MOV32I preamble and, for
  signature PTPs, the final flush stores — survive untouched.
* CMP004: loop regions stay intact (the compacted CFG has at least as
  many natural loops as the original).
* CMP005: the compacted global image only *drops* orphaned operand
  words; it never adds or alters any.
* CMP006: target module, kernel geometry, constant bank, and the
  signature flag are unchanged.
* CMP007: every surviving branch is retargeted exactly as the
  reduction's fall-forward remap dictates (first kept pc at or after
  the old target, else the last instruction).

When the caller has the reduction's ``pc_map`` (old pc -> new pc or
None), the match is taken from it and *validated*; otherwise a greedy
subsequence match reconstructs it.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.cfg import build_cfg, find_loops
from ..core.partition import partition_ptp
from ..core.reduction import _final_flush_pcs, _preamble_pcs
from .cfg_rules import BRANCH_OPS, out_of_range_targets
from .diagnostics import Diagnostic


def _same_ignoring_target(a, b):
    """Instruction equality, branch targets excluded (CMP007's job)."""
    if a.op is not b.op:
        return False
    if a.op in BRANCH_OPS:
        return replace(a, target=0) == replace(b, target=0)
    return a == b


def _match_from_pc_map(original, compacted, pc_map):
    """Validate *pc_map* as an old->new match; (match, diagnostics)."""
    diagnostics = []
    match = {}
    previous_new = -1
    for old_pc, new_pc in enumerate(pc_map):
        if new_pc is None:
            continue
        if new_pc <= previous_new or new_pc >= len(compacted):
            diagnostics.append(Diagnostic.of(
                "CMP001",
                "reduction pc_map sends pc {} to {} out of order or out "
                "of range".format(old_pc, new_pc)))
            return None, diagnostics
        if not _same_ignoring_target(original[old_pc], compacted[new_pc]):
            diagnostics.append(Diagnostic.of(
                "CMP001",
                "pc {} ({}) maps to compacted pc {} which holds {}"
                .format(old_pc, original[old_pc].op.value, new_pc,
                        compacted[new_pc].op.value),
                pc=old_pc))
            return None, diagnostics
        match[old_pc] = new_pc
        previous_new = new_pc
    if len(match) != len(compacted):
        diagnostics.append(Diagnostic.of(
            "CMP001",
            "reduction pc_map covers {} instruction(s) but the compacted "
            "program has {}".format(len(match), len(compacted))))
        return None, diagnostics
    return match, diagnostics


def _match_greedy(original, compacted):
    """Greedy subsequence match; (match, diagnostics)."""
    match = {}
    new_pc = 0
    for old_pc, instr in enumerate(original):
        if new_pc < len(compacted) and _same_ignoring_target(
                instr, compacted[new_pc]):
            match[old_pc] = new_pc
            new_pc += 1
    if new_pc < len(compacted):
        return None, [Diagnostic.of(
            "CMP001",
            "compacted instruction {} at pc {} (of {}) has no "
            "subsequence match in the original program".format(
                compacted[new_pc].op.value, new_pc, len(compacted)),
            pc=new_pc)]
    return match, []


def check_compaction(original, compacted, pc_map=None, partition=None,
                     compacted_cfg=None):
    """Diff-verify one (original, compacted) pair; list of diagnostics.

    Args:
        original: the PTP fed to the pipeline.
        compacted: the reduced PTP (stage-4 output).
        pc_map: optional :attr:`ReductionResult.pc_map`; validated when
            given, reconstructed greedily when not.
        partition: optional stage-1 :class:`PartitionResult` of the
            original (recomputed when absent).
        compacted_cfg: optional pre-built CFG of the compacted program
            (the verifier context already has one; rebuilt when absent).
    """
    diagnostics = []
    original_instrs = list(original.program)
    compacted_instrs = list(compacted.program)

    # CMP006 — configuration identity (independent of any match).
    changed = []
    if compacted.target != original.target:
        changed.append("target")
    if compacted.uses_signature != original.uses_signature:
        changed.append("uses_signature")
    if compacted.kernel.grid_blocks != original.kernel.grid_blocks:
        changed.append("kernel.grid_blocks")
    if compacted.kernel.block_threads != original.kernel.block_threads:
        changed.append("kernel.block_threads")
    if compacted.kernel.const_words != original.kernel.const_words:
        changed.append("kernel.const_words")
    if changed:
        diagnostics.append(Diagnostic.of(
            "CMP006",
            "compaction changed {}".format(", ".join(changed))))

    # CMP005 — the image may only shrink.
    altered = sorted(address for address, value
                     in compacted.global_image.items()
                     if original.global_image.get(address) != value)
    if altered:
        diagnostics.append(Diagnostic.of(
            "CMP005",
            "{} word(s) of the compacted image are absent from or differ "
            "from the original (first: 0x{:04X})".format(
                len(altered), altered[0])))

    # Subsequence match (CMP001) — the anchor for the remaining rules.
    if pc_map is not None:
        match, match_diags = _match_from_pc_map(
            original_instrs, compacted_instrs, pc_map)
    else:
        match, match_diags = _match_greedy(original_instrs,
                                           compacted_instrs)
    diagnostics.extend(match_diags)
    if match is None:
        return diagnostics

    # CMP007 — branch retargeting must follow the fall-forward remap.
    def remap(old_target):
        for candidate in range(old_target, len(original_instrs)):
            if candidate in match:
                return match[candidate]
        return len(compacted_instrs) - 1

    for old_pc, new_pc in match.items():
        instr = original_instrs[old_pc]
        if instr.op not in BRANCH_OPS:
            continue
        expected = remap(instr.target)
        actual = compacted_instrs[new_pc].target
        if actual != expected:
            diagnostics.append(Diagnostic.of(
                "CMP007",
                "{} at compacted pc {} targets {}, but the compaction "
                "map of original target {} gives {}".format(
                    instr.op.value, new_pc, actual, instr.target,
                    expected),
                pc=new_pc))

    # CMP002 — inadmissible BBs of the original must survive whole.
    original_buildable = bool(original_instrs) \
        and not out_of_range_targets(original_instrs)
    if partition is None and original_buildable:
        partition = partition_ptp(original)
    if partition is not None:
        for index in sorted(partition.inadmissible_blocks):
            block = partition.cfg.blocks[index]
            missing = [pc for pc in range(block.start, block.end)
                       if pc not in match]
            if missing:
                diagnostics.append(Diagnostic.of(
                    "CMP002",
                    "inadmissible BB{} (pc {}..{}) lost {} instruction(s) "
                    "(first: pc {})".format(block.index, block.start,
                                            block.end - 1, len(missing),
                                            missing[0]),
                    block=block.index))

    # CMP003 — pinned preamble / signature-flush instructions.
    pinned = _preamble_pcs(original_instrs)
    if original.uses_signature:
        pinned |= _final_flush_pcs(original_instrs)
    for pc in sorted(pinned):
        if pc not in match:
            diagnostics.append(Diagnostic.of(
                "CMP003",
                "pinned {} at original pc {} was removed".format(
                    original_instrs[pc].op.value, pc),
                pc=pc))

    # CMP004 — loop regions intact (needs both CFGs to be buildable).
    # The partition result and the verifier context carry the two CFGs
    # already; only rebuild what the caller could not supply.
    original_cfg = partition.cfg if partition is not None else (
        build_cfg(original_instrs) if original_buildable else None)
    if compacted_cfg is None and compacted_instrs \
            and not out_of_range_targets(compacted_instrs):
        compacted_cfg = build_cfg(compacted_instrs)
    if original_cfg is not None and compacted_cfg is not None:
        original_loops = find_loops(original_cfg)
        compacted_loops = find_loops(compacted_cfg)
        if len(compacted_loops) < len(original_loops):
            diagnostics.append(Diagnostic.of(
                "CMP004",
                "the original program has {} natural loop(s), the "
                "compacted one only {}".format(len(original_loops),
                                               len(compacted_loops))))
    return diagnostics
