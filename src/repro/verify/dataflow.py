"""Def-use dataflow pass (rules DF001..DF003).

Two standard bit-vector analyses over the CFG, one forward and one
backward, with registers packed into a single Python int (64 GPR bits,
4 predicate bits) so the fixpoints cost microseconds per PTP:

* **maybe-defined** (forward, may-analysis): a register read with no
  reaching definition on *any* path fires DF001.  ``TID_REG`` and
  ``SIG_REG`` are pre-defined at entry — the GPU model's S2R prologue
  and signature conventions make them live-in.  GPRs are zero-initialized
  at launch, so DF001 is a warning, not an error: the read is
  architecturally defined, just suspicious.
* **liveness** (backward, may-analysis): a write whose value no path
  ever reads fires DF002.  ``SIG_REG`` is live-out at every program
  exit (the signature is the PTP's observable), so the final MISR fold
  is never flagged.  A *guarded* write does not kill liveness — when the
  guard is false the old value survives the instruction.

DF003 refines DF001 for predicates: predicates launch as False, and the
IMM generator deliberately guards decode-only instructions with a
never-written predicate, so a read of a never-written predicate is
silent; a read *before the first ISETP* of a predicate that IS written
elsewhere is the actual smell and fires DF003.
"""

from __future__ import annotations

from ..stl.builder import TID_REG
from ..stl.signature import SIG_REG
from .diagnostics import Diagnostic


def _mask(indices):
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


def _instruction_masks(instructions):
    """Per-pc (reads, writes, pred_reads, pred_writes, guarded) tuples."""
    masks = []
    for instr in instructions:
        masks.append((_mask(instr.regs_read()),
                      _mask(instr.regs_written()),
                      _mask(instr.preds_read()),
                      _mask(instr.preds_written()),
                      instr.pred is not None))
    return masks


def _block_order(ctx):
    """Reachable, non-empty blocks in program order."""
    return [block for block in ctx.cfg.blocks
            if block.index in ctx.reachable and block.size]


def _forward_defined(ctx, masks):
    """Per-block maybe-defined masks on entry: {index: (regs, preds)}."""
    cfg = ctx.cfg
    order = _block_order(ctx)
    entry_regs = (1 << TID_REG) | (1 << SIG_REG)

    gen = {}
    for block in order:
        regs = preds = 0
        for pc in range(block.start, block.end):
            regs |= masks[pc][1]
            preds |= masks[pc][3]
        gen[block.index] = (regs, preds)

    out_regs = {block.index: 0 for block in order}
    out_preds = {block.index: 0 for block in order}
    in_regs = dict(out_regs)
    in_preds = dict(out_preds)
    changed = True
    while changed:
        changed = False
        for block in order:
            regs = entry_regs if block.index == 0 else 0
            preds = 0
            for pred_index in block.predecessors:
                if pred_index in out_regs:
                    regs |= out_regs[pred_index]
                    preds |= out_preds[pred_index]
            in_regs[block.index] = regs
            in_preds[block.index] = preds
            new_regs = regs | gen[block.index][0]
            new_preds = preds | gen[block.index][1]
            if (new_regs != out_regs[block.index]
                    or new_preds != out_preds[block.index]):
                out_regs[block.index] = new_regs
                out_preds[block.index] = new_preds
                changed = True
    return in_regs, in_preds


def _backward_live(ctx, masks):
    """Per-block live-out masks: {index: (regs, preds)}."""
    order = _block_order(ctx)
    exit_regs = 1 << SIG_REG

    def transfer(block, regs, preds):
        for pc in range(block.end - 1, block.start - 1, -1):
            reads, writes, pred_reads, pred_writes, guarded = masks[pc]
            if not guarded:
                regs &= ~writes
                preds &= ~pred_writes
            regs |= reads
            preds |= pred_reads
        return regs, preds

    in_regs = {block.index: 0 for block in order}
    in_preds = {block.index: 0 for block in order}
    out_regs = dict(in_regs)
    out_preds = dict(in_preds)
    changed = True
    while changed:
        changed = False
        for block in reversed(order):
            if block.successors:
                regs = preds = 0
                for succ in block.successors:
                    regs |= in_regs.get(succ, 0)
                    preds |= in_preds.get(succ, 0)
            else:
                regs, preds = exit_regs, 0
            out_regs[block.index] = regs
            out_preds[block.index] = preds
            new_regs, new_preds = transfer(block, regs, preds)
            if (new_regs != in_regs[block.index]
                    or new_preds != in_preds[block.index]):
                in_regs[block.index] = new_regs
                in_preds[block.index] = new_preds
                changed = True
    return out_regs, out_preds


def check_dataflow(ctx):
    """Run DF001/DF002/DF003 over a :class:`VerifyContext`."""
    if ctx.cfg is None:
        return []
    instructions = ctx.instructions
    masks = ctx.masks
    diagnostics = []

    written_preds = 0
    for __, __w, __p, pred_writes, __g in masks:
        written_preds |= pred_writes

    # DF001 / DF003 — forward walk with the maybe-defined state.
    in_regs, in_preds = _forward_defined(ctx, masks)
    for block in _block_order(ctx):
        regs = in_regs[block.index]
        preds = in_preds[block.index]
        for pc in range(block.start, block.end):
            reads, writes, pred_reads, pred_writes, __ = masks[pc]
            undefined = reads & ~regs
            if undefined:
                names = ", ".join(
                    "R{}".format(r) for r in range(64) if undefined >> r & 1)
                diagnostics.append(Diagnostic.of(
                    "DF001",
                    "{} reads {} with no reaching definition (reads the "
                    "launch-time zero)".format(
                        instructions[pc].op.value, names),
                    pc=pc, block=block.index))
            undefined_preds = pred_reads & ~preds & written_preds
            if undefined_preds:
                names = ", ".join(
                    "P{}".format(p) for p in range(4)
                    if undefined_preds >> p & 1)
                diagnostics.append(Diagnostic.of(
                    "DF003",
                    "{} reads {} before its first definition (predicates "
                    "launch as False)".format(
                        instructions[pc].op.value, names),
                    pc=pc, block=block.index))
            regs |= writes
            preds |= pred_writes

    # DF002 — backward walk with the live state.
    out_regs, out_preds = _backward_live(ctx, masks)
    for block in _block_order(ctx):
        regs = out_regs[block.index]
        preds = out_preds[block.index]
        for pc in range(block.end - 1, block.start - 1, -1):
            reads, writes, pred_reads, pred_writes, guarded = masks[pc]
            dead = writes & ~regs
            if dead:
                names = ", ".join(
                    "R{}".format(r) for r in range(64) if dead >> r & 1)
                diagnostics.append(Diagnostic.of(
                    "DF002",
                    "{} writes {} but the value is never read".format(
                        instructions[pc].op.value, names),
                    pc=pc, block=block.index))
            dead_preds = pred_writes & ~preds
            if dead_preds:
                names = ", ".join(
                    "P{}".format(p) for p in range(4) if dead_preds >> p & 1)
                diagnostics.append(Diagnostic.of(
                    "DF002",
                    "{} sets {} but the predicate is never read".format(
                        instructions[pc].op.value, names),
                    pc=pc, block=block.index))
            if not guarded:
                regs &= ~writes
                preds &= ~pred_writes
            regs |= reads
            preds |= pred_reads
    return diagnostics
