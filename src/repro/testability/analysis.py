"""Static testability engine facade (the pre-simulation triage layer).

:class:`TestabilityAnalysis` bundles the three static analyses over one
netlist + observation set — SCOAP scores, dominance collapsing, and
untestability proofs — behind the interface the compaction flow consumes:

* :meth:`TestabilityAnalysis.untestable` — provably undetectable faults
  (the ``--static-prune safe`` pruning set: removing them cannot change
  any detected-fault set);
* :meth:`TestabilityAnalysis.rank` — GIF-PO-style static detectability
  ordering of a fault worklist (easiest-to-detect first, so fault
  dropping fires as early as possible) — a pure permutation, so every
  detection set is invariant under it;
* :meth:`TestabilityAnalysis.dominance` — the id-preserving dominance
  class map for reports and ``repro analyze``.

:func:`cross_check_pruned` is the ``strict`` mode's differential oracle:
it re-simulates every pruned fault with the vectorized batch engine and
raises if any proof is ever contradicted by an actual detection.

:func:`analyze_module` produces the ``repro analyze`` report document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TestabilityError
from .dominance import collapse_dominance
from .scoap import INF, _sensitize_cost, compute_scoap, scoap_summary
from .untestable import PROOF_KINDS, UntestabilityProver

#: Valid values of the flow-level ``static_prune`` knob.
PRUNE_MODES = ("off", "safe", "strict")

#: Valid values of the flow-level ``rank`` knob (None/"none" = keep the
#: canonical fault-list order).
RANK_MODES = ("none", "scoap")


def validate_prune_mode(mode):
    """Normalize/validate a ``static_prune`` knob value."""
    if mode is None:
        return "off"
    if mode not in PRUNE_MODES:
        raise TestabilityError(
            "static_prune must be one of {}, got {!r}".format(
                "/".join(PRUNE_MODES), mode))
    return mode


def validate_rank_mode(mode):
    """Normalize/validate a ``rank`` knob value."""
    if mode is None:
        return "none"
    if mode not in RANK_MODES:
        raise TestabilityError("rank must be one of {}, got {!r}".format(
            "/".join(RANK_MODES), mode))
    return mode


class TestabilityAnalysis:
    """Static testability analyses of one netlist + observation set.

    Everything is computed lazily and cached: SCOAP and the constant map
    are one pass each, untestability proofs are one pass over the fault
    list plus per-seed implication walks, dominance is one pass over the
    gates.

    Args:
        netlist: finalized netlist.
        observed: observation-point nets (default: the primary outputs —
            module-level observability, matching
            :class:`~repro.faults.fault_sim.FaultSimulator`).
    """

    __test__ = False  # name starts with Test*; keep pytest from collecting

    def __init__(self, netlist, observed=None):
        netlist.finalize()
        self.netlist = netlist
        if observed is None:
            observed = list(netlist.outputs)
        self.observed = tuple(observed)
        self._scoap = None
        self._prover = None

    @property
    def scoap(self):
        """The :class:`~repro.testability.scoap.ScoapScores` (lazy)."""
        if self._scoap is None:
            self._scoap = compute_scoap(self.netlist, self.observed)
        return self._scoap

    @property
    def prover(self):
        """The :class:`~repro.testability.untestable.UntestabilityProver`
        (lazy)."""
        if self._prover is None:
            self._prover = UntestabilityProver(self.netlist, self.observed)
        return self._prover

    # -- untestability ----------------------------------------------------

    def prove_untestable(self, fault):
        return self.prover.prove(fault)

    def untestable(self, faults):
        """Ordered ``{fault: proof}`` over *faults* (the safe prune set)."""
        return self.prover.untestable(faults)

    # -- ranking ----------------------------------------------------------

    def fault_score(self, fault):
        """Static detectability score of one fault: controllability of
        the activating value plus observability of the site (pin faults
        fold the reading gate's sensitization cost).  Lower = easier to
        detect; :data:`~repro.testability.scoap.INF` = no sensitizable
        path under the SCOAP estimate."""
        scores = self.scoap
        activation = (scores.cc1 if fault.stuck_at == 0
                      else scores.cc0)[fault.net]
        observability = self._site_observability(fault, scores)
        return activation + observability

    def _site_observability(self, fault, scores):
        if fault.is_stem():
            return scores.co[fault.net]
        gate = self.netlist.gates[fault.gate]
        out_co = scores.co[gate.output]
        if out_co == INF:
            return INF
        return out_co + _sensitize_cost(gate.gate_type, gate.inputs,
                                        fault.pin, scores.cc0,
                                        scores.cc1) + 1

    def rank(self, faults):
        """*faults* reordered easiest-detectable-first (stable: equal
        scores keep their input order, so the permutation — and with it
        every detection set — is deterministic)."""
        indexed = list(faults)
        return sorted(indexed,
                      key=lambda f, s=self.fault_score: (s(f) == INF,
                                                         s(f)))

    # -- dominance --------------------------------------------------------

    def dominance(self, fault_list):
        """Dominance-collapse *fault_list*; see
        :func:`repro.testability.dominance.collapse_dominance`."""
        return collapse_dominance(self.netlist, fault_list, self.observed)


def cross_check_pruned(netlist, patterns, pruned, observed=None):
    """Differential oracle of ``--static-prune strict``: simulate every
    statically pruned fault and raise if any is detected.

    The vectorized batch engine is used when numpy is available (one
    array pass over the whole pruned set), the cone walk otherwise — the
    engines are bit-identical, so the oracle's verdict does not depend
    on the fallback.

    Args:
        netlist: the module netlist.
        patterns: the pattern set the main simulation used.
        pruned: iterable of statically pruned faults.
        observed: observation nets (default: primary outputs).

    Returns:
        The number of cross-checked faults.

    Raises:
        TestabilityError: a pruned fault was detected — a soundness bug
            in the static analysis (the error lists the witnesses).
    """
    from ..faults.fault import FaultList
    from ..faults.fault_sim import FaultSimulator

    pruned = list(pruned)
    if not pruned or patterns.count == 0:
        return len(pruned)
    try:
        import numpy  # noqa: F401
        engine = "batch"
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        engine = "cone"
    simulator = FaultSimulator(netlist, observed_outputs=observed,
                               engine=engine)
    result = simulator.run(patterns, FaultList(netlist, pruned))
    detected = result.detected_faults
    if detected:
        witnesses = "; ".join(f.describe(netlist) for f in detected[:5])
        raise TestabilityError(
            "static prune soundness violation: {} statically pruned "
            "fault(s) were detected by the {} engine (e.g. {})".format(
                len(detected), engine, witnesses))
    return len(pruned)


@dataclass
class TestabilityReport:
    """The ``repro analyze`` document for one module.

    JSON-serializable via :meth:`to_dict`; renders as aligned text via
    :meth:`render_text`.
    """

    __test__ = False  # name starts with Test*; keep pytest from collecting

    module: str
    gates: int
    nets: int
    observed: int
    total_faults: int
    scoap: dict
    dominance_classes: int
    dominance_collapsed_away: int
    untestable_by_kind: dict
    proofs: list = field(default_factory=list)

    @property
    def untestable_count(self):
        return sum(self.untestable_by_kind.values())

    @property
    def testable_faults(self):
        return self.total_faults - self.untestable_count

    def to_dict(self):
        return {
            "module": self.module,
            "gates": self.gates,
            "nets": self.nets,
            "observed": self.observed,
            "faults": {
                "total": self.total_faults,
                "testable": self.testable_faults,
                "untestable": self.untestable_count,
                "dominance_classes": self.dominance_classes,
                "dominance_collapsed_away": self.dominance_collapsed_away,
            },
            "scoap": _jsonable_scoap(self.scoap),
            "untestable_by_kind": dict(self.untestable_by_kind),
            "proofs": [proof.to_dict() for proof in self.proofs],
        }

    def render_text(self, netlist=None, max_proofs=20):
        lines = ["TESTABILITY {} ({} gates, {} nets, {} observed)".format(
            self.module, self.gates, self.nets, self.observed)]
        lines.append("  faults            : {} collapsed stuck-at".format(
            self.total_faults))
        lines.append("  dominance         : {} class(es), {} fault(s) "
                     "collapsed away".format(
                         self.dominance_classes,
                         self.dominance_collapsed_away))
        lines.append("  untestable        : {} proven ({})".format(
            self.untestable_count,
            ", ".join("{} {}".format(count, kind) for kind, count
                      in sorted(self.untestable_by_kind.items()))
            or "none"))
        lines.append("  testable          : {} (the safe-prune FC "
                     "denominator)".format(self.testable_faults))
        for name in ("cc0", "cc1", "co"):
            stats = self.scoap[name]
            mean = ("n/a" if stats["mean"] is None
                    else "{:.1f}".format(stats["mean"]))
            lines.append("  scoap {:<11} : max {}, mean {}, {} "
                         "unreachable".format(
                             name.upper(), stats["max"], mean,
                             stats["unreachable"]))
        shown = self.proofs[:max_proofs]
        if shown:
            lines.append("  proofs:")
            for proof in shown:
                lines.append("    {}".format(proof.render(netlist)))
            hidden = len(self.proofs) - len(shown)
            if hidden > 0:
                lines.append("    ... {} more (use --json for the full "
                             "listing)".format(hidden))
        return "\n".join(lines)


def _jsonable_scoap(summary):
    """INF-free copy of a :func:`scoap_summary` (JSON has no inf)."""
    clean = {}
    for name, stats in summary.items():
        clean[name] = {
            key: (None if value == INF else value)
            for key, value in stats.items()
        }
    return clean


def analyze_module(netlist, observed=None, name=None):
    """Run the full static testability analysis of one module netlist.

    Returns a :class:`TestabilityReport` covering SCOAP summary
    statistics, dominance classes, and every untestability proof over
    the module's collapsed fault list.
    """
    from ..faults.fault import FaultList

    analysis = TestabilityAnalysis(netlist, observed=observed)
    fault_list = FaultList(netlist)
    proofs = analysis.untestable(fault_list)
    by_kind = {}
    for proof in proofs.values():
        by_kind[proof.kind] = by_kind.get(proof.kind, 0) + 1
    dominance = analysis.dominance(fault_list)
    return TestabilityReport(
        module=name or netlist.name,
        gates=netlist.num_gates,
        nets=netlist.num_nets,
        observed=len(analysis.observed),
        total_faults=len(fault_list),
        scoap=scoap_summary(analysis.scoap),
        dominance_classes=dominance.num_classes,
        dominance_collapsed_away=dominance.num_collapsed_away,
        untestable_by_kind=by_kind,
        proofs=list(proofs.values()),
    )


__all__ = ["TestabilityAnalysis", "TestabilityReport", "analyze_module",
           "cross_check_pruned", "validate_prune_mode",
           "validate_rank_mode", "PRUNE_MODES", "RANK_MODES",
           "PROOF_KINDS"]
