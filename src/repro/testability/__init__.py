"""Static testability engine: pre-simulation triage of the fault list.

Three analyses over the levelized netlist, none of which runs a single
simulation pattern:

* :mod:`~repro.testability.scoap` — SCOAP CC0/CC1/CO testability scores
  (estimates, used for ranking);
* :mod:`~repro.testability.dominance` — dominance collapsing over
  fanout-free dominator chains (id-preserving class map, attribution
  only);
* :mod:`~repro.testability.untestable` — untestability *proofs*
  (UT001/UT002/UT003), the only analysis allowed to prune faults.

:mod:`~repro.testability.analysis` ties them together behind
:class:`TestabilityAnalysis` and the ``repro analyze`` report.
"""

from .analysis import (
    PRUNE_MODES,
    RANK_MODES,
    TestabilityAnalysis,
    TestabilityReport,
    analyze_module,
    cross_check_pruned,
    validate_prune_mode,
    validate_rank_mode,
)
from .dominance import DominanceResult, collapse_dominance
from .scoap import INF, ScoapScores, compute_scoap, scoap_summary
from .untestable import PROOF_KINDS, UntestabilityProof, UntestabilityProver, propagate_constants

__all__ = [
    "INF",
    "PROOF_KINDS",
    "PRUNE_MODES",
    "RANK_MODES",
    "DominanceResult",
    "ScoapScores",
    "TestabilityAnalysis",
    "TestabilityReport",
    "UntestabilityProof",
    "UntestabilityProver",
    "analyze_module",
    "collapse_dominance",
    "compute_scoap",
    "cross_check_pruned",
    "propagate_constants",
    "scoap_summary",
    "validate_prune_mode",
    "validate_rank_mode",
]
