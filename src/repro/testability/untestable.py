"""Untestability proofs: faults decidable without a single simulation.

Three proof families, each *sound by construction* (a proven fault can
never be detected by any pattern set, under any of the propagation
engines — the hypothesis oracle in ``tests/testability`` and the strict
cross-check in :func:`repro.testability.analysis.cross_check_pruned`
re-verify this dynamically):

* **UT001 (constant site)** — forward constant propagation from the
  tied ``CONST0``/``CONST1`` nets (plus the structural identities
  ``XOR(a, a) = 0`` / ``XNOR(a, a) = 1``) proves the fault site holds
  the stuck value under *every* pattern, so the fault is never
  activated.  Activation is a good-machine-only condition, which is
  what makes this proof unconditional.
* **UT002 (dangling cone)** — no structural path exists from the
  fault's seed net (the faulted net for stems, the reading gate's
  output for pin faults) to any observed net: nothing downstream is
  ever compared, so no difference can be detected.
* **UT003 (blocked propagation)** — a single forward implication pass
  over the seed's fanout cone proves every path to an observed net
  crosses a gate whose side input is constant at the controlling value
  *and* outside the fault's own cone (so the faulty machine cannot
  unblock it): the difference provably dies before any observation
  point.  The same rule applied to the reading gate itself proves pin
  faults whose gate output can never change.

The reconvergence caveat is load-bearing for UT003: a constant side
input *inside* the fault's cone may differ in the faulty machine, so it
never blocks — the implication pass tracks the affected-net set and only
blocks on constants that stay constant under the fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.fault import OUTPUT_PIN
from ..netlist.gates import CONTROLLING_VALUE, GateType, evaluate
from ..netlist.netlist import CONST0, CONST1

#: Proof-kind catalog: kind id -> one-line title (mirrors the verifier's
#: rule catalog in :mod:`repro.verify.diagnostics`).
PROOF_KINDS = {
    "UT001": "fault site is constant at the stuck value",
    "UT002": "no structural path from the fault site to an observed net",
    "UT003": "every propagation path is blocked by a constant side input",
}


@dataclass(frozen=True)
class UntestabilityProof:
    """One proof that a fault is undetectable (Diagnostic-style record).

    Attributes:
        kind: proof kind id from :data:`PROOF_KINDS`.
        fault: the proven :class:`~repro.faults.fault.StuckAtFault`.
        message: human-readable proof sketch for this occurrence.
    """

    kind: str
    fault: object
    message: str

    def render(self, netlist=None):
        """One-line text form: ``[UT001] net 3 s-a-0: message``."""
        return "[{}] {}: {}".format(self.kind,
                                    self.fault.describe(netlist),
                                    self.message)

    def to_dict(self):
        return {
            "kind": self.kind,
            "title": PROOF_KINDS[self.kind],
            "fault": {
                "net": self.fault.net,
                "gate": self.fault.gate,
                "pin": self.fault.pin,
                "stuck_at": self.fault.stuck_at,
            },
            "message": self.message,
        }


def propagate_constants(netlist):
    """Nets provably constant under every pattern: ``{net: 0 or 1}``.

    One forward pass over the levelized gates, seeded by the tied
    constant nets; includes the same-net structural identities
    (``XOR(a, a)``/``XNOR(a, a)``) that plain value propagation misses.
    Only gate outputs whose constancy follows from these rules are
    reported — the map is sound, not complete.
    """
    netlist.finalize()
    const = {CONST0: 0, CONST1: 1}
    for gate in netlist.levelized_gates:
        value = _constant_output(gate.gate_type, gate.inputs, const)
        if value is not None:
            const[gate.output] = value
    return const


def _constant_output(gate_type, inputs, const):
    """Constant value of a gate output, or None when not provable."""
    values = [const.get(net) for net in inputs]
    if all(v is not None for v in values):
        mask = 1
        return evaluate(gate_type, tuple(values), mask) & 1
    if gate_type in (GateType.AND, GateType.NAND):
        if 0 in values:
            return 1 if gate_type is GateType.NAND else 0
    elif gate_type in (GateType.OR, GateType.NOR):
        if 1 in values:
            return 0 if gate_type is GateType.NOR else 1
    elif gate_type in (GateType.XOR, GateType.XNOR):
        if inputs[0] == inputs[1]:
            return 1 if gate_type is GateType.XNOR else 0
    elif gate_type is GateType.MUX:
        a, b, sel = inputs
        va, vb, vsel = values
        if vsel == 0:
            return va
        if vsel == 1:
            return vb
        if va is not None and va == vb:
            return va
        if a == b:
            return va
    return None


class UntestabilityProver:
    """Static untestability analysis of one netlist + observed set.

    Args:
        netlist: finalized netlist.
        observed: observation-point nets (default: primary outputs).
        constants: optional precomputed :func:`propagate_constants` map.
    """

    def __init__(self, netlist, observed=None, constants=None):
        netlist.finalize()
        self.netlist = netlist
        if observed is None:
            observed = list(netlist.outputs)
        self.observed = tuple(observed)
        self._observed_set = frozenset(observed)
        self.constants = (constants if constants is not None
                          else propagate_constants(netlist))
        self._reach = self._structural_reach()
        # The per-seed implication pass only matters when some gate has a
        # constant side input to block on.
        self._has_blockers = any(
            net in self.constants
            for gate in netlist.gates for net in gate.inputs)
        self._affect_cache = {}

    def _structural_reach(self):
        """Per-net bool: does a structural path to any observed net
        exist?  One reverse-topological pass."""
        netlist = self.netlist
        reach = [False] * netlist.num_nets
        for net in self._observed_set:
            reach[net] = True
        for gate in reversed(netlist.levelized_gates):
            if reach[gate.output]:
                for net in gate.inputs:
                    reach[net] = True
        return reach

    # -- the per-seed implication pass ----------------------------------

    def _reaches_observed(self, seed):
        """Can a difference seeded at *seed* possibly reach an observed
        net?  One forward pass over the seed's fanout cone tracking the
        affected-net set: a gate transmits a difference from pin ``p``
        only if no *other* pin is constant at the controlling value and
        outside the affected set (result cached per seed)."""
        cached = self._affect_cache.get(seed)
        if cached is not None:
            return cached
        netlist = self.netlist
        const = self.constants
        observed = self._observed_set
        affected = {seed}
        reaches = seed in observed
        # cone_from_net returns gate indices sorted ascending = topological.
        for index in netlist.cone_from_net(seed):
            gate = netlist.gates[index]
            if self._transmits(gate, affected, const):
                affected.add(gate.output)
                if gate.output in observed:
                    reaches = True
        self._affect_cache[seed] = reaches
        return reaches

    def _transmits(self, gate, affected, const):
        """Can *gate*'s output differ, given the *affected* input nets?"""
        inputs = gate.inputs
        gate_type = gate.gate_type
        for pin, net in enumerate(inputs):
            if net not in affected:
                continue
            if not self._blocked(gate_type, inputs, pin, affected, const):
                return True
        return False

    def _blocked(self, gate_type, inputs, pin, affected, const):
        """Is the difference on input *pin* provably unable to reach the
        gate output?  A side input blocks only when it is constant at
        the controlling value AND not itself affectable (a constant
        inside the fault's cone can differ in the faulty machine)."""
        controlling = CONTROLLING_VALUE.get(gate_type)
        if controlling is not None:
            for q, other in enumerate(inputs):
                if q == pin or other in affected:
                    continue
                if const.get(other) == controlling:
                    return True
            return False
        if gate_type is GateType.MUX:
            a, b, sel = inputs
            if pin == 0:   # diff on a: invisible while sel is stuck 1
                return const.get(sel) == 1 and sel not in affected
            if pin == 1:   # diff on b: invisible while sel is stuck 0
                return const.get(sel) == 0 and sel not in affected
            # diff on sel: invisible when a and b provably agree.
            va, vb = const.get(a), const.get(b)
            if a == b and a not in affected:
                return True
            return (va is not None and va == vb
                    and a not in affected and b not in affected)
        return False   # BUF/NOT/XOR/XNOR always transmit

    # -- proofs ----------------------------------------------------------

    def prove(self, fault):
        """An :class:`UntestabilityProof` for *fault*, or None when no
        static proof applies (the fault may still be undetectable —
        these proofs are sound, not complete)."""
        const = self.constants
        site = const.get(fault.net)
        if site is not None and site == fault.stuck_at:
            return UntestabilityProof(
                "UT001", fault,
                "site is constant {} under every pattern (never "
                "activated)".format(site))

        if fault.pin == OUTPUT_PIN:
            seed = fault.net
        else:
            gate = self.netlist.gates[fault.gate]
            blocked = self._pin_gate_blocked(gate, fault.pin)
            if blocked is not None:
                return UntestabilityProof("UT003", fault, blocked)
            seed = gate.output

        if not self._reach[seed]:
            return UntestabilityProof(
                "UT002", fault,
                "net {} has no structural path to any of the {} observed "
                "net(s)".format(seed, len(self.observed)))

        if self._has_blockers and not self._reaches_observed(seed):
            return UntestabilityProof(
                "UT003", fault,
                "every path from net {} to an observed net crosses a "
                "constant-blocked gate".format(seed))
        return None

    def _pin_gate_blocked(self, gate, pin):
        """Proof message when the reading gate's output provably cannot
        change under the pin fault (side inputs carry good values for a
        pin fault, so a constant controlling side input always blocks)."""
        inputs = gate.inputs
        gate_type = gate.gate_type
        const = self.constants
        controlling = CONTROLLING_VALUE.get(gate_type)
        if controlling is not None:
            for q, other in enumerate(inputs):
                if q != pin and const.get(other) == controlling:
                    return ("side input net {} of g{} is constant {} "
                            "(controlling): the gate output never changes"
                            .format(other, gate.index, controlling))
            return None
        if gate_type is GateType.MUX:
            a, b, sel = inputs
            if pin == 0 and const.get(sel) == 1:
                return ("g{} select is constant 1: the a-input is never "
                        "visible".format(gate.index))
            if pin == 1 and const.get(sel) == 0:
                return ("g{} select is constant 0: the b-input is never "
                        "visible".format(gate.index))
            if pin == 2:
                va, vb = const.get(a), const.get(b)
                if a == b or (va is not None and va == vb):
                    return ("g{} data inputs provably agree: the select "
                            "is never visible".format(gate.index))
        return None

    def untestable(self, faults):
        """Ordered ``{fault: proof}`` for every provable fault of
        *faults*."""
        proofs = {}
        for fault in faults:
            proof = self.prove(fault)
            if proof is not None:
                proofs[fault] = proof
        return proofs
