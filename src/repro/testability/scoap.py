"""SCOAP testability measures over levelized netlists.

Sandia Controllability/Observability Analysis Program (SCOAP) scores are
the classic static pre-simulation testability metric: ``CC0(n)`` /
``CC1(n)`` estimate the effort (roughly: number of pin assignments) needed
to drive net ``n`` to 0 / 1, and ``CO(n)`` the effort to propagate a value
difference on ``n`` to an observed output.  Both are computed without a
single simulation pattern:

* controllability is one forward fixpoint over the ``net_level`` buckets
  (creation order is topological, so a single levelized pass converges);
* observability is one backward pass from the observed nets, folding the
  side-input controllabilities needed to sensitize each gate.

Scores are *estimates*, not proofs — reconvergent fanout makes SCOAP
optimistic (e.g. ``XOR(a, a)`` gets a finite CC1 although the net is
constant 0) — so the compaction flow only uses them for *ranking* the
fault worklist (:mod:`repro.testability.analysis`); untestability proofs
come from :mod:`repro.testability.untestable` instead.

:data:`INF` marks unreachable scores: a net that cannot be driven to a
value (a constant net's opposite polarity) or that no observed output can
see (a dangling cone).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultSimError
from ..netlist.gates import GateType
from ..netlist.netlist import CONST0, CONST1

#: Unreachable score (uncontrollable polarity / unobservable net).
INF = float("inf")


@dataclass(frozen=True)
class ScoapScores:
    """Net-indexed SCOAP scores of one netlist.

    Attributes:
        cc0: per-net 0-controllability (``INF``: provably or structurally
            never 0 under this estimate).
        cc1: per-net 1-controllability.
        co: per-net observability toward the ``observed`` nets (``INF``:
            no sensitizable path found).
        observed: the observation points the CO pass started from.
    """

    cc0: tuple
    cc1: tuple
    co: tuple
    observed: tuple

    def of_net(self, net):
        """``(cc0, cc1, co)`` triple of one net."""
        return (self.cc0[net], self.cc1[net], self.co[net])


def _finite(values):
    return [v for v in values if v != INF]


def scoap_summary(scores):
    """Headline statistics of a :class:`ScoapScores` (the ``repro
    analyze`` summary block): max/mean of each finite score family plus
    the count of INF (unreachable) entries."""
    summary = {}
    for name, values in (("cc0", scores.cc0), ("cc1", scores.cc1),
                         ("co", scores.co)):
        finite = _finite(values)
        summary[name] = {
            "max": max(finite) if finite else None,
            "mean": (sum(finite) / len(finite)) if finite else None,
            "unreachable": len(values) - len(finite),
        }
    return summary


def compute_scoap(netlist, observed=None):
    """Compute :class:`ScoapScores` for *netlist*.

    Args:
        netlist: a finalized :class:`~repro.netlist.netlist.Netlist`.
        observed: observation-point nets for the CO pass (default: the
            primary outputs — module-level observability, matching
            :class:`~repro.faults.fault_sim.FaultSimulator`).
    """
    netlist.finalize()
    if observed is None:
        observed = list(netlist.outputs)
    num_nets = netlist.num_nets

    cc0 = [INF] * num_nets
    cc1 = [INF] * num_nets
    cc0[CONST0], cc1[CONST0] = 1, INF
    cc0[CONST1], cc1[CONST1] = INF, 1
    for net in netlist.inputs:
        cc0[net] = cc1[net] = 1

    for gate in netlist.levelized_gates:
        out = gate.output
        cc0[out], cc1[out] = _gate_controllability(gate.gate_type,
                                                   gate.inputs, cc0, cc1)

    co = [INF] * num_nets
    for net in observed:
        co[net] = 0
    # Reverse topological: creation order is topological, so the reverse
    # walk sees every gate after all of its fanout gates.
    for gate in reversed(netlist.levelized_gates):
        out_co = co[gate.output]
        if out_co == INF:
            continue
        for pin in range(len(gate.inputs)):
            pin_co = out_co + _sensitize_cost(gate.gate_type, gate.inputs,
                                              pin, cc0, cc1) + 1
            net = gate.inputs[pin]
            if pin_co < co[net]:
                co[net] = pin_co
    return ScoapScores(cc0=tuple(cc0), cc1=tuple(cc1), co=tuple(co),
                       observed=tuple(observed))


def _gate_controllability(gate_type, inputs, cc0, cc1):
    """``(cc0, cc1)`` of one gate output from its input scores."""
    if gate_type is GateType.BUF:
        a = inputs[0]
        return cc0[a] + 1, cc1[a] + 1
    if gate_type is GateType.NOT:
        a = inputs[0]
        return cc1[a] + 1, cc0[a] + 1
    if gate_type is GateType.AND:
        a, b = inputs
        return min(cc0[a], cc0[b]) + 1, cc1[a] + cc1[b] + 1
    if gate_type is GateType.NAND:
        a, b = inputs
        return cc1[a] + cc1[b] + 1, min(cc0[a], cc0[b]) + 1
    if gate_type is GateType.OR:
        a, b = inputs
        return cc0[a] + cc0[b] + 1, min(cc1[a], cc1[b]) + 1
    if gate_type is GateType.NOR:
        a, b = inputs
        return min(cc1[a], cc1[b]) + 1, cc0[a] + cc0[b] + 1
    if gate_type is GateType.XOR:
        a, b = inputs
        return (min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1,
                min(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1)
    if gate_type is GateType.XNOR:
        a, b = inputs
        return (min(cc0[a] + cc1[b], cc1[a] + cc0[b]) + 1,
                min(cc0[a] + cc0[b], cc1[a] + cc1[b]) + 1)
    if gate_type is GateType.MUX:
        a, b, sel = inputs
        return (min(cc0[sel] + cc0[a], cc1[sel] + cc0[b]) + 1,
                min(cc0[sel] + cc1[a], cc1[sel] + cc1[b]) + 1)
    raise FaultSimError("unknown gate type {!r}".format(gate_type))


def _sensitize_cost(gate_type, inputs, pin, cc0, cc1):
    """Side-input controllability cost of propagating a difference from
    input *pin* to the gate output (the CO folding term)."""
    if gate_type in (GateType.BUF, GateType.NOT):
        return 0
    if gate_type in (GateType.AND, GateType.NAND):
        return sum(cc1[net] for q, net in enumerate(inputs) if q != pin)
    if gate_type in (GateType.OR, GateType.NOR):
        return sum(cc0[net] for q, net in enumerate(inputs) if q != pin)
    if gate_type in (GateType.XOR, GateType.XNOR):
        return sum(min(cc0[net], cc1[net])
                   for q, net in enumerate(inputs) if q != pin)
    if gate_type is GateType.MUX:
        a, b, sel = inputs
        if pin == 0:            # a visible while sel = 0
            return cc0[sel]
        if pin == 1:            # b visible while sel = 1
            return cc1[sel]
        # sel visible only when a and b differ.
        return min(cc0[a] + cc1[b], cc1[a] + cc0[b])
    raise FaultSimError("unknown gate type {!r}".format(gate_type))
