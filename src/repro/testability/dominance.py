"""Dominance collapsing over fanout-free dominator chains.

The structural equivalence collapsing of
:func:`repro.faults.fault.enumerate_faults` only removes *input-pin*
faults; the stem faults along a fanout-free chain remain individually
listed even though classic fault-collapsing theory relates them:

* for a gate with a controlling value ``c`` (AND/NAND/OR/NOR) whose
  input net ``a`` is **fanout-free** (read by this gate only, not
  observed), the stem fault ``a s-a-c`` is *equivalent* to the output
  stem fault at the controlled response — identical detection sets;
* the output stem fault at the *opposite* response **dominates**
  ``a s-a-(1-c)``: every test for the input fault also detects the
  output fault (the input fault's activation forces the output to flip
  the same way).  BUF/NOT chains are pure equivalences.

Collapsing keeps only the **dominated representative** of each class —
the member closest to the primary inputs, whose detection implies the
detection of every other member — and records an id-preserving class
map so reports can still attribute every original fault.  The class map
is *attribution* machinery, not a pruning proof: a pattern set that
misses the representative may still detect a dominator, so the
compaction flow never drops dominated classes from the simulated list
(only proven-untestable faults are pruned; see
:mod:`repro.testability.untestable`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.fault import OUTPUT_PIN, StuckAtFault, fault_sort_key
from ..netlist.gates import CONTROLLING_VALUE, GateType, is_inverting


@dataclass
class DominanceResult:
    """Outcome of :func:`collapse_dominance`.

    Attributes:
        fault_list: the analyzed fault collection (iteration order is
            preserved everywhere below).
        representative: ``{fault: representative}`` for **every** fault
            (identity mapping for class representatives) — the
            id-preserving class map.
        classes: ``{representative: [members...]}`` in fault-list order;
            singleton classes included.
    """

    fault_list: object
    representative: dict
    classes: dict

    @property
    def num_classes(self):
        return len(self.classes)

    @property
    def collapsed(self):
        """The kept representatives, in fault-list order."""
        return [f for f in self.fault_list
                if self.representative[f] is f]

    @property
    def num_collapsed_away(self):
        return len(self.representative) - self.num_classes

    def members_of(self, fault):
        """Every original fault sharing *fault*'s class."""
        return self.classes[self.representative[fault]]


def _stem_links(netlist, observed_set):
    """Yield ``(removed_stem, kept_stem)`` link pairs over fanout-free
    dominator chains.  ``kept`` is always the gate-input side (closer to
    the primary inputs), so chains resolve transitively toward PIs."""
    for gate in netlist.gates:
        out = gate.output
        driver = gate.index
        if gate.gate_type in (GateType.BUF, GateType.NOT):
            candidates = [(0, True)]       # (pin, both_values_equivalent)
        elif gate.gate_type in CONTROLLING_VALUE:
            candidates = [(pin, False) for pin in range(len(gate.inputs))]
        else:
            continue                       # XOR/XNOR/MUX: no chain rule
        for pin, is_buffer in candidates:
            net = gate.inputs[pin]
            if net in observed_set:
                continue
            if len(netlist.fanout_gates(net)) != 1:
                continue
            in_driver = netlist.driver_of(net)
            if in_driver is None and net not in netlist.inputs:
                continue                   # tied constant pin
            inverting = is_inverting(gate.gate_type)
            if is_buffer:
                pairs = [(value, value ^ (1 if inverting else 0))
                         for value in (0, 1)]
            else:
                c = CONTROLLING_VALUE[gate.gate_type]
                response = c ^ (1 if inverting else 0)
                # Equivalence: input s-a-c == output s-a-response;
                # dominance: output s-a-(1-response) covers input
                # s-a-(1-c).  Both links keep the input-side fault.
                pairs = [(c, response), (1 - c, 1 - response)]
            for in_value, out_value in pairs:
                kept = StuckAtFault(net, in_driver, OUTPUT_PIN, in_value)
                removed = StuckAtFault(out, driver, OUTPUT_PIN, out_value)
                yield removed, kept


def collapse_dominance(netlist, fault_list, observed=None):
    """Collapse *fault_list* along fanout-free dominator chains.

    Args:
        netlist: the finalized netlist the faults belong to.
        fault_list: iterable of :class:`~repro.faults.fault.StuckAtFault`
            (typically a collapsed :class:`~repro.faults.fault.FaultList`).
        observed: observation-point nets (default: primary outputs);
            a net that is itself observed breaks the chain through it.

    Returns:
        A :class:`DominanceResult` whose class map covers every input
        fault.  Faults absent from *fault_list* never join a class, so
        the map is closed over the given list.
    """
    netlist.finalize()
    if observed is None:
        observed = list(netlist.outputs)
    observed_set = set(observed)
    # Map equal-by-value link endpoints back to the fault list's own
    # instances, so the class map satisfies identity (`rep is fault`)
    # checks, not just equality.
    present = {fault: fault for fault in fault_list}

    parent = {}
    for removed, kept in _stem_links(netlist, observed_set):
        # First link wins: an output stem reachable through several
        # fanout-free pins joins exactly one class, deterministically
        # (gate order, then pin order).  Links always point from a gate
        # output to one of its input nets, so chains cannot cycle.
        if removed in present and kept in present and removed not in parent:
            parent[removed] = present[kept]

    def resolve(fault):
        chain = []
        while fault in parent:
            chain.append(fault)
            fault = parent[fault]
        for link in chain:       # path compression
            parent[link] = fault
        return fault

    representative = {}
    classes = {}
    for fault in fault_list:
        rep = resolve(fault)
        representative[fault] = rep
        classes.setdefault(rep, []).append(fault)
    # Deterministic class listing: members already in fault-list order;
    # order the classes by their representative's sort key.
    ordered = {rep: classes[rep]
               for rep in sorted(classes, key=fault_sort_key)}
    return DominanceResult(fault_list=fault_list,
                           representative=representative,
                           classes=ordered)
