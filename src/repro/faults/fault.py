"""Single stuck-at fault model over gate-level netlists.

Fault sites are gate output nets, primary-input nets, and gate input pins.
Structural equivalence collapsing removes input-pin faults that are
equivalent to the gate's output fault (e.g. any AND input stuck-at-0 is
equivalent to the output stuck-at-0), matching the collapsed stuck-at lists
commercial fault simulators produce for standard-cell netlists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultSimError
from ..netlist.gates import CONTROLLING_VALUE, GateType
from ..netlist.netlist import CONST0, CONST1

#: Pin index meaning "the gate's output" in a fault site.
OUTPUT_PIN = -1


@dataclass(frozen=True)
class StuckAtFault:
    """One collapsed single stuck-at fault.

    Attributes:
        net: the faulted net (for pin faults, the net the pin reads).
        gate: reading gate index for input-pin faults; driving gate index (or
            None for primary inputs) for output/stem faults.
        pin: input pin position within ``gate``, or :data:`OUTPUT_PIN`.
        stuck_at: 0 or 1.
    """

    net: int
    gate: object  # int or None
    pin: int
    stuck_at: int

    def is_stem(self):
        """True for output/primary-input (stem) faults."""
        return self.pin == OUTPUT_PIN

    def describe(self, netlist=None):
        """Human-readable site description, e.g. ``net 12 (g5.in0) s-a-1``."""
        name = ""
        if netlist is not None and self.net in netlist.net_names:
            name = " ({})".format(netlist.net_names[self.net])
        if self.is_stem():
            site = "net {}{}".format(self.net, name)
        else:
            site = "net {}{} @ g{}.in{}".format(self.net, name, self.gate,
                                                self.pin)
        return "{} s-a-{}".format(site, self.stuck_at)


def fault_sort_key(fault):
    """Deterministic ordering key (gate may be None for PI stems)."""
    return (fault.net, fault.pin, fault.stuck_at,
            -1 if fault.gate is None else fault.gate)


def enumerate_faults(netlist, collapse=True):
    """Enumerate the (optionally collapsed) stuck-at fault list of *netlist*.

    Returns a deterministic, sorted list of :class:`StuckAtFault`.

    Collapsing rules (when *collapse*):

    * BUF/NOT input faults are dropped (equivalent to the output fault, with
      inversion for NOT).
    * For AND/NAND (OR/NOR), input stuck-at-controlling faults are dropped —
      they are equivalent to the output stuck-at the controlled response.
    * Input pins on fanout-free nets keep only the stem fault of the driving
      net (the pin fault is indistinguishable from the stem fault).
    """
    netlist.finalize()
    faults = []

    # Stem faults: every primary input and every gate output.
    for net in netlist.inputs:
        for value in (0, 1):
            faults.append(StuckAtFault(net, None, OUTPUT_PIN, value))
    for gate in netlist.gates:
        for value in (0, 1):
            faults.append(StuckAtFault(gate.output, gate.index, OUTPUT_PIN,
                                       value))

    # Input-pin faults.
    for gate in netlist.gates:
        for pin, net in enumerate(gate.inputs):
            if net in (CONST0, CONST1):
                continue  # tied pins are untestable sites
            fanout = len(netlist.fanout_gates(net)) + (
                1 if net in netlist.outputs else 0)
            for value in (0, 1):
                if collapse:
                    if gate.gate_type in (GateType.BUF, GateType.NOT):
                        continue
                    controlling = CONTROLLING_VALUE.get(gate.gate_type)
                    if controlling is not None and value == controlling:
                        continue
                    if fanout <= 1 and gate.gate_type is not GateType.MUX:
                        # Fanout-free: pin fault == stem fault of the net.
                        continue
                faults.append(StuckAtFault(net, gate.index, pin, value))
    return sorted(faults, key=fault_sort_key)


class FaultList:
    """Ordered collection of faults with stable integer ids.

    Args:
        netlist: the finalized netlist the faults belong to.
        faults: explicit fault collection (default: the collapsed
            enumeration of *netlist*).
        collapse: apply structural equivalence collapsing when
            enumerating (ignored when *faults* is given).
        prune: static-prune mode (``"off"``/``"safe"``/``"strict"``).
            Any mode but ``"off"`` removes the provably-untestable
            faults (see :mod:`repro.testability.untestable`) into
            :attr:`pruned`, with their proofs in :attr:`proofs`; the
            strict-mode differential cross-check lives at the pipeline
            layer, the list itself prunes identically in both modes.
        rank: worklist ordering (``None``/``"none"``: enumeration
            order; ``"scoap"``: static detectability rank,
            easiest-to-detect first).
        observed: observation nets for pruning/ranking (default: the
            netlist's primary outputs).
    """

    def __init__(self, netlist, faults=None, collapse=True, prune="off",
                 rank=None, observed=None):
        netlist.finalize()
        self.netlist = netlist
        if faults is None:
            faults = enumerate_faults(netlist, collapse=collapse)
        self.faults = list(faults)
        self.pruned = []
        self.proofs = {}
        self.prune_mode, self.rank_mode = self._triage(prune, rank, observed)
        self._ids = {fault: i for i, fault in enumerate(self.faults)}
        if len(self._ids) != len(self.faults):
            raise FaultSimError("duplicate faults in fault list")

    def _triage(self, prune, rank, observed):
        """Apply the static-testability knobs (lazy import keeps the
        default path free of the testability subsystem)."""
        if prune in (None, "off") and rank in (None, "none"):
            return "off", "none"
        from ..testability.analysis import (
            TestabilityAnalysis,
            validate_prune_mode,
            validate_rank_mode,
        )
        prune = validate_prune_mode(prune)
        rank = validate_rank_mode(rank)
        analysis = TestabilityAnalysis(self.netlist, observed=observed)
        if prune != "off":
            self.proofs = analysis.untestable(self.faults)
            self.pruned = list(self.proofs)
            self.faults = [f for f in self.faults if f not in self.proofs]
        if rank == "scoap":
            self.faults = analysis.rank(self.faults)
        return prune, rank

    def __len__(self):
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __getitem__(self, idx):
        return self.faults[idx]

    def id_of(self, fault):
        return self._ids[fault]

    def without(self, detected):
        """New :class:`FaultList` minus the *detected* faults."""
        detected = set(detected)
        remaining = [f for f in self.faults if f not in detected]
        return FaultList(self.netlist, remaining)
