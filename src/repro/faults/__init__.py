"""Stuck-at fault machinery: fault lists, fault simulation, dropping, ATPG.

This package replaces the commercial gate-level fault simulator and ATPG of
the paper's flow (Section III stage 3 and the TPGEN/SFU_IMM generators).
"""

from .atpg import AtpgResult, PodemEngine, run_atpg
from .dropping import FaultListReport
from .fault import OUTPUT_PIN, FaultList, StuckAtFault, enumerate_faults
from .fault_sim import ENGINES, FaultSimResult, FaultSimulator
from .propagate import EventDrivenEngine, PropagationSchedule
from .transition import (
    FALL,
    RISE,
    TransitionFault,
    TransitionFaultSimulator,
    enumerate_transition_faults,
)

__all__ = [
    "StuckAtFault", "FaultList", "enumerate_faults", "OUTPUT_PIN",
    "FaultSimulator", "FaultSimResult", "FaultListReport", "ENGINES",
    "EventDrivenEngine", "PropagationSchedule",
    "PodemEngine", "run_atpg", "AtpgResult",
    "TransitionFault", "TransitionFaultSimulator",
    "enumerate_transition_faults", "RISE", "FALL",
]
