"""Vectorized fault-batch simulation (the ``engine="batch"`` backend).

The cone and event engines both pay the Python interpreter once per gate
per fault.  This module compiles the work into flat numpy programs instead
(the GATSPI/CCSS idea scaled down to word-ops): faults are clustered into
*batches* of up to :data:`DEFAULT_ROWS` rows, the union of the batch's
fanout cones is compiled once into per-(level, opcode) **waves** of fused
array operations, and one pass over those waves simulates every fault of
the batch simultaneously over the whole pattern set.

The data layout is a 3-D array ``d[slot, row, limb]`` of little-endian
uint64 limbs — slot = a net of the compiled program, row = one fault of
the batch, limb = 64 packed patterns — holding the **difference domain**
``faulty XOR good``.  Working in the diff domain is what keeps the
programs small:

* a quiescent net is all-zero, so untouched inputs read from one shared
  zero slot and no good-machine broadcast copies are ever made;
* inverters cancel (``~a ^ ~b == a ^ b``), so BUF/NOT gates are pure
  copies and are eliminated entirely by aliasing their output slot to
  their input slot, and NAND/NOR/XNOR share the AND/OR/XOR kernels;
* AND/OR need only the per-gate good words as broadcast constants:
  ``d_out = ((d0^g0) & (d1^g1)) ^ (g0&g1)`` (dually for OR), both
  constants precomputed at compile time.

A fault is injected by forcing ``seed_value XOR good`` into its seed
net's slot at its row — re-forced right after the wave containing the
seed's driver gate, so a seed inside another row's cone keeps its stuck
value.  Detection words are the OR of the observed slots; bit-identity
with ``cone``/``event`` follows because every gate still evaluates the
exact packed function of the exact packed inputs, just many faults at a
time (the differential oracle in ``tests/exec/test_differential.py``
checks this).

Rows are ordered by the bitmask of observation points their seed reaches
(``out_mask``) so batch members share cones and the per-batch union stays
close to the per-fault cone sizes.  Compiled programs are cached per
``(targets, seed set)`` and whole prepared runs per ``(patterns, fault
tuple)``, which is what makes warm re-runs (benchmark repeats, pooled
chunk streams over one pattern set) almost pure array math.

numpy is imported lazily and guarded: constructing a
:class:`BatchFaultEngine` without numpy raises
:class:`~repro.errors.FaultSimError` (the other engines keep working).
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import FaultSimError
from .fault import OUTPUT_PIN
from .propagate import (
    _AND,
    _BUF,
    _MUX,
    _NAND,
    _NOR,
    _NOT,
    _OR,
    _XNOR,
    _XOR,
    PropagationSchedule,
    evaluate_opcode,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Default fault rows per batch.  Measured sweet spot on the benchmark
#: workload: below ~24 the per-wave numpy call overhead dominates, above
#: ~64 the union-of-cones grows faster than the row parallelism pays.
DEFAULT_ROWS = 32

#: Fused kernel selectors (waves carry one of these).
_K_COPY, _K_XOR, _K_AND, _K_OR, _K_MUX = range(5)

_KERNEL = {
    _BUF: _K_COPY, _NOT: _K_COPY,
    _AND: _K_AND, _NAND: _K_AND,
    _OR: _K_OR, _NOR: _K_OR,
    _XOR: _K_XOR, _XNOR: _K_XOR,
    _MUX: _K_MUX,
}


class _PatternState:
    """Per-pattern-set packed arrays shared by every batch run."""

    __slots__ = ("count", "mask", "limbs", "last_mask", "good_mat",
                 "good_list")

    def __init__(self, patterns, good, num_nets):
        self.count = patterns.count
        self.mask = patterns.mask
        self.limbs = max(1, -(-patterns.count // 64))
        rem = patterns.count % 64
        self.last_mask = _np.uint64((1 << rem) - 1 if rem
                                    else 0xFFFFFFFFFFFFFFFF)
        good_list = [0] * num_nets
        for net, value in good.items():
            good_list[net] = value
        self.good_list = good_list
        width = self.limbs * 8
        blob = b"".join(value.to_bytes(width, "little")
                        for value in good_list)
        self.good_mat = _np.frombuffer(blob, dtype="<u8").reshape(
            num_nets, self.limbs).copy()


class _Wave:
    """One fused (level, kernel) group of gates."""

    __slots__ = ("kernel", "lin0", "lin1", "lin2", "o0", "o1",
                 "g0", "g1", "g2", "gx")


class _Program:
    """Compiled evaluation program for one (targets, seed set) union."""

    __slots__ = ("waves", "gate_wave", "slot", "alias", "nslots",
                 "dedicated", "kmax", "gate_count")

    def slot_of(self, net):
        """Final slot of *net* (0 = the shared zero slot)."""
        alias = self.alias
        while net in alias:
            net = alias[net]
        return self.slot.get(net, 0)


class _PreparedRun:
    """Everything one run needs beyond the diff arrays themselves."""

    __slots__ = ("batches", "maxslots", "maxbuf", "pruned", "pruned_gates",
                 "inactive", "gate_rows", "faults", "fold_key")


class BatchFaultEngine:
    """Compiles and runs vectorized fault batches for one netlist.

    One engine per :class:`~repro.faults.fault_sim.FaultSimulator`; all
    caches (cones, observation masks, compiled programs, the last
    prepared run) live for the simulator's lifetime.

    Args:
        netlist: finalized netlist.
        rows: fault rows per batch (:data:`DEFAULT_ROWS`).
    """

    def __init__(self, netlist, rows=DEFAULT_ROWS):
        if _np is None:
            raise FaultSimError(
                "engine='batch' requires numpy, which is not installed; "
                "use engine='event' or engine='cone'")
        if not isinstance(rows, int) or rows < 1:
            raise FaultSimError(
                "batch rows must be a positive integer, got {!r}"
                .format(rows))
        self.schedule = PropagationSchedule(netlist)
        self.rows = rows
        self._driver = {out: gate for gate, out in
                        enumerate(self.schedule.gate_output)}
        self._cones = {}       # net -> frozenset of fanout gate indices
        self._out_masks = {}   # targets -> per-net observation bitmask
        self._programs = {}    # (targets, seed frozenset) -> _Program
        self._prepared = None  # single-slot cache of the last prepared run

    # -- static structure ------------------------------------------------

    def _cone_gates(self, net):
        cone = self._cones.get(net)
        if cone is None:
            schedule = self.schedule
            gate_output = schedule.gate_output
            seen = set()
            frontier = [net]
            while frontier:
                for gate in schedule.fanout[frontier.pop()]:
                    if gate not in seen:
                        seen.add(gate)
                        frontier.append(gate_output[gate])
            cone = frozenset(seen)
            self._cones[net] = cone
        return cone

    def _out_mask(self, targets):
        """Per-net bitmask of which *targets* the net can reach — the row
        clustering key (seeds sharing observation points share cones)."""
        masks = self._out_masks.get(targets)
        if masks is None:
            schedule = self.schedule
            masks = [0] * self.schedule.netlist.num_nets
            for i, net in enumerate(sorted(targets)):
                masks[net] |= 1 << i
            gate_output = schedule.gate_output
            gate_inputs = schedule.gate_inputs
            for gate in range(len(gate_output) - 1, -1, -1):
                mask = masks[gate_output[gate]]
                if mask:
                    for net in gate_inputs[gate]:
                        masks[net] |= mask
            self._out_masks[targets] = masks
        return masks

    # -- compilation -----------------------------------------------------

    def _compile(self, targets, seed_key):
        """Compiled wave program for the union of *seed_key*'s cones,
        trimmed to gates that can still reach *targets*; cached."""
        cache_key = (targets, seed_key)
        program = self._programs.get(cache_key)
        if program is not None:
            return program
        schedule = self.schedule
        opcode = schedule.opcode
        gate_inputs = schedule.gate_inputs
        gate_output = schedule.gate_output
        reach = schedule.reach_from(targets)
        union = set()
        for seed in seed_key:
            union.update(self._cone_gates(seed))
        gates = sorted(g for g in union if reach[gate_output[g]])
        gateset = set(gates)
        # Seed nets forced on their driver's wave must keep a concrete
        # slot, so their BUF/NOT drivers cannot be alias-eliminated.
        protected = frozenset(s for s in seed_key if s in self._driver)

        program = _Program()
        slot = {}
        nxt = 1                       # slot 0 = the shared zero slot
        for seed in sorted(seed_key):
            driver = self._driver.get(seed)
            if driver is None or driver not in gateset:
                slot[seed] = nxt
                nxt += 1
        program.dedicated = nxt

        groups = defaultdict(list)
        alias = {}
        for gate in gates:
            code = opcode[gate]
            if code in (_BUF, _NOT) and gate_output[gate] not in protected:
                alias[gate_output[gate]] = gate_inputs[gate][0]
                continue
            groups[(schedule.gate_level[gate], _KERNEL[code])].append(gate)

        gate_wave = {}
        meta = []
        for (level, kernel), members in sorted(groups.items()):
            start = nxt
            for gate in members:
                slot[gate_output[gate]] = nxt
                nxt += 1
                gate_wave[gate] = len(meta)
            meta.append((kernel, members, start, nxt))

        program.slot = slot
        program.alias = alias
        program.nslots = nxt
        program.gate_wave = gate_wave
        program.gate_count = len(gates)
        program.waves = meta          # finalized per pattern set lazily
        program.kmax = max((stop - start for __, __, start, stop in meta),
                           default=1)
        self._programs[cache_key] = program
        return program

    def _bind_waves(self, program, state):
        """Materialize a program's wave arrays against one pattern set's
        good-machine constants (:class:`_Wave` list)."""
        schedule = self.schedule
        gate_inputs = schedule.gate_inputs
        gate_output = schedule.gate_output
        good_mat = state.good_mat
        slot_of = program.slot_of
        waves = []
        for kernel, members, start, stop in program.waves:
            wave = _Wave()
            wave.kernel = kernel
            wave.o0 = start
            wave.o1 = stop
            wave.lin0 = _np.array([slot_of(gate_inputs[g][0])
                                   for g in members], dtype=_np.intp)
            in0 = _np.array([gate_inputs[g][0] for g in members],
                            dtype=_np.intp)
            if kernel in (_K_AND, _K_OR, _K_MUX):
                wave.g0 = good_mat[in0][:, None, :]
            if kernel != _K_COPY:
                wave.lin1 = _np.array([slot_of(gate_inputs[g][1])
                                       for g in members], dtype=_np.intp)
                in1 = _np.array([gate_inputs[g][1] for g in members],
                                dtype=_np.intp)
                if kernel != _K_XOR:
                    wave.g1 = good_mat[in1][:, None, :]
            if kernel == _K_AND:
                wave.gx = (good_mat[in0] & good_mat[in1])[:, None, :]
            elif kernel == _K_OR:
                wave.gx = (good_mat[in0] | good_mat[in1])[:, None, :]
            elif kernel == _K_MUX:
                wave.lin2 = _np.array([slot_of(gate_inputs[g][2])
                                       for g in members], dtype=_np.intp)
                wave.g2 = good_mat[_np.array(
                    [gate_inputs[g][2] for g in members],
                    dtype=_np.intp)][:, None, :]
                wave.gx = good_mat[_np.array(
                    [gate_output[g] for g in members],
                    dtype=_np.intp)][:, None, :]
            waves.append(wave)
        return waves

    # -- run preparation -------------------------------------------------

    def _seed_assignment(self, fault, state):
        """(seed net, packed faulty seed value) or (net, None) when the
        fault is not excited — identical activation semantics to
        :meth:`EventDrivenEngine.seed_value`."""
        schedule = self.schedule
        good_list = state.good_list
        stuck = state.mask if fault.stuck_at else 0
        if fault.pin == OUTPUT_PIN:
            if stuck == good_list[fault.net]:
                return fault.net, None
            return fault.net, stuck
        gate = fault.gate
        values = [good_list[net] for net in schedule.gate_inputs[gate]]
        values[fault.pin] = stuck
        out = evaluate_opcode(schedule.opcode[gate], values, state.mask)
        net = schedule.gate_output[gate]
        if out == good_list[net]:
            return net, None
        return net, out

    def _prepare(self, fault_list, state, targets, observed, fold_word):
        """Batched run plan for *fault_list*; cached on (patterns, fault
        tuple, targets, fold) so warm repeats skip all Python set work."""
        faults = tuple(fault_list)
        fold_key = tuple(fold_word) if fold_word is not None else None
        cached = self._prepared
        if (cached is not None and cached[0] is state
                and cached[1] == targets and cached[2].fold_key == fold_key
                and cached[2].faults == faults):
            return cached[2]

        schedule = self.schedule
        reach = schedule.reach_from(targets)
        out_mask = self._out_mask(targets)
        good_list = state.good_list
        limbs = state.limbs
        width = limbs * 8
        rows_per_batch = self.rows

        prepared = _PreparedRun()
        prepared.faults = faults
        prepared.fold_key = fold_key
        prepared.pruned = 0
        prepared.pruned_gates = 0
        prepared.inactive = 0

        rows = []
        for index, fault in enumerate(faults):
            seed = schedule.seed_net(fault)
            if not reach[seed]:
                prepared.pruned += 1
                prepared.pruned_gates += schedule.cone_size(seed)
                continue
            seed, value = self._seed_assignment(fault, state)
            if value is None:
                prepared.inactive += 1
                continue
            rows.append((index, seed, value))
        rows.sort(key=lambda row: (out_mask[row[1]], row[1], row[0]))

        observed = set(observed)
        batches = []
        gate_rows = 0
        for start in range(0, len(rows), rows_per_batch):
            batch = rows[start:start + rows_per_batch]
            live = len(batch)
            # Pad to full width with copies of the last row: every array
            # op then runs over one fixed shape (padded rows are never
            # read back).
            padded = batch + [batch[-1]] * (rows_per_batch - live)
            seed_key = frozenset(seed for __, seed, __v in batch)
            program = self._compile(targets, seed_key)
            waves = self._bind_waves(program, state)
            gate_rows += program.gate_count * live

            blob = b"".join((value ^ good_list[seed]).to_bytes(
                width, "little") for __, seed, value in padded)
            forces = _np.frombuffer(blob, dtype="<u8").reshape(
                rows_per_batch, limbs)
            init_slots, init_rows = [], []
            wave_forces = defaultdict(lambda: ([], []))
            for row, (__, seed, __v) in enumerate(padded):
                driver = self._driver.get(seed)
                wave = (program.gate_wave.get(driver)
                        if driver is not None else None)
                if wave is None:
                    init_slots.append(program.slot[seed])
                    init_rows.append(row)
                else:
                    slots, rws = wave_forces[wave]
                    slots.append(program.slot[seed])
                    rws.append(row)
            init = (_np.array(init_slots, dtype=_np.intp),
                    _np.array(init_rows, dtype=_np.intp))
            forced = {wave: (_np.array(slots, dtype=_np.intp),
                             _np.array(rws, dtype=_np.intp))
                      for wave, (slots, rws) in wave_forces.items()}

            obs_slots = sorted({s for s in (program.slot_of(net)
                                            for net in observed) if s})
            obs = _np.array(obs_slots, dtype=_np.intp)
            fold_slots = None
            if fold_word is not None:
                fold_slots = _np.array(
                    [program.slot_of(net) for net in fold_word],
                    dtype=_np.intp)
            out_index = [index for index, __, __v in batch]
            batches.append((program, waves, forces, init, forced, obs,
                            fold_slots, out_index, live))

        prepared.batches = batches
        prepared.gate_rows = gate_rows
        prepared.maxslots = max((b[0].nslots for b in batches), default=1)
        prepared.maxbuf = max((b[0].kmax for b in batches), default=1)
        self._prepared = (state, targets, prepared)
        return prepared

    # -- the run ---------------------------------------------------------

    def run(self, fault_list, state, targets, observed, stats,
            fold_word=None):
        """Simulate *fault_list* and return ``(words, diffs)``.

        Args:
            fault_list: faults to simulate (any iterable order is kept).
            state: :class:`_PatternState` from :meth:`pattern_state`.
            targets: frozenset of nets whose reachability keeps a fault
                alive (observation points, plus the fold word under SpT).
            observed: nets whose diff ORs into the detection word.
            stats: the simulator's counter dict (mutated in place).
            fold_word: optional result-bus net list; when given, the
                second return value holds per-fault ``[(i, diff), ...]``
                lists in fold-word order, else None.

        Returns:
            ``(detection_words, fold_diffs_or_None)`` in fault-list order.
        """
        prepared = self._prepare(fault_list, state, targets, observed,
                                 fold_word)
        stats["faults_pruned"] += prepared.pruned
        stats["gates_skipped"] += prepared.pruned_gates
        stats["faults_inactive"] += prepared.inactive
        stats["gates_evaluated"] += prepared.gate_rows
        stats["gates_visited"] += prepared.gate_rows
        stats["batches"] = stats.get("batches", 0) + len(prepared.batches)

        words = [0] * len(prepared.faults)
        diffs = ([[] for __ in prepared.faults]
                 if fold_word is not None else None)
        if not prepared.batches:
            return words, diffs

        rows = self.rows
        limbs = state.limbs
        d = _np.empty((prepared.maxslots, rows, limbs), dtype="<u8")
        d[0] = 0
        buf_a = _np.empty((prepared.maxbuf, rows, limbs), dtype="<u8")
        buf_b = _np.empty((prepared.maxbuf, rows, limbs), dtype="<u8")
        buf_c = _np.empty((prepared.maxbuf, rows, limbs), dtype="<u8")
        byte_width = limbs * 8

        for (program, waves, forces, init, forced, obs, fold_slots,
             out_index, live) in prepared.batches:
            if program.dedicated > 1:
                # Dedicated seed slots keep stale rows from the previous
                # batch (only their own rows are forced); quiesce them.
                d[1:program.dedicated] = 0
            if len(init[0]):
                d[init] = forces[init[1]]
            for index, wave in enumerate(waves):
                k = wave.o1 - wave.o0
                out = d[wave.o0:wave.o1]
                kernel = wave.kernel
                if kernel == _K_COPY:
                    _np.take(d, wave.lin0, axis=0, out=out)
                elif kernel == _K_XOR:
                    a = _np.take(d, wave.lin0, axis=0, out=buf_a[:k])
                    b = _np.take(d, wave.lin1, axis=0, out=buf_b[:k])
                    _np.bitwise_xor(a, b, out=out)
                elif kernel == _K_AND:
                    a = _np.take(d, wave.lin0, axis=0, out=buf_a[:k])
                    a ^= wave.g0
                    b = _np.take(d, wave.lin1, axis=0, out=buf_b[:k])
                    b ^= wave.g1
                    _np.bitwise_and(a, b, out=out)
                    out ^= wave.gx
                elif kernel == _K_OR:
                    a = _np.take(d, wave.lin0, axis=0, out=buf_a[:k])
                    a ^= wave.g0
                    b = _np.take(d, wave.lin1, axis=0, out=buf_b[:k])
                    b ^= wave.g1
                    _np.bitwise_or(a, b, out=out)
                    out ^= wave.gx
                else:  # _K_MUX: absolute-value select, back to diff domain
                    a = _np.take(d, wave.lin0, axis=0, out=buf_a[:k])
                    a ^= wave.g0
                    b = _np.take(d, wave.lin1, axis=0, out=buf_b[:k])
                    b ^= wave.g1
                    sel = _np.take(d, wave.lin2, axis=0, out=buf_c[:k])
                    sel ^= wave.g2
                    _np.bitwise_and(b, sel, out=b)
                    _np.bitwise_not(sel, out=sel)
                    _np.bitwise_and(a, sel, out=a)
                    _np.bitwise_or(a, b, out=out)
                    out ^= wave.gx
                if index in forced:
                    slots, rws = forced[index]
                    d[slots, rws] = forces[rws]
            if len(obs):
                detected = _np.bitwise_or.reduce(d[obs], axis=0)
                detected[:, -1] &= state.last_mask
                blob = detected.tobytes()
                for row, index in enumerate(out_index):
                    words[index] = int.from_bytes(
                        blob[row * byte_width:(row + 1) * byte_width],
                        "little")
            if fold_slots is not None and len(fold_slots):
                fold = d[fold_slots][:, :live]
                fold[:, :, -1] &= state.last_mask
                hits = _np.argwhere(fold.any(axis=2))
                per_row = defaultdict(list)
                for i, row in hits.tolist():
                    per_row[row].append(i)
                for row, positions in per_row.items():
                    entry = diffs[out_index[row]]
                    for i in positions:
                        value = int.from_bytes(fold[i, row].tobytes(),
                                               "little")
                        if value:
                            entry.append((i, value))
                    entry.sort()
        return words, diffs


def pattern_state(patterns, good, num_nets):
    """Build the packed per-pattern-set arrays (:class:`_PatternState`);
    the simulator memoizes the result per (pattern set, version)."""
    if _np is None:
        raise FaultSimError(
            "engine='batch' requires numpy, which is not installed")
    return _PatternState(patterns, good, num_nets)
