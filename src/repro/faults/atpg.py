"""ATPG for single stuck-at faults: random phase + deterministic PODEM.

This stands in for the commercial ATPG tool the paper uses to build the
TPGEN and SFU_IMM PTPs ("test patterns extracted from an ATPG", Section IV).

The random phase fault-simulates batches of pseudorandom patterns with fault
dropping; the deterministic phase runs PODEM (Goel, 1981) per remaining
fault using a five-valued composite algebra encoded as (good, faulty) pairs
over {0, 1, X}.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import AtpgError
from ..netlist.gates import CONTROLLING_VALUE, GateType
from ..netlist.netlist import CONST0, CONST1
from ..netlist.simulator import PatternSet
from .fault import OUTPUT_PIN, FaultList, fault_sort_key
from .fault_sim import FaultSimulator

X = 2  # unknown logic value in the three-valued component domain


def _and3(a, b):
    if a == 0 or b == 0:
        return 0
    if a == X or b == X:
        return X
    return 1


def _or3(a, b):
    if a == 1 or b == 1:
        return 1
    if a == X or b == X:
        return X
    return 0


def _not3(a):
    return X if a == X else 1 - a


def _xor3(a, b):
    if a == X or b == X:
        return X
    return a ^ b


def _mux3(a, b, sel):
    if sel == 0:
        return a
    if sel == 1:
        return b
    return a if a == b and a != X else X


def _eval3(gate_type, ins):
    if gate_type is GateType.BUF:
        return ins[0]
    if gate_type is GateType.NOT:
        return _not3(ins[0])
    if gate_type is GateType.AND:
        return _and3(ins[0], ins[1])
    if gate_type is GateType.OR:
        return _or3(ins[0], ins[1])
    if gate_type is GateType.NAND:
        return _not3(_and3(ins[0], ins[1]))
    if gate_type is GateType.NOR:
        return _not3(_or3(ins[0], ins[1]))
    if gate_type is GateType.XOR:
        return _xor3(ins[0], ins[1])
    if gate_type is GateType.XNOR:
        return _not3(_xor3(ins[0], ins[1]))
    if gate_type is GateType.MUX:
        return _mux3(ins[0], ins[1], ins[2])
    raise AtpgError("unknown gate type {!r}".format(gate_type))


_INVERTING = {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}


@dataclass
class AtpgResult:
    """Outcome of an ATPG campaign.

    Attributes:
        patterns: the generated :class:`~repro.netlist.simulator.PatternSet`.
        pattern_faults: per pattern, the list of faults it was generated for
            or first-detected (random patterns list their dropped faults).
        detected: faults detected by the campaign.
        untestable: faults PODEM proved untestable (no test exists).
        aborted: faults PODEM gave up on (backtrack limit).
    """

    patterns: PatternSet
    pattern_faults: list
    detected: list = field(default_factory=list)
    untestable: list = field(default_factory=list)
    aborted: list = field(default_factory=list)

    def coverage(self, total):
        return 100.0 * len(self.detected) / total if total else 0.0


class PodemEngine:
    """PODEM test generation for one netlist."""

    def __init__(self, netlist, max_backtracks=500):
        netlist.finalize()
        self.netlist = netlist
        self.max_backtracks = max_backtracks
        self._po_set = set(netlist.outputs)
        self._num_nets = netlist.num_nets
        self._gates = netlist.levelized_gates

    # -- composite-value implication ---------------------------------------

    def _imply(self, pi_values, fault):
        """Forward-simulate (good, faulty) values from *pi_values*.

        Returns (good, faulty) dicts over all nets.
        """
        good = [X] * self._num_nets
        faulty = [X] * self._num_nets
        good[CONST0] = faulty[CONST0] = 0
        good[CONST1] = faulty[CONST1] = 1
        for net in self.netlist.inputs:
            value = pi_values.get(net, X)
            good[net] = value
            faulty[net] = value
        if fault.pin == OUTPUT_PIN and fault.gate is None:
            faulty[fault.net] = fault.stuck_at
        fault_gate = fault.gate if fault.pin != OUTPUT_PIN else None
        stem_net = fault.net if fault.pin == OUTPUT_PIN else None
        for gate in self._gates:
            g_ins = tuple(good[n] for n in gate.inputs)
            f_ins = tuple(faulty[n] for n in gate.inputs)
            if fault_gate == gate.index:
                f_ins = (f_ins[:fault.pin] + (fault.stuck_at,)
                         + f_ins[fault.pin + 1:])
            good[gate.output] = _eval3(gate.gate_type, g_ins)
            if f_ins == g_ins and fault_gate != gate.index:
                out_f = good[gate.output]
            else:
                out_f = _eval3(gate.gate_type, f_ins)
            if stem_net == gate.output:
                out_f = fault.stuck_at
            faulty[gate.output] = out_f
        return good, faulty

    def _d_frontier(self, good, faulty, fault):
        """Gates with an unknown output and a D/DB value on some input.

        For input-pin faults the D sits on the faulted pin itself (the net
        keeps its good value), so the faulted gate joins the frontier when
        the pin's good value opposes the stuck value.
        """
        frontier = []
        for gate in self._gates:
            out = gate.output
            if good[out] != X and faulty[out] != X:
                continue
            if (fault.pin != OUTPUT_PIN and fault.gate == gate.index
                    and good[fault.net] == 1 - fault.stuck_at):
                frontier.append(gate)
                continue
            for net in gate.inputs:
                g_val = good[net]
                if g_val != X and faulty[net] != X and g_val != faulty[net]:
                    frontier.append(gate)
                    break
        return frontier

    def _detected(self, good, faulty):
        for net in self._po_set:
            g_val, f_val = good[net], faulty[net]
            if g_val != X and f_val != X and g_val != f_val:
                return True
        return False

    # -- objective / backtrace -----------------------------------------------

    def _objective(self, fault, good, faulty):
        """Return (net, value) goal, or None when no useful objective."""
        if good[fault.net] == X:
            return fault.net, 1 - fault.stuck_at
        frontier = self._d_frontier(good, faulty, fault)
        if not frontier:
            return None
        gate = frontier[0]
        controlling = CONTROLLING_VALUE.get(gate.gate_type)
        noncontrolling = 1 - controlling if controlling is not None else 1
        for net in gate.inputs:
            if good[net] == X or faulty[net] == X:
                return net, noncontrolling
        return None

    def _backtrace(self, net, value, good):
        """Walk *net* back to an unassigned PI, tracking inversions."""
        guard = 0
        while True:
            guard += 1
            if guard > self.netlist.num_gates + 8:
                raise AtpgError("backtrace did not reach a primary input")
            driver_idx = self.netlist.driver_of(net)
            if driver_idx is None:
                return net, value
            gate = self.netlist.gates[driver_idx]
            if gate.gate_type in _INVERTING:
                value = 1 - value if value != X else X
            chosen = None
            for candidate in gate.inputs:
                if good[candidate] == X and candidate not in (CONST0, CONST1):
                    chosen = candidate
                    break
            if chosen is None:
                # All inputs assigned: pick the first non-constant anyway;
                # imply() will expose the conflict and we backtrack.
                for candidate in gate.inputs:
                    if candidate not in (CONST0, CONST1):
                        chosen = candidate
                        break
                if chosen is None:
                    raise AtpgError("backtrace hit constant-only gate")
            net = chosen

    # -- main search -----------------------------------------------------------

    def generate(self, fault):
        """Generate a test cube for *fault*.

        Returns:
            (status, pi_values): status is "detected", "untestable", or
            "aborted"; pi_values maps input nets to 0/1 for detected faults.
        """
        pi_values = {}
        decisions = []  # [net, value, tried_other]
        backtracks = 0

        while True:
            good, faulty = self._imply(pi_values, fault)
            if self._detected(good, faulty):
                return "detected", dict(pi_values)

            failed = False
            site_good = good[fault.net]
            if site_good != X and site_good == fault.stuck_at:
                failed = True  # fault can no longer be excited
            elif site_good != X and not self._d_frontier(good, faulty,
                                                          fault):
                failed = True  # excited but nowhere to propagate

            if not failed:
                goal = self._objective(fault, good, faulty)
                if goal is None:
                    failed = True

            if failed:
                while decisions and decisions[-1][2]:
                    net, __, __tried = decisions.pop()
                    del pi_values[net]
                if not decisions:
                    return "untestable", {}
                backtracks += 1
                if backtracks > self.max_backtracks:
                    return "aborted", {}
                decisions[-1][1] = 1 - decisions[-1][1]
                decisions[-1][2] = True
                pi_values[decisions[-1][0]] = decisions[-1][1]
                continue

            net, value = goal
            pi_net, pi_value = self._backtrace(net, value, good)
            if pi_net in pi_values:
                # Backtrace landed on an assigned PI (conflict path): flip
                # the most recent decision instead of looping forever.
                while decisions and decisions[-1][2]:
                    top, __, __tried = decisions.pop()
                    del pi_values[top]
                if not decisions:
                    return "untestable", {}
                backtracks += 1
                if backtracks > self.max_backtracks:
                    return "aborted", {}
                decisions[-1][1] = 1 - decisions[-1][1]
                decisions[-1][2] = True
                pi_values[decisions[-1][0]] = decisions[-1][1]
                continue
            if pi_value == X:
                pi_value = 1
            decisions.append([pi_net, pi_value, False])
            pi_values[pi_net] = pi_value


def run_atpg(module, seed=0, random_patterns=256, random_batch=32,
             max_backtracks=500, fault_list=None, podem_fault_limit=None):
    """Full ATPG campaign over a :class:`HardwareModule`.

    Random-pattern phase with fault dropping, then PODEM on the remainder
    (at most *podem_fault_limit* deterministic targets when set — the tail
    stays uncovered, as with a bounded commercial ATPG effort).

    Returns an :class:`AtpgResult` whose ``patterns`` are in generation
    order and whose ``pattern_faults[k]`` lists the faults attributed to
    pattern ``k`` (dropped by it in the random phase, or targeted by PODEM).
    """
    netlist = module.netlist
    if fault_list is None:
        fault_list = FaultList(netlist)
    rng = random.Random(seed)
    simulator = FaultSimulator(netlist)

    patterns = PatternSet(netlist)
    pattern_faults = []
    remaining = fault_list
    detected = []

    emitted = 0
    while emitted < random_patterns and len(remaining):
        batch = PatternSet(netlist)
        for __ in range(min(random_batch, random_patterns - emitted)):
            batch.add({net: rng.getrandbits(1) for net in netlist.inputs})
        result = simulator.run(batch, remaining)
        newly = {}
        for fault, first in zip(result.fault_list, result.first_detection):
            if first is not None:
                newly.setdefault(first, []).append(fault)
        base = patterns.count
        for k in range(batch.count):
            patterns.add({net: batch.value_of(net, k)
                          for net in netlist.inputs})
            pattern_faults.append(newly.get(k, []))
        del base
        dropped = [f for group in newly.values() for f in group]
        detected.extend(dropped)
        remaining = remaining.without(dropped)
        emitted += batch.count

    engine = PodemEngine(netlist, max_backtracks=max_backtracks)
    untestable, aborted = [], []
    alive = set(remaining)
    podem_targets = 0
    for fault in list(remaining):
        if fault not in alive:
            continue  # dropped by an earlier PODEM pattern
        if podem_fault_limit is not None and podem_targets >= (
                podem_fault_limit):
            break
        podem_targets += 1
        status, cube = engine.generate(fault)
        if status == "untestable":
            untestable.append(fault)
            alive.discard(fault)
            continue
        if status == "aborted":
            aborted.append(fault)
            continue
        assignment = {net: cube.get(net, rng.getrandbits(1))
                      for net in netlist.inputs}
        single = PatternSet(netlist)
        single.add(assignment)
        result = simulator.run(single, FaultList(netlist, sorted(alive, key=fault_sort_key)))
        confirmed = [f for f, first in zip(result.fault_list,
                                           result.first_detection)
                     if first is not None]
        if fault not in confirmed:
            aborted.append(fault)
            continue
        patterns.add(assignment)
        pattern_faults.append(confirmed)
        detected.extend(confirmed)
        alive.difference_update(confirmed)

    return AtpgResult(patterns=patterns, pattern_faults=pattern_faults,
                      detected=detected, untestable=untestable,
                      aborted=aborted)
