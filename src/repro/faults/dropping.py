"""Cross-PTP fault dropping (the paper's *fault list report*).

Several PTPs of an STL target the same GPU module.  The paper keeps one
fault-list report per module, initially containing every fault; after each
PTP's fault simulation the detected faults are removed, so the next PTP is
simulated against the *remaining* faults only.  This is what makes the MEM
PTP (compacted after IMM) compact harder than IMM, and what collapses the
standalone FC of RAND (compacted after TPGEN) in Table III.
"""

from __future__ import annotations

import hashlib
import json

from ..errors import FaultSimError
from .fault import FaultList


class FaultListReport:
    """Persistent per-module fault list with drop-on-detection updates.

    Args:
        netlist: the module netlist.
        collapse: apply structural equivalence collapsing.
        static_prune: static-prune mode (``"off"``/``"safe"``/
            ``"strict"``).  When on, the provably-untestable faults move
            to the :attr:`untestable` bucket before any simulation: they
            never enter the remaining worklist and leave the FC
            denominator (:meth:`coverage` divides by
            :attr:`testable_faults`).  ``"off"`` preserves the seed
            accounting exactly.
        observed: observation nets for the untestability proofs
            (default: primary outputs).
    """

    def __init__(self, netlist, collapse=True, static_prune="off",
                 observed=None):
        self.netlist = netlist
        self.full_list = FaultList(netlist, collapse=collapse)
        if static_prune in (None, "off"):
            self.static_prune = "off"
            self.untestable = FaultList(netlist, [])
            self.proofs = {}
        else:
            from ..testability.analysis import TestabilityAnalysis, validate_prune_mode
            self.static_prune = validate_prune_mode(static_prune)
            analysis = TestabilityAnalysis(netlist, observed=observed)
            self.proofs = analysis.untestable(self.full_list)
            self.untestable = FaultList(netlist, list(self.proofs))
        self._pruned_set = frozenset(self.untestable)
        self.remaining = FaultList(
            netlist, [f for f in self.full_list
                      if f not in self._pruned_set])
        self._detected_by = {}  # fault -> label of the PTP that detected it

    @property
    def total_faults(self):
        """Size of the original (never shrinking) fault list."""
        return len(self.full_list)

    @property
    def untestable_faults(self):
        """Size of the proven-untestable bucket (0 under ``"off"``)."""
        return len(self.untestable)

    @property
    def testable_faults(self):
        """The FC denominator under static pruning: total minus proven
        untestable."""
        return self.total_faults - self.untestable_faults

    @property
    def remaining_faults(self):
        return len(self.remaining)

    @property
    def detected_faults(self):
        return self.testable_faults - self.remaining_faults

    def detected_by(self, fault):
        """Label of the PTP that first detected *fault* (None if alive)."""
        return self._detected_by.get(fault)

    def drop(self, detected, label):
        """Remove *detected* faults from the remaining list.

        Args:
            detected: iterable of faults reported detected by a simulation.
            label: name of the PTP whose simulation detected them.

        Returns:
            Number of newly dropped faults.
        """
        detected = list(detected)
        alive = {f for f in self.remaining}
        unknown = [f for f in detected if f not in alive
                   and f not in self._detected_by]
        if unknown:
            raise FaultSimError(
                "{} detected fault(s) outside the fault list".format(
                    len(unknown)))
        new = [f for f in detected if f in alive]
        for fault in new:
            self._detected_by[fault] = label
        self.remaining = self.remaining.without(new)
        return len(new)

    def drop_result(self, result, label):
        """Drop the detected faults of a fault-simulation *result*.

        Returns:
            ``(count, records)``: the newly dropped count plus the
            ``(fault, first_cc)`` drop records of those faults — the
            broadcast payload for pooled schedulers
            (:meth:`repro.exec.scheduler.ShardedFaultScheduler.broadcast_drops`),
            carrying the same first-detection attribution this report
            keeps (*label* detected them first).
        """
        alive = {f for f in self.remaining}
        records = [(fault, first)
                   for fault, first in zip(result.fault_list,
                                           result.first_detection)
                   if first is not None and fault in alive]
        count = self.drop((fault for fault, _ in records), label)
        return count, records

    def coverage(self):
        """Cumulative fault coverage (%) over the module fault list.

        Denominator: all faults under ``static_prune="off"`` (the seed
        accounting), the testable faults otherwise — proven-untestable
        faults are not achievable coverage, so keeping them in the
        denominator would cap FC below 100% for reasons no pattern can
        fix.
        """
        if self.testable_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.testable_faults

    def reset(self):
        """Restore the full fault list (new compaction campaign)."""
        self.remaining = FaultList(
            self.netlist, [f for f in self.full_list
                           if f not in self._pruned_set])
        self._detected_by = {}

    # -- checkpoint state -----------------------------------------------

    def state_dict(self):
        """JSON-serializable snapshot of the dropping state.

        Faults are referenced by their stable id in the full (never
        shrinking) list — :func:`~repro.faults.fault.enumerate_faults` is
        deterministic for a given netlist, so ids are reproducible across
        processes.  ``total_faults`` doubles as a compatibility
        fingerprint for :meth:`restore_state`.
        """
        state = {
            "total_faults": self.total_faults,
            "detected": [[self.full_list.id_of(fault), label]
                         for fault, label in sorted(
                             self._detected_by.items(),
                             key=lambda item: self.full_list.id_of(item[0]))],
        }
        # Under "off" the snapshot is byte-identical to the seed format,
        # so existing checkpoints/fingerprints stay valid; under pruning
        # the mode is recorded so checkpoints cannot silently cross
        # accounting regimes.
        if self.static_prune != "off":
            state["static_prune"] = self.static_prune
        return state

    def fingerprint(self):
        """Stable SHA-256 hex digest of the dropping state.

        Two reports over the same netlist have equal fingerprints exactly
        when their remaining lists (and detection attributions) are
        identical — campaign checkpoints and run metrics use this to mark
        which dropping state a shard/cache artifact was produced under.
        """
        payload = json.dumps(self.state_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def restore_state(self, state):
        """Restore a :meth:`state_dict` snapshot exactly.

        The rebuilt ``remaining`` list is bit-identical to the one the
        snapshotted report held: :meth:`drop` filters the remaining list
        in full-list order, and so does this.

        Raises:
            FaultSimError: the snapshot belongs to a different fault list
                (size mismatch or out-of-range fault ids).
        """
        if state.get("total_faults") != self.total_faults:
            raise FaultSimError(
                "checkpointed fault list has {} faults, module has {}"
                .format(state.get("total_faults"), self.total_faults))
        snap_prune = state.get("static_prune", "off")
        if snap_prune != self.static_prune:
            raise FaultSimError(
                "checkpoint was taken under static_prune={!r}, report "
                "runs under {!r}".format(snap_prune, self.static_prune))
        detected_by = {}
        for fault_id, label in state.get("detected", []):
            if not 0 <= fault_id < self.total_faults:
                raise FaultSimError(
                    "fault id {} outside the fault list".format(fault_id))
            detected_by[self.full_list[fault_id]] = label
        self._detected_by = detected_by
        self.remaining = FaultList(
            self.netlist,
            [f for f in self.full_list
             if f not in detected_by and f not in self._pruned_set])
