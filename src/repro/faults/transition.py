"""Transition-delay fault model (the paper's declared future work).

Section V: "we plan to extend the compaction capabilities ... as well as
targeting other fault models."  This module provides that extension for
transition-delay faults (slow-to-rise / slow-to-fall) on the same
substrate, so the whole five-stage pipeline can compact PTPs against them.

Semantics (launch-on-capture over the PTP's pattern stream): a slow-to-rise
fault on a net is detected by pattern pair (k-1, k) when pattern k-1 sets
the net to 0, pattern k sets it to 1 (the launch), and the net stuck-at-0
effect propagates to an observed output under pattern k (the capture).
Dually for slow-to-fall with stuck-at-1.  Because consecutive clock cycles
of a PTP supply the pattern pairs, the detection records stay per-cc and
the labeling stage works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultSimError
from .fault import OUTPUT_PIN, StuckAtFault
from .fault_sim import FaultSimResult, FaultSimulator

RISE = "rise"
FALL = "fall"


@dataclass(frozen=True)
class TransitionFault:
    """One transition-delay fault on a stem net.

    Attributes:
        net: the slow net.
        edge: :data:`RISE` (slow-to-rise) or :data:`FALL` (slow-to-fall).
    """

    net: int
    edge: str

    def equivalent_stuck_at(self):
        """The stuck-at value whose propagation captures this fault."""
        return 0 if self.edge == RISE else 1

    def describe(self, netlist=None):
        name = ""
        if netlist is not None and self.net in netlist.net_names:
            name = " ({})".format(netlist.net_names[self.net])
        return "net {}{} slow-to-{}".format(self.net, name, self.edge)


def enumerate_transition_faults(netlist):
    """Both-edge transition faults on every PI and gate-output net."""
    netlist.finalize()
    faults = []
    for net in list(netlist.inputs) + [g.output for g in netlist.gates]:
        faults.append(TransitionFault(net, RISE))
        faults.append(TransitionFault(net, FALL))
    return faults


class TransitionFaultSimulator:
    """Transition-delay fault simulation over a pattern sequence.

    Reuses the stuck-at engine: the slow value behaves as a momentary
    stuck-at during the capture cycle; the launch condition gates which
    patterns count.
    """

    def __init__(self, netlist, observed_outputs=None):
        self._stuck = FaultSimulator(netlist, observed_outputs)
        self.netlist = netlist

    def run(self, patterns, faults=None):
        """Simulate; returns a :class:`FaultSimResult`-shaped record whose
        ``fault_list`` is the transition-fault list."""
        if faults is None:
            faults = enumerate_transition_faults(self.netlist)
        if patterns.count == 0:
            return FaultSimResult(_TransitionList(self.netlist, faults), 0,
                                  [0] * len(faults), [None] * len(faults))
        mask = patterns.mask
        good = self._stuck._logic.run(patterns)
        observed = set(self._stuck.observed)

        detection_words = []
        first_detection = []
        for fault in faults:
            stuck_value = fault.equivalent_stuck_at()
            proxy = _stem_proxy(self.netlist, fault.net, stuck_value)
            propagate_word = self._stuck._simulate_fault(proxy, good, mask,
                                                         observed)
            # Launch: the net transitions into the slow direction between
            # consecutive patterns (0->1 for rise, 1->0 for fall).
            value = good[fault.net]
            if fault.edge == RISE:
                launch = (~(value << 1)) & value & mask
            else:
                launch = (value << 1) & (~value) & mask
            launch &= ~1  # pattern 0 has no predecessor
            word = propagate_word & launch
            detection_words.append(word)
            first_detection.append((word & -word).bit_length() - 1
                                   if word else None)
        return FaultSimResult(_TransitionList(self.netlist, faults),
                              patterns.count, detection_words,
                              first_detection)


class _TransitionList:
    """Minimal FaultList-shaped container for transition faults."""

    def __init__(self, netlist, faults):
        self.netlist = netlist
        self.faults = list(faults)

    def __len__(self):
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __getitem__(self, idx):
        return self.faults[idx]


def _stem_proxy(netlist, net, stuck_value):
    """Stuck-at stem fault used to compute the capture propagation."""
    driver = netlist.driver_of(net)
    if driver is None and net not in netlist.inputs:
        raise FaultSimError("net {} is not a stem".format(net))
    return StuckAtFault(net, driver, OUTPUT_PIN, stuck_value)
