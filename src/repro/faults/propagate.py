"""Event-driven fault propagation over levelized netlists.

The cone-walk engine in :mod:`repro.faults.fault_sim` visits **every** gate
in a fault's static fanout cone, even after the fault effect has died out —
for a typical stuck-at fault only a fraction of the cone ever carries a
difference, so most of that walk is execution redundancy (the kind ERASER
and GATSPI trim at gate level).  This module provides the event-driven
alternative:

* :class:`PropagationSchedule` precomputes, once per netlist, the flat
  structure the hot loop needs: fanout adjacency, per-gate topological
  levels, integer gate opcodes, plus lazily-cached observability reach
  tables and static cone sizes.
* :class:`EventDrivenEngine` propagates one fault as a *frontier* of
  changed nets that advances level by level through that schedule and
  terminates as soon as the frontier empties — gates whose inputs never
  change are never touched.

Bit-identity with the cone walk follows from three facts: (1) a gate is
evaluated by the cone walk iff at least one of its inputs differs from the
good machine, which is exactly the event condition; (2) levels order every
evaluation after all of its input updates, so both engines evaluate each
gate over identical input values; and (3) a net is driven by exactly one
gate and the netlist is acyclic, so no net is ever updated twice and the
set of changed nets cannot differ.  The equivalence oracle in
``tests/faults/test_propagate.py`` checks this over random netlists.
"""

from __future__ import annotations

from ..errors import FaultSimError
from ..netlist.gates import GateType
from .fault import OUTPUT_PIN

#: Integer opcodes for the inlined gate evaluator (enum identity checks in
#: the inner loop are measurably slower than small-int comparisons).
_BUF, _NOT, _AND, _OR, _NAND, _NOR, _XOR, _XNOR, _MUX = range(9)

_OPCODE = {
    GateType.BUF: _BUF,
    GateType.NOT: _NOT,
    GateType.AND: _AND,
    GateType.OR: _OR,
    GateType.NAND: _NAND,
    GateType.NOR: _NOR,
    GateType.XOR: _XOR,
    GateType.XNOR: _XNOR,
    GateType.MUX: _MUX,
}


def evaluate_opcode(opcode, values, mask):
    """Evaluate the gate *opcode* over packed *values* (tuple/list).

    Same truth tables as :func:`repro.netlist.gates.evaluate`; used by the
    engine for seed-gate evaluation and by tests as the opcode oracle.
    """
    if opcode == _AND:
        return values[0] & values[1]
    if opcode == _OR:
        return values[0] | values[1]
    if opcode == _NAND:
        return ~(values[0] & values[1]) & mask
    if opcode == _NOR:
        return ~(values[0] | values[1]) & mask
    if opcode == _XOR:
        return values[0] ^ values[1]
    if opcode == _XNOR:
        return ~(values[0] ^ values[1]) & mask
    if opcode == _MUX:
        sel = values[2]
        return (values[0] & ~sel | values[1] & sel) & mask
    if opcode == _BUF:
        return values[0]
    if opcode == _NOT:
        return ~values[0] & mask
    raise FaultSimError("unknown gate opcode {!r}".format(opcode))


class PropagationSchedule:
    """Static per-netlist propagation structure.

    Built once per simulator (cheap: one pass over the gates) and shared by
    every fault of every run:

    Attributes:
        opcode: per-gate integer opcode.
        gate_inputs: per-gate input net tuple.
        gate_output: per-gate output net.
        fanout: per-net tuple of reading gate indices.
        gate_level: per-gate topological level (1-based).
        depth: maximum gate level.
    """

    def __init__(self, netlist):
        netlist.finalize()
        self.netlist = netlist
        gates = netlist.gates
        self.opcode = [_OPCODE[g.gate_type] for g in gates]
        self.gate_inputs = [g.inputs for g in gates]
        self.gate_output = [g.output for g in gates]
        self.gate_level = [netlist.net_level(g.output) for g in gates]
        self.depth = netlist.logic_depth
        fanout = [[] for __ in range(netlist.num_nets)]
        for gate in gates:
            for net in gate.inputs:
                fanout[net].append(gate.index)
        self.fanout = [tuple(readers) for readers in fanout]
        self._reach = {}       # frozenset(targets) -> per-net bool list
        self._cone_size = {}   # net -> gates in its static fanout cone
        self._support = {}     # seed net -> frozenset of supporting PIs
        self._driver = None    # net -> driving gate index (lazy)
        self._inputs = None    # frozenset of primary-input nets (lazy)
        self._pi_mask = None   # net -> bitmask over PI slots (lazy DP)
        self._pi_list = None   # PI slot -> net index

    def seed_net(self, fault):
        """The net whose change seeds *fault*'s propagation (the cone
        head): the faulted net for stem faults, the reading gate's output
        for input-pin faults."""
        if fault.pin == OUTPUT_PIN:
            return fault.net
        return self.gate_output[fault.gate]

    def reach_from(self, targets):
        """Per-net bool list: can the net reach any of *targets*?

        *targets* must be a frozenset of net indices (hashable cache key).
        A net reaches the targets when it is one, or when any gate reading
        it drives a reaching net — one reverse-topological pass, cached.
        """
        reach = self._reach.get(targets)
        if reach is None:
            reach = [False] * self.netlist.num_nets
            for net in targets:
                reach[net] = True
            gate_output = self.gate_output
            gate_inputs = self.gate_inputs
            for index in range(len(gate_output) - 1, -1, -1):
                if reach[gate_output[index]]:
                    for net in gate_inputs[index]:
                        reach[net] = True
            self._reach[targets] = reach
        return reach

    def _driver_map(self):
        if self._driver is None:
            self._driver = {out: index
                            for index, out in enumerate(self.gate_output)}
        return self._driver

    def _pi_masks(self):
        """Per-net bitmask over PI slots: bit *i* set when ``_pi_list[i]``
        is in the net's fanin closure.  One forward topological pass (the
        gate list is topologically ordered), computed lazily once."""
        if self._pi_mask is None:
            pis = sorted(self.netlist.inputs)
            self._pi_list = pis
            mask = [0] * self.netlist.num_nets
            for slot, net in enumerate(pis):
                mask[net] = 1 << slot
            gate_inputs = self.gate_inputs
            gate_output = self.gate_output
            for index in range(len(gate_output)):
                acc = 0
                for net in gate_inputs[index]:
                    acc |= mask[net]
                mask[gate_output[index]] |= acc
            self._pi_mask = mask
        return self._pi_mask

    def support_of(self, seed):
        """Primary inputs whose pattern values determine the detection
        outcome of every fault seeded at *seed*: the fanin closure of the
        seed plus the inputs and outputs of every gate in its fanout cone.

        The good values on these nets fix (a) excitation — the seed's
        driving gate, when present, is in the closure, so its input nets
        are too — and (b) propagation and observation, because every
        side-input consumed while the fault effect walks the cone is an
        input of a cone gate.  Faults whose supporting PI values are
        unchanged between two pattern sets therefore detect identically;
        this is the soundness lemma the incremental restore layer
        (:mod:`repro.exec.incremental`) relies on.  Cached per seed.
        """
        support = self._support.get(seed)
        if support is None:
            # Forward walk over the seed's static fanout cone, OR-ing each
            # visited net's precomputed fanin-PI bitmask.  The fanin
            # closure of {seed} ∪ {cone gate inputs} projected onto the
            # PIs is exactly the union of those per-net masks (cone gate
            # *outputs* add nothing: an output's mask is the OR of its
            # input masks, which are already accumulated).
            mask = self._pi_masks()
            acc = mask[seed]
            seen_gates = set()
            seen_nets = {seed}
            stack = [seed]
            while stack:
                net = stack.pop()
                for gate in self.fanout[net]:
                    if gate not in seen_gates:
                        seen_gates.add(gate)
                        for inp in self.gate_inputs[gate]:
                            acc |= mask[inp]
                        out = self.gate_output[gate]
                        if out not in seen_nets:
                            seen_nets.add(out)
                            stack.append(out)
            pis = self._pi_list
            members = []
            while acc:
                low = acc & -acc
                members.append(pis[low.bit_length() - 1])
                acc ^= low
            support = frozenset(members)
            self._support[seed] = support
        return support

    def cone_size(self, net):
        """Number of gates in the static transitive fanout of *net*
        (what the cone walk would visit); cached per net."""
        size = self._cone_size.get(net)
        if size is None:
            seen = set()
            frontier = [net]
            fanout = self.fanout
            gate_output = self.gate_output
            while frontier:
                current = frontier.pop()
                for gate in fanout[current]:
                    if gate not in seen:
                        seen.add(gate)
                        frontier.append(gate_output[gate])
            size = len(seen)
            self._cone_size[net] = size
        return size


class EventDrivenEngine:
    """Frontier propagation of single faults through a schedule.

    One engine per :class:`~repro.faults.fault_sim.FaultSimulator`; the
    level buckets and the scheduling stamp array are reused across faults
    (cleared lazily, versioned by a serial counter) so per-fault setup is
    O(frontier), not O(netlist).

    Attributes:
        last_evaluated: gates evaluated by the most recent
            :meth:`advance` (the caller's gates-evaluated counter).
    """

    def __init__(self, netlist):
        self.schedule = PropagationSchedule(netlist)
        self._buckets = [[] for __ in range(self.schedule.depth + 1)]
        self._stamp = [0] * len(self.schedule.gate_output)
        self._serial = 0
        self.last_evaluated = 0

    def seed_value(self, fault, good_list, mask):
        """Activation check: the packed faulty value of the seed net, or
        None when the fault is not excited by any pattern.

        For stem faults this is the stuck word; for input-pin faults the
        faulted gate is evaluated once with the stuck pin.
        """
        stuck_word = mask if fault.stuck_at else 0
        if fault.pin == OUTPUT_PIN:
            if stuck_word == good_list[fault.net]:
                return None
            return stuck_word
        schedule = self.schedule
        gate = fault.gate
        values = [good_list[net] for net in schedule.gate_inputs[gate]]
        values[fault.pin] = stuck_word
        out = evaluate_opcode(schedule.opcode[gate], values, mask)
        if out == good_list[schedule.gate_output[gate]]:
            return None
        return out

    def advance(self, seed, seed_value, good_list, mask):
        """Advance the frontier from ``{seed: seed_value}`` to quiescence.

        Returns:
            ``(faulty, changed_nets)`` — the per-net packed faulty values
            (list indexed by net; equal to the good value everywhere the
            fault never reached) and the nets whose faulty value differs
            from the good machine, in update order.  The loop exits the
            moment no scheduled gate remains: dead fault effects cost
            nothing beyond the gates that killed them.
        """
        schedule = self.schedule
        opcode = schedule.opcode
        gate_inputs = schedule.gate_inputs
        gate_output = schedule.gate_output
        gate_level = schedule.gate_level
        fanout = schedule.fanout
        buckets = self._buckets
        stamp = self._stamp
        self._serial += 1
        serial = self._serial

        faulty = good_list[:]
        faulty[seed] = seed_value
        changed_nets = [seed]
        pending = 0
        for gate in fanout[seed]:
            stamp[gate] = serial
            buckets[gate_level[gate]].append(gate)
            pending += 1

        evaluated = 0
        level = 0
        while pending:
            level += 1
            bucket = buckets[level]
            if not bucket:
                continue
            for gate in bucket:
                ins = gate_inputs[gate]
                code = opcode[gate]
                if code == _AND:
                    out = faulty[ins[0]] & faulty[ins[1]]
                elif code == _OR:
                    out = faulty[ins[0]] | faulty[ins[1]]
                elif code == _NAND:
                    out = ~(faulty[ins[0]] & faulty[ins[1]]) & mask
                elif code == _NOR:
                    out = ~(faulty[ins[0]] | faulty[ins[1]]) & mask
                elif code == _XOR:
                    out = faulty[ins[0]] ^ faulty[ins[1]]
                elif code == _XNOR:
                    out = ~(faulty[ins[0]] ^ faulty[ins[1]]) & mask
                elif code == _MUX:
                    sel = faulty[ins[2]]
                    out = (faulty[ins[0]] & ~sel
                           | faulty[ins[1]] & sel) & mask
                elif code == _BUF:
                    out = faulty[ins[0]]
                else:
                    out = ~faulty[ins[0]] & mask
                evaluated += 1
                out_net = gate_output[gate]
                if out != good_list[out_net]:
                    faulty[out_net] = out
                    changed_nets.append(out_net)
                    for reader in fanout[out_net]:
                        if stamp[reader] != serial:
                            stamp[reader] = serial
                            buckets[gate_level[reader]].append(reader)
                            pending += 1
            pending -= len(bucket)
            buckets[level] = []
        self.last_evaluated = evaluated
        return faulty, changed_nets

    def propagate(self, fault, good_list, mask):
        """Activation check + frontier advance for one fault.

        Returns ``(faulty, changed_nets)`` or ``(None, None)`` when the
        fault is never excited.
        """
        seed = self.schedule.seed_net(fault)
        seed_value = self.seed_value(fault, good_list, mask)
        if seed_value is None:
            self.last_evaluated = 0
            return None, None
        return self.advance(seed, seed_value, good_list, mask)
