"""Bit-parallel single-stuck-at fault simulation with per-pattern records.

This is the reproduction of the paper's "optimized GL fault simulation"
(stage 3): the fault list belongs to ONE target module, observability is the
module's outputs (module-level fault observability, [25] in the paper), and
the simulator records, for every fault, the first pattern (= clock cycle)
that detects it.  The per-pattern detection counts form the *Fault Sim
Report* consumed by the instruction-labeling stage.

All patterns are simulated at once per fault: net values are packed integers
(bit ``k`` = value under pattern ``k``), so a fault's full detection word
costs one traversal of its fanout cone.

Three propagation engines compute that traversal (``engine=`` argument):

* ``"event"`` (default) — the event-driven frontier of
  :mod:`repro.faults.propagate`: faults advance level by level through a
  precomputed schedule and stop the moment the fault effect dies out;
  faults are grouped by cone head so per-head setup is shared.
* ``"cone"`` — the classic static cone walk: every gate in the fault's
  transitive fanout is visited, whether or not the effect is still alive.
* ``"batch"`` — the vectorized backend of :mod:`repro.faults.batch`:
  faults are clustered into fixed-width batches, the union of each
  batch's fanout cones is compiled once into fused numpy word-ops, and
  one array pass simulates every fault of the batch over all patterns
  simultaneously (requires numpy; construction fails cleanly without it).

All engines are bit-identical (same detection words, first detections,
and signature verdicts); they only trim or reorganize execution
redundancy.  The ``stats`` counters (gates evaluated/visited/skipped,
inactive/pruned faults, batches) make that redundancy observable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultSimError
from ..netlist.gates import evaluate
from ..netlist.simulator import LogicSimulator, iter_set_bits  # noqa: F401
from .fault import OUTPUT_PIN, FaultList
from .propagate import EventDrivenEngine

#: Valid values of ``FaultSimulator(engine=...)``.
ENGINES = ("event", "cone", "batch")


@dataclass
class FaultSimResult:
    """Outcome of one fault simulation run.

    Attributes:
        fault_list: the simulated :class:`~repro.faults.fault.FaultList`.
        pattern_count: number of simulated patterns.
        detection_words: per-fault packed detection word (bit ``k`` set when
            pattern ``k`` propagates the fault to an observed output).
        first_detection: per-fault index of the first detecting pattern, or
            None when undetected.
    """

    fault_list: FaultList
    pattern_count: int
    detection_words: list
    first_detection: list

    @property
    def detected_faults(self):
        """List of detected :class:`~repro.faults.fault.StuckAtFault`."""
        return [f for f, first in zip(self.fault_list, self.first_detection)
                if first is not None]

    @property
    def undetected_faults(self):
        return [f for f, first in zip(self.fault_list, self.first_detection)
                if first is None]

    @property
    def num_detected(self):
        return sum(1 for first in self.first_detection if first is not None)

    def coverage(self, total=None):
        """Fault coverage in percent (against *total* or the list size)."""
        denom = total if total is not None else len(self.fault_list)
        if denom == 0:
            return 0.0
        return 100.0 * self.num_detected / denom

    def detections_per_pattern(self, dropping=True):
        """Number of faults detected at each pattern index.

        With *dropping* (the paper's configuration), each fault is counted
        only at its first detecting pattern; otherwise at every detecting
        pattern.
        """
        counts = [0] * self.pattern_count
        if dropping:
            for first in self.first_detection:
                if first is not None:
                    counts[first] += 1
        else:
            for word in self.detection_words:
                for index in iter_set_bits(word):
                    counts[index] += 1
        return counts

    def detecting_patterns(self, dropping=True):
        """Set of pattern indices that detect at least one fault."""
        if dropping:
            return {first for first in self.first_detection
                    if first is not None}
        hits = set()
        for word in self.detection_words:
            hits.update(iter_set_bits(word))
        return hits


class FaultSimulator:
    """Module-level stuck-at fault simulator.

    Args:
        netlist: finalized target-module netlist.
        observed_outputs: optional subset of output nets used as the
            observation point; defaults to all primary outputs
            (module-level observability).
        engine: ``"event"`` (default), ``"cone"``, or ``"batch"`` — see
            the module docstring.  Results are bit-identical either way.

    Attributes:
        stats: cumulative propagation counters across every run of this
            simulator — ``gates_evaluated`` (gate evaluations during
            propagation; for the batch engine, gate-row evaluations of
            the shared batch programs), ``gates_visited`` (gates touched
            at all: equals evaluations for the event engine, the full
            static cone for the cone engine), ``gates_skipped``
            (static-cone gates the engine never touched),
            ``faults_inactive`` (activation check failed),
            ``faults_pruned`` (event/batch engines: cone head cannot
            reach any observation point), ``batches`` (batch engine:
            compiled fault batches evaluated).
    """

    def __init__(self, netlist, observed_outputs=None, engine="event"):
        netlist.finalize()
        self.netlist = netlist
        if observed_outputs is None:
            observed_outputs = list(netlist.outputs)
        unknown = [n for n in observed_outputs if n not in set(
            netlist.outputs)]
        if unknown:
            raise FaultSimError("observed nets {} are not outputs"
                                .format(unknown))
        if engine not in ENGINES:
            raise FaultSimError("unknown engine {!r}; expected one of {}"
                                .format(engine, ENGINES))
        self.observed = list(observed_outputs)
        self.engine = engine
        self._logic = LogicSimulator(netlist)
        self._cone_cache = {}
        # Structure-of-arrays view of gates for the cone-walk hot loop.
        self._gate_type = [g.gate_type for g in netlist.gates]
        self._gate_inputs = [g.inputs for g in netlist.gates]
        self._gate_output = [g.output for g in netlist.gates]
        self._event = EventDrivenEngine(netlist) if engine == "event" else None
        if engine == "batch":
            from .batch import BatchFaultEngine
            self._batch = BatchFaultEngine(netlist)
        else:
            self._batch = None
        self._observed_targets = frozenset(self.observed)
        self._good_cache = (None, None, None)
        self._targets_cache = (None, None, None)
        self._good_values_cache = (None, None, None)
        self._batch_state_cache = (None, None, None)
        self.stats = {"gates_evaluated": 0, "gates_visited": 0,
                      "gates_skipped": 0, "faults_inactive": 0,
                      "faults_pruned": 0, "batches": 0}

    @property
    def batch_rows(self):
        """Fault rows per compiled batch (None unless the batch engine is
        active) — the scheduler's chunk-size quantum, so pooled chunks
        arrive as whole batches."""
        return self._batch.rows if self._batch is not None else None

    def _cone(self, net):
        cone = self._cone_cache.get(net)
        if cone is None:
            cone = self.netlist.cone_from_net(net)
            self._cone_cache[net] = cone
        return cone

    def _good_as_list(self, good):
        """Net-indexed list view of a good-machine value dict (memoized on
        the dict identity plus length — callers reuse one dict across many
        faults, and a same-identity dict that gained entries is stale)."""
        cached_good, cached_len, cached_list = self._good_cache
        if cached_good is not good or cached_len != len(good):
            cached_list = [0] * self.netlist.num_nets
            for net, value in good.items():
                cached_list[net] = value
            self._good_cache = (good, len(good), cached_list)
        return cached_list

    def _targets_for(self, observed_set):
        """Frozenset view of *observed_set* (memoized on identity plus
        length, the closest thing a plain set has to a mutation stamp)."""
        cached_set, cached_len, cached_frozen = self._targets_cache
        if cached_set is not observed_set or cached_len != len(observed_set):
            cached_frozen = frozenset(observed_set)
            self._targets_cache = (observed_set, len(observed_set),
                                   cached_frozen)
        return cached_frozen

    def good_values(self, patterns):
        """Good-machine net values for *patterns*, memoized on the pattern
        set's identity **and mutation version** (the cache holds a strong
        reference, so the identity stays valid; the version counter
        invalidates it when the same set object gains patterns through
        ``add``/``add_words`` after being cached).  Chunk-resumable runs
        lean on this: a pooled worker simulating many fault chunks of one
        pattern set pays the logic simulation once, not once per chunk."""
        version = getattr(patterns, "version", 0)
        cached_patterns, cached_version, cached_good = \
            self._good_values_cache
        if cached_patterns is not patterns or cached_version != version:
            cached_good = self._logic.run(patterns)
            self._good_values_cache = (patterns, version, cached_good)
        return cached_good

    def _batch_state(self, patterns):
        """Packed numpy pattern state for the batch engine, memoized like
        :meth:`good_values` on (identity, version)."""
        from .batch import pattern_state
        version = getattr(patterns, "version", 0)
        cached_patterns, cached_version, cached_state = \
            self._batch_state_cache
        if cached_patterns is not patterns or cached_version != version:
            cached_state = pattern_state(patterns, self.good_values(patterns),
                                         self.netlist.num_nets)
            self._batch_state_cache = (patterns, version, cached_state)
        return cached_state

    def run(self, patterns, fault_list=None):
        """Simulate *fault_list* (default: full collapsed list) over
        *patterns* and return a :class:`FaultSimResult`."""
        if fault_list is None:
            fault_list = FaultList(self.netlist)
        if patterns.count == 0:
            empty = [0] * len(fault_list)
            return FaultSimResult(fault_list, 0, empty,
                                  [None] * len(fault_list))
        mask = patterns.mask
        good = self.good_values(patterns)
        observed_set = set(self.observed)

        if self.engine == "event":
            detection_words = self._run_event(fault_list, good, mask,
                                              observed_set)
        elif self.engine == "batch":
            detection_words, __ = self._batch.run(
                fault_list, self._batch_state(patterns),
                self._observed_targets, observed_set, self.stats)
        else:
            detection_words = [
                self._simulate_fault(fault, good, mask, observed_set)
                for fault in fault_list]
        first_detection = [(word & -word).bit_length() - 1 if word else None
                           for word in detection_words]
        return FaultSimResult(fault_list, patterns.count, detection_words,
                              first_detection)

    def _run_event(self, fault_list, good, mask, observed_set):
        """Event-driven detection words for *fault_list*, grouped by cone
        head so per-head setup (activation good word, observability reach,
        static cone size) is computed once per group."""
        engine = self._event
        schedule = engine.schedule
        good_list = self._good_as_list(good)
        reach = schedule.reach_from(self._observed_targets)
        stats = self.stats
        gate_output = schedule.gate_output

        groups = {}
        for index, fault in enumerate(fault_list):
            seed = (fault.net if fault.pin == OUTPUT_PIN
                    else gate_output[fault.gate])
            entry = groups.get(seed)
            if entry is None:
                groups[seed] = [(index, fault)]
            else:
                entry.append((index, fault))

        words = [0] * len(fault_list)
        for seed, members in groups.items():
            if not reach[seed]:
                # No observation point in this head's cone: every member
                # is undetectable, whatever its activation.
                stats["faults_pruned"] += len(members)
                stats["gates_skipped"] += (schedule.cone_size(seed)
                                           * len(members))
                continue
            good_seed = good_list[seed]
            cone = schedule.cone_size(seed)
            for index, fault in members:
                if fault.pin == OUTPUT_PIN:
                    seed_value = mask if fault.stuck_at else 0
                    if seed_value == good_seed:
                        stats["faults_inactive"] += 1
                        continue
                else:
                    seed_value = engine.seed_value(fault, good_list, mask)
                    if seed_value is None:
                        stats["faults_inactive"] += 1
                        continue
                faulty, changed = engine.advance(seed, seed_value,
                                                 good_list, mask)
                evaluated = engine.last_evaluated
                stats["gates_evaluated"] += evaluated
                stats["gates_visited"] += evaluated
                stats["gates_skipped"] += cone - evaluated
                word = 0
                for net in changed:
                    if net in observed_set:
                        word |= faulty[net] ^ good_list[net]
                words[index] = word
        return words

    def run_signature(self, patterns, fault_list, result_word,
                      thread_sequences, misr_width=None):
        """Fault simulation under signature-per-thread (SpT) observability.

        A fault is detected when, for at least one thread, the MISR fold of
        its per-pattern *result_word* differences is non-zero at the end of
        the thread's update sequence (``sig = rotl(sig, 1) ^ result``; by
        XOR linearity the final-signature difference is the rotation-fold
        of the per-step result differences).  Faults whose differences
        cancel in the fold *alias* and go undetected — the mechanism behind
        the paper's SP-core FC deltas.

        Args:
            patterns: the PTP's pattern set, in application order.
            fault_list: faults to simulate.
            result_word: net list (LSB first) of the module's result bus.
            thread_sequences: {thread_key: ordered pattern index list} from
                :meth:`PatternReport.thread_sequences`.
            misr_width: signature width (default: len(result_word)).

        Returns:
            (result, signature_detected): the module-output
            :class:`FaultSimResult` plus a per-fault bool list of SpT
            detectability.
        """
        width = misr_width or len(result_word)
        mask = patterns.mask
        good = self.good_values(patterns)
        observed_set = set(self.observed)

        # The MISR masks every folded result to `width` bits
        # (``misr_update``): result-bus bits at positions >= width never
        # enter the signature, so only the first `width` result nets are
        # folded.  (Folding the full bus let diff bits ``1 << i`` for
        # ``i >= width`` escape ``word_mask`` on the rotation-0 path and
        # produced spurious SpT detections.)
        fold_word = result_word[:width]

        # Per-thread rotation-class masks: pattern at position p of an
        # n-long sequence is rotated by (n - 1 - p) mod width in the fold.
        class_masks = {}
        thread_masks = {}
        for key, sequence in thread_sequences.items():
            classes = [0] * width
            total = 0
            n = len(sequence)
            for position, k in enumerate(sequence):
                rotation = (n - 1 - position) % width
                classes[rotation] |= 1 << k
                total |= 1 << k
            class_masks[key] = classes
            thread_masks[key] = total

        if self.engine == "event":
            targets = self._observed_targets | frozenset(fold_word)
            effects = [self._fault_effects_event(fault, good, mask,
                                                 observed_set, fold_word,
                                                 targets)
                       for fault in fault_list]
        elif self.engine == "batch":
            targets = self._observed_targets | frozenset(fold_word)
            words, fold_diffs = self._batch.run(
                fault_list, self._batch_state(patterns), targets,
                observed_set, self.stats, fold_word=fold_word)
            effects = list(zip(words, fold_diffs))
        else:
            effects = [self._fault_effects_cone(fault, good, mask,
                                                observed_set, fold_word)
                       for fault in fault_list]

        word_mask = (1 << width) - 1
        detection_words = []
        first_detection = []
        signature_detected = []
        for word, diffs in effects:
            detection_words.append(word)
            first_detection.append((word & -word).bit_length() - 1
                                   if word else None)
            detected = False
            if diffs:
                union = 0
                for __, diff in diffs:
                    union |= diff
                for key, classes in class_masks.items():
                    if union & thread_masks[key] == 0:
                        continue
                    total = 0
                    for rotation in range(width):
                        class_mask = classes[rotation]
                        if class_mask == 0 or union & class_mask == 0:
                            continue
                        value = 0
                        for i, diff in diffs:
                            overlap = diff & class_mask
                            if overlap and _parity(overlap):
                                value |= 1 << i
                        if value:
                            rotated = ((value << rotation) |
                                       (value >> (width - rotation))
                                       ) & word_mask if rotation else value
                            total ^= rotated
                    if total:
                        detected = True
                        break
            signature_detected.append(detected)
        result = FaultSimResult(fault_list, patterns.count, detection_words,
                                first_detection)
        return result, signature_detected

    # -- single-fault propagation ------------------------------------------

    def _fault_effects_cone(self, fault, good, mask, observed_set,
                            fold_word):
        """(detection word, result-bus diffs) via the cone walk."""
        changed = self._propagate_fault(fault, good, mask)
        word = 0
        for net, value in changed.items():
            if net in observed_set:
                word |= value ^ good[net]
        diffs = [(i, changed[net] ^ good[net])
                 for i, net in enumerate(fold_word) if net in changed]
        return word, diffs

    def _fault_effects_event(self, fault, good, mask, observed_set,
                             fold_word, targets):
        """(detection word, result-bus diffs) via the event engine."""
        engine = self._event
        schedule = engine.schedule
        good_list = self._good_as_list(good)
        stats = self.stats
        seed = schedule.seed_net(fault)
        if not schedule.reach_from(targets)[seed]:
            stats["faults_pruned"] += 1
            stats["gates_skipped"] += schedule.cone_size(seed)
            return 0, []
        faulty, changed = engine.propagate(fault, good_list, mask)
        if changed is None:
            stats["faults_inactive"] += 1
            return 0, []
        evaluated = engine.last_evaluated
        stats["gates_evaluated"] += evaluated
        stats["gates_visited"] += evaluated
        stats["gates_skipped"] += schedule.cone_size(seed) - evaluated
        word = 0
        for net in changed:
            if net in observed_set:
                word |= faulty[net] ^ good_list[net]
        diffs = [(i, faulty[net] ^ good_list[net])
                 for i, net in enumerate(fold_word)
                 if faulty[net] != good_list[net]]
        return word, diffs

    def _simulate_fault(self, fault, good, mask, observed_set):
        """Detection word of one fault under *observed_set* (dispatches on
        the configured engine)."""
        if self.engine == "event":
            engine = self._event
            schedule = engine.schedule
            good_list = self._good_as_list(good)
            stats = self.stats
            seed = schedule.seed_net(fault)
            targets = self._targets_for(observed_set)
            if not schedule.reach_from(targets)[seed]:
                stats["faults_pruned"] += 1
                stats["gates_skipped"] += schedule.cone_size(seed)
                return 0
            faulty, changed = engine.propagate(fault, good_list, mask)
            if changed is None:
                stats["faults_inactive"] += 1
                return 0
            evaluated = engine.last_evaluated
            stats["gates_evaluated"] += evaluated
            stats["gates_visited"] += evaluated
            stats["gates_skipped"] += schedule.cone_size(seed) - evaluated
            word = 0
            for net in changed:
                if net in observed_set:
                    word |= faulty[net] ^ good_list[net]
            return word
        changed = self._propagate_fault(fault, good, mask)
        word = 0
        for net, value in changed.items():
            if net in observed_set:
                word |= value ^ good[net]
        return word

    def _propagate_fault(self, fault, good, mask):
        """Cone-walk propagation: visit every gate of *fault*'s static
        fanout cone; returns {net: faulty_value} for every net whose packed
        value differs from the good machine."""
        stuck_word = mask if fault.stuck_at else 0
        changed = {}
        stats = self.stats
        gate_type = self._gate_type
        gate_inputs = self._gate_inputs
        gate_output = self._gate_output

        if fault.pin == OUTPUT_PIN:
            if stuck_word == good[fault.net]:
                stats["faults_inactive"] += 1
                return changed
            changed[fault.net] = stuck_word
            cone = self._cone(fault.net)
        else:
            # Input-pin fault: only this gate sees the stuck value.
            g = fault.gate
            ins = list(gate_inputs[g])
            values = [good[n] for n in ins]
            values[fault.pin] = stuck_word
            out = evaluate(gate_type[g], tuple(values), mask)
            out_net = gate_output[g]
            if out == good[out_net]:
                stats["faults_inactive"] += 1
                return changed
            changed[out_net] = out
            cone = self._cone(out_net)

        evaluated = 0
        for g in cone:
            ins = gate_inputs[g]
            hit = False
            for n in ins:
                if n in changed:
                    hit = True
                    break
            if not hit:
                continue
            evaluated += 1
            values = tuple(changed.get(n, good[n]) for n in ins)
            out = evaluate(gate_type[g], values, mask)
            out_net = gate_output[g]
            if out != good[out_net]:
                changed[out_net] = out
            elif out_net in changed:
                del changed[out_net]
        stats["gates_evaluated"] += evaluated
        stats["gates_visited"] += len(cone)
        return changed


def _parity(value):
    """Parity (XOR reduction) of the set bits of *value*."""
    return value.bit_count() & 1
