"""Per-module test-pattern (stimulus) extraction.

The paper's gate-level logic simulation observes the I/O switching activity
at the inputs of the target module and emits the per-clock-cycle sequence of
test patterns the PTP implicitly applies to it (Section III stage 2, VCDE
format).  The cycle-level simulator reproduces this through
:class:`StimulusCollector` subclasses — one per fault-targeted module — that
translate architectural events into netlist port assignments:

* Decoder Unit: the fetched 64-bit instruction word, at the decode cycle;
* SP core: (micro-op, cmp, a, b, c) per lane beat, at the execute cycles;
* SFU: (func, x) per lane beat for transcendental instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import encoding
from ..isa.opcodes import Op, Unit
from ..netlist.modules.sfu import FUNC_CODES
from ..netlist.modules.sp_core import ISA_TO_SPOP, SPOp


@dataclass(frozen=True)
class StimulusRecord:
    """One test pattern applied to a target module.

    Attributes:
        cc: clock cycle at which the pattern reaches the module inputs.
        block / warp / lane: originating block, warp, and hardware lane
            (lane is 0 for whole-warp modules like the DU).
        pc: program counter of the causing instruction (kept for report
            validation; the labeling stage joins on ``cc``, not on ``pc``).
        thread: originating thread id within the block (-1 for whole-warp
            modules like the DU); the signature-per-thread FC evaluation
            groups patterns by this field.
        values: port name -> integer value (matching the module's
            ``input_words``).
    """

    cc: int
    block: int
    warp: int
    lane: int
    pc: int
    values: tuple  # sorted tuple of (port, value) pairs; hashable
    thread: int = -1

    @property
    def value_dict(self):
        return dict(self.values)


def _record(cc, block, warp, lane, pc, values, thread=-1):
    return StimulusRecord(cc, block, warp, lane, pc,
                          tuple(sorted(values.items())), thread)


class StimulusCollector:
    """Base class: collects the pattern stream for one target module."""

    #: name matching the HardwareModule this collector feeds.
    module_name = None

    def __init__(self):
        self.records = []

    def on_decode(self, cc, block, warp, pc, instr):
        """Called once per instruction decode."""

    def on_execute_beat(self, cc, block, warp, lane, pc, instr, operands,
                        thread):
        """Called once per executing thread beat.

        *operands* is the (a, b, c) tuple of resolved 32-bit source values
        for the thread on *lane* (immediates already substituted); *thread*
        is the thread id within the block.
        """

    def sort_key(self, record):
        return (record.cc, record.warp, record.lane)

    def finish(self):
        """Stable-sort records into application (cc) order."""
        self.records.sort(key=self.sort_key)
        return self.records


class DecoderUnitCollector(StimulusCollector):
    """Captures the 64-bit instruction word at each decode cycle."""

    module_name = "decoder_unit"

    def on_decode(self, cc, block, warp, pc, instr):
        word = encoding.encode(instr)
        self.records.append(_record(cc, block, warp, 0, pc,
                                    {"instr": word}))


class SpCoreCollector(StimulusCollector):
    """Captures (op, cmp, a, b, c) patterns entering one SP core lane.

    The SP netlist is *width* bits wide; operands are truncated to the
    datapath width exactly as the synthesized module would see them.
    """

    module_name = "sp_core"

    def __init__(self, width, lane_filter=None):
        super().__init__()
        self.width = width
        self.mask = (1 << width) - 1
        self.lane_filter = lane_filter

    def on_execute_beat(self, cc, block, warp, lane, pc, instr, operands,
                        thread):
        if instr.unit is not Unit.SP:
            return
        if self.lane_filter is not None and lane != self.lane_filter:
            return
        spop = ISA_TO_SPOP.get(instr.op, SPOp.PASS)
        a, b, c = operands
        if instr.op is Op.MOV32I:
            a = b  # PASS forwards port a; MOV32I's value arrives as b
        self.records.append(_record(cc, block, warp, lane, pc, {
            "op": spop.value,
            "cmp": instr.cmp.value,
            "a": a & self.mask,
            "b": b & self.mask,
            "c": c & self.mask,
        }, thread))


class SfuCollector(StimulusCollector):
    """Captures (func, x) patterns entering the SFUs."""

    module_name = "sfu"

    _FUNC_BY_OP = {
        Op.RCP: FUNC_CODES["RCP"], Op.RSQ: FUNC_CODES["RSQ"],
        Op.SIN: FUNC_CODES["SIN"], Op.COS: FUNC_CODES["COS"],
        Op.LG2: FUNC_CODES["LG2"], Op.EX2: FUNC_CODES["EX2"],
    }

    def __init__(self, width):
        super().__init__()
        self.width = width
        self.mask = (1 << width) - 1

    def on_execute_beat(self, cc, block, warp, lane, pc, instr, operands,
                        thread):
        func = self._FUNC_BY_OP.get(instr.op)
        if func is None:
            return
        a, __, __ = operands
        self.records.append(_record(cc, block, warp, lane, pc, {
            "func": func,
            "x": a & self.mask,
        }, thread))
