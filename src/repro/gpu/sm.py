"""Streaming Multiprocessor: the cycle-level SIMT execution engine.

One SM executes one thread block at a time.  Warps are scheduled round-robin
at instruction granularity through the 5-stage pipeline (fetch, decode,
read, execute, write); the execute stage processes the warp's 32 threads in
beats of ``num_sps`` lanes (4 beats for the paper's 8-SP configuration).

The timing model charges, per instruction and warp::

    pipeline_overhead + beats * opcode_latency (+ global_latency per beat
                                                 for global memory accesses)

which preserves the quantities the compaction method consumes — per-cc
instruction attribution and total kernel duration in clock cycles — without
modeling stage overlap (FlexGripPlus keeps one warp in flight per SM, so
instruction-serial timing is the faithful abstraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..isa.opcodes import Op, SpecialReg, Unit, info
from . import functional
from .config import WARP_SIZE
from .simt_stack import DIV, SYNC, SimtStack


@dataclass
class WarpState:
    """Architectural state of one warp."""

    warp_id: int
    pc: int = 0
    active_mask: int = 0
    done: bool = False
    at_barrier: bool = False
    stack: SimtStack = field(default_factory=SimtStack)
    call_stack: list = field(default_factory=list)


class SM:
    """Executes one block of a kernel program."""

    def __init__(self, config, program, block_id, block_threads, grid_blocks,
                 regfile, memsys, monitor, start_cycle=0,
                 max_instructions=20_000_000):
        self.config = config
        self.program = program
        self.block_id = block_id
        self.block_threads = block_threads
        self.grid_blocks = grid_blocks
        self.regfile = regfile
        self.memsys = memsys
        self.monitor = monitor
        self.cycle = start_cycle
        self.max_instructions = max_instructions
        self.instructions_executed = 0

        num_warps = -(-block_threads // WARP_SIZE)
        self.warps = []
        for w in range(num_warps):
            threads = min(WARP_SIZE, block_threads - w * WARP_SIZE)
            self.warps.append(WarpState(warp_id=w,
                                        active_mask=(1 << threads) - 1))

    # -- operand / predicate helpers ------------------------------------------

    def _thread_id(self, warp, lane):
        return warp.warp_id * WARP_SIZE + lane

    def _guard_mask(self, instr, warp):
        """Lanes whose predicate guard allows execution."""
        if instr.pred is None:
            return warp.active_mask
        mask = 0
        for lane in self._lanes(warp.active_mask):
            tid = self._thread_id(warp, lane)
            value = self.regfile.read_pred(instr.pred.index, tid)
            if value != instr.pred.negate:
                mask |= 1 << lane
        return mask

    @staticmethod
    def _lanes(mask):
        lane = 0
        while mask:
            if mask & 1:
                yield lane
            mask >>= 1
            lane += 1

    def _operands(self, instr, tid, lane, warp):
        """Resolve (a, b, c) source words for one thread."""
        read = self.regfile.read
        op = instr.op
        a = b = c = 0
        fmt = instr.fmt.name
        if op is Op.MOV32I:
            b = instr.imm
        elif op is Op.S2R:
            a = self._special_reg(instr.sreg, tid, warp, lane)
        elif op is Op.SEL:
            sel = self.regfile.read_pred(instr.src_c, tid)
            a = read(instr.src_a, tid) if sel else read(instr.src_b, tid)
        elif fmt == "RRI32":
            a = read(instr.src_a, tid)
            b = instr.imm
        elif fmt in ("RRR", "RRC", "PRC"):
            a = read(instr.src_a, tid)
            b = read(instr.src_b, tid)
        elif fmt == "RRRR":
            a = read(instr.src_a, tid)
            b = read(instr.src_b, tid)
            c = read(instr.src_c, tid)
        elif fmt == "RR":
            a = read(instr.src_a, tid)
        elif fmt in ("LD", "ST"):
            a = read(instr.src_a, tid)
            if fmt == "ST":
                b = read(instr.src_b, tid)
        elif fmt == "CONSTLD":
            a = instr.imm
        return a, b, c

    def _special_reg(self, sreg, tid, warp, lane):
        if sreg is SpecialReg.TID_X:
            return tid
        if sreg is SpecialReg.NTID_X:
            return self.block_threads
        if sreg is SpecialReg.CTAID_X:
            return self.block_id
        if sreg is SpecialReg.NCTAID_X:
            return self.grid_blocks
        if sreg is SpecialReg.LANEID:
            return lane
        if sreg is SpecialReg.WARPID:
            return warp.warp_id
        raise SimulationError("unknown special register {!r}".format(sreg))

    # -- main loop ---------------------------------------------------------------

    def run(self):
        """Execute the block to completion; returns the final cycle count."""
        while True:
            runnable = [w for w in self.warps if not w.done]
            if not runnable:
                return self.cycle
            progressed = False
            for warp in self.warps:
                if warp.done or warp.at_barrier:
                    continue
                self._step(warp)
                progressed = True
            waiting = [w for w in runnable if w.at_barrier]
            if waiting and all(w.at_barrier or w.done for w in self.warps):
                for w in waiting:
                    w.at_barrier = False
                progressed = True
            if not progressed:
                raise SimulationError(
                    "deadlock: no runnable warp in block {}".format(
                        self.block_id))

    # -- single instruction -----------------------------------------------------

    def _step(self, warp):
        if not 0 <= warp.pc < len(self.program):
            raise SimulationError("warp {} pc {} out of program".format(
                warp.warp_id, warp.pc))
        self.instructions_executed += 1
        if self.instructions_executed > self.max_instructions:
            raise SimulationError("instruction budget exceeded "
                                  "(runaway kernel?)")
        pc = warp.pc
        instr = self.program[pc]
        opinfo = info(instr.op)

        fetch_cc = self.cycle
        decode_cc = fetch_cc + 1
        self.monitor.on_decode(decode_cc, self.block_id, warp.warp_id, pc,
                               instr)

        exec_mask = self._guard_mask(instr, warp)

        lanes_per_beat = (self.config.num_sfus
                          if opinfo.unit is Unit.SFU else self.config.num_sps)
        # Lanes map to beats positionally (lane L runs in beat L // width),
        # so the beat count is set by the highest active lane.
        if opinfo.unit is Unit.CTRL or exec_mask == 0:
            beats = 1
        else:
            highest_lane = exec_mask.bit_length() - 1
            beats = highest_lane // lanes_per_beat + 1
        beat_cost = opinfo.latency
        if opinfo.unit is Unit.MEM and instr.op in (Op.GLD, Op.GST):
            beat_cost += self.config.global_latency
        exec_start = fetch_cc + 3  # after fetch, decode, read stages
        exec_end = exec_start + beats * beat_cost - 1
        total_cycles = self.config.pipeline_overhead + beats * beat_cost

        self._execute(instr, warp, exec_mask, exec_start, beat_cost,
                      lanes_per_beat)

        self.monitor.on_instruction_done(
            self.block_id, warp.warp_id, pc, instr, decode_cc, exec_start,
            exec_end, warp.active_mask, exec_mask)
        self.cycle += total_cycles

    def _execute(self, instr, warp, exec_mask, exec_start, beat_cost,
                 lanes_per_beat):
        op = instr.op
        unit = info(instr.op).unit

        if unit is Unit.CTRL:
            self._execute_control(instr, warp, exec_mask)
            return

        next_pc = warp.pc + 1
        # Assign beats by lane groups: lane L executes in beat L // width.
        for lane in self._lanes(exec_mask):
            tid = self._thread_id(warp, lane)
            beat = lane // lanes_per_beat
            beat_cc = exec_start + beat * beat_cost
            operands = self._operands(instr, tid, lane, warp)
            self.monitor.on_execute_beat(beat_cc, self.block_id,
                                         warp.warp_id, lane % lanes_per_beat,
                                         warp.pc, instr, operands, tid)
            self._retire_thread(instr, tid, operands)
        warp.pc = next_pc

    def _retire_thread(self, instr, tid, operands):
        op = instr.op
        a, b, c = operands
        if op in (Op.GLD, Op.SLD):
            space = self.memsys.global_mem if op is Op.GLD else (
                self.memsys.shared)
            value = space.load(a + instr.imm)
            self.regfile.write(instr.dst, tid, value)
        elif op in (Op.GST, Op.SST):
            space = self.memsys.global_mem if op is Op.GST else (
                self.memsys.shared)
            space.store(a + instr.imm, b)
        elif op is Op.CLD:
            self.regfile.write(instr.dst, tid,
                               self.memsys.constant.load(instr.imm))
        elif op is Op.SEL or op is Op.S2R:
            self.regfile.write(instr.dst, tid, a)
        elif op is Op.ISETP:
            __, pred = functional.execute_arith(instr, a, b, c, instr.cmp)
            self.regfile.write_pred(instr.dst, tid, pred)
        else:
            result, pred = functional.execute_arith(instr, a, b, c,
                                                    instr.cmp)
            if info(op).writes_reg:
                self.regfile.write(instr.dst, tid, result)

    # -- control flow ---------------------------------------------------------------

    def _execute_control(self, instr, warp, exec_mask):
        op = instr.op
        if op is Op.NOP:
            warp.pc += 1
        elif op is Op.EXIT:
            warp.done = True
        elif op is Op.BAR:
            warp.at_barrier = True
            warp.pc += 1
        elif op is Op.SSY:
            warp.stack.push_sync(instr.target, warp.active_mask)
            warp.pc += 1
        elif op is Op.JOIN:
            self._execute_join(warp)
        elif op is Op.CAL:
            warp.call_stack.append(warp.pc + 1)
            warp.pc = instr.target
        elif op is Op.RET:
            if not warp.call_stack:
                raise SimulationError("RET with empty call stack")
            warp.pc = warp.call_stack.pop()
        elif op is Op.BRA:
            self._execute_branch(instr, warp, exec_mask)
        else:  # pragma: no cover - exhaustive over CTRL ops
            raise SimulationError("unhandled control op {}".format(op))

    def _execute_branch(self, instr, warp, exec_mask):
        taken = exec_mask
        not_taken = warp.active_mask & ~exec_mask
        if not_taken == 0:
            warp.pc = instr.target
        elif taken == 0:
            warp.pc += 1
        else:
            # Divergence: run the taken path first; park the fall-through.
            warp.stack.push_div(warp.pc + 1, not_taken)
            warp.active_mask = taken
            warp.pc = instr.target

    def _execute_join(self, warp):
        entry = warp.stack.pop()
        if entry.kind == DIV:
            # Switch to the parked fall-through path; the JOIN will run
            # again when that path reaches it.
            warp.active_mask = entry.mask
            warp.pc = entry.pc
        elif entry.kind == SYNC:
            warp.active_mask = entry.mask
            warp.pc += 1
        else:  # pragma: no cover
            raise SimulationError("corrupt SIMT stack entry")
