"""Configuration objects for the FlexGripPlus-class GPU model.

The paper's evaluation configures FlexGripPlus with one SM and 8 SP cores
(Section IV); those are the defaults here.  The model keeps FlexGripPlus's
flexibility of choosing 8, 16, or 32 execution units per SM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KernelLaunchError

#: Threads per warp (NVIDIA G80 and FlexGripPlus).
WARP_SIZE = 32


@dataclass(frozen=True)
class GpuConfig:
    """Static hardware configuration of the GPU model.

    Attributes:
        num_sms: number of streaming multiprocessors.
        num_sps: SP cores per SM (FlexGripPlus allows 8, 16, or 32).
        num_sfus: Special Function Units per SM.
        shared_mem_words: 32-bit words of shared memory per SM.
        const_mem_words: 32-bit words of constant memory.
        global_latency: extra cycles charged per global-memory beat.
        pipeline_overhead: cycles charged per instruction for the
            fetch/decode/read/write stages of the 5-stage pipeline.
    """

    num_sms: int = 1
    num_sps: int = 8
    num_sfus: int = 2
    shared_mem_words: int = 4096
    const_mem_words: int = 2048
    global_latency: int = 4
    pipeline_overhead: int = 4

    def __post_init__(self):
        if self.num_sps not in (8, 16, 32):
            raise KernelLaunchError(
                "FlexGripPlus supports 8, 16, or 32 SPs; got {}".format(
                    self.num_sps))
        if self.num_sms < 1 or self.num_sfus < 1:
            raise KernelLaunchError("need at least one SM and one SFU")


@dataclass(frozen=True)
class KernelConfig:
    """One kernel launch: grid/block geometry plus constant-bank contents.

    Attributes:
        grid_blocks: number of thread blocks (CTAs).
        block_threads: threads per block (multiple of the warp size keeps
            masks simple; ragged tails are allowed).
        const_words: constant memory image, word index -> value.
    """

    grid_blocks: int = 1
    block_threads: int = WARP_SIZE
    const_words: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.grid_blocks < 1:
            raise KernelLaunchError("grid must have at least one block")
        if self.block_threads < 1:
            raise KernelLaunchError("block must have at least one thread")
        if self.block_threads > 1024:
            raise KernelLaunchError("at most 1024 threads per block")

    @property
    def warps_per_block(self):
        return -(-self.block_threads // WARP_SIZE)

    @property
    def total_threads(self):
        return self.grid_blocks * self.block_threads
