"""General Purpose Register File (GPRF) and predicate file of one block.

Registers are per-thread: ``read(reg, tid)`` / ``write(reg, tid, value)``.
All values are 32-bit unsigned words (two's-complement semantics live in the
functional unit models).
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa.instruction import NUM_PREDS, NUM_REGS

MASK32 = 0xFFFFFFFF


class RegisterFile:
    """Per-thread GPRs and predicate registers for one thread block."""

    def __init__(self, num_threads):
        if num_threads < 1:
            raise SimulationError("register file needs at least one thread")
        self.num_threads = num_threads
        self._regs = [[0] * NUM_REGS for __ in range(num_threads)]
        self._preds = [[False] * NUM_PREDS for __ in range(num_threads)]

    def _check_thread(self, tid):
        if not 0 <= tid < self.num_threads:
            raise SimulationError("thread id {} out of range".format(tid))

    def read(self, reg, tid):
        self._check_thread(tid)
        return self._regs[tid][reg]

    def write(self, reg, tid, value):
        self._check_thread(tid)
        self._regs[tid][reg] = value & MASK32

    def read_pred(self, pred, tid):
        self._check_thread(tid)
        return self._preds[tid][pred]

    def write_pred(self, pred, tid, value):
        self._check_thread(tid)
        self._preds[tid][pred] = bool(value)
