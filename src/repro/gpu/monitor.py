"""Hardware tracing monitor.

The paper incorporates one hardware monitor in one SM "without any effect on
the functional operation of the PTP"; it captures instruction opcodes from
the fetch stage and generates the tracing report (Section III stage 2).
:class:`Monitor` is that component: the SM calls it at decode and at every
execute beat, and it fans the events out to the trace-record list and to the
registered per-module stimulus collectors.
"""

from __future__ import annotations

from .trace import TraceRecord


class Monitor:
    """Collects trace records and per-module stimuli during a kernel run."""

    def __init__(self, collectors=()):
        self.trace = []
        self.collectors = list(collectors)

    def add_collector(self, collector):
        self.collectors.append(collector)

    def on_decode(self, cc, block, warp, pc, instr):
        for collector in self.collectors:
            collector.on_decode(cc, block, warp, pc, instr)

    def on_execute_beat(self, cc, block, warp, lane, pc, instr, operands,
                        thread):
        for collector in self.collectors:
            collector.on_execute_beat(cc, block, warp, lane, pc, instr,
                                      operands, thread)

    def on_instruction_done(self, block, warp, pc, instr, decode_cc,
                            exec_start_cc, exec_end_cc, active_mask,
                            exec_mask):
        self.trace.append(TraceRecord(
            block=block, warp=warp, pc=pc, mnemonic=instr.op.value,
            decode_cc=decode_cc, exec_start_cc=exec_start_cc,
            exec_end_cc=exec_end_cc, active_mask=active_mask,
            exec_mask=exec_mask))

    def finish(self):
        """Sort collector streams; returns {module_name: [StimulusRecord]}."""
        return {collector.module_name: collector.finish()
                for collector in self.collectors}
