"""Functional (architectural) semantics of every ISA instruction.

These models compute what the hardware computes, thread by thread:
32-bit two's-complement integer arithmetic, IEEE-754 binary32 floating
point (via struct round-tripping), and the SFU's transcendental
approximations.  The cycle-level SM drives them; the gate-level netlists
are *not* involved here — they enter only through the fault-analysis path.
"""

from __future__ import annotations

import math
import struct

from ..errors import SimulationError
from ..isa.opcodes import CmpOp, Op

MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit word as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def from_signed(value):
    """Wrap a Python int into a 32-bit word."""
    return value & MASK32


def word_to_float(word):
    """Reinterpret a 32-bit word as IEEE-754 binary32."""
    return struct.unpack("<f", struct.pack("<I", word & MASK32))[0]


def float_to_word(value):
    """Round *value* to binary32 and reinterpret as a 32-bit word."""
    if math.isnan(value):
        return 0x7FC00000
    if math.isinf(value):
        return 0x7F800000 if value > 0 else 0xFF800000
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def compare_int(cmp_op, a, b):
    """Signed integer comparison used by ISET/ISETP."""
    sa, sb = to_signed(a), to_signed(b)
    return {
        CmpOp.LT: sa < sb,
        CmpOp.LE: sa <= sb,
        CmpOp.GT: sa > sb,
        CmpOp.GE: sa >= sb,
        CmpOp.EQ: sa == sb,
        CmpOp.NE: sa != sb,
    }[cmp_op]


def compare_float(cmp_op, a, b):
    fa, fb = word_to_float(a), word_to_float(b)
    if math.isnan(fa) or math.isnan(fb):
        return cmp_op is CmpOp.NE
    return {
        CmpOp.LT: fa < fb,
        CmpOp.LE: fa <= fb,
        CmpOp.GT: fa > fb,
        CmpOp.GE: fa >= fb,
        CmpOp.EQ: fa == fb,
        CmpOp.NE: fa != fb,
    }[cmp_op]


def sfu_function(op, word):
    """SFU transcendental approximation on a binary32 operand."""
    x = word_to_float(word)
    try:
        if op is Op.RCP:
            result = math.inf if x == 0 else 1.0 / x
        elif op is Op.RSQ:
            result = math.inf if x == 0 else (
                float("nan") if x < 0 else 1.0 / math.sqrt(x))
        elif op is Op.SIN:
            result = math.sin(x) if math.isfinite(x) else float("nan")
        elif op is Op.COS:
            result = math.cos(x) if math.isfinite(x) else float("nan")
        elif op is Op.LG2:
            result = (float("nan") if x < 0 else
                      -math.inf if x == 0 else math.log2(x))
        elif op is Op.EX2:
            result = 2.0 ** max(min(x, 128.0), -128.0)
        else:
            raise SimulationError("{} is not an SFU op".format(op))
    except (ValueError, OverflowError):
        result = float("nan")
    return float_to_word(result)


def int_shift_amount(word):
    """Hardware shift semantics: 6-bit amount, >=32 flushes to zero."""
    amount = word & 0x3F
    return amount


def execute_arith(instr, a, b, c, cmp_op):
    """Execute one arithmetic/logic/FP/SFU instruction for one thread.

    Args:
        instr: the :class:`~repro.isa.instruction.Instruction`.
        a, b, c: resolved 32-bit source operands (immediates already
            substituted into *b* for ``*32I`` forms).
        cmp_op: the instruction's comparison operator.

    Returns:
        (result_word, pred_value) — *pred_value* is None unless the
        instruction defines a predicate.
    """
    op = instr.op
    if op in (Op.IADD, Op.IADD32I):
        return from_signed(to_signed(a) + to_signed(b)), None
    if op is Op.ISUB:
        return from_signed(to_signed(a) - to_signed(b)), None
    if op in (Op.IMUL, Op.IMUL32I):
        return from_signed(to_signed(a) * to_signed(b)), None
    if op is Op.IMAD:
        return from_signed(to_signed(a) * to_signed(b) + to_signed(c)), None
    if op is Op.IMIN:
        return (a if to_signed(a) < to_signed(b) else b), None
    if op is Op.IMAX:
        return (a if to_signed(a) > to_signed(b) else b), None
    if op in (Op.AND, Op.AND32I):
        return a & b, None
    if op in (Op.OR, Op.OR32I):
        return a | b, None
    if op in (Op.XOR, Op.XOR32I):
        return a ^ b, None
    if op is Op.NOT:
        return (~a) & MASK32, None
    if op in (Op.SHL, Op.SHL32I):
        amount = int_shift_amount(b)
        return (a << amount) & MASK32 if amount < 32 else 0, None
    if op in (Op.SHR, Op.SHR32I):
        amount = int_shift_amount(b)
        return (a & MASK32) >> amount if amount < 32 else 0, None
    if op is Op.ISET:
        return (MASK32 if compare_int(cmp_op, a, b) else 0), None
    if op is Op.ISETP:
        return 0, compare_int(cmp_op, a, b)
    if op in (Op.FADD, Op.FADD32I):
        return float_to_word(word_to_float(a) + word_to_float(b)), None
    if op in (Op.FMUL, Op.FMUL32I):
        return float_to_word(word_to_float(a) * word_to_float(b)), None
    if op is Op.FMAD:
        return float_to_word(word_to_float(a) * word_to_float(b)
                             + word_to_float(c)), None
    if op is Op.FSET:
        return (MASK32 if compare_float(cmp_op, a, b) else 0), None
    if op is Op.F2I:
        value = word_to_float(a)
        if math.isnan(value):
            return 0, None
        clamped = max(min(value, 2147483647.0), -2147483648.0)
        return from_signed(int(clamped)), None
    if op is Op.I2F:
        return float_to_word(float(to_signed(a))), None
    if op in (Op.RCP, Op.RSQ, Op.SIN, Op.COS, Op.LG2, Op.EX2):
        return sfu_function(op, a), None
    if op is Op.MOV:
        return a, None
    if op is Op.MOV32I:
        return b, None
    raise SimulationError("{} is not handled by execute_arith".format(op))
