"""Cycle-level FlexGripPlus-class GPU model (the RTL-simulation substrate).

This package replaces the paper's VHDL FlexGripPlus model plus RTL logic
simulator: a SIMT GPU with one SM, 8 SP cores, 2 SFUs, a 5-stage pipeline
timing model, SIMT divergence stack, and a non-intrusive tracing monitor
producing the per-cc tracing report and per-module test-pattern streams the
compaction method consumes.
"""

from .config import WARP_SIZE, GpuConfig, KernelConfig
from .gpu import Gpu, KernelResult
from .memory import MemorySystem, WordMemory
from .monitor import Monitor
from .regfile import RegisterFile
from .simt_stack import SimtStack
from .sm import SM, WarpState
from .stimuli import (
    DecoderUnitCollector,
    SfuCollector,
    SpCoreCollector,
    StimulusCollector,
    StimulusRecord,
)
from .trace import TraceRecord, parse_trace_report, write_trace_report

__all__ = [
    "Gpu", "GpuConfig", "KernelConfig", "KernelResult", "WARP_SIZE",
    "MemorySystem", "WordMemory", "RegisterFile", "SimtStack", "SM",
    "WarpState", "Monitor", "TraceRecord", "write_trace_report",
    "parse_trace_report", "StimulusCollector", "StimulusRecord",
    "DecoderUnitCollector", "SpCoreCollector", "SfuCollector",
]
