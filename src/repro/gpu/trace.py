"""Trace records produced by the hardware monitor during logic simulation.

The paper's RTL logic simulation embeds a non-intrusive hardware monitor in
one SM; it captures, per clock cycle, the decoded instruction, the program
counter, the executing warp, and the cycle value (Section III stage 2).
Our cycle-level simulator produces the same information as a list of
:class:`TraceRecord` (one per executed instruction per warp, holding its
cycle span) plus a text rendering that matches the paper's text-file
interchange format and round-trips through :func:`parse_trace_report`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReportError


@dataclass(frozen=True)
class TraceRecord:
    """One instruction execution by one warp.

    Attributes:
        block: block (CTA) index.
        warp: warp index within the block.
        pc: program counter (instruction index).
        mnemonic: decoded instruction mnemonic.
        decode_cc: clock cycle at which the DU decodes the instruction.
        exec_start_cc / exec_end_cc: inclusive execute-stage cycle span.
        active_mask: warp lanes active at issue.
        exec_mask: lanes that actually executed (active & predicate guard).
    """

    block: int
    warp: int
    pc: int
    mnemonic: str
    decode_cc: int
    exec_start_cc: int
    exec_end_cc: int
    active_mask: int
    exec_mask: int


_HEADER = ("#block warp pc mnemonic decode_cc exec_start_cc exec_end_cc "
           "active_mask exec_mask")


def write_trace_report(records):
    """Render *records* as the text tracing report."""
    lines = [_HEADER]
    for r in records:
        lines.append("{} {} {} {} {} {} {} 0x{:08X} 0x{:08X}".format(
            r.block, r.warp, r.pc, r.mnemonic, r.decode_cc, r.exec_start_cc,
            r.exec_end_cc, r.active_mask, r.exec_mask))
    return "\n".join(lines) + "\n"


def parse_trace_report(text):
    """Parse a text tracing report back into :class:`TraceRecord` objects."""
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 9:
            raise ReportError("trace line {}: expected 9 fields, got {}"
                              .format(lineno, len(parts)))
        try:
            records.append(TraceRecord(
                block=int(parts[0]), warp=int(parts[1]), pc=int(parts[2]),
                mnemonic=parts[3], decode_cc=int(parts[4]),
                exec_start_cc=int(parts[5]), exec_end_cc=int(parts[6]),
                active_mask=int(parts[7], 16), exec_mask=int(parts[8], 16)))
        except ValueError as exc:
            raise ReportError("trace line {}: {}".format(lineno,
                                                           exc)) from exc
    return records
