"""Memory spaces of the GPU model.

FlexGripPlus exposes a general-purpose register file, shared, local,
constant, and global memory.  The model keeps word-addressed (32-bit)
sparse images; the global memory doubles as the PTP's observable point
(thread signatures are stored through it, Section II.C of the paper).
"""

from __future__ import annotations

from ..errors import SimulationError

MASK32 = 0xFFFFFFFF


class WordMemory:
    """Sparse word-addressed 32-bit memory with bounds checking."""

    def __init__(self, name, size_words=None, read_only=False):
        self.name = name
        self.size_words = size_words
        self.read_only = read_only
        self._words = {}
        self.reads = 0
        self.writes = 0

    def _check(self, address):
        if address < 0 or (self.size_words is not None
                           and address >= self.size_words):
            raise SimulationError("{} address {} out of range".format(
                self.name, address))

    def load(self, address):
        self._check(address)
        self.reads += 1
        return self._words.get(address, 0)

    def store(self, address, value):
        if self.read_only:
            raise SimulationError("{} is read-only".format(self.name))
        self._check(address)
        self.writes += 1
        self._words[address] = value & MASK32

    def preload(self, image):
        """Initialize contents from an address -> value dict (no counters)."""
        for address, value in image.items():
            self._check(address)
            self._words[address] = value & MASK32

    def snapshot(self):
        """Copy of the current contents as an address -> value dict."""
        return dict(self._words)

    def clear(self):
        self._words.clear()
        self.reads = 0
        self.writes = 0


class MemorySystem:
    """The per-kernel set of memory spaces."""

    def __init__(self, config, const_image=None):
        self.global_mem = WordMemory("global")
        self.shared = WordMemory("shared", config.shared_mem_words)
        self.constant = WordMemory("constant", config.const_mem_words,
                                   read_only=True)
        if const_image:
            self.constant.preload(const_image)

    def space(self, code):
        """Memory space by ``mem_space`` control code (0=global, 1=shared,
        2=constant)."""
        if code == 0:
            return self.global_mem
        if code == 1:
            return self.shared
        if code == 2:
            return self.constant
        raise SimulationError("unknown memory space code {}".format(code))
