"""SIMT divergence stack (G80-style SSY / divergent-branch / JOIN).

Divergence protocol implemented by the SM:

* ``SSY target`` pushes a SYNC entry capturing the current active mask; the
  *target* is the reconvergence point and must hold a ``JOIN``.
* A divergent ``@P BRA`` pushes a DIV entry holding the fall-through path
  (pc+1) and its mask, then continues on the taken path with the taken mask.
* ``JOIN`` pops: a DIV entry switches execution to the stored path/mask; a
  SYNC entry restores the captured mask and falls through.

Both diverged paths must reach the ``JOIN`` at the SSY target (the taken
path branching to it, the fall-through path flowing into it), mirroring how
FlexGripPlus reconverges warps.  The paper's CNTRL PTP exercises exactly
this machinery on the Decoder Unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

SYNC = "sync"
DIV = "div"


@dataclass
class StackEntry:
    kind: str          # SYNC or DIV
    pc: int            # reconvergence pc (SYNC) / pending path pc (DIV)
    mask: int          # active mask to restore / to run the pending path


class SimtStack:
    """Per-warp divergence stack."""

    def __init__(self, max_depth=32):
        self.entries = []
        self.max_depth = max_depth

    def __len__(self):
        return len(self.entries)

    @property
    def depth(self):
        return len(self.entries)

    def push_sync(self, reconv_pc, mask):
        self._push(StackEntry(SYNC, reconv_pc, mask))

    def push_div(self, pending_pc, mask):
        self._push(StackEntry(DIV, pending_pc, mask))

    def _push(self, entry):
        if len(self.entries) >= self.max_depth:
            raise SimulationError("SIMT stack overflow (depth {})".format(
                self.max_depth))
        self.entries.append(entry)

    def pop(self):
        if not self.entries:
            raise SimulationError("JOIN with empty SIMT stack")
        return self.entries.pop()

    def peek(self):
        return self.entries[-1] if self.entries else None
