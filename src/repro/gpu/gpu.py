"""Top-level GPU model: block dispatch and kernel execution.

A :class:`Gpu` owns the static configuration; :meth:`Gpu.run_kernel`
dispatches the grid's blocks to the SM(s) — the paper's configuration has a
single SM, so blocks run back-to-back — and returns a :class:`KernelResult`
with the duration in clock cycles, the final memory images, the tracing
report, and the per-module stimulus streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import GpuConfig, KernelConfig
from .memory import MemorySystem
from .monitor import Monitor
from .regfile import RegisterFile
from .sm import SM


@dataclass
class KernelResult:
    """Outcome of one kernel execution.

    Attributes:
        cycles: total duration in clock cycles.
        instructions: dynamically executed instruction count (per warp).
        global_memory: final global-memory image (address -> word).
        trace: list of :class:`~repro.gpu.trace.TraceRecord`.
        stimuli: module name -> list of
            :class:`~repro.gpu.stimuli.StimulusRecord`, in cc order.
    """

    cycles: int
    instructions: int
    global_memory: dict
    trace: list = field(default_factory=list)
    stimuli: dict = field(default_factory=dict)


class Gpu:
    """The FlexGripPlus-class GPU model."""

    def __init__(self, config=None):
        self.config = config or GpuConfig()

    def run_kernel(self, program, kernel=None, collectors=(),
                   global_image=None, max_instructions=20_000_000):
        """Execute *program* under *kernel* configuration.

        Args:
            program: a :class:`~repro.isa.instruction.Program` or a plain
                instruction list.
            kernel: a :class:`~repro.gpu.config.KernelConfig`
                (default: 1 block x 32 threads).
            collectors: stimulus collectors to attach to the monitor.
            global_image: initial global memory contents.
            max_instructions: runaway-kernel guard per block.

        Returns:
            A :class:`KernelResult`.
        """
        kernel = kernel or KernelConfig()
        instructions = list(program)
        monitor = Monitor(collectors)
        memsys = MemorySystem(self.config, kernel.const_words)
        if global_image:
            memsys.global_mem.preload(global_image)

        cycle = 0
        executed = 0
        for block in range(kernel.grid_blocks):
            regfile = RegisterFile(kernel.block_threads)
            sm = SM(self.config, instructions, block, kernel.block_threads,
                    kernel.grid_blocks, regfile, memsys, monitor,
                    start_cycle=cycle, max_instructions=max_instructions)
            cycle = sm.run()
            executed += sm.instructions_executed

        stimuli = monitor.finish()
        return KernelResult(
            cycles=cycle,
            instructions=executed,
            global_memory=memsys.global_mem.snapshot(),
            trace=monitor.trace,
            stimuli=stimuli,
        )
