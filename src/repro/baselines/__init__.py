"""Prior-work compaction baselines for the cost/quality comparison.

The paper's headline advantage is needing ONE fault simulation per PTP
where prior CPU-oriented techniques need one per candidate removal
([13]-[16]) or rely on reordering ([17]).  These implementations make that
comparison measurable on identical PTPs and modules.
"""

from .iterative import IterativeOutcome, compact_iteratively
from .reorder import ReorderOutcome, compact_by_reordering

__all__ = ["compact_iteratively", "IterativeOutcome",
           "compact_by_reordering", "ReorderOutcome"]
