"""Prior-work baseline: test-program reordering ([17] in the paper).

Cantoro et al. reorder pieces of a test program so that high-contribution
pieces run first, then truncate the tail that adds no coverage.  This
implementation works on the same SB segmentation as the main method: one
fault simulation attributes first detections to SBs, SBs are reordered by
descending contribution, and SBs with zero first-detections are dropped.

Unlike the paper's method it changes the execution order of the surviving
SBs, so it is only sound for PTPs without inter-SB data dependences (e.g.
SFU_IMM); for SpT-based PTPs it perturbs the signature chain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.partition import partition_ptp
from ..core.reduction import segment_small_blocks
from ..core.tracing import run_logic_tracing
from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimulator
from ..gpu.gpu import Gpu
from ..isa.instruction import Program


@dataclass
class ReorderOutcome:
    """Result of the reordering baseline on one PTP."""

    ptp: object
    compacted: object
    original_size: int
    compacted_size: int
    fault_simulations: int
    wall_seconds: float
    sb_order: list

    @property
    def size_reduction_percent(self):
        if self.original_size == 0:
            return 0.0
        return -100.0 * (self.original_size - self.compacted_size) / (
            self.original_size)


def compact_by_reordering(ptp, module, fault_list=None, gpu=None):
    """Reorder SBs by fault-detection contribution and drop barren ones.

    Only supports straight-line PTPs (no branches outside pinned
    prologue/epilogue); raises otherwise.
    """
    gpu = gpu or Gpu()
    if fault_list is None:
        fault_list = FaultList(module.netlist)
    simulator = FaultSimulator(module.netlist)
    started = time.perf_counter()

    partition = partition_ptp(ptp)
    small_blocks = segment_small_blocks(ptp, partition)

    tracing = run_logic_tracing(ptp, module, gpu=gpu)
    report = tracing.pattern_report
    patterns = report.to_pattern_set()
    result = simulator.run(patterns, fault_list)

    # Attribute first detections to SBs through the cc -> pc -> SB chain.
    cc_to_pc = {}
    for record in tracing.trace:
        for cc in range(record.decode_cc, record.exec_end_cc + 1):
            cc_to_pc[cc] = record.pc
    sb_of_pc = {}
    for i, sb in enumerate(small_blocks):
        for pc in sb.pcs():
            sb_of_pc[pc] = i
    contribution = [0] * len(small_blocks)
    ccs = report.cc_of_pattern()
    for first in result.first_detection:
        if first is None:
            continue
        pc = cc_to_pc.get(ccs[first])
        if pc is None:
            continue
        sb_index = sb_of_pc.get(pc)
        if sb_index is not None:
            contribution[sb_index] += 1

    instructions = list(ptp.program)
    pinned = [(i, sb) for i, sb in enumerate(small_blocks)
              if not sb.removable]
    movable = [(i, sb) for i, sb in enumerate(small_blocks) if sb.removable]
    movable.sort(key=lambda pair: -contribution[pair[0]])

    new_instructions = []
    order = []
    # Keep pinned prologue SBs (before the first movable SB) first, then
    # contributing movable SBs, then the remaining pinned tail.
    first_movable_start = min((sb.start for __, sb in movable),
                              default=len(instructions))
    for i, sb in pinned:
        if sb.start < first_movable_start:
            new_instructions.extend(instructions[pc] for pc in sb.pcs())
            order.append(i)
    for i, sb in movable:
        if contribution[i] == 0:
            continue
        new_instructions.extend(instructions[pc] for pc in sb.pcs())
        order.append(i)
    for i, sb in pinned:
        if sb.start >= first_movable_start:
            new_instructions.extend(instructions[pc] for pc in sb.pcs())
            order.append(i)

    compacted = ptp.with_program(Program(new_instructions, {}),
                                 name=ptp.name + "_reordered")
    return ReorderOutcome(
        ptp=ptp,
        compacted=compacted,
        original_size=ptp.size,
        compacted_size=compacted.size,
        fault_simulations=1,
        wall_seconds=time.perf_counter() - started,
        sb_order=order,
    )
