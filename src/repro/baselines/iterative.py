"""Prior-work baseline: iterative remove-and-resimulate compaction.

The CPU-oriented techniques the paper compares against ([13]-[16]) "require
as many fault simulations as the number of instructions in a TP": they
produce compacted-TP candidates by removing pieces and fault-simulate each
candidate to check the FC.  This module implements that strategy at SB
granularity (the evolutionary/subroutine methods of [16] work on code
chunks) so the benchmark can reproduce the paper's headline cost claim —
ONE fault simulation for our method versus hundreds for the baseline — on
identical PTPs.

The greedy loop scans SBs (back to front, the order that removes trailing
redundancy fastest); an SB is removed when the candidate PTP without it
keeps the full fault coverage.  Every candidate costs one end-to-end logic
simulation plus one fault simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.partition import partition_ptp
from ..core.reduction import segment_small_blocks
from ..core.tracing import run_logic_tracing
from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimulator
from ..gpu.gpu import Gpu
from ..isa.instruction import Program
from ..isa.opcodes import Fmt, info


@dataclass
class IterativeOutcome:
    """Result of the iterative baseline on one PTP."""

    ptp: object
    compacted: object
    original_size: int
    compacted_size: int
    original_cycles: int
    compacted_cycles: int
    original_fc: float
    compacted_fc: float
    fault_simulations: int
    removed_sbs: int
    wall_seconds: float
    candidates_tried: int = 0

    @property
    def size_reduction_percent(self):
        if self.original_size == 0:
            return 0.0
        return -100.0 * (self.original_size - self.compacted_size) / (
            self.original_size)

    @property
    def duration_reduction_percent(self):
        if self.original_cycles == 0:
            return 0.0
        return -100.0 * (self.original_cycles - self.compacted_cycles) / (
            self.original_cycles)

    @property
    def fc_diff(self):
        return self.compacted_fc - self.original_fc


def _rebuild(ptp, instructions, keep, suffix):
    """PTP with only the kept instructions, branch targets remapped."""
    pc_map = [None] * len(instructions)
    new_instructions = []
    for pc, kept in enumerate(keep):
        if kept:
            pc_map[pc] = len(new_instructions)
            new_instructions.append(instructions[pc])

    def remap(target):
        for candidate in range(target, len(pc_map)):
            if pc_map[candidate] is not None:
                return pc_map[candidate]
        return max(len(new_instructions) - 1, 0)

    for i, instr in enumerate(new_instructions):
        if info(instr.op).fmt is Fmt.BRANCH:
            new_instructions[i] = instr.with_target(remap(instr.target))
    labels = {name: remap(target)
              for name, target in ptp.program.labels.items()}
    return ptp.with_program(Program(new_instructions, labels),
                            name=ptp.name + suffix)


def _measure(ptp, module, simulator, fault_list, gpu):
    tracing = run_logic_tracing(ptp, module, gpu=gpu)
    patterns = tracing.pattern_report.to_pattern_set()
    result = simulator.run(patterns, fault_list)
    return tracing.cycles, set(result.detected_faults)


def compact_iteratively(ptp, module, fault_list=None, gpu=None,
                        max_candidates=None, allow_fc_loss=0.0):
    """Run the remove-and-resimulate baseline on *ptp*.

    Args:
        ptp: the PTP to compact.
        module: the target :class:`HardwareModule`.
        fault_list: faults to preserve coverage of (default: full list).
        gpu: optional shared GPU model.
        max_candidates: cap on candidate evaluations (None = all SBs).
        allow_fc_loss: tolerated FC loss in percentage points per step.

    Returns:
        An :class:`IterativeOutcome` (its ``fault_simulations`` counts the
        initial measurement plus one per candidate).
    """
    gpu = gpu or Gpu()
    if fault_list is None:
        fault_list = FaultList(module.netlist)
    simulator = FaultSimulator(module.netlist)
    started = time.perf_counter()

    partition = partition_ptp(ptp)
    small_blocks = [sb for sb in segment_small_blocks(ptp, partition)
                    if sb.removable]
    instructions = list(ptp.program)
    keep = [True] * len(instructions)

    base_cycles, base_detected = _measure(ptp, module, simulator,
                                          fault_list, gpu)
    fault_sims = 1
    total = len(fault_list)
    base_fc = 100.0 * len(base_detected) / total if total else 0.0

    current = ptp
    current_detected = base_detected
    removed = 0
    tried = 0
    for sb in reversed(small_blocks):
        if max_candidates is not None and tried >= max_candidates:
            break
        tried += 1
        candidate_keep = list(keep)
        for pc in sb.pcs():
            candidate_keep[pc] = False
        candidate = _rebuild(ptp, instructions, candidate_keep,
                             "_candidate")
        __, detected = _measure(candidate, module, simulator, fault_list,
                                gpu)
        fault_sims += 1
        lost = len(current_detected - detected)
        lost_percent = 100.0 * lost / total if total else 0.0
        if lost_percent <= allow_fc_loss:
            keep = candidate_keep
            current_detected = detected
            removed += 1
    current = _rebuild(ptp, instructions, keep, "_iterative")
    final_cycles, final_detected = _measure(current, module, simulator,
                                            fault_list, gpu)
    fault_sims += 1
    final_fc = 100.0 * len(final_detected) / total if total else 0.0

    return IterativeOutcome(
        ptp=ptp,
        compacted=current,
        original_size=ptp.size,
        compacted_size=current.size,
        original_cycles=base_cycles,
        compacted_cycles=final_cycles,
        original_fc=base_fc,
        compacted_fc=final_fc,
        fault_simulations=fault_sims,
        removed_sbs=removed,
        wall_seconds=time.perf_counter() - started,
        candidates_tried=tried,
    )
