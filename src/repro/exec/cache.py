"""Content-addressed artifact cache for simulation artifacts.

Stage 2 (logic tracing) recomputes the same RTL/GL simulation whenever the
same PTP meets the same module under the same GPU configuration — on plain
re-runs, on ``--resume``, and in the FC-guard's stage-5 re-evaluation of
the *original* PTP.  This module memoizes those artifacts on disk:

* **addressing** — an entry key is the SHA-256 of the canonical JSON of
  (PTP content, GPU configuration, module fingerprint, stage name,
  payload-format version).  Content addressing makes invalidation
  automatic: editing the PTP, resizing the GPU, or regenerating the module
  netlist changes the key, so stale entries are never *read* — they just
  age out of the LRU cap.
* **storage** — one JSON file per entry under ``<cache-dir>/ab/<key>.json``
  (two-hex-char fan-out), written with the same write-temp-then-
  ``os.replace`` discipline as campaign checkpoints, so concurrent or
  killed writers leave whole files only.
* **eviction** — an LRU byte-size cap: reads touch the entry mtime, and
  a put that pushes the directory over ``max_bytes`` evicts
  oldest-mtime entries first.

The default cache directory is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
Corrupt or unreadable entries are treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from ..errors import CacheError
from ..gpu.stimuli import StimulusRecord
from ..gpu.trace import TraceRecord

#: Bumped whenever a cached payload's layout changes incompatibly; part of
#: every key, so a version bump simply stops old entries from being hit.
FORMAT_VERSION = 1

#: Layout version of the incremental fault-state records stored by
#: :class:`repro.exec.incremental.IncrementalFaultSim`; part of their key,
#: so bumping it orphans (never corrupts) old records.
FAULT_STATE_VERSION = 1

#: Default LRU size cap (bytes of payload files per cache directory).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def module_fingerprint(module):
    """Stable SHA-256 hex digest identifying a built module.

    Covers the module name, generator params, port words, and the full
    gate list — any netlist regeneration that changes structure changes
    the fingerprint (and therefore every cache key derived from it).
    """
    netlist = module.netlist
    document = {
        "name": module.name,
        "params": {str(k): repr(v) for k, v in module.params.items()},
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "input_words": {k: list(v) for k, v in module.input_words.items()},
        "output_words": {k: list(v) for k, v in module.output_words.items()},
        "gates": [[g.index, g.gate_type.name, list(g.inputs), g.output]
                  for g in netlist.gates],
    }
    return _sha256_of(document)


def _sha256_of(document):
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ArtifactCache:
    """On-disk content-addressed artifact store with LRU size cap.

    Args:
        directory: cache root (default: :func:`default_cache_dir`).
        max_bytes: LRU cap over the total payload size (None: uncapped).
    """

    def __init__(self, directory=None, max_bytes=DEFAULT_MAX_BYTES):
        self.directory = directory or default_cache_dir()
        self.max_bytes = max_bytes
        self.stats = {"hits": 0, "misses": 0, "puts": 0, "evictions": 0,
                      "corrupt": 0}

    # -- keys ------------------------------------------------------------

    def key_for(self, ptp, gpu_config, module, stage):
        """Content key for one (PTP, GPU config, module, stage) artifact."""
        from ..stl.io import ptp_to_dict

        document = {
            "format": FORMAT_VERSION,
            "ptp": ptp_to_dict(ptp),
            "gpu": {
                "num_sms": gpu_config.num_sms,
                "num_sps": gpu_config.num_sps,
                "num_sfus": gpu_config.num_sfus,
                "shared_mem_words": gpu_config.shared_mem_words,
                "const_mem_words": gpu_config.const_mem_words,
                "global_latency": gpu_config.global_latency,
                "pipeline_overhead": gpu_config.pipeline_overhead,
            },
            "module": module_fingerprint(module),
            "stage": stage,
        }
        return _sha256_of(document)

    def fault_state_key(self, ptp_name, module, engine):
        """Key of the incremental fault-state record for one
        (PTP, module, engine) combination.

        Deliberately keyed by PTP *name*, not content: an edited PTP must
        find the record its previous revision wrote so unchanged cones can
        be restored — value-level fingerprints inside the record handle
        invalidation.  The GPU configuration is excluded for the same
        reason.
        """
        document = {
            "format": FORMAT_VERSION,
            "fault_state": FAULT_STATE_VERSION,
            "ptp_name": ptp_name,
            "module": module_fingerprint(module),
            "engine": engine,
            "stage": "fault_state",
        }
        return _sha256_of(document)

    def _path_of(self, key):
        return os.path.join(self.directory, key[:2], key + ".json")

    # -- lookup / store --------------------------------------------------

    def get(self, key):
        """Payload dict for *key*, or None (counted as hit/miss).

        A hit refreshes the entry's LRU position; a corrupt entry is
        deleted and reported as a miss.
        """
        path = self._path_of(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            self.stats["misses"] += 1
            return None
        except json.JSONDecodeError:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.stats["misses"] += 1
            self.stats["corrupt"] += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.stats["hits"] += 1
        return payload

    def put(self, key, payload):
        """Store *payload* (JSON-serializable) under *key* atomically."""
        path = self._path_of(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory,
                                             prefix=".entry-",
                                             suffix=".tmp")
        except OSError as exc:
            raise CacheError("cannot write cache entry under {!r}: {}"
                             .format(self.directory, exc)) from exc
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats["puts"] += 1
        self._enforce_cap()

    def report_corrupt(self, key):
        """Delete *key*'s entry after a content-level integrity failure
        (e.g. a checksum mismatch the JSON parser cannot see)."""
        try:
            os.unlink(self._path_of(key))
        except OSError:
            pass
        self.stats["corrupt"] += 1

    # -- eviction --------------------------------------------------------

    def _entries(self):
        """[(mtime, size, path)] of every entry file, oldest first."""
        entries = []
        try:
            shards = os.listdir(self.directory)
        except OSError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _enforce_cap(self):
        if self.max_bytes is None:
            return
        entries = self._entries()
        total = sum(size for __, size, __p in entries)
        for __, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats["evictions"] += 1

    def clear(self):
        """Delete every entry (the directory itself is kept)."""
        for __, __s, path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                pass


# -- stage-2 tracing memoization -------------------------------------------

def tracing_to_payload(tracing):
    """JSON payload for a :class:`~repro.core.tracing.TracingResult`.

    The raw ``kernel_result`` is deliberately not captured (it holds the
    full architectural end state and nothing downstream of stage 2 reads
    it); cache-hit results carry ``kernel_result=None``.
    """
    return {
        "cycles": tracing.cycles,
        "instructions": tracing.instructions,
        "trace": [[r.block, r.warp, r.pc, r.mnemonic, r.decode_cc,
                   r.exec_start_cc, r.exec_end_cc, r.active_mask,
                   r.exec_mask] for r in tracing.trace],
        "patterns": [[r.cc, r.block, r.warp, r.lane, r.pc, r.thread,
                      [[port, value] for port, value in r.values]]
                     for r in tracing.pattern_report.records],
    }


def tracing_from_payload(payload, module):
    """Rebuild a :class:`~repro.core.tracing.TracingResult` from
    :func:`tracing_to_payload` output (``kernel_result`` is None)."""
    from ..core.patterns import PatternReport
    from ..core.tracing import TracingResult

    trace = [TraceRecord(block=row[0], warp=row[1], pc=row[2],
                         mnemonic=row[3], decode_cc=row[4],
                         exec_start_cc=row[5], exec_end_cc=row[6],
                         active_mask=row[7], exec_mask=row[8])
             for row in payload["trace"]]
    records = [StimulusRecord(cc=row[0], block=row[1], warp=row[2],
                              lane=row[3], pc=row[4], thread=row[5],
                              values=tuple((port, value)
                                           for port, value in row[6]))
               for row in payload["patterns"]]
    return TracingResult(trace=trace,
                         pattern_report=PatternReport(module, records),
                         cycles=payload["cycles"],
                         instructions=payload["instructions"],
                         kernel_result=None)


def cached_logic_tracing(ptp, module, gpu, cache, metrics=None):
    """Stage-2 logic tracing through the artifact cache.

    Returns ``(tracing, key, hit)`` — with *cache* None this degrades to a
    plain :func:`~repro.core.tracing.run_logic_tracing` call (key None).
    """
    from ..core.tracing import run_logic_tracing
    from ..gpu.gpu import Gpu

    gpu = gpu or Gpu()
    if cache is None:
        return run_logic_tracing(ptp, module, gpu=gpu), None, False
    key = cache.key_for(ptp, gpu.config, module, "tracing")
    payload = cache.get(key)
    if payload is not None:
        if metrics is not None:
            metrics.record_cache_event(True)
        return tracing_from_payload(payload, module), key, True
    if metrics is not None:
        metrics.record_cache_event(False)
    tracing = run_logic_tracing(ptp, module, gpu=gpu)
    cache.put(key, tracing_to_payload(tracing))
    return tracing, key, False
