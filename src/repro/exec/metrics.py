"""Run metrics for compaction executions (the exec subsystem's gauges).

One :class:`RunMetrics` instance accompanies a pipeline run or a whole
campaign and records:

* per-stage wall time (seconds) and entry counts, keyed by the pipeline
  stage names of :data:`repro.core.pipeline.STAGES` plus exec-internal
  stages such as ``"fault_simulation.sharded"``;
* fault-simulation throughput — patterns/s and faults/s per run, plus
  campaign-wide totals;
* artifact-cache hit/miss/put/eviction counts;
* shard utilization — the fraction of the scheduler's wall-clock budget
  (jobs x elapsed) that shards spent simulating, averaged over sharded
  runs (1.0 = perfectly balanced shards with zero pool overhead);
* worker-pool gauges — workers spawned/died, per-worker context and
  pattern priming, chunks dispatched/requeued/inlined, drop records
  broadcast/shipped/skipped, and cumulative worker-init seconds.

The document is JSON-serializable (:meth:`RunMetrics.to_dict`), persists
atomically next to the campaign checkpoint (:meth:`RunMetrics.save`, same
write-temp-then-rename discipline), and renders as an aligned summary
table for the CLI (:meth:`RunMetrics.summary_table`).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager

#: Bumped whenever the metrics JSON layout changes incompatibly.
FORMAT_VERSION = 3


class RunMetrics:
    """Mutable metrics accumulator shared across pipeline runs.

    Args:
        clock: monotonic time source (injectable for tests).
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.stage_seconds = {}
        self.stage_counts = {}
        self.fault_sim_runs = []
        self.cache = {"hits": 0, "misses": 0, "puts": 0, "evictions": 0}
        self.counters = {}
        self.pool = {}
        self.static = {"prune_mode": "off", "rank_mode": "none",
                       "faults_pruned_static": 0, "dominance_classes": 0,
                       "cross_checked": 0}
        self.incremental = {"runs": 0, "records_loaded": 0,
                            "records_missing": 0, "groups_total": 0,
                            "groups_restored": 0, "groups_invalidated": 0,
                            "faults_restored": 0, "faults_resimulated": 0,
                            "strict_checks": 0}

    # -- stage timing ----------------------------------------------------

    @contextmanager
    def stage_timer(self, stage):
        """Accumulate the wall time of one *stage* entry."""
        started = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - started
            self.stage_seconds[stage] = (
                self.stage_seconds.get(stage, 0.0) + elapsed)
            self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1

    # -- fault-simulation throughput ------------------------------------

    def record_fault_sim(self, faults, patterns, seconds, jobs=1,
                         shard_busy_seconds=None, engine=None,
                         gates_evaluated=None, gates_skipped=None,
                         chunks=None, batches=None, restored=None):
        """Record one fault-simulation run.

        Args:
            faults: number of simulated faults.
            patterns: number of applied patterns.
            seconds: wall time of the run.
            jobs: worker processes used (1 = sequential/inline).
            shard_busy_seconds: per-chunk busy times (pooled runs only);
                utilization = sum(busy) / (jobs * wall).
            engine: propagation engine name
                (``"event"``/``"cone"``/``"batch"``).
            gates_evaluated: gate evaluations spent propagating faults.
            gates_skipped: static-cone gates the engine never touched
                (the event engine's trimmed execution redundancy; 0 for
                the cone walk).
            chunks: streamed chunk count (pooled runs only).
            batches: compiled fault batches evaluated (batch engine only).
            restored: faults whose detection state was restored from the
                incremental fault-state cache instead of simulated
                (incremental runs only).
        """
        run = {
            "faults": faults,
            "patterns": patterns,
            "seconds": seconds,
            "jobs": jobs,
            "faults_per_second": faults / seconds if seconds > 0 else None,
            "patterns_per_second": (patterns / seconds if seconds > 0
                                    else None),
        }
        if engine is not None:
            run["engine"] = engine
        if gates_evaluated is not None:
            run["gates_evaluated"] = gates_evaluated
        if gates_skipped is not None:
            run["gates_skipped"] = gates_skipped
        if chunks is not None:
            run["chunks"] = chunks
        if batches is not None:
            run["batches"] = batches
        if restored is not None:
            run["faults_restored"] = restored
        if shard_busy_seconds is not None:
            busy = sum(shard_busy_seconds)
            run["shards"] = len(shard_busy_seconds)
            run["shard_utilization"] = (
                busy / (jobs * seconds) if seconds > 0 and jobs > 0
                else None)
        self.fault_sim_runs.append(run)

    # -- cache counters --------------------------------------------------

    def record_cache_event(self, hit):
        """Count one cache lookup (*hit* truthy: hit, else miss)."""
        self.cache["hits" if hit else "misses"] += 1

    def absorb_cache_stats(self, stats):
        """Overwrite the cache counters with an
        :attr:`~repro.exec.cache.ArtifactCache.stats` snapshot (the cache
        sees every lookup, including ones made outside this metrics
        object's reach)."""
        self.cache = dict(stats)

    def bump(self, counter, amount=1):
        """Increment a free-form named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    # -- worker-pool gauges ----------------------------------------------

    def record_pool_event(self, event, amount=1):
        """Count one worker-pool event (``workers_spawned``,
        ``chunks_dispatched``, ``drops_broadcast``, ...)."""
        self.pool[event] = self.pool.get(event, 0) + amount

    def record_pool_seconds(self, gauge, seconds):
        """Accumulate a pool time gauge (``worker_init_seconds``)."""
        self.pool[gauge] = self.pool.get(gauge, 0.0) + seconds

    def record_verification(self, errors, warnings):
        """Count one static-verifier run and its diagnostic totals."""
        self.bump("verify.runs")
        self.bump("verify.errors", errors)
        self.bump("verify.warnings", warnings)

    # -- static-testability gauges ----------------------------------------

    def record_static_triage(self, prune_mode, rank_mode, faults_pruned,
                             dominance_classes):
        """Record one module's static-testability triage (accumulating —
        a campaign sums the pruned counts over its modules)."""
        self.static["prune_mode"] = prune_mode
        self.static["rank_mode"] = rank_mode
        self.static["faults_pruned_static"] += faults_pruned
        self.static["dominance_classes"] += dominance_classes

    def record_cross_check(self, faults):
        """Count faults re-simulated by the strict-mode differential
        cross-check."""
        self.static["cross_checked"] += faults

    # -- incremental fault-state gauges -----------------------------------

    def record_incremental(self, info):
        """Accumulate one incremental fault-sim run's hit/invalidation
        numbers (the *info* dict of
        :meth:`repro.exec.incremental.IncrementalFaultSim.run`)."""
        self.incremental["runs"] += 1
        if info.get("record_hit"):
            self.incremental["records_loaded"] += 1
        else:
            self.incremental["records_missing"] += 1
        for field in ("groups_total", "groups_restored",
                      "groups_invalidated", "faults_restored",
                      "faults_resimulated", "strict_checks"):
            self.incremental[field] += info.get(field, 0)

    # -- aggregates ------------------------------------------------------

    @property
    def total_faults_simulated(self):
        return sum(run["faults"] for run in self.fault_sim_runs)

    @property
    def total_fault_sim_seconds(self):
        return sum(run["seconds"] for run in self.fault_sim_runs)

    def aggregate_rate(self, field):
        """Campaign-wide *field*/s over all fault-sim runs (None if no
        time was measured)."""
        seconds = self.total_fault_sim_seconds
        if seconds <= 0:
            return None
        return sum(run[field] for run in self.fault_sim_runs) / seconds

    def mean_shard_utilization(self):
        values = [run["shard_utilization"] for run in self.fault_sim_runs
                  if run.get("shard_utilization") is not None]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def total_gates_evaluated(self):
        return sum(run.get("gates_evaluated") or 0
                   for run in self.fault_sim_runs)

    @property
    def total_gates_skipped(self):
        return sum(run.get("gates_skipped") or 0
                   for run in self.fault_sim_runs)

    @property
    def total_batches(self):
        return sum(run.get("batches") or 0
                   for run in self.fault_sim_runs)

    # -- serialization ---------------------------------------------------

    def to_dict(self):
        return {
            "version": FORMAT_VERSION,
            "stages": {
                stage: {"seconds": self.stage_seconds[stage],
                        "count": self.stage_counts.get(stage, 0)}
                for stage in sorted(self.stage_seconds)
            },
            "fault_sim": {
                "runs": list(self.fault_sim_runs),
                "total_faults": self.total_faults_simulated,
                "total_seconds": self.total_fault_sim_seconds,
                "faults_per_second": self.aggregate_rate("faults"),
                "patterns_per_second": self.aggregate_rate("patterns"),
                "mean_shard_utilization": self.mean_shard_utilization(),
                "total_gates_evaluated": self.total_gates_evaluated,
                "total_gates_skipped": self.total_gates_skipped,
                "total_batches": self.total_batches,
            },
            "cache": dict(self.cache),
            "counters": dict(self.counters),
            "pool": dict(self.pool),
            "static": dict(self.static),
            "incremental": dict(self.incremental),
        }

    def save(self, path):
        """Atomically persist :meth:`to_dict` as JSON at *path*."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, prefix=".metrics-",
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # -- rendering -------------------------------------------------------

    def summary_table(self):
        """Aligned text table of the headline numbers (CLI output)."""
        rows = [("stage", "runs", "seconds")]
        for stage in sorted(self.stage_seconds):
            rows.append((stage, str(self.stage_counts.get(stage, 0)),
                         "{:.3f}".format(self.stage_seconds[stage])))
        widths = [max(len(row[i]) for row in rows) for i in range(3)]
        lines = ["RUN METRICS"]
        for i, row in enumerate(rows):
            lines.append("  {}  {}  {}".format(
                row[0].ljust(widths[0]), row[1].rjust(widths[1]),
                row[2].rjust(widths[2])))
            if i == 0:
                lines.append("  " + "-" * (sum(widths) + 4))

        def rate(value):
            return "n/a" if value is None else "{:.1f}".format(value)

        lines.append("  fault sims        : {} run(s), {} fault(s), "
                     "{:.3f}s".format(len(self.fault_sim_runs),
                                      self.total_faults_simulated,
                                      self.total_fault_sim_seconds))
        lines.append("  faults/s          : {}".format(
            rate(self.aggregate_rate("faults"))))
        lines.append("  patterns/s        : {}".format(
            rate(self.aggregate_rate("patterns"))))
        utilization = self.mean_shard_utilization()
        lines.append("  shard utilization : {}".format(
            "n/a (no sharded runs)" if utilization is None
            else "{:.0%}".format(utilization)))
        lines.append("  gates eval/skip   : {} / {}".format(
            self.total_gates_evaluated, self.total_gates_skipped))
        lines.append("  fault batches     : {}".format(self.total_batches))
        lines.append("  verify            : {} run(s), {} error(s), "
                     "{} warning(s)".format(
                         self.counters.get("verify.runs", 0),
                         self.counters.get("verify.errors", 0),
                         self.counters.get("verify.warnings", 0)))
        lines.append("  static triage     : prune={}, rank={}, {} fault(s) "
                     "pruned, {} dominance class(es), {} cross-checked"
                     .format(self.static.get("prune_mode", "off"),
                             self.static.get("rank_mode", "none"),
                             self.static.get("faults_pruned_static", 0),
                             self.static.get("dominance_classes", 0),
                             self.static.get("cross_checked", 0)))
        lines.append("  incremental       : {} run(s), {} record(s) loaded, "
                     "{}/{} group(s) restored, {} fault(s) restored, "
                     "{} re-simulated".format(
                         self.incremental.get("runs", 0),
                         self.incremental.get("records_loaded", 0),
                         self.incremental.get("groups_restored", 0),
                         self.incremental.get("groups_total", 0),
                         self.incremental.get("faults_restored", 0),
                         self.incremental.get("faults_resimulated", 0)))
        lines.append("  cache             : {} hit(s), {} miss(es), "
                     "{} put(s), {} eviction(s), {} corrupt".format(
                         self.cache.get("hits", 0),
                         self.cache.get("misses", 0),
                         self.cache.get("puts", 0),
                         self.cache.get("evictions", 0),
                         self.cache.get("corrupt", 0)))
        lines.append("  worker pool       : {} spawned, {} death(s), "
                     "{} chunk(s), {} requeue(d), {} drop(s) broadcast, "
                     "{} drop-skip(s)".format(
                         self.pool.get("workers_spawned", 0),
                         self.pool.get("worker_deaths", 0),
                         self.pool.get("chunks_dispatched", 0),
                         self.pool.get("chunks_requeued", 0),
                         self.pool.get("drops_broadcast", 0),
                         self.pool.get("drops_skipped", 0)))
        return "\n".join(lines)
