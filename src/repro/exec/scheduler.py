"""Sharded stage-3 fault simulation over a persistent worker pool.

Gate-level stuck-at fault simulation is embarrassingly parallel across
faults: each fault's detection word depends only on the (shared) good-
machine values and its own fanout cone.  The scheduler exploits this by
cutting a module's fault list into contiguous chunks, streaming them
through a campaign-lifetime :class:`~repro.exec.pool.WorkerPool`, and
merging the per-chunk results back in fault-list order — so the merged
:class:`~repro.faults.fault_sim.FaultSimResult` is **bit-identical** to
the sequential run (same ``detection_words``, same ``first_detection``,
same fault order).

Fault dropping composes with sharding twice over: the pipeline shards
*after* the drop filter (the scheduler receives the already-filtered
remaining list) and merges *before* the next drop, and the campaign layer
additionally **broadcasts** every drop to the pool
(:meth:`ShardedFaultScheduler.broadcast_drops`) so workers can skip
already-dropped faults that still reach them through a stale or
unfiltered list (``skip_dropped`` runs) — detection credit stays with the
PTP that first detected the fault, exactly as
:class:`~repro.faults.dropping.FaultListReport` attributes it.

Workers are created once per scheduler (in practice: once per campaign —
pipelines share one scheduler) and primed with the netlist, propagation
schedule, and pattern set exactly once each; chunk jobs then carry only
canonical fault ids.  If the platform refuses to start worker processes
(sandboxes, restricted containers), the scheduler falls back to inline
execution and reports it through the metrics counter
``scheduler_inline_fallback``.
"""

from __future__ import annotations

import os
import time

from ..errors import SchedulerError
from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimResult
from .pool import WorkerPool

#: Environment variable consulted when no explicit job count is given
#: (lets CI run the whole tier-1 suite through the sharded path).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs=None, default=1):
    """Normalize a job count.

    ``None`` falls back to ``$REPRO_JOBS`` and then to *default*
    (callers that want "use the machine" pass ``default=os.cpu_count()``).
    Counts resolved from the environment or the default are clamped to 1
    on single-CPU machines — a pool there can only lose (it serializes
    the same work through extra processes), so the inline path is taken
    instead.  An *explicit* ``jobs`` argument is honored as given (tests
    and benchmarks deliberately exercise pools on one CPU).

    Raises:
        SchedulerError: non-positive or non-integer job count.
    """
    explicit = jobs is not None
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError as exc:
                raise SchedulerError(
                    "{}={!r} is not an integer".format(JOBS_ENV,
                                                       env)) from exc
        else:
            jobs = default if default is not None else 1
    if not isinstance(jobs, int) or jobs < 1:
        raise SchedulerError("jobs must be a positive integer, got {!r}"
                             .format(jobs))
    if not explicit and jobs > 1 and (os.cpu_count() or 1) < 2:
        jobs = 1
    return jobs


def shard_bounds(count, shards):
    """Contiguous balanced shard boundaries: [(start, stop), ...].

    Deterministic: the first ``count % shards`` shards get one extra
    element.  Empty shards are never produced (*shards* is clamped to
    *count*; zero *count* yields no shards).
    """
    if count == 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _stats_delta(simulator, before):
    """Propagation-counter delta of *simulator* since snapshot *before*."""
    return {key: value - before.get(key, 0)
            for key, value in simulator.stats.items()}


class ShardedFaultScheduler:
    """Runs a :class:`~repro.faults.fault_sim.FaultSimulator` workload
    chunked across a persistent pool of worker processes.

    One scheduler should span a whole campaign: its pool is started at
    the first pooled run and reused by every later run (across PTPs and
    across modules — worker state is cached per netlist context), which
    is what amortizes worker spawn and netlist/pattern priming.  Call
    :meth:`close` (or use the scheduler as a context manager) when the
    campaign is done.

    Args:
        jobs: worker processes (None: ``$REPRO_JOBS`` or 1).  ``1`` runs
            inline in this process with zero pool overhead.
        min_faults_per_shard: below ``jobs * min_faults_per_shard`` faults
            the pool is not worth waking and the run goes inline (the
            result is identical either way).
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`.
        chunk_size: faults per streamed chunk (None: dynamic — about
            ``chunks_per_worker`` chunks per worker, never below
            :data:`~repro.exec.pool.MIN_AUTO_CHUNK`).
        chunks_per_worker: dynamic-sizing target used when *chunk_size*
            is None.
        pool: False disables the worker pool entirely (every run is
            inline regardless of *jobs*) — the CLI's ``--no-pool``.
        max_retries: per-chunk requeue budget before the parent simulates
            a failing chunk inline.
    """

    def __init__(self, jobs=None, min_faults_per_shard=32, metrics=None,
                 chunk_size=None, chunks_per_worker=4, pool=True,
                 max_retries=1):
        self.jobs = resolve_jobs(jobs)
        self.min_faults_per_shard = min_faults_per_shard
        self.metrics = metrics
        self.chunk_size = chunk_size
        self.chunks_per_worker = chunks_per_worker
        self.pool_enabled = pool
        self.max_retries = max_retries
        self._pool = None

    # -- pool lifecycle --------------------------------------------------

    def _ensure_pool(self):
        """The scheduler's :class:`WorkerPool` (constructed lazily; no
        processes are spawned until the first pooled run)."""
        if self._pool is None:
            self._pool = WorkerPool(self.jobs, metrics=self.metrics,
                                    max_retries=self.max_retries)
        return self._pool

    def close(self):
        """Shut the worker pool down (idempotent; the scheduler stays
        usable — a later pooled run starts a fresh pool)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- drop broadcast --------------------------------------------------

    def broadcast_drops(self, simulator, records):
        """Publish ``(fault, first_cc)`` drop records to the pool (see
        :meth:`WorkerPool.broadcast_drops`).  Safe to call whether or not
        a pool is running; with ``pool=False`` it is a no-op."""
        if not self.pool_enabled or self.jobs == 1:
            return 0
        return self._ensure_pool().broadcast_drops(simulator, records)

    # -- runs ------------------------------------------------------------

    def run(self, simulator, patterns, fault_list=None, skip_dropped=False,
            restored=None):
        """Pooled equivalent of ``simulator.run(patterns, fault_list)``.

        Returns a :class:`FaultSimResult` bit-identical to the sequential
        call's.  With *skip_dropped*, faults already announced through
        :meth:`broadcast_drops` are not simulated and report
        ``word=0 / first=None`` (sequential fault-dropping semantics:
        their detection belongs to the PTP that first detected them).
        *restored* is a pass-through metrics annotation: the number of
        faults the incremental layer restored from cache alongside this
        (already-compacted) worklist.
        """
        if fault_list is None:
            fault_list = FaultList(simulator.netlist)
        started = time.perf_counter()
        if (self.jobs == 1 or not self.pool_enabled or patterns.count == 0
                or len(fault_list) < self.jobs * self.min_faults_per_shard):
            return self._run_inline(simulator, patterns, fault_list,
                                    started, restored=restored)
        try:
            pool = self._ensure_pool()
            words, firsts, busy, stats, skipped = pool.simulate(
                simulator, patterns, fault_list,
                chunk_size=self.chunk_size,
                chunks_per_worker=self.chunks_per_worker,
                skip_dropped=skip_dropped)
        except (OSError, PermissionError) as exc:
            # Restricted environments (no fork/semaphores): degrade to the
            # sequential path rather than failing the compaction.
            del exc
            if self.metrics is not None:
                self.metrics.bump("scheduler_inline_fallback")
            return self._run_inline(simulator, patterns, fault_list,
                                    started, restored=restored)
        if skipped and self.metrics is not None:
            self.metrics.record_pool_event("drops_skipped", skipped)
        result = FaultSimResult(fault_list, patterns.count, words, firsts)
        self._record(result, time.perf_counter() - started, jobs=self.jobs,
                     shard_busy=busy, engine=simulator.engine, stats=stats,
                     chunks=len(busy), restored=restored)
        return result

    def _run_inline(self, simulator, patterns, fault_list, started,
                    restored=None):
        before = dict(simulator.stats)
        result = simulator.run(patterns, fault_list)
        self._record(result, time.perf_counter() - started, jobs=1,
                     engine=simulator.engine,
                     stats=_stats_delta(simulator, before),
                     restored=restored)
        return result

    def _record(self, result, seconds, jobs, shard_busy=None, engine=None,
                stats=None, chunks=None, restored=None):
        if self.metrics is None:
            return
        stats = stats or {}
        self.metrics.record_fault_sim(
            faults=len(result.fault_list), patterns=result.pattern_count,
            seconds=seconds, jobs=jobs, shard_busy_seconds=shard_busy,
            engine=engine, chunks=chunks,
            gates_evaluated=stats.get("gates_evaluated"),
            gates_skipped=stats.get("gates_skipped"),
            batches=stats.get("batches"), restored=restored)


def run_sharded(simulator, patterns, fault_list=None, jobs=None,
                metrics=None, chunk_size=None):
    """One-shot helper: pooled fault simulation without keeping a
    scheduler around (the pool is torn down before returning — campaign
    code should hold a :class:`ShardedFaultScheduler` instead)."""
    with ShardedFaultScheduler(jobs=jobs, metrics=metrics,
                               chunk_size=chunk_size) as scheduler:
        return scheduler.run(simulator, patterns, fault_list)
