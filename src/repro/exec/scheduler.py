"""Sharded stage-3 fault simulation over a process pool.

Gate-level stuck-at fault simulation is embarrassingly parallel across
faults: each fault's detection word depends only on the (shared) good-
machine values and its own fanout cone.  The scheduler exploits this by
splitting a module's fault list into contiguous shards, simulating each
shard in a worker process against the shared pattern set, and
concatenating the per-shard results back in fault-list order — so the
merged :class:`~repro.faults.fault_sim.FaultSimResult` is **bit-identical**
to the sequential run (same ``detection_words``, same ``first_detection``,
same fault order).

Fault dropping composes with sharding because the pipeline shards *after*
the drop filter (the scheduler receives the already-filtered remaining
list) and merges *before* the next drop (the merged result feeds
``FaultListReport.drop`` exactly as the sequential result would).

Worker processes are primed once per pool via an initializer carrying the
netlist, the observation points, and the packed pattern words; shard tasks
then ship only fault lists, so per-task pickling stays small.  If the
platform refuses to start a process pool (sandboxes, restricted
containers), the scheduler falls back to inline execution and reports it
through the metrics counter ``scheduler_inline_fallback``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..errors import SchedulerError
from ..faults.fault import FaultList
from ..faults.fault_sim import FaultSimResult

#: Environment variable consulted when no explicit job count is given
#: (lets CI run the whole tier-1 suite through the sharded path).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs=None, default=1):
    """Normalize a job count.

    ``None`` falls back to ``$REPRO_JOBS`` and then to *default*
    (callers that want "use the machine" pass ``default=os.cpu_count()``).

    Raises:
        SchedulerError: non-positive or non-integer job count.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise SchedulerError(
                    "{}={!r} is not an integer".format(JOBS_ENV, env))
        else:
            jobs = default if default is not None else 1
    if not isinstance(jobs, int) or jobs < 1:
        raise SchedulerError("jobs must be a positive integer, got {!r}"
                             .format(jobs))
    return jobs


def shard_bounds(count, shards):
    """Contiguous balanced shard boundaries: [(start, stop), ...].

    Deterministic: the first ``count % shards`` shards get one extra
    element.  Empty shards are never produced (*shards* is clamped to
    *count*; zero *count* yields no shards).
    """
    if count == 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


# -- worker-process state ---------------------------------------------------
#
# The pool initializer builds one FaultSimulator and one PatternSet per
# worker process; shard tasks reference them through this module global.
# (Globals-in-worker is the standard ProcessPoolExecutor idiom for
# send-once shared state.)

_WORKER = None


def _init_worker(netlist, observed, packed, count, engine):
    from ..faults.fault_sim import FaultSimulator
    from ..netlist.simulator import PatternSet

    global _WORKER
    simulator = FaultSimulator(netlist, observed_outputs=observed,
                               engine=engine)
    patterns = PatternSet(netlist)
    patterns.packed = dict(packed)
    patterns.count = count
    _WORKER = (simulator, patterns)


def _stats_delta(simulator, before):
    """Propagation-counter delta of *simulator* since snapshot *before*."""
    return {key: value - before.get(key, 0)
            for key, value in simulator.stats.items()}


def _run_shard(faults):
    """Simulate one fault shard; returns (words, firsts, busy, stats)."""
    simulator, patterns = _WORKER
    before = dict(simulator.stats)
    started = time.perf_counter()
    result = simulator.run(patterns, FaultList(simulator.netlist, faults))
    busy = time.perf_counter() - started
    return (result.detection_words, result.first_detection, busy,
            _stats_delta(simulator, before))


class ShardedFaultScheduler:
    """Runs a :class:`~repro.faults.fault_sim.FaultSimulator` workload
    sharded across worker processes.

    Args:
        jobs: worker processes (None: ``$REPRO_JOBS`` or 1).  ``1`` runs
            inline in this process with zero pool overhead.
        min_faults_per_shard: below ``jobs * min_faults_per_shard`` faults
            the pool is not worth its startup cost and the run goes
            inline (the result is identical either way).
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`.
    """

    def __init__(self, jobs=None, min_faults_per_shard=32, metrics=None):
        self.jobs = resolve_jobs(jobs)
        self.min_faults_per_shard = min_faults_per_shard
        self.metrics = metrics

    def run(self, simulator, patterns, fault_list=None):
        """Sharded equivalent of ``simulator.run(patterns, fault_list)``.

        Returns a :class:`FaultSimResult` bit-identical to the sequential
        call's.
        """
        if fault_list is None:
            fault_list = FaultList(simulator.netlist)
        started = time.perf_counter()
        if (self.jobs == 1 or patterns.count == 0
                or len(fault_list) < self.jobs * self.min_faults_per_shard):
            before = dict(simulator.stats)
            result = simulator.run(patterns, fault_list)
            self._record(result, time.perf_counter() - started, jobs=1,
                         engine=simulator.engine,
                         stats=_stats_delta(simulator, before))
            return result
        try:
            result, busy, stats = self._run_pool(simulator, patterns,
                                                 fault_list)
        except (OSError, PermissionError, BrokenProcessPool):
            # Restricted environments (no fork/semaphores): degrade to the
            # sequential path rather than failing the compaction.
            if self.metrics is not None:
                self.metrics.bump("scheduler_inline_fallback")
            before = dict(simulator.stats)
            result = simulator.run(patterns, fault_list)
            self._record(result, time.perf_counter() - started, jobs=1,
                         engine=simulator.engine,
                         stats=_stats_delta(simulator, before))
            return result
        self._record(result, time.perf_counter() - started, jobs=self.jobs,
                     shard_busy=busy, engine=simulator.engine, stats=stats)
        return result

    def _run_pool(self, simulator, patterns, fault_list):
        faults = list(fault_list)
        bounds = shard_bounds(len(faults), self.jobs)
        shards = [faults[start:stop] for start, stop in bounds]
        initargs = (simulator.netlist, simulator.observed, patterns.packed,
                    patterns.count, simulator.engine)
        detection_words = []
        first_detection = []
        busy = []
        stats = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(shards)),
                                 initializer=_init_worker,
                                 initargs=initargs) as pool:
            # executor.map preserves submission order, which is fault-list
            # order — the merge is a plain concatenation.
            for words, firsts, shard_busy, delta in pool.map(_run_shard,
                                                             shards):
                detection_words.extend(words)
                first_detection.extend(firsts)
                busy.append(shard_busy)
                for key, value in delta.items():
                    stats[key] = stats.get(key, 0) + value
        result = FaultSimResult(fault_list, patterns.count, detection_words,
                                first_detection)
        return result, busy, stats

    def _record(self, result, seconds, jobs, shard_busy=None, engine=None,
                stats=None):
        if self.metrics is None:
            return
        stats = stats or {}
        self.metrics.record_fault_sim(
            faults=len(result.fault_list), patterns=result.pattern_count,
            seconds=seconds, jobs=jobs, shard_busy_seconds=shard_busy,
            engine=engine,
            gates_evaluated=stats.get("gates_evaluated"),
            gates_skipped=stats.get("gates_skipped"))


def run_sharded(simulator, patterns, fault_list=None, jobs=None,
                metrics=None):
    """One-shot helper: sharded fault simulation without keeping a
    scheduler object around."""
    scheduler = ShardedFaultScheduler(jobs=jobs, metrics=metrics)
    return scheduler.run(simulator, patterns, fault_list)
