"""Incremental fault-state restore across campaign re-entries.

The compaction loop re-simulates near-identical fault lists every time a
PTP is edited and re-run, yet a stuck-at fault's detection outcome under
pattern ``p`` depends **only** on pattern ``p``'s values over the fault's
supporting primary inputs (:meth:`PropagationSchedule.support_of`): the
good values on the support fix excitation, every side-input met while the
effect walks the fanout cone, and the observed outputs the cone drives.
This module exploits that locality — the cross-run analogue of the
event engine's within-run redundancy trimming (ERASER's observation, at
campaign scope):

* After every run, :class:`IncrementalFaultSim` stores a **fault-state
  record** in the :class:`~repro.exec.cache.ArtifactCache`, keyed by
  (PTP name, module fingerprint, engine): per cone group (faults sharing
  a seed net, as grouped by the event engine) the sorted support nets,
  the list of *distinct support-restricted pattern values* seen, and per
  fault site a detection mask over that value list.
* On the next run the current pattern set is projected onto each group's
  support.  A fault is **restored** — its detection word rebuilt exactly,
  without simulation — when its group's support nets match and every
  current projected value already appears in the record; the remainder is
  **invalidated** and re-simulated through the ordinary scheduler/pool
  path, compacted dense with an exclusive prefix-sum over the
  needs-resim flags (stream compaction) and scattered back in
  fault-list order.

Keying detections by *value* rather than by pattern index makes the
record order-independent: deleting a store block, reordering patterns,
or appending patterns that only revisit known support values all restore
for free.  ``strict`` mode re-simulates everything anyway and raises
:class:`~repro.errors.IncrementalError` unless the restored result is
bit-identical — the soundness oracle behind ``--incremental strict``.

Records carry a whole-payload checksum: a bit flip that still parses as
JSON is caught at load, the entry is deleted
(:meth:`ArtifactCache.report_corrupt`), and the run falls back to full
re-simulation — corruption can cost speed, never correctness.
"""

from __future__ import annotations

from ..errors import IncrementalError
from ..faults.fault_sim import FaultSimResult
from ..faults.fault import FaultList
from ..faults.propagate import PropagationSchedule
from ..netlist.simulator import iter_set_bits
from .cache import FAULT_STATE_VERSION, _sha256_of

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Valid values of the ``--incremental`` switch.
INCREMENTAL_MODES = ("off", "on", "strict")


def validate_incremental_mode(mode):
    """Return *mode* if valid, else raise :class:`IncrementalError`."""
    if mode not in INCREMENTAL_MODES:
        raise IncrementalError(
            "unknown incremental mode {!r}; expected one of {}".format(
                mode, INCREMENTAL_MODES))
    return mode


def fault_site_key(fault):
    """Stable string identity of one fault site (net, gate, pin, value) —
    the per-fault key inside a group's detection table."""
    gate = "-" if fault.gate is None else str(fault.gate)
    return "{}:{}:{}:{}".format(fault.net, gate, fault.pin, fault.stuck_at)


def _vkey(value):
    return format(value, "x")


def _support_key(nets, vkeys):
    """Identity of one (support nets, value list) table entry.  The value
    list is part of the key so entries are immutable: two groups that
    share nets but saw different values never alias."""
    return _sha256_of([list(nets), list(vkeys)])[:16]


class IncrementalFaultSim:
    """Fault simulation with cross-run detection-state restore.

    Args:
        cache: the :class:`~repro.exec.cache.ArtifactCache` holding the
            fault-state records (required — without a cache there is
            nothing to restore from).
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`;
            receives one :meth:`~RunMetrics.record_incremental` call per
            run plus ``cache.corrupt`` counter bumps.
        mode: ``"on"`` (restore) or ``"strict"`` (restore, then
            re-simulate everything and assert bit-identity).
    """

    def __init__(self, cache, metrics=None, mode="on"):
        if cache is None:
            raise IncrementalError(
                "incremental mode requires an artifact cache")
        validate_incremental_mode(mode)
        if mode == "off":
            raise IncrementalError(
                "IncrementalFaultSim must not be built in mode 'off'")
        self.cache = cache
        self.metrics = metrics
        self.mode = mode
        # netlist id -> (netlist, schedule); the strong netlist reference
        # pins the id so it cannot be reused by a different object.
        self._schedules = {}
        # pattern-content key -> projection context (FIFO-bounded).
        self._proj_contexts = {}

    # -- public entry point ----------------------------------------------

    def run(self, scheduler, simulator, patterns, fault_list, key,
            skip_dropped=False):
        """Incremental equivalent of ``scheduler.run(...)`` (or of
        ``simulator.run(...)`` when *scheduler* is None).

        Returns ``(result, info)``: a :class:`FaultSimResult`
        bit-identical to the from-scratch run, plus the hit/invalidation
        counters (``record_hit``, ``groups_total``, ``groups_restored``,
        ``groups_invalidated``, ``faults_restored``,
        ``faults_resimulated``, ``strict_checks``).
        """
        info = {"record_hit": False, "groups_total": 0,
                "groups_restored": 0, "groups_invalidated": 0,
                "faults_restored": 0, "faults_resimulated": 0,
                "strict_checks": 0}
        n = len(fault_list)
        if patterns.count == 0 or n == 0:
            result = self._full_run(scheduler, simulator, patterns,
                                    fault_list, skip_dropped)
            self._note(info)
            return result, info

        observed = sorted(simulator.observed)
        record = self._load(key, observed)
        info["record_hit"] = record is not None
        schedule = self._schedule_for(simulator)

        groups = {}
        for index, fault in enumerate(fault_list):
            groups.setdefault(schedule.seed_net(fault), []).append(index)
        info["groups_total"] = len(groups)

        # Project the pattern set onto each distinct support once per
        # *pattern set* — the context caches projections (and unpacked
        # per-net bit rows) across runs, so a campaign's stage-5 re-walk
        # of the stage-3 patterns projects nothing at all.
        context = self._projection_context(patterns)
        group_proj = {}
        pair_cache = {}
        flags = [True] * n   # True: needs re-simulation
        words = [0] * n
        rec_supports = record["supports"] if record else {}
        rec_groups = record["groups"] if record else {}

        for seed, members in groups.items():
            support = schedule.support_of(seed)
            proj = self._project_in(context, support)
            group_proj[seed] = proj
            restored = record is not None and self._restore_group(
                seed, members, fault_list, proj, rec_supports, rec_groups,
                flags, words, info, pair_cache)
            if record is not None and not restored:
                info["groups_invalidated"] += 1

        # Exclusive prefix-sum over the needs-resim flags: offsets[i] is
        # fault i's slot in the dense re-simulation worklist, offsets[n]
        # its total length (stream compaction — the live-fault arrays
        # stay dense however restoration and dropping thin them).
        offsets = [0] * (n + 1)
        for i in range(n):
            offsets[i + 1] = offsets[i] + (1 if flags[i] else 0)
        resim_count = offsets[n]
        restored_count = n - resim_count
        info["faults_resimulated"] = resim_count
        info["faults_restored"] = restored_count

        if resim_count == n:
            result = self._full_run(scheduler, simulator, patterns,
                                    fault_list, skip_dropped, restored=0)
            words = list(result.detection_words)
        else:
            if resim_count:
                dense = [None] * resim_count
                for i in range(n):
                    if flags[i]:
                        dense[offsets[i]] = fault_list[i]
                sub_result = self._full_run(
                    scheduler, simulator, patterns,
                    FaultList(simulator.netlist, dense), skip_dropped,
                    restored=restored_count)
                for i in range(n):
                    if flags[i]:
                        words[i] = sub_result.detection_words[offsets[i]]
            firsts = [(w & -w).bit_length() - 1 if w else None
                      for w in words]
            result = FaultSimResult(fault_list, patterns.count, words,
                                    firsts)

        if self.mode == "strict" and restored_count:
            info["strict_checks"] += 1
            self._strict_check(result, scheduler, simulator, patterns,
                               fault_list, skip_dropped)

        self._store(key, record, observed, groups, group_proj, fault_list,
                    words, flags, pair_cache)
        self._note(info)
        return result, info

    # -- record load / integrity -----------------------------------------

    def _load(self, key, observed):
        """The validated record for *key*, or None (missing, stale, or
        corrupt — corruption is counted and the entry deleted)."""
        stats = self.cache.stats
        before = stats.get("corrupt", 0)
        payload = self.cache.get(key)
        delta = stats.get("corrupt", 0) - before
        if delta and self.metrics is not None:
            self.metrics.bump("cache.corrupt", delta)
        if payload is None:
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != FAULT_STATE_VERSION):
            return None  # stale layout: ignore silently
        body = {field: payload.get(field)
                for field in ("format", "observed", "supports", "groups")}
        if (payload.get("checksum") != _sha256_of(body)
                or not isinstance(body["supports"], dict)
                or not isinstance(body["groups"], dict)):
            self.cache.report_corrupt(key)
            if self.metrics is not None:
                self.metrics.bump("cache.corrupt")
            return None
        if payload["observed"] != observed:
            return None  # different observation point: not this record
        return payload

    # -- projection ------------------------------------------------------

    def _projection_context(self, patterns):
        """The (cross-run) projection context for *patterns*.

        Keyed by pattern *content*, so a bit-identical pattern set
        reconstructed elsewhere (e.g. stage 5 re-deriving the stage-3
        patterns from a cached tracing artifact) shares the context.  A
        short FIFO bounds memory across many distinct pattern sets.
        """
        key = (patterns.count, tuple(sorted(patterns.packed.items())))
        context = self._proj_contexts.get(key)
        if context is None:
            context = {"patterns": patterns, "rows": {}, "projections": {}}
            self._proj_contexts[key] = context
            while len(self._proj_contexts) > 4:
                self._proj_contexts.pop(next(iter(self._proj_contexts)))
        return context

    @staticmethod
    def _project_in(context, support):
        """Project the context's pattern set onto *support* (memoized).

        Returns ``(nets, value_masks, values, vkeys, pos_of)``: the
        sorted support nets, a map from each distinct support-restricted
        value (bit ``b`` = value of ``nets[b]``) to the packed mask of
        patterns showing it, the distinct values sorted ascending, their
        record keys, and per pattern index the position of its value in
        the sorted list (the store-side scatter map).
        """
        proj = context["projections"].get(support)
        if proj is not None:
            return proj
        patterns = context["patterns"]
        nets = sorted(support)
        mask = patterns.mask
        count = patterns.count
        if _np is not None:
            # Vectorized bit transpose: unpack each support net's packed
            # word into a row of pattern bits (cached per net — supports
            # overlap heavily), repack column-wise so row k reads out
            # pattern k's support-restricted value (bit b of the value =
            # nets[b], as in the scalar path), then group the distinct
            # rows in C via np.unique.
            num_bytes = (count + 7) // 8
            row_cache = context["rows"]
            rows = _np.empty((len(nets), count), dtype=_np.uint8)
            for bit, net in enumerate(nets):
                row = row_cache.get(net)
                if row is None:
                    word = patterns.packed.get(net, 0) & mask
                    raw = _np.frombuffer(
                        word.to_bytes(num_bytes, "little"),
                        dtype=_np.uint8)
                    row = _np.unpackbits(raw, bitorder="little")[:count]
                    row_cache[net] = row
                rows[bit] = row
            packed = _np.packbits(rows.T, axis=1, bitorder="little")
            row_bytes = packed.tobytes()
            width = packed.shape[1]
            # Group patterns by their (hashable) value bytes; only the
            # distinct values ever become Python ints.
            index_by_bytes = {}
            masks = []
            slot_of = []
            for k in range(count):
                raw = row_bytes[k * width:(k + 1) * width]
                slot = index_by_bytes.get(raw)
                if slot is None:
                    slot = len(masks)
                    index_by_bytes[raw] = slot
                    masks.append(0)
                masks[slot] |= 1 << k
                slot_of.append(slot)
            uvals = [int.from_bytes(raw, "little")
                     for raw in index_by_bytes]
            value_masks = dict(zip(uvals, masks))
            # Canonical ascending-integer order (what the scalar path
            # and the record layout use).
            order = sorted(range(len(uvals)), key=uvals.__getitem__)
            values = [uvals[j] for j in order]
            rank = [0] * len(uvals)
            for pos, j in enumerate(order):
                rank[j] = pos
            pos_of = [rank[j] for j in slot_of]
        else:
            per_pattern = [0] * count
            for bit, net in enumerate(nets):
                word = patterns.packed.get(net, 0) & mask
                if word:
                    flag = 1 << bit
                    for k in iter_set_bits(word):
                        per_pattern[k] |= flag
            value_masks = {}
            for k, value in enumerate(per_pattern):
                value_masks[value] = value_masks.get(value, 0) | (1 << k)
            values = sorted(value_masks)
            position = {value: pos for pos, value in enumerate(values)}
            pos_of = [position[value] for value in per_pattern]
        vkeys = [_vkey(value) for value in values]
        proj = (nets, value_masks, values, vkeys, pos_of)
        context["projections"][support] = proj
        return proj

    # -- restore ---------------------------------------------------------

    def _restore_group(self, seed, members, fault_list, proj, rec_supports,
                       rec_groups, flags, words, info, pair_cache):
        """Restore one cone group's detection words from the record.

        Returns True when the group matched (support nets identical and
        every current projected value known to the record); individual
        faults the record never saw stay flagged for re-simulation.

        *pair_cache* memoizes the (record position, pattern mask) table
        per (support entry, projection) — groups sharing a support share
        the table, which is where warm-run time would otherwise go.
        """
        entry = rec_groups.get(str(seed))
        if entry is None:
            return False
        skey = entry.get("skey")
        cache_key = (skey, id(proj))
        if cache_key in pair_cache:
            table = pair_cache[cache_key]
        else:
            table = None
            sup_entry = rec_supports.get(skey)
            nets, value_masks, values, vkeys, __pos = proj
            if sup_entry is not None and sup_entry.get("nets") == nets:
                index_of = {vk: pos for pos, vk in
                            enumerate(sup_entry.get("values", []))}
                try:
                    # Keyed by the *bit* (1 << record position) so the
                    # per-fault loop below walks only the set bits of the
                    # detection mask — no per-position big-int shifts.
                    low_to_pmask = {
                        1 << index_of[vk]: value_masks[value]
                        for vk, value in zip(vkeys, values)}
                except KeyError:
                    low_to_pmask = None  # a value the record never saw
                if low_to_pmask is not None:
                    current = 0
                    for low in low_to_pmask:
                        current |= low
                    table = (low_to_pmask, current)
            pair_cache[cache_key] = table
        if table is None:
            return False
        low_to_pmask, current = table
        sites = entry.get("sites", {})
        for i in members:
            detmask = sites.get(fault_site_key(fault_list[i]))
            if detmask is None:
                continue  # new fault in a known group: re-simulate it
            remaining = int(detmask, 16) & current
            word = 0
            while remaining:
                low = remaining & -remaining
                word |= low_to_pmask[low]
                remaining ^= low
            words[i] = word
            flags[i] = False
        info["groups_restored"] += 1
        return True

    # -- store -----------------------------------------------------------

    def _store(self, key, record, observed, groups, group_proj, fault_list,
               words, flags, pair_cache):
        """Fold this run's detection state into the record and persist it.

        A group none of whose members were re-simulated and whose current
        values are all known to the record keeps its recorded entry
        verbatim (it is a valid superset — detections are value-keyed).
        A group whose recorded value list matches this run's exactly is
        merged in place (old sites kept, current ones overwritten);
        otherwise the group is snapshotted fresh from this run only.
        Groups not touched by this run are retained verbatim — the same
        record serves the remaining-list and full-list evaluations of a
        PTP.  Support entries are immutable (their key covers nets *and*
        values); unreferenced ones are pruned at the end.  A run that
        changes nothing — the common fully-restored warm re-run — skips
        the write entirely.
        """
        supports = dict(record["supports"]) if record else {}
        out_groups = dict(record["groups"]) if record else {}
        dirty = record is None
        for seed, members in groups.items():
            nets, value_masks, values, vkeys, pos_of = group_proj[seed]
            gkey = str(seed)
            entry = out_groups.get(gkey)
            untouched = not any(flags[i] for i in members)
            if untouched and entry is not None and pair_cache.get(
                    (entry.get("skey"), id(group_proj[seed]))) is not None:
                # The restore pass already proved every current value is
                # known to the recorded entry: it is a valid superset.
                continue
            sup_entry = supports.get(entry["skey"]) if entry else None
            nets_match = (sup_entry is not None
                          and sup_entry.get("nets") == nets)
            rec_values = sup_entry.get("values") if nets_match else None
            if (nets_match and untouched
                    and set(vkeys) <= set(rec_values or ())):
                continue  # restored verbatim from a superset: no change
            if nets_match and rec_values == vkeys:
                sites = dict(entry.get("sites", {}))
                skey = entry["skey"]
            else:
                sites = {}
                skey = _support_key(nets, vkeys)
                supports[skey] = {"nets": nets, "values": vkeys}
            for i in members:
                detmask = 0
                for k in iter_set_bits(words[i]):
                    detmask |= 1 << pos_of[k]
                sites[fault_site_key(fault_list[i])] = format(detmask, "x")
            new_entry = {"skey": skey, "sites": sites}
            if new_entry != entry:
                dirty = True
            out_groups[gkey] = new_entry
        referenced = {entry["skey"] for entry in out_groups.values()}
        pruned = {skey: sup for skey, sup in supports.items()
                  if skey in referenced}
        if len(pruned) != len(supports):
            dirty = True
        if not dirty:
            return
        body = {"format": FAULT_STATE_VERSION, "observed": observed,
                "supports": pruned, "groups": out_groups}
        body["checksum"] = _sha256_of(
            {field: body[field]
             for field in ("format", "observed", "supports", "groups")})
        self.cache.put(key, body)

    # -- plumbing --------------------------------------------------------

    def _schedule_for(self, simulator):
        """The propagation schedule for *simulator*'s netlist.

        The first schedule seen per netlist is adopted and pinned (the
        event engine's own instance when one exists, else a fresh build)
        so the per-seed ``support_of`` memo survives across the several
        simulator instances a pipeline run constructs — stage-5 FC
        evaluation builds throwaway simulators, and recomputing supports
        for every fault group each time dwarfs the restore itself."""
        netlist = simulator.netlist
        entry = self._schedules.get(id(netlist))
        if entry is not None and entry[0] is netlist:
            return entry[1]
        event = getattr(simulator, "_event", None)
        schedule = (event.schedule if event is not None
                    else PropagationSchedule(netlist))
        self._schedules[id(netlist)] = (netlist, schedule)
        return schedule

    @staticmethod
    def _full_run(scheduler, simulator, patterns, fault_list, skip_dropped,
                  restored=None):
        if scheduler is not None:
            return scheduler.run(simulator, patterns, fault_list,
                                 skip_dropped=skip_dropped,
                                 restored=restored)
        return simulator.run(patterns, fault_list)

    def _strict_check(self, result, scheduler, simulator, patterns,
                      fault_list, skip_dropped):
        """The strict-mode oracle: re-simulate everything from scratch
        and require bit-identity with the restored result."""
        reference = self._full_run(scheduler, simulator, patterns,
                                   fault_list, skip_dropped)
        mismatches = sum(
            1 for ours, theirs in zip(result.detection_words,
                                      reference.detection_words)
            if ours != theirs)
        if mismatches or (result.first_detection
                          != reference.first_detection):
            raise IncrementalError(
                "strict incremental check failed: {} of {} detection "
                "word(s) differ from the from-scratch re-simulation"
                .format(mismatches, len(fault_list)))

    def _note(self, info):
        if self.metrics is not None:
            self.metrics.record_incremental(info)
