"""Parallel execution engine: sharding, artifact caching, run metrics.

The exec subsystem makes compaction campaigns fast without changing what
they compute:

* :mod:`repro.exec.scheduler` — shards stage-3 fault simulation across a
  process pool and merges per-shard results bit-identically to the
  sequential run;
* :mod:`repro.exec.cache` — content-addressed on-disk memoization of
  stage-2 tracing artifacts (SHA-256 keys over PTP content, GPU config,
  module fingerprint, stage name) with atomic writes and an LRU cap;
* :mod:`repro.exec.metrics` — per-stage wall time, fault-sim throughput,
  cache hit/miss counters, and shard utilization, persisted as JSON next
  to the campaign checkpoint and rendered as the CLI's summary table.
"""

from .cache import (ArtifactCache, cached_logic_tracing, default_cache_dir,
                    module_fingerprint)
from .metrics import RunMetrics
from .scheduler import (JOBS_ENV, ShardedFaultScheduler, resolve_jobs,
                        run_sharded, shard_bounds)

__all__ = [
    "ArtifactCache",
    "cached_logic_tracing",
    "default_cache_dir",
    "module_fingerprint",
    "RunMetrics",
    "JOBS_ENV",
    "ShardedFaultScheduler",
    "resolve_jobs",
    "run_sharded",
    "shard_bounds",
]
