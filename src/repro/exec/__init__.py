"""Parallel execution engine: sharding, artifact caching, run metrics.

The exec subsystem makes compaction campaigns fast without changing what
they compute:

* :mod:`repro.exec.scheduler` — streams stage-3 fault chunks through a
  campaign-lifetime worker pool and merges the results bit-identically
  to the sequential run;
* :mod:`repro.exec.pool` — the persistent worker pool itself: one-shot
  netlist/pattern priming per worker, dynamic chunk sizing, fault-drop
  broadcast, and death/poison recovery;
* :mod:`repro.exec.cache` — content-addressed on-disk memoization of
  stage-2 tracing artifacts (SHA-256 keys over PTP content, GPU config,
  module fingerprint, stage name) with atomic writes and an LRU cap;
* :mod:`repro.exec.incremental` — cross-run fault-state restore: cached
  per-(PTP, module, engine) detection records keyed by cone-support
  pattern values, so a re-run after an STL edit only re-simulates the
  faults whose cone inputs actually changed (``--incremental``);
* :mod:`repro.exec.metrics` — per-stage wall time, fault-sim throughput,
  cache hit/miss counters, and shard utilization, persisted as JSON next
  to the campaign checkpoint and rendered as the CLI's summary table.
"""

from .cache import ArtifactCache, cached_logic_tracing, default_cache_dir, module_fingerprint
from .incremental import (
    INCREMENTAL_MODES,
    IncrementalFaultSim,
    fault_site_key,
    validate_incremental_mode,
)
from .metrics import RunMetrics
from .pool import WorkerPool
from .scheduler import JOBS_ENV, ShardedFaultScheduler, resolve_jobs, run_sharded, shard_bounds

__all__ = [
    "ArtifactCache",
    "cached_logic_tracing",
    "default_cache_dir",
    "module_fingerprint",
    "INCREMENTAL_MODES",
    "IncrementalFaultSim",
    "fault_site_key",
    "validate_incremental_mode",
    "RunMetrics",
    "WorkerPool",
    "JOBS_ENV",
    "ShardedFaultScheduler",
    "resolve_jobs",
    "run_sharded",
    "shard_bounds",
]
