"""Persistent worker pool for chunked fault simulation.

The PR-2 scheduler built a fresh ``ProcessPoolExecutor`` per ``run``
call, so every fault simulation paid process spawn plus netlist /
pattern-set pickling per shard — at small shard sizes the pool was a
*pessimization* (0.76x sequential on the recorded benchmark).  This
module replaces it with a pool that is created **once per campaign**:

* **Workers persist across runs.**  Each worker process is primed with
  heavyweight state exactly once per *context* (netlist + observation
  points + engine, shipped as a one-shot serialized blob) and once per
  *pattern set*; after that, chunk jobs carry only canonical fault ids,
  so steady-state IPC per job is tiny.
* **Chunk streaming with dynamic sizing.**  A run's fault list is cut
  into several chunks per worker (``chunks_per_worker``) and streamed:
  each worker holds a small dispatch window and receives the next chunk
  as soon as it returns one, so an unlucky slow chunk no longer idles
  the other workers the way one-shard-per-worker splitting did.
* **Fault-drop broadcast.**  When the campaign layer drops faults that
  a run first-detected, the ``(fault id, first-detection cc)`` records
  are published to every worker (:meth:`WorkerPool.broadcast_drops`).
  Workers keep a per-context dropped-id set and, for runs that opt in
  (``skip_dropped``), silently skip chunk members that were already
  dropped — preserving the sequential fault-dropping semantics exactly:
  a dropped fault's detection credit stays with the PTP that first
  detected it (:class:`~repro.faults.dropping.FaultListReport` ignores
  re-detections), so a skipped member reports ``word=0 / first=None``
  just as if the caller had pre-filtered it out of the target list.
* **Deterministic reconciliation.**  Chunks are contiguous slices of
  the caller's fault list and results are merged by slice position, so
  the merged :class:`~repro.faults.fault_sim.FaultSimResult` is
  bit-identical to the sequential run.  When a chunk is requeued after
  a worker death and two results for the same fault ever race, the
  merge keeps the record with the **lowest first-detection cc** (None
  loses; ties keep the incumbent) — the same lowest-cc / first-writer
  tie-break :class:`~repro.faults.dropping.FaultListReport` applies.
* **Fault isolation.**  A worker that dies mid-run (OOM-kill, crash)
  has its in-flight chunks requeued onto the surviving workers; dead
  workers are respawned at the next run.  A chunk that keeps failing
  (poisoned input) is retried on a different worker and finally
  simulated inline in the parent; if even that fails, the run raises
  :class:`~repro.errors.SchedulerError` (a ``ReproError``, so campaign
  per-PTP isolation catches it) and the pool stays usable.

The pool is lazy: constructing :class:`WorkerPool` allocates nothing —
queues and processes appear at the first :meth:`simulate` call, so a
pool-configured scheduler on a restricted platform (no fork, no
semaphores) degrades to inline execution without ever touching
``multiprocessing``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import time
import traceback

from ..errors import SchedulerError

#: Auto chunk sizing never cuts chunks smaller than this (per-chunk
#: dispatch overhead would dominate); explicit ``chunk_size`` overrides.
MIN_AUTO_CHUNK = 16

#: How long the parent waits on the result queue before polling worker
#: liveness (seconds).  Only latency of *death detection*, not of results.
_POLL_SECONDS = 0.1


def _stats_delta(simulator, before):
    """Propagation-counter delta of *simulator* since snapshot *before*."""
    return {key: value - before.get(key, 0)
            for key, value in simulator.stats.items()}


def _release_tasks(worker):
    """Release a worker's task queue WITHOUT joining its feeder thread.

    A killed worker leaves its task pipe unread, and sibling workers
    forked before it died still hold the pipe's read end open — so the
    parent's queue feeder thread can sit blocked in a pipe write forever
    instead of getting EPIPE.  ``multiprocessing``'s exit finalizer joins
    feeder threads by default, which would deadlock interpreter shutdown;
    ``cancel_join_thread`` opts this queue out (dropping undelivered
    messages is fine — the recipient is dead).
    """
    try:
        worker.tasks.cancel_join_thread()
        worker.tasks.close()
    except (OSError, ValueError):
        pass


# -- worker process side ----------------------------------------------------

class _WorkerState:
    """Per-process caches: contexts, pattern sets, dropped-fault ids."""

    def __init__(self):
        self.contexts = {}   # ctx_id -> (simulator, canonical FaultList,
        #                                 dropped-id set)
        self.patterns = {}   # (ctx_id, pat_id) -> PatternSet


def _prime_context(state, ctx_id, netlist, observed, engine):
    from ..faults.fault import FaultList
    from ..faults.fault_sim import FaultSimulator

    simulator = FaultSimulator(netlist, observed_outputs=observed,
                               engine=engine)
    canonical = FaultList(netlist)
    state.contexts[ctx_id] = (simulator, canonical, set())


def _prime_patterns(state, ctx_id, pat_id, packed, count):
    from ..netlist.simulator import PatternSet

    simulator, __, __ = state.contexts[ctx_id]
    patterns = PatternSet(simulator.netlist)
    patterns.packed = dict(packed)
    patterns.count = count
    state.patterns[(ctx_id, pat_id)] = patterns


def _run_chunk(state, ctx_id, pat_id, entries, skip_dropped):
    """Simulate one chunk; returns (words, firsts, busy, stats, skipped).

    *entries* mixes canonical fault ids (ints) with literal
    :class:`StuckAtFault` objects (faults outside the canonical collapsed
    enumeration).  Skipped (already-dropped) members keep their slots with
    ``word=0 / first=None``.
    """
    from ..faults.fault import FaultList

    simulator, canonical, dropped = state.contexts[ctx_id]
    patterns = state.patterns[(ctx_id, pat_id)]
    faults = []
    kept = []
    for position, entry in enumerate(entries):
        if isinstance(entry, int):
            if skip_dropped and entry in dropped:
                continue
            entry = canonical[entry]
        faults.append(entry)
        kept.append(position)
    before = dict(simulator.stats)
    started = time.perf_counter()
    result = simulator.run(patterns,
                           FaultList(simulator.netlist, faults))
    busy = time.perf_counter() - started
    words = [0] * len(entries)
    firsts = [None] * len(entries)
    for slot, position in enumerate(kept):
        words[position] = result.detection_words[slot]
        firsts[position] = result.first_detection[slot]
    return (words, firsts, busy, _stats_delta(simulator, before),
            len(entries) - len(kept))


def _worker_main(worker_id, tasks, results):
    """Worker loop: prime contexts/patterns/drops, stream chunk results."""
    state = _WorkerState()
    while True:
        message = tasks.get()
        tag = message[0]
        if tag == "stop":
            break
        job_id = None
        try:
            if tag == "context":
                __, ctx_id, netlist, observed, engine = message
                started = time.perf_counter()
                _prime_context(state, ctx_id, netlist, observed, engine)
                results.put(("primed", worker_id, ctx_id,
                             time.perf_counter() - started))
            elif tag == "patterns":
                __, ctx_id, pat_id, packed, count = message
                _prime_patterns(state, ctx_id, pat_id, packed, count)
            elif tag == "drops":
                __, ctx_id, fault_ids = message
                state.contexts[ctx_id][2].update(fault_ids)
            elif tag == "chunk":
                __, job_id, ctx_id, pat_id, entries, skip_dropped = message
                payload = _run_chunk(state, ctx_id, pat_id, entries,
                                     skip_dropped)
                results.put(("result", worker_id, job_id) + payload)
        except Exception:
            results.put(("error", worker_id, job_id,
                         traceback.format_exc()))


# -- parent side ------------------------------------------------------------

class _Context:
    """Parent-side registry entry for one (netlist, observed, engine)."""

    __slots__ = ("ctx_id", "netlist", "observed", "engine", "index",
                 "drops", "dropped_ids", "patterns")

    def __init__(self, ctx_id, netlist, observed, engine, index):
        self.ctx_id = ctx_id
        self.netlist = netlist
        self.observed = observed
        self.engine = engine
        self.index = index          # canonical fault -> id
        self.drops = []             # broadcast log: (fault_id, first_cc)
        self.dropped_ids = set()
        self.patterns = {}          # id(patterns) -> (patterns, pat_id,
        #                                              count)

    def matches(self, netlist, observed, engine):
        return (self.netlist is netlist and self.observed == observed
                and self.engine == engine)


class _Worker:
    """Parent-side handle of one worker process and its primed state."""

    __slots__ = ("worker_id", "process", "tasks", "contexts", "patterns",
                 "drops_sent", "inflight")

    def __init__(self, worker_id, process, tasks):
        self.worker_id = worker_id
        self.process = process
        self.tasks = tasks
        self.contexts = set()       # primed ctx_ids
        self.patterns = set()       # primed (ctx_id, pat_id)
        self.drops_sent = {}        # ctx_id -> prefix length of ctx.drops
        self.inflight = {}          # job_id -> _Job

    @property
    def alive(self):
        return self.process is not None and self.process.is_alive()


class _Job:
    """One chunk job: a contiguous slice of the run's fault list."""

    __slots__ = ("job_id", "start", "entries", "retries")

    def __init__(self, job_id, start, entries):
        self.job_id = job_id
        self.start = start
        self.entries = entries
        self.retries = 0


class WorkerPool:
    """Campaign-lifetime pool of fault-simulation worker processes.

    Args:
        workers: target number of worker processes (>= 1).
        metrics: optional :class:`~repro.exec.metrics.RunMetrics`; pool
            events land in its ``pool`` counter group.
        max_retries: times a failing chunk is requeued onto another
            worker before the parent simulates it inline.
    """

    def __init__(self, workers, metrics=None, max_retries=1):
        if workers < 1:
            raise SchedulerError("pool needs at least one worker, got {}"
                                 .format(workers))
        self.target_workers = workers
        self.metrics = metrics
        self.max_retries = max_retries
        self._mp = None             # multiprocessing context, once started
        self._results = None
        self._workers = []
        self._contexts = []
        self._ids = itertools.count()
        self._closed = False

    # -- bookkeeping -----------------------------------------------------

    def _bump(self, event, amount=1):
        if self.metrics is not None:
            self.metrics.record_pool_event(event, amount)

    @property
    def started(self):
        return self._mp is not None

    def context_for(self, simulator):
        """The pool's :class:`_Context` for *simulator* (registered on
        first sight; identity is the netlist object + observed nets +
        engine, so one pool serves every module of a campaign)."""
        observed = tuple(simulator.observed)
        for context in self._contexts:
            if context.matches(simulator.netlist, observed,
                               simulator.engine):
                return context
        from ..faults.fault import FaultList

        canonical = FaultList(simulator.netlist)
        index = {fault: i for i, fault in enumerate(canonical)}
        context = _Context(next(self._ids), simulator.netlist, observed,
                           simulator.engine, index)
        self._contexts.append(context)
        return context

    def broadcast_drops(self, simulator, records):
        """Publish dropped-fault records for *simulator*'s context.

        Args:
            records: iterable of ``(fault, first_cc)`` pairs (the faults a
                :class:`~repro.faults.dropping.FaultListReport` just
                dropped, with the clock cycle that first detected them).

        Records are deduplicated first-writer-wins (re-detections by a
        later PTP never steal the attribution, matching
        ``FaultListReport.drop``); faults outside the canonical collapsed
        enumeration cannot be referenced by id and are skipped.  Workers
        receive the new records lazily, piggybacked on their next chunk
        dispatch — there is no broadcast latency a correctness argument
        depends on, because the parent also never puts an already-dropped
        fault into a chunk built from a filtered remaining list.
        """
        context = self.context_for(simulator)
        added = 0
        for fault, first_cc in records:
            fault_id = context.index.get(fault)
            if fault_id is None or fault_id in context.dropped_ids:
                continue
            context.dropped_ids.add(fault_id)
            context.drops.append((fault_id, first_cc))
            added += 1
        if added:
            self._bump("drops_broadcast", added)
        return added

    # -- lifecycle -------------------------------------------------------

    def _start(self):
        """Allocate the multiprocessing context and result queue (first
        simulate only; raises OSError-family on restricted platforms)."""
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        self._mp = multiprocessing.get_context(method)
        self._results = self._mp.Queue()

    def _spawn_worker(self):
        worker_id = next(self._ids)
        tasks = self._mp.Queue()
        process = self._mp.Process(
            target=_worker_main, args=(worker_id, tasks, self._results),
            daemon=True, name="repro-fault-sim-{}".format(worker_id))
        process.start()
        self._bump("workers_spawned")
        return _Worker(worker_id, process, tasks)

    def _ensure_workers(self):
        """Start the pool / replace dead workers up to the target count."""
        if self._closed:
            raise SchedulerError("worker pool is closed")
        if self._mp is None:
            self._start()
        survivors = []
        for worker in self._workers:
            if worker.alive:
                survivors.append(worker)
            else:
                self._bump("worker_deaths")
                _release_tasks(worker)
        self._workers = survivors
        while len(self._workers) < self.target_workers:
            self._workers.append(self._spawn_worker())
        return self._workers

    def close(self):
        """Stop every worker and release the queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                if worker.alive:
                    worker.tasks.put(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            if worker.process is None:
                continue
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1)
        for worker in self._workers:
            _release_tasks(worker)
        self._workers = []
        if self._results is not None:
            try:
                self._results.close()
            except (OSError, ValueError):
                pass
            self._results = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # -- priming ---------------------------------------------------------

    def _pattern_id(self, context, patterns):
        """Stable id of *patterns* within *context* (strong ref pins the
        object so Python cannot recycle its id for a different set; the
        mutation version guards against the same set object being grown
        through ``add``/``add_words`` after priming — a stale version
        gets a fresh id, so workers are re-primed with current packed
        words instead of simulating the truncated snapshot)."""
        version = getattr(patterns, "version", 0)
        entry = context.patterns.get(id(patterns))
        if entry is not None and entry[0] is patterns \
                and entry[2] == patterns.count and entry[3] == version:
            return entry[1]
        pat_id = next(self._ids)
        context.patterns[id(patterns)] = (patterns, pat_id, patterns.count,
                                          version)
        return pat_id

    def _prime(self, worker, context, patterns, pat_id):
        """Send *worker* whatever context/pattern/drop state it lacks."""
        if context.ctx_id not in worker.contexts:
            worker.tasks.put(("context", context.ctx_id, context.netlist,
                              list(context.observed), context.engine))
            worker.contexts.add(context.ctx_id)
            worker.drops_sent[context.ctx_id] = 0
            self._bump("contexts_shipped")
        key = (context.ctx_id, pat_id)
        if key not in worker.patterns:
            worker.tasks.put(("patterns", context.ctx_id, pat_id,
                              patterns.packed, patterns.count))
            worker.patterns.add(key)
            self._bump("patterns_shipped")
        sent = worker.drops_sent.get(context.ctx_id, 0)
        if sent < len(context.drops):
            fresh = [fault_id for fault_id, __ in context.drops[sent:]]
            worker.tasks.put(("drops", context.ctx_id, fresh))
            worker.drops_sent[context.ctx_id] = len(context.drops)
            self._bump("drops_shipped", len(fresh))

    # -- the run ---------------------------------------------------------

    def simulate(self, simulator, patterns, fault_list, chunk_size=None,
                 chunks_per_worker=4, skip_dropped=False):
        """Chunked pooled equivalent of ``simulator.run(patterns,
        fault_list)``.

        Returns ``(words, firsts, chunk_busy, stats, skipped)`` where
        *words*/*firsts* are in fault-list order and bit-identical to the
        sequential run (skipped members excepted, see module docstring),
        *chunk_busy* is the per-chunk worker busy time, *stats* the summed
        propagation-counter deltas, and *skipped* the number of
        broadcast-dropped members the workers never simulated.
        """
        workers = self._ensure_workers()
        context = self.context_for(simulator)
        pat_id = self._pattern_id(context, patterns)
        faults = list(fault_list)
        entries = [context.index.get(fault, fault) for fault in faults]

        total = len(entries)
        size = chunk_size
        if size is None:
            target = max(1, len(workers) * chunks_per_worker)
            size = max(MIN_AUTO_CHUNK, -(-total // target))
            # The batch engine simulates whole fixed-width row batches;
            # rounding auto-sized chunks up to that quantum keeps pooled
            # chunks from ending in padded partial batches.
            quantum = getattr(simulator, "batch_rows", None)
            if quantum:
                size = -(-size // quantum) * quantum
        jobs = {}
        for start in range(0, total, size):
            job = _Job(next(self._ids), start, entries[start:start + size])
            jobs[job.job_id] = job

        words = [0] * total
        firsts = [None] * total
        filled = [False] * total
        busy = []
        stats = {}
        skipped = 0
        unassigned = list(jobs.values())
        unassigned.reverse()        # pop() dispatches in fault-list order
        done = set()

        def dispatch(worker, job):
            try:
                self._prime(worker, context, patterns, pat_id)
                worker.tasks.put(("chunk", job.job_id, context.ctx_id,
                                  pat_id, job.entries, skip_dropped))
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead(worker)
                unassigned.append(job)
                return False
            worker.inflight[job.job_id] = job
            self._bump("chunks_dispatched")
            return True

        def run_inline(job):
            """Last-resort parent-side simulation of one chunk."""
            from ..faults.fault import FaultList

            chunk_faults = []
            kept = []
            for offset, entry in enumerate(job.entries):
                if isinstance(entry, int):
                    if skip_dropped and entry in context.dropped_ids:
                        continue
                    entry = faults[job.start + offset]
                chunk_faults.append(entry)
                kept.append(offset)
            try:
                result = simulator.run(
                    patterns, FaultList(simulator.netlist, chunk_faults))
            except Exception as exc:
                raise SchedulerError(
                    "fault chunk at offset {} failed on {} worker(s) and "
                    "inline: {!r}".format(job.start, job.retries, exc)
                ) from exc
            for slot, offset in enumerate(kept):
                position = job.start + offset
                words[position] = result.detection_words[slot]
                firsts[position] = result.first_detection[slot]
                filled[position] = True
            self._bump("chunks_inline")
            return len(job.entries) - len(kept)

        def absorb(job, chunk_words, chunk_firsts, chunk_busy,
                   chunk_stats, chunk_skipped):
            nonlocal skipped
            busy.append(chunk_busy)
            skipped += chunk_skipped
            for key, value in chunk_stats.items():
                stats[key] = stats.get(key, 0) + value
            for offset in range(len(job.entries)):
                position = job.start + offset
                word = chunk_words[offset]
                first = chunk_firsts[offset]
                if not filled[position]:
                    words[position] = word
                    firsts[position] = first
                    filled[position] = True
                    continue
                # Duplicate result after a requeue race: keep the record
                # with the lower first-detection cc (None loses, ties keep
                # the incumbent) — FaultListReport's own tie-break.
                incumbent = firsts[position]
                if first is not None and (incumbent is None
                                          or first < incumbent):
                    words[position] = word
                    firsts[position] = first

        # Prefill a two-deep window per worker so nobody idles while the
        # parent merges, then stream: one fresh chunk per finished chunk.
        for __ in range(2):
            for worker in list(workers):
                if unassigned and worker.alive:
                    dispatch(worker, unassigned.pop())

        while len(done) < len(jobs):
            # Reap eagerly, not only on poll timeout: a survivor that
            # streams results fast would otherwise starve death detection
            # and leave the dead worker's orphans waiting for the end.
            if any(not w.alive for w in self._workers):
                self._reap(unassigned)
            live = [w for w in self._workers if w.alive]
            inflight_total = sum(len(w.inflight) for w in live)
            if not live or (not inflight_total and not unassigned):
                # No worker can make progress: finish inline (the result
                # stays bit-identical; only the execution venue changes).
                for job in list(jobs.values()):
                    if job.job_id not in done:
                        skipped += run_inline(job)
                        done.add(job.job_id)
                break
            if not inflight_total and unassigned:
                for worker in live:
                    if unassigned:
                        dispatch(worker, unassigned.pop())
                continue
            try:
                message = self._results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._reap(unassigned)
                continue
            tag = message[0]
            if tag == "primed":
                __, __, __, seconds = message
                self._bump("worker_init_events")
                if self.metrics is not None:
                    self.metrics.record_pool_seconds("worker_init_seconds",
                                                     seconds)
                continue
            if tag == "error":
                __, worker_id, job_id, text = message
                worker = self._worker_by_id(worker_id)
                job = jobs.get(job_id)
                if worker is not None and job_id in worker.inflight:
                    del worker.inflight[job_id]
                if job is None or job_id in done:
                    continue
                job.retries += 1
                self._bump("chunk_errors")
                if job.retries <= self.max_retries:
                    # Prefer a different worker for the retry.
                    others = [w for w in self._workers
                              if w.alive and w is not worker]
                    target = others[0] if others else (
                        worker if worker is not None and worker.alive
                        else None)
                    self._bump("chunks_requeued")
                    if target is None or not dispatch(target, job):
                        unassigned.append(job)
                else:
                    skipped += run_inline(job)
                    done.add(job_id)
                continue
            if tag != "result":
                continue
            __, worker_id, job_id = message[:3]
            payload = message[3:]
            worker = self._worker_by_id(worker_id)
            if worker is not None:
                worker.inflight.pop(job_id, None)
                if unassigned and worker.alive:
                    dispatch(worker, unassigned.pop())
            job = jobs.get(job_id)
            if job is None:
                continue            # stale result from an earlier run
            absorb(job, *payload)
            done.add(job_id)
        return words, firsts, busy, stats, skipped

    # -- failure handling ------------------------------------------------

    def _worker_by_id(self, worker_id):
        for worker in self._workers:
            if worker.worker_id == worker_id:
                return worker
        return None

    def _mark_dead(self, worker):
        if worker in self._workers:
            self._workers.remove(worker)
            self._bump("worker_deaths")
        _release_tasks(worker)

    def _reap(self, unassigned):
        """Requeue the in-flight chunks of workers that died mid-run."""
        for worker in list(self._workers):
            if worker.alive:
                continue
            orphans = list(worker.inflight.values())
            worker.inflight.clear()
            self._mark_dead(worker)
            if orphans:
                self._bump("chunks_requeued", len(orphans))
                unassigned.extend(reversed(orphans))
