"""Table builders: rows shaped like the paper's Tables I, II, and III.

Each builder returns a list of dict rows plus a plain-text rendering that
prints measured values next to the published ones (from
:mod:`repro.analysis.paper_data`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import paper_data


@dataclass
class TableRow:
    """One rendered row: measured values + the paper's reference values."""

    name: str
    measured: dict
    paper: dict = field(default_factory=dict)


def _fmt(value, spec="{:.2f}"):
    if value is None:
        return "-"
    if isinstance(value, float):
        return spec.format(value)
    return str(value)


def table1_rows(features):
    """Build Table I rows.

    Args:
        features: {ptp_name: {"size", "arc", "duration", "fc"}} measured
            values, including combined pseudo-rows like "IMM+MEM+CNTRL".
    """
    rows = []
    for name, measured in features.items():
        rows.append(TableRow(name, measured,
                             paper_data.TABLE1.get(name, {})))
    return rows


def render_table1(rows):
    header = ("{:<15} {:>8} {:>7} {:>10} {:>7}   |{:>9} {:>6} {:>11} "
              "{:>7}".format("PTP", "Size", "ARC%", "Duration", "FC%",
                             "p.Size", "p.ARC", "p.Duration", "p.FC"))
    lines = ["TABLE I. MAIN FEATURES OF THE EVALUATED PTPS", header,
             "-" * len(header)]
    for row in rows:
        m, p = row.measured, row.paper
        lines.append(
            "{:<15} {:>8} {:>7} {:>10} {:>7}   |{:>9} {:>6} {:>11} {:>7}"
            .format(row.name, _fmt(m.get("size")),
                    _fmt(m.get("arc"), "{:.1f}"),
                    _fmt(m.get("duration")), _fmt(m.get("fc")),
                    _fmt(p.get("size")), _fmt(p.get("arc"), "{:.1f}"),
                    _fmt(p.get("duration")), _fmt(p.get("fc"))))
    return "\n".join(lines) + "\n"


def compaction_rows(outcomes, paper_table):
    """Rows for Table II/III from :class:`CompactionOutcome` objects.

    *outcomes* maps row name -> outcome (or a combined pseudo-outcome dict
    with the same keys).
    """
    rows = []
    for name, outcome in outcomes.items():
        if isinstance(outcome, dict):
            measured = outcome
        else:
            measured = {
                "size": outcome.compacted_size,
                "size_pct": outcome.size_reduction_percent,
                "duration": outcome.compacted_cycles,
                "duration_pct": outcome.duration_reduction_percent,
                "fc_diff": outcome.fc_diff,
                "seconds": outcome.compaction_seconds,
            }
        rows.append(TableRow(name, measured, paper_table.get(name, {})))
    return rows


def render_compaction_table(rows, title):
    header = ("{:<15} {:>7} {:>8} {:>9} {:>8} {:>8} {:>8}   |{:>8} {:>8} "
              "{:>8} {:>8}".format(
                  "PTP", "instr", "size%", "ccs", "dur%", "dFC", "sec",
                  "p.size%", "p.dur%", "p.dFC", "p.hours"))
    lines = [title, header, "-" * len(header)]
    for row in rows:
        m, p = row.measured, row.paper
        lines.append(
            "{:<15} {:>7} {:>8} {:>9} {:>8} {:>8} {:>8}   |{:>8} {:>8} "
            "{:>8} {:>8}".format(
                row.name, _fmt(m.get("size")),
                _fmt(m.get("size_pct"), "{:+.2f}"),
                _fmt(m.get("duration")),
                _fmt(m.get("duration_pct"), "{:+.2f}"),
                _fmt(m.get("fc_diff"), "{:+.2f}"),
                _fmt(m.get("seconds"), "{:.2f}"),
                _fmt(p.get("size_pct"), "{:+.2f}"),
                _fmt(p.get("duration_pct"), "{:+.2f}"),
                _fmt(p.get("fc_diff"), "{:+.2f}"),
                _fmt(p.get("hours"), "{:.2f}")))
    return "\n".join(lines) + "\n"


def combined_outcome_row(outcomes, combined_fc_original, combined_fc_compacted):
    """Combined pseudo-row (e.g. IMM+MEM+CNTRL) from individual outcomes."""
    original_size = sum(o.original_size for o in outcomes)
    compacted_size = sum(o.compacted_size for o in outcomes)
    original_ccs = sum(o.original_cycles for o in outcomes)
    compacted_ccs = sum(o.compacted_cycles for o in outcomes)
    return {
        "size": compacted_size,
        "size_pct": (-100.0 * (original_size - compacted_size)
                     / original_size if original_size else 0.0),
        "duration": compacted_ccs,
        "duration_pct": (-100.0 * (original_ccs - compacted_ccs)
                         / original_ccs if original_ccs else 0.0),
        "fc_diff": combined_fc_compacted - combined_fc_original,
        "seconds": sum(o.compaction_seconds for o in outcomes),
    }


def stl_aggregate(outcomes):
    """Whole-STL reduction, modeling the non-compacted remainder.

    Section IV: the compacted PTPs cover 90.69% of the STL size and 75.70%
    of its duration; the other PTPs (control-unit tests) stay untouched.
    The same shares model our scaled STL's remainder.
    """
    original_size = sum(o.original_size for o in outcomes)
    compacted_size = sum(o.compacted_size for o in outcomes)
    original_ccs = sum(o.original_cycles for o in outcomes)
    compacted_ccs = sum(o.compacted_cycles for o in outcomes)

    others_size = original_size * (1 - paper_data.STL_COMPACTED_SIZE_SHARE
                                   ) / paper_data.STL_COMPACTED_SIZE_SHARE
    others_ccs = original_ccs * (1 - paper_data.STL_COMPACTED_DURATION_SHARE
                                 ) / paper_data.STL_COMPACTED_DURATION_SHARE

    stl_size_before = original_size + others_size
    stl_size_after = compacted_size + others_size
    stl_ccs_before = original_ccs + others_ccs
    stl_ccs_after = compacted_ccs + others_ccs
    return {
        "size_reduction_pct": -100.0 * (stl_size_before - stl_size_after)
                              / stl_size_before,
        "duration_reduction_pct": -100.0 * (stl_ccs_before - stl_ccs_after)
                                  / stl_ccs_before,
        "paper_size_reduction_pct": paper_data.STL_SIZE_REDUCTION,
        "paper_duration_reduction_pct": paper_data.STL_DURATION_REDUCTION,
    }
