"""Experiment harness: paper constants, table builders, campaign driver."""

from . import paper_data
from .experiments import DEFAULT, SMOKE, Experiment, ExperimentScale
from .tables import (
    combined_outcome_row,
    compaction_rows,
    render_compaction_table,
    render_table1,
    stl_aggregate,
    table1_rows,
)

__all__ = [
    "Experiment", "ExperimentScale", "DEFAULT", "SMOKE",
    "table1_rows", "render_table1", "compaction_rows",
    "render_compaction_table", "combined_outcome_row", "stl_aggregate",
    "paper_data",
]
