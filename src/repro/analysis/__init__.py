"""Experiment harness: paper constants, table builders, campaign driver."""

from .experiments import DEFAULT, Experiment, ExperimentScale, SMOKE
from .tables import (combined_outcome_row, compaction_rows, render_table1,
                     render_compaction_table, stl_aggregate, table1_rows)
from . import paper_data

__all__ = [
    "Experiment", "ExperimentScale", "DEFAULT", "SMOKE",
    "table1_rows", "render_table1", "compaction_rows",
    "render_compaction_table", "combined_outcome_row", "stl_aggregate",
    "paper_data",
]
