"""Shared experiment driver used by the benchmarks and examples.

Builds the three target modules, generates the six-PTP STL of Table I, and
runs the compaction campaigns of Tables II/III with the paper's ordering
(fault dropping IMM -> MEM -> CNTRL on the DU; TPGEN -> RAND on the SP
cores; SFU_IMM with reversed patterns on the SFU).

Scale is controlled by an :class:`ExperimentScale`; ``SMOKE`` keeps unit
tests fast, ``DEFAULT`` is the benchmark configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fc_eval import combined_fc, evaluate_fc
from ..core.partition import partition_ptp
from ..core.pipeline import CompactionPipeline
from ..gpu.gpu import Gpu
from ..netlist.modules import build_decoder_unit, build_sfu, build_sp_core
from ..stl.generators import (
    generate_cntrl,
    generate_imm,
    generate_mem,
    generate_rand,
    generate_sfu_imm,
    generate_tpgen,
)
from ..stl.ptp import SelfTestLibrary


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs for one experiment campaign."""

    datapath_width: int = 16
    imm_sbs: int = 125
    mem_sbs: int = 120
    cntrl_sbs: int = 18
    rand_sbs: int = 220
    tpgen_random_patterns: int = 512
    tpgen_max_backtracks: int = 20
    tpgen_podem_fault_limit: int = 150
    sfu_random_patterns: int = 192
    sfu_max_backtracks: int = 10
    sfu_podem_fault_limit: int = 100
    seed: int = 2022


#: Benchmark-scale configuration (minutes, not hours).
DEFAULT = ExperimentScale()

#: Unit/integration-test configuration (seconds).
SMOKE = ExperimentScale(datapath_width=8, imm_sbs=16, mem_sbs=14,
                        cntrl_sbs=6, rand_sbs=16, tpgen_random_patterns=48,
                        tpgen_max_backtracks=5, tpgen_podem_fault_limit=30,
                        sfu_random_patterns=32, sfu_max_backtracks=3,
                        sfu_podem_fault_limit=20)


class Experiment:
    """Lazily-built modules, STL, and campaign results for one scale."""

    def __init__(self, scale=DEFAULT):
        self.scale = scale
        self.gpu = Gpu()
        self._modules = None
        self._stl = None
        self._atpg = {}

    @property
    def modules(self):
        """{'decoder_unit': ..., 'sp_core': ..., 'sfu': ...}"""
        if self._modules is None:
            width = self.scale.datapath_width
            self._modules = {
                "decoder_unit": build_decoder_unit(),
                "sp_core": build_sp_core(width),
                "sfu": build_sfu(width),
            }
        return self._modules

    @property
    def stl(self):
        """The six-PTP STL (Table I order)."""
        if self._stl is None:
            scale = self.scale
            seed = scale.seed
            tpgen, tpgen_atpg = generate_tpgen(
                self.modules["sp_core"], seed=seed,
                atpg_random_patterns=scale.tpgen_random_patterns,
                atpg_max_backtracks=scale.tpgen_max_backtracks,
                atpg_podem_fault_limit=scale.tpgen_podem_fault_limit)
            sfu_imm, sfu_atpg = generate_sfu_imm(
                self.modules["sfu"], seed=seed,
                atpg_random_patterns=scale.sfu_random_patterns,
                atpg_max_backtracks=scale.sfu_max_backtracks,
                atpg_podem_fault_limit=scale.sfu_podem_fault_limit)
            self._atpg = {"TPGEN": tpgen_atpg, "SFU_IMM": sfu_atpg}
            self._stl = SelfTestLibrary([
                generate_imm(seed=seed, num_sbs=scale.imm_sbs),
                generate_mem(seed=seed, num_sbs=scale.mem_sbs),
                generate_cntrl(seed=seed, num_sbs=scale.cntrl_sbs),
                tpgen,
                generate_rand(seed=seed, num_sbs=scale.rand_sbs),
                sfu_imm,
            ])
        return self._stl

    # -- Table I ---------------------------------------------------------------

    def table1_features(self):
        """Measured Table I rows: size, ARC%, duration, FC per PTP plus
        the two combined rows."""
        features = {}
        evaluations = {}
        for ptp in self.stl:
            module = self.modules[ptp.target]
            partition = partition_ptp(ptp)
            evaluation = evaluate_fc(
                ptp, module, gpu=self.gpu,
                reverse_patterns=False)
            evaluations[ptp.name] = evaluation
            features[ptp.name] = {
                "size": ptp.size,
                "arc": partition.arc_percent(),
                "duration": evaluation.cycles,
                "fc": evaluation.fc_percent,
            }
        for combo, parts in (("IMM+MEM+CNTRL", ("IMM", "MEM", "CNTRL")),
                             ("TPGEN+RAND", ("TPGEN", "RAND"))):
            target = self.stl[parts[0]].target
            module = self.modules[target]
            from ..faults.fault import FaultList

            total_faults = len(FaultList(module.netlist))
            features[combo] = {
                "size": sum(features[p]["size"] for p in parts),
                "arc": (100.0 * sum(
                    features[p]["arc"] * features[p]["size"] / 100.0
                    for p in parts)
                    / sum(features[p]["size"] for p in parts)),
                "duration": sum(features[p]["duration"] for p in parts),
                "fc": combined_fc([evaluations[p] for p in parts],
                                  total_faults),
            }
        return features

    # -- Tables II / III ----------------------------------------------------------

    def run_du_campaign(self):
        """Table II: compact IMM, MEM, CNTRL (in order, shared dropping)."""
        pipeline = CompactionPipeline(self.modules["decoder_unit"],
                                      gpu=self.gpu)
        outcomes = {}
        for name in ("IMM", "MEM", "CNTRL"):
            outcomes[name] = pipeline.compact(self.stl[name])
        return outcomes, pipeline

    def run_sp_campaign(self):
        """Table III (SP rows): compact TPGEN then RAND (shared dropping)."""
        pipeline = CompactionPipeline(self.modules["sp_core"], gpu=self.gpu)
        outcomes = {}
        for name in ("TPGEN", "RAND"):
            outcomes[name] = pipeline.compact(self.stl[name])
        return outcomes, pipeline

    def run_sfu_campaign(self):
        """Table III (SFU row): compact SFU_IMM with reversed patterns."""
        pipeline = CompactionPipeline(self.modules["sfu"], gpu=self.gpu)
        outcome = pipeline.compact(self.stl["SFU_IMM"],
                                   reverse_patterns=True)
        return {"SFU_IMM": outcome}, pipeline

    def combined_fc_pair(self, outcomes, names):
        """(original, compacted) union FC for a combined row."""
        target = outcomes[names[0]].ptp.target
        module = self.modules[target]
        from ..faults.fault import FaultList

        total = len(FaultList(module.netlist))
        originals, compacteds = [], []
        for name in names:
            outcome = outcomes[name]
            reverse = name == "SFU_IMM"
            originals.append(evaluate_fc(outcome.ptp, module, gpu=self.gpu,
                                         reverse_patterns=reverse))
            compacteds.append(evaluate_fc(outcome.compacted, module,
                                          gpu=self.gpu,
                                          reverse_patterns=reverse))
        return (combined_fc(originals, total),
                combined_fc(compacteds, total))
