"""Published numbers from the paper (Tables I-III and in-text aggregates).

Used by the benchmark harness to print paper-vs-measured rows.  Our
reproduction runs the same pipeline on scaled-down PTPs and modules, so the
*shape* (who compacts more, signs of FC deltas, relative durations) is the
comparable quantity, not the absolute values.
"""

from __future__ import annotations

#: Table I — main features of the evaluated PTPs.
TABLE1 = {
    "IMM": {"target": "decoder_unit", "size": 32736, "arc": 100.0,
            "duration": 2229225, "fc": 71.13},
    "MEM": {"target": "decoder_unit", "size": 32581, "arc": 100.0,
            "duration": 3186236, "fc": 76.59},
    "CNTRL": {"target": "decoder_unit", "size": 336, "arc": 90.0,
              "duration": 710100, "fc": 71.18},
    "IMM+MEM+CNTRL": {"target": "decoder_unit", "size": 65653, "arc": 99.0,
                      "duration": 6125561, "fc": 80.15},
    "TPGEN": {"target": "sp_core", "size": 19604, "arc": 100.0,
              "duration": 1447620, "fc": 84.07},
    "RAND": {"target": "sp_core", "size": 55000, "arc": 100.0,
             "duration": 3434235, "fc": 83.99},
    "TPGEN+RAND": {"target": "sp_core", "size": 74604, "arc": 100.0,
                   "duration": 4881855, "fc": 87.22},
    "SFU_IMM": {"target": "sfu", "size": 16856, "arc": 100.0,
                "duration": 1200034, "fc": 90.75},
}

#: Table II — compaction results for the Decoder Unit PTPs.
TABLE2 = {
    "IMM": {"size": 884, "size_pct": -97.30, "duration": 92423,
            "duration_pct": -95.85, "fc_diff": +0.06, "hours": 2.28},
    "MEM": {"size": 442, "size_pct": -98.64, "duration": 50144,
            "duration_pct": -98.42, "fc_diff": -1.79, "hours": 2.62},
    "CNTRL": {"size": 89, "size_pct": -73.51, "duration": 447689,
              "duration_pct": -36.95, "fc_diff": -0.00, "hours": 0.91},
    "IMM+MEM+CNTRL": {"size": 1415, "size_pct": -97.84, "duration": 590256,
                      "duration_pct": -90.36, "fc_diff": -0.05,
                      "hours": 5.81},
}

#: Table III — compaction results for the functional-unit PTPs.
TABLE3 = {
    "TPGEN": {"size": 4742, "size_pct": -75.81, "duration": 452401,
              "duration_pct": -68.75, "fc_diff": -1.31, "hours": 0.28},
    "RAND": {"size": 1215, "size_pct": -97.79, "duration": 112030,
             "duration_pct": -96.74, "fc_diff": -17.07, "hours": 1.12},
    "TPGEN+RAND": {"size": 5957, "size_pct": -92.02, "duration": 564431,
                   "duration_pct": -88.44, "fc_diff": -3.13, "hours": 1.40},
    "SFU_IMM": {"size": 9910, "size_pct": -41.20, "duration": 662524,
                "duration_pct": -44.79, "fc_diff": 0.0, "hours": 0.31},
}

#: Whole-STL context (Section IV): the compacted PTPs account for 90.69%
#: of the STL's size and 75.70% of its duration; the other PTPs are left
#: untouched (control-unit tests whose algorithms break on removal).
STL_COMPACTED_SIZE_SHARE = 0.9069
STL_COMPACTED_DURATION_SHARE = 0.7570

#: In-text whole-STL aggregate reductions.
STL_SIZE_REDUCTION = -80.71
STL_DURATION_REDUCTION = -64.43

#: Faults injected in the validation campaigns (DU; SP cores; SFUs).
PAPER_FAULTS = {"decoder_unit": 12834, "sp_core": 191616, "sfu": 180540}
