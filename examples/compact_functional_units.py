#!/usr/bin/env python3
"""Compact the functional-unit PTPs (the paper's Table III flow).

Covers the ATPG-based path end to end: runs the built-in ATPG on the SP
core and the SFU, converts the patterns into the TPGEN and SFU_IMM PTPs
(partial conversion, as in the paper), generates the pseudorandom RAND
PTP, and compacts TPGEN -> RAND (shared fault dropping, signature-per-
thread observability) and SFU_IMM (reverse-order patterns).

Run:  python examples/compact_functional_units.py
"""

from repro.core import CompactionPipeline, write_compaction_summary
from repro.netlist.modules import build_sfu, build_sp_core
from repro.stl import generate_rand, generate_sfu_imm, generate_tpgen


def main():
    width = 8  # laptop-friendly datapath width (experiments use 16)
    sp_core = build_sp_core(width)
    sfu = build_sfu(width)

    print("ATPG on the SP core ({} gates) ...".format(
        sp_core.netlist.num_gates))
    tpgen, sp_atpg = generate_tpgen(sp_core, seed=1,
                                    atpg_random_patterns=128,
                                    atpg_max_backtracks=10,
                                    atpg_podem_fault_limit=60)
    print("  {} patterns -> TPGEN: {}".format(sp_atpg.patterns.count,
                                              tpgen.description))

    rand = generate_rand(seed=1, num_sbs=80)
    print("RAND: {} instructions (pseudorandom, SpT-observed)".format(
        rand.size))

    print("ATPG on the SFU ({} gates) ...".format(sfu.netlist.num_gates))
    sfu_imm, sfu_atpg = generate_sfu_imm(sfu, seed=1,
                                         atpg_random_patterns=96,
                                         atpg_max_backtracks=5,
                                         atpg_podem_fault_limit=40)
    print("  {} patterns -> SFU_IMM: {}".format(sfu_atpg.patterns.count,
                                                sfu_imm.description))

    print("\nCompacting the SP-core PTPs (TPGEN first, then RAND under "
          "fault dropping) ...")
    sp_pipeline = CompactionPipeline(sp_core)
    for ptp in (tpgen, rand):
        outcome = sp_pipeline.compact(ptp)
        print()
        print(write_compaction_summary(outcome))
    print("Note the RAND FC drop: its instructions mostly re-detect "
          "faults TPGEN already covers (the paper's -17.07 effect).")

    print("\nCompacting SFU_IMM (stage-3 patterns in reverse order) ...")
    sfu_pipeline = CompactionPipeline(sfu)
    outcome = sfu_pipeline.compact(sfu_imm, reverse_patterns=True)
    print()
    print(write_compaction_summary(outcome))
    print("SFU SBs are data-independent, so the FC delta is exactly 0.")


if __name__ == "__main__":
    main()
