#!/usr/bin/env python3
"""Compact the Decoder Unit's slice of an STL (the paper's Table II flow).

Generates the three DU PTPs (IMM, MEM, CNTRL), compacts them in the
paper's order with fault dropping carried across PTPs, reassembles the
STL, and prints every intermediate artifact a test engineer would inspect:
ARC percentages, the labeled-program listing head, the fault-sim report
head, and the final Table-II-shaped rows.

Run:  python examples/compact_decoder_stl.py
"""

from repro.core import (
    CompactionPipeline,
    partition_ptp,
    write_compaction_summary,
    write_fault_sim_report,
    write_labeled_ptp,
)
from repro.netlist.modules import build_decoder_unit
from repro.stl import SelfTestLibrary, generate_cntrl, generate_imm, generate_mem


def head(text, lines=8):
    return "\n".join(text.splitlines()[:lines])


def main():
    decoder_unit = build_decoder_unit()
    stl = SelfTestLibrary([
        generate_imm(seed=1, num_sbs=50),
        generate_mem(seed=1, num_sbs=50),
        generate_cntrl(seed=1, num_sbs=14),
    ])
    print("STL: {} PTPs, {} instructions total".format(len(stl),
                                                       stl.total_size))
    for ptp in stl:
        partition = partition_ptp(ptp)
        print("  {:<6} {:5d} instructions, ARC {:5.1f}%".format(
            ptp.name, ptp.size, partition.arc_percent()))

    pipeline = CompactionPipeline(decoder_unit)
    print("\nModule fault list: {} collapsed stuck-at faults".format(
        pipeline.fault_report.total_faults))

    outcomes = pipeline.compact_stl(stl)

    for outcome in outcomes:
        print()
        print(write_compaction_summary(outcome))
        print("-- labeled program (head) " + "-" * 30)
        print(head(write_labeled_ptp(outcome.labeled)))
        print("-- fault sim report (head) " + "-" * 29)
        print(head(write_fault_sim_report(
            outcome.fault_result, outcome.tracing.pattern_report)))

    total_before = sum(o.original_size for o in outcomes)
    total_after = sum(o.compacted_size for o in outcomes)
    print("\nReassembled STL: {} -> {} instructions ({:+.2f}%)".format(
        total_before, total_after,
        -100.0 * (total_before - total_after) / total_before))
    print("Cumulative DU fault coverage after dropping: {:.2f}%".format(
        pipeline.fault_report.coverage()))


if __name__ == "__main__":
    main()
