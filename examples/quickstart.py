#!/usr/bin/env python3
"""Quickstart: compact one pseudorandom Decoder-Unit PTP.

Builds the gate-level Decoder Unit, generates a small IMM-style PTP (the
pseudorandom immediate-format style of the paper's Table I), runs the
five-stage compaction pipeline, and prints the Table-II-shaped summary:
compacted size, duration, fault-coverage delta, and the number of fault
simulations the compaction itself needed (exactly one).

The pipeline runs with the artifact cache and run metrics attached, so a
second invocation reuses the memoized stage-2 traces (the metrics table at
the end reports the cache hit/miss counters; set REPRO_CACHE_DIR to
relocate the cache, REPRO_JOBS to shard the fault simulation).

Run:  python examples/quickstart.py
"""

from repro.core import CompactionPipeline, write_compaction_summary
from repro.exec import ArtifactCache, RunMetrics
from repro.netlist.modules import build_decoder_unit
from repro.stl import generate_imm


def main():
    print("Synthesizing the Decoder Unit ...")
    decoder_unit = build_decoder_unit()
    stats = decoder_unit.netlist.stats()
    print("  {} gates, {} inputs, {} outputs, depth {}".format(
        stats["gates"], stats["inputs"], stats["outputs"], stats["depth"]))

    print("Generating the IMM PTP (pseudorandom, 60 Small Blocks) ...")
    ptp = generate_imm(seed=0, num_sbs=60)
    print("  {} instructions, kernel {} block(s) x {} thread(s)".format(
        ptp.size, ptp.kernel.grid_blocks, ptp.kernel.block_threads))

    print("Compacting (stages 1-5) ...")
    cache = ArtifactCache()
    metrics = RunMetrics()
    pipeline = CompactionPipeline(decoder_unit, cache=cache, metrics=metrics)
    outcome = pipeline.compact(ptp)

    print()
    print(write_compaction_summary(outcome))
    labeled = outcome.labeled
    print("essential instructions: {} / {}".format(labeled.num_essential,
                                                   ptp.size))
    print("Small Blocks removed:   {} / {}".format(
        len(outcome.reduction.removed_blocks),
        len(outcome.reduction.small_blocks)))
    print("module fault list:      {} faults, {} dropped by this PTP"
          .format(pipeline.fault_report.total_faults,
                  outcome.newly_dropped_faults))

    metrics.absorb_cache_stats(cache.stats)
    print()
    print(metrics.summary_table())


if __name__ == "__main__":
    main()
