#!/usr/bin/env python3
"""Inspect the ATPG -> PTP conversion pipeline on the SP core.

Shows what the paper's "parser tool" does: the raw ATPG pattern stream
(op / cmp / operand fields), which patterns have no equivalent GPU
instruction (partial conversion), how the survivors are grouped by
micro-op into Small Blocks, and the resulting SASS-like assembly.

Run:  python examples/atpg_to_ptp.py
"""

from collections import Counter

from repro.faults import FaultList
from repro.isa import disassemble
from repro.netlist.modules import SPOp, build_sp_core
from repro.stl import generate_tpgen
from repro.stl.generators.atpg_based import _sp_pattern_tuples


def main():
    sp_core = build_sp_core(8)
    fault_list = FaultList(sp_core.netlist)
    print("SP core: {} gates, {} collapsed stuck-at faults".format(
        sp_core.netlist.num_gates, len(fault_list)))

    ptp, atpg = generate_tpgen(sp_core, seed=42, atpg_random_patterns=96,
                               atpg_max_backtracks=8)
    print("ATPG: {} patterns, {:.2f}% fault coverage, {} untestable, "
          "{} aborted".format(atpg.patterns.count,
                              atpg.coverage(len(fault_list)),
                              len(atpg.untestable), len(atpg.aborted)))

    tuples = _sp_pattern_tuples(sp_core, atpg)
    valid_codes = {e.value for e in SPOp}
    ops = Counter()
    skipped = 0
    for op_code, cmp_code, a, b, c in tuples:
        if op_code in valid_codes:
            ops[SPOp(op_code).name] += 1
        else:
            skipped += 1
    print("\nPattern op mix (op field of the ATPG cubes):")
    for name, count in ops.most_common():
        print("  {:<5} {:4d}".format(name, count))
    print("  {} pattern(s) skipped: op field encodes no instruction "
          "(partial conversion, as in the paper)".format(skipped))

    print("\nTPGEN PTP: {} instructions in {} Small Blocks".format(
        ptp.size, len(ptp.sb_hints)))
    print("Operand arrays in global memory: {} words".format(
        len(ptp.global_image)))

    start, end = ptp.sb_hints[0]
    print("\nFirst Small Block (pcs {}..{}):".format(start, end - 1))
    print(disassemble(list(ptp.program)[start:end]))
    print("\nFirst 4 per-thread operand words of its 'a' array:")
    first_load = next(i for i in list(ptp.program)[start:end]
                      if i.op.value == "GLD")
    for t in range(4):
        print("  thread {}: 0x{:08X}".format(
            t, ptp.global_image[first_load.imm + t]))


if __name__ == "__main__":
    main()
