#!/usr/bin/env python3
"""Compare the one-fault-simulation method against prior-work baselines.

Compacts the same IMM-style PTP three ways — the paper's pipeline, the
iterative remove-and-resimulate baseline ([13]-[16] style), and the
reordering baseline ([17] style, on an SFU PTP where reordering is sound)
— and prints fault-simulation counts, wall time, and resulting sizes.

Run:  python examples/baseline_comparison.py
"""

import time

from repro.baselines import compact_by_reordering, compact_iteratively
from repro.core import CompactionPipeline
from repro.netlist.modules import build_decoder_unit, build_sfu
from repro.stl import generate_imm, generate_sfu_imm


def main():
    decoder_unit = build_decoder_unit()
    ptp = generate_imm(seed=3, num_sbs=30)
    print("PTP under test: IMM-style, {} instructions\n".format(ptp.size))

    started = time.perf_counter()
    ours = CompactionPipeline(decoder_unit).compact(ptp, evaluate=False)
    ours_seconds = time.perf_counter() - started

    theirs = compact_iteratively(ptp, decoder_unit)

    print("{:<22} {:>10} {:>12} {:>10}".format(
        "method", "fault sims", "wall (s)", "size"))
    print("-" * 58)
    print("{:<22} {:>10} {:>12.2f} {:>10}".format(
        "proposed (1 sim)", ours.fault_simulations, ours_seconds,
        ours.compacted_size))
    print("{:<22} {:>10} {:>12.2f} {:>10}".format(
        "iterative [13-16]", theirs.fault_simulations,
        theirs.wall_seconds, theirs.compacted_size))

    sfu = build_sfu(8)
    sfu_ptp, __ = generate_sfu_imm(sfu, seed=3, atpg_random_patterns=64,
                                   atpg_max_backtracks=5)
    reordered = compact_by_reordering(sfu_ptp, sfu)
    print("{:<22} {:>10} {:>12.2f} {:>10}   (SFU PTP, {} instr)".format(
        "reordering [17]", reordered.fault_simulations,
        reordered.wall_seconds, reordered.compacted_size, sfu_ptp.size))

    print("\nThe proposed method matches the iterative baseline's result "
          "with {}x fewer fault simulations.".format(
              theirs.fault_simulations))


if __name__ == "__main__":
    main()
