"""Experiment A1 — whole-STL aggregate (Section IV, in-text).

"The selected PTPs' compaction implies 80.71% size and 64.43% duration
reduction rates for the whole STL."  The compacted PTPs cover 90.69% of
the STL's size and 75.70% of its duration; the rest (control-unit tests
excluded from compaction) is modeled with the same shares.
"""

from conftest import run_once
from repro.analysis import stl_aggregate


def test_aggregate_stl_reduction(benchmark, campaigns):
    def compute():
        du_outcomes, __ = campaigns.du()
        sp_outcomes, __sp = campaigns.sp()
        sfu_outcomes, __sfu = campaigns.sfu()
        outcomes = (list(du_outcomes.values()) + list(sp_outcomes.values())
                    + list(sfu_outcomes.values()))
        return stl_aggregate(outcomes)

    aggregate = run_once(benchmark, compute)
    print()
    print("WHOLE-STL AGGREGATE (measured | paper)")
    print("  size reduction:     {:+.2f}% | {:+.2f}%".format(
        aggregate["size_reduction_pct"],
        aggregate["paper_size_reduction_pct"]))
    print("  duration reduction: {:+.2f}% | {:+.2f}%".format(
        aggregate["duration_reduction_pct"],
        aggregate["paper_duration_reduction_pct"]))

    # Both aggregates must show a large reduction, with duration reduced
    # less than size (the untouched remainder weighs more in duration).
    assert aggregate["size_reduction_pct"] < -40.0
    assert aggregate["duration_reduction_pct"] < -30.0
    assert (aggregate["duration_reduction_pct"]
            > aggregate["size_reduction_pct"])
