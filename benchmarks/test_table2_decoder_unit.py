"""Experiment T2 — Table II: compaction of the Decoder Unit PTPs.

Runs the five-stage pipeline on IMM, MEM, and CNTRL in the paper's order
(fault dropping carried from one PTP to the next) and prints compacted
size / duration / FC-delta rows next to the published Table II.

Shape checks (paper values in parentheses):
* IMM and MEM compact heavily (-97.30% / -98.64% size);
* MEM — compacted after IMM under dropping — compacts at least as hard as
  IMM in relative terms;
* CNTRL compacts moderately and its *duration* compacts less than its
  *size* (-73.51% size vs -36.95% duration: the parametric loop survives);
* FC deltas are small for IMM and CNTRL (+0.06 / -0.00).
"""

from conftest import run_once
from repro.analysis import (
    combined_outcome_row,
    compaction_rows,
    paper_data,
    render_compaction_table,
)


def test_table2_decoder_unit(benchmark, campaigns):
    outcomes, pipeline = run_once(benchmark, campaigns.du)
    fc_orig, fc_comp = campaigns.du_combined_fc()

    rows = dict(outcomes)
    rows["IMM+MEM+CNTRL"] = combined_outcome_row(
        list(outcomes.values()), fc_orig, fc_comp)
    print()
    print(render_compaction_table(
        compaction_rows(rows, paper_data.TABLE2),
        "TABLE II. COMPACTION RESULTS, DECODER UNIT PTPS "
        "(measured | paper)"))

    imm, mem, cntrl = outcomes["IMM"], outcomes["MEM"], outcomes["CNTRL"]
    # Pseudorandom DU PTPs compact massively.
    assert imm.size_reduction_percent < -55.0
    assert mem.size_reduction_percent < -55.0
    # MEM rides IMM's fault dropping: compacts at least as hard as IMM.
    assert mem.size_reduction_percent <= imm.size_reduction_percent + 1.0
    # CNTRL: duration compacts less than size (the inadmissible loop).
    assert cntrl.size_reduction_percent < -15.0
    assert cntrl.duration_reduction_percent > (
        cntrl.size_reduction_percent - 1.0)
    # FC deltas: IMM exactly preserved (first PTP, context-free patterns),
    # others small.
    assert abs(imm.fc_diff) < 0.5
    assert abs(cntrl.fc_diff) < 5.0
    # One fault simulation drove each compaction.
    for outcome in outcomes.values():
        assert outcome.fault_simulations == 3  # 1 compaction + 2 validation
