"""Benchmark: cone-walk vs. event-driven vs. batch stage-3 fault sim.

Times the decoder-unit stuck-at fault simulation (the wall-clock-dominant
stage of every compaction campaign) over the IMM pattern set, for all
three propagation engines (``cone``, ``event``, ``batch``), inline and
through the persistent worker pool at 2 jobs, asserts all configurations
stay bit-identical, and writes ``BENCH_fault_sim.json`` at the repo root
so the performance trajectory (patterns/s, faults/s, per-engine speedups
over the sequential cone walk, pool speedup, gates evaluated vs.
skipped) is tracked across PRs.

The schedulers are long-lived across the timed repeats, so the pooled
rows measure steady-state chunk-streaming throughput: workers are
spawned and primed on the first (discarded) repeat and only stream
lightweight fault-chunk jobs afterwards — the same warm path a campaign
sees from its second PTP on.

Speedup across job counts is hardware-dependent: on a single-core runner
the pooled path pays IPC overhead for no gain (speedup <= 1), which the
JSON records honestly alongside ``cpu_count`` (production job resolution
short-circuits to inline on one CPU, so no real campaign pays it).  The
event-vs-cone speedup is algorithmic (the frontier dies long before the
static cone ends) and holds at any core count.

Wall-clock *thresholds* are opt-in via ``REPRO_BENCH_STRICT=1``: smoke
and CI runs record timings without gating on them (shared runners jitter
far more than the margins involved), while bit-identity and gate-count
invariants are asserted unconditionally.
"""

import json
import os
import time

from repro.core.tracing import run_logic_tracing
from repro.exec import (
    ArtifactCache,
    IncrementalFaultSim,
    RunMetrics,
    ShardedFaultScheduler,
)
from repro.faults import FaultList, FaultSimulator
from repro.isa.instruction import Program
from repro.netlist.modules import build_decoder_unit
from repro.stl import generate_imm

_ENGINES = ("cone", "event", "batch")
_JOB_COUNTS = (1, 2)
_OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "BENCH_fault_sim.json")


def _time_run(fn, repeats=3):
    """Best-of-N wall time (minimizes scheduler noise on shared runners,
    and lets persistent pools amortize their one-time spawn/prime cost
    out of the measurement)."""
    best = None
    result = None
    for __ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_bench_cone_vs_event_fault_sim():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    strict = bool(os.environ.get("REPRO_BENCH_STRICT"))
    module = build_decoder_unit()
    ptp = generate_imm(seed=0, num_sbs=12 if smoke else 60)
    tracing = run_logic_tracing(ptp, module)
    patterns = tracing.pattern_report.to_pattern_set()
    fault_list = FaultList(module.netlist)

    # One persistent scheduler per job count, reused across both engines
    # (the pool primes one worker context per (netlist, engine) pair).
    schedulers = {
        jobs: ShardedFaultScheduler(jobs=jobs, metrics=RunMetrics())
        for jobs in _JOB_COUNTS
    }
    baseline = None
    rows = []
    try:
        for engine in _ENGINES:
            simulator = FaultSimulator(module.netlist, engine=engine)
            for jobs in _JOB_COUNTS:
                scheduler = schedulers[jobs]
                seconds, result = _time_run(
                    lambda: scheduler.run(simulator, patterns, fault_list))
                if baseline is None:
                    baseline = result
                else:
                    assert (result.detection_words
                            == baseline.detection_words)
                    assert (result.first_detection
                            == baseline.first_detection)
                metrics = scheduler.metrics
                last = metrics.fault_sim_runs[-1]
                rows.append({
                    "engine": engine,
                    "jobs": jobs,
                    "seconds": seconds,
                    "patterns_per_second": patterns.count / seconds,
                    "faults_per_second": len(fault_list) / seconds,
                    "gates_evaluated": last.get("gates_evaluated"),
                    "gates_skipped": last.get("gates_skipped"),
                    "batches": last.get("batches"),
                    "chunks": last.get("chunks"),
                    "shard_utilization": last.get("shard_utilization"),
                    "inline_fallback": bool(
                        metrics.counters.get("scheduler_inline_fallback")),
                })
        pool_gauges = dict(schedulers[2].metrics.pool)
    finally:
        for scheduler in schedulers.values():
            scheduler.close()

    by_config = {(row["engine"], row["jobs"]): row for row in rows}
    cone_sequential = by_config[("cone", 1)]["seconds"]
    for row in rows:
        row["speedup_vs_cone_1job"] = cone_sequential / row["seconds"]
    event_speedup = by_config[("event", 1)]["speedup_vs_cone_1job"]
    batch_speedup = by_config[("batch", 1)]["speedup_vs_cone_1job"]
    pool_event_speedup = (by_config[("event", 1)]["seconds"]
                          / by_config[("event", 2)]["seconds"])
    gates_skipped = by_config[("event", 1)]["gates_skipped"]

    # Static-prune payoff: the safe triage removes provably untestable
    # faults before simulation, so the batch engine runs a smaller
    # worklist for (by soundness) the identical detected set.  Both runs
    # are timed fresh through the same inline path so the ratio is
    # apples-to-apples.
    pruned_list = FaultList(module.netlist, prune="safe")
    prune_ratio = len(pruned_list.pruned) / len(fault_list)
    batch_sim = FaultSimulator(module.netlist, engine="batch")
    full_seconds, full_result = _time_run(
        lambda: batch_sim.run(patterns, fault_list))
    pruned_seconds, pruned_result = _time_run(
        lambda: batch_sim.run(patterns, pruned_list))
    pruned_speedup = full_seconds / pruned_seconds
    # Soundness invariant: pruning only ever removes never-detected
    # faults, so the detected sets agree exactly.
    assert (set(pruned_result.detected_faults)
            == set(full_result.detected_faults))

    document = {
        "workload": {
            "module": module.name,
            "ptp": ptp.name,
            "patterns": patterns.count,
            "faults": len(fault_list),
            "smoke": smoke,
        },
        "static_prune": {
            "total_faults": len(fault_list),
            "pruned_faults": len(pruned_list.pruned),
            "static_prune_ratio": prune_ratio,
            "pruned_list_speedup_batch": pruned_speedup,
        },
        "cpu_count": os.cpu_count(),
        "strict": strict,
        "event_speedup_sequential": event_speedup,
        "batch_speedup_vs_cone_1job": batch_speedup,
        "pool_event_speedup_2jobs": pool_event_speedup,
        "pool": pool_gauges,
        "runs": rows,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)

    print()
    print("fault-sim bench ({} faults x {} patterns, {} CPU(s)):".format(
        len(fault_list), patterns.count, os.cpu_count()))
    for row in rows:
        print("  engine={:<5} jobs={}: {:.3f}s, {:.0f} patterns/s, "
              "speedup x{:.2f}, gates eval/skip {}/{}".format(
                  row["engine"], row["jobs"], row["seconds"],
                  row["patterns_per_second"], row["speedup_vs_cone_1job"],
                  row["gates_evaluated"], row["gates_skipped"]))
    print("  pool: {} worker(s) spawned, {} chunk(s) dispatched, "
          "event 2-job speedup x{:.2f}".format(
              pool_gauges.get("workers_spawned", 0),
              pool_gauges.get("chunks_dispatched", 0),
              pool_event_speedup))
    print("  static prune: {}/{} fault(s) proven untestable ({:.1%}), "
          "pruned-list batch run x{:.2f}".format(
              len(pruned_list.pruned), len(fault_list), prune_ratio,
              pruned_speedup))

    # Invariants (asserted unconditionally — they are not timing-based).
    # The event engine's gain is algorithmic, not a scheduling artifact:
    # it must actually have skipped dead-cone work.
    assert gates_skipped and gates_skipped > 0
    assert by_config[("cone", 1)]["gates_skipped"] == 0
    # The batch engine really batched (the counter only moves on compiled
    # batch evaluations).
    assert by_config[("batch", 1)]["batches"] > 0
    # Pooled rows really went through the pool (workers + chunks), and
    # never silently fell back inline.
    assert pool_gauges.get("workers_spawned", 0) >= 2
    assert pool_gauges.get("chunks_dispatched", 0) >= 2
    assert not any(row["inline_fallback"] for row in rows)
    assert all(row["patterns_per_second"] > 0 for row in rows)
    # The decoder unit has a proven-untestable bucket, so the static
    # triage must actually have shrunk the worklist.
    assert 0 < prune_ratio < 1
    assert os.path.getsize(_OUT_PATH) > 0

    # Wall-clock thresholds: opt-in only (REPRO_BENCH_STRICT=1) so shared
    # runners record trajectories without flaking on scheduler jitter.
    if strict:
        assert event_speedup > 1.2, (
            "event engine regressed to x{:.2f} vs cone".format(
                event_speedup))
        assert batch_speedup >= 5.0, (
            "batch engine only x{:.2f} vs sequential cone (needs >= 5)"
            .format(batch_speedup))
        if (os.cpu_count() or 1) >= 2:
            assert pool_event_speedup >= 1.2, (
                "2-job pool only x{:.2f} vs sequential event on a "
                "{}-CPU machine".format(pool_event_speedup,
                                        os.cpu_count()))


def test_bench_incremental_warm_rerun(tmp_path):
    """Benchmark: warm incremental re-run after a single-SB edit.

    Populates a fault-state record from the unedited IMM workload, deletes
    one store block, and times the warm incremental run against a
    from-scratch simulation of the same edited pattern set, once per
    sequential engine (cone and event).  Two invariants are structural,
    not timing-based, and assert unconditionally per engine: the warm run
    re-simulates fewer than half the faults (the ISSUE acceptance bar),
    and its merged result is bit-identical to the from-scratch run.  The
    speedups land in ``BENCH_fault_sim.json`` next to the engine rows
    (under ``incremental``); the headline ``warm_rerun_speedup`` is the
    cone-engine number — the same sequential reference the other bench
    rows normalize against.  (The event engine with fault dropping is so
    fast on the decoder unit that restore overhead can exceed the sim it
    avoids; the per-engine rows record that honestly instead of hiding
    it.)
    """
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    strict = bool(os.environ.get("REPRO_BENCH_STRICT"))
    module = build_decoder_unit()
    ptp = generate_imm(seed=0, num_sbs=12 if smoke else 60)
    base_patterns = run_logic_tracing(
        ptp, module).pattern_report.to_pattern_set()
    lo, hi = ptp.sb_hints[len(ptp.sb_hints) // 2]
    ins = ptp.program.instructions
    edited = ptp.with_program(Program(ins[:lo] + ins[hi:]))
    edited_patterns = run_logic_tracing(
        edited, module).pattern_report.to_pattern_set()
    fault_list = FaultList(module.netlist)

    cache = ArtifactCache(str(tmp_path / "cache"))
    inc = IncrementalFaultSim(cache, mode="on")
    engines = {}
    for engine in ("cone", "event"):
        simulator = FaultSimulator(module.netlist, engine=engine)
        scratch_seconds, scratch = _time_run(
            lambda: simulator.run(edited_patterns, fault_list))
        key = cache.fault_state_key(ptp.name, module, engine)
        cold_started = time.perf_counter()
        inc.run(None, simulator, base_patterns, fault_list, key)
        cold_seconds = time.perf_counter() - cold_started
        warm_seconds, (warm, info) = _time_run(
            lambda: inc.run(None, simulator, edited_patterns, fault_list,
                            key))

        assert warm.detection_words == scratch.detection_words
        assert warm.first_detection == scratch.first_detection
        resim_fraction = info["faults_resimulated"] / len(fault_list)
        # The ISSUE acceptance bar: a single-SB edit invalidates a strict
        # minority of the decoder-unit fault population.
        assert resim_fraction < 0.5, (
            "warm re-run re-simulated {:.0%} of faults after one SB edit"
            .format(resim_fraction))
        engines[engine] = {
            "faults_restored": info["faults_restored"],
            "faults_resimulated": info["faults_resimulated"],
            "resim_fraction": resim_fraction,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "scratch_seconds": scratch_seconds,
            "warm_rerun_speedup": scratch_seconds / warm_seconds,
        }

    section = {
        "faults": len(fault_list),
        "patterns_cold": base_patterns.count,
        "patterns_warm": edited_patterns.count,
        "engines": engines,
        "warm_rerun_speedup": engines["cone"]["warm_rerun_speedup"],
    }
    try:
        with open(_OUT_PATH) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        document = {}
    document["incremental"] = section
    with open(_OUT_PATH, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)

    print()
    print("incremental warm re-run ({} faults, single-SB edit):".format(
        len(fault_list)))
    for engine, row in engines.items():
        print("  {:<6} scratch {:.3f}s, warm {:.3f}s, speedup x{:.2f}, "
              "{}/{} fault(s) re-simulated ({:.1%})".format(
                  engine, row["scratch_seconds"], row["warm_seconds"],
                  row["warm_rerun_speedup"], row["faults_resimulated"],
                  len(fault_list), row["resim_fraction"]))

    if strict:
        assert engines["cone"]["warm_rerun_speedup"] > 1.2, (
            "warm incremental re-run only x{:.2f} vs from-scratch cone"
            .format(engines["cone"]["warm_rerun_speedup"]))
