"""Benchmark: cone-walk vs. event-driven stage-3 fault simulation.

Times the decoder-unit stuck-at fault simulation (the wall-clock-dominant
stage of every compaction campaign) over the IMM pattern set, for both
propagation engines (``cone`` and ``event``), sequentially and sharded at
2 jobs, asserts all four configurations stay bit-identical, and writes
``BENCH_fault_sim.json`` at the repo root so the performance trajectory
(patterns/s, faults/s, event-vs-cone speedup, gates evaluated vs. skipped)
is tracked across PRs.

Speedup across job counts is hardware-dependent: on a single-core runner
the sharded path pays pool overhead for no gain (speedup <= 1), which the
JSON records honestly alongside ``cpu_count``.  The event-vs-cone speedup
is algorithmic (the frontier dies long before the static cone ends) and
holds at any core count.
"""

import json
import os
import time

from repro.core.tracing import run_logic_tracing
from repro.exec import RunMetrics, ShardedFaultScheduler
from repro.faults import FaultList, FaultSimulator
from repro.netlist.modules import build_decoder_unit
from repro.stl import generate_imm

_ENGINES = ("cone", "event")
_JOB_COUNTS = (1, 2)
_OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "BENCH_fault_sim.json")


def _time_run(fn, repeats=3):
    """Best-of-N wall time (minimizes scheduler noise on shared runners)."""
    best = None
    result = None
    for __ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_bench_cone_vs_event_fault_sim():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    module = build_decoder_unit()
    ptp = generate_imm(seed=0, num_sbs=12 if smoke else 60)
    tracing = run_logic_tracing(ptp, module)
    patterns = tracing.pattern_report.to_pattern_set()
    fault_list = FaultList(module.netlist)

    baseline = None
    rows = []
    for engine in _ENGINES:
        simulator = FaultSimulator(module.netlist, engine=engine)
        for jobs in _JOB_COUNTS:
            metrics = RunMetrics()
            scheduler = ShardedFaultScheduler(jobs=jobs, metrics=metrics)
            seconds, result = _time_run(
                lambda: scheduler.run(simulator, patterns, fault_list))
            if baseline is None:
                baseline = result
            else:
                assert result.detection_words == baseline.detection_words
                assert result.first_detection == baseline.first_detection
            last = metrics.fault_sim_runs[-1]
            rows.append({
                "engine": engine,
                "jobs": jobs,
                "seconds": seconds,
                "patterns_per_second": patterns.count / seconds,
                "faults_per_second": len(fault_list) / seconds,
                "gates_evaluated": last.get("gates_evaluated"),
                "gates_skipped": last.get("gates_skipped"),
                "inline_fallback": bool(
                    metrics.counters.get("scheduler_inline_fallback")),
            })

    by_config = {(row["engine"], row["jobs"]): row for row in rows}
    cone_sequential = by_config[("cone", 1)]["seconds"]
    for row in rows:
        row["speedup_vs_cone_1job"] = cone_sequential / row["seconds"]
    event_speedup = by_config[("event", 1)]["speedup_vs_cone_1job"]
    gates_skipped = by_config[("event", 1)]["gates_skipped"]

    document = {
        "workload": {
            "module": module.name,
            "ptp": ptp.name,
            "patterns": patterns.count,
            "faults": len(fault_list),
            "smoke": smoke,
        },
        "cpu_count": os.cpu_count(),
        "event_speedup_sequential": event_speedup,
        "runs": rows,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)

    print()
    print("fault-sim bench ({} faults x {} patterns, {} CPU(s)):".format(
        len(fault_list), patterns.count, os.cpu_count()))
    for row in rows:
        print("  engine={:<5} jobs={}: {:.3f}s, {:.0f} patterns/s, "
              "speedup x{:.2f}, gates eval/skip {}/{}".format(
                  row["engine"], row["jobs"], row["seconds"],
                  row["patterns_per_second"], row["speedup_vs_cone_1job"],
                  row["gates_evaluated"], row["gates_skipped"]))

    # The event engine's gain is algorithmic, not a scheduling artifact:
    # it must actually have skipped dead-cone work and beaten the walk.
    assert gates_skipped and gates_skipped > 0
    assert by_config[("cone", 1)]["gates_skipped"] == 0
    assert event_speedup > 1.2
    assert all(row["patterns_per_second"] > 0 for row in rows)
    assert os.path.getsize(_OUT_PATH) > 0
