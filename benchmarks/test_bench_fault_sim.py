"""Benchmark: sequential vs. sharded stage-3 fault simulation.

Times the decoder-unit stuck-at fault simulation (the wall-clock-dominant
stage of every compaction campaign) over the IMM pattern set, sequentially
and sharded at increasing job counts, asserts the results stay
bit-identical, and writes ``BENCH_fault_sim.json`` at the repo root so the
performance trajectory (patterns/s, faults/s, speedup vs. 1 job) is
tracked across PRs.

Speedup is hardware-dependent: on a single-core runner the sharded path
pays pool overhead for no gain (speedup <= 1), which the JSON records
honestly alongside ``cpu_count``.
"""

import json
import os
import time

from repro.core.tracing import run_logic_tracing
from repro.exec import ShardedFaultScheduler
from repro.faults import FaultList, FaultSimulator
from repro.netlist.modules import build_decoder_unit
from repro.stl import generate_imm

_JOB_COUNTS = (1, 2, 4)
_OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "BENCH_fault_sim.json")


def _time_run(fn, repeats=3):
    """Best-of-N wall time (minimizes scheduler noise on shared runners)."""
    best = None
    result = None
    for __ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_bench_sequential_vs_sharded_fault_sim():
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    module = build_decoder_unit()
    ptp = generate_imm(seed=0, num_sbs=12 if smoke else 60)
    tracing = run_logic_tracing(ptp, module)
    patterns = tracing.pattern_report.to_pattern_set()
    simulator = FaultSimulator(module.netlist)
    fault_list = FaultList(module.netlist)

    baseline_seconds, baseline = _time_run(
        lambda: simulator.run(patterns, fault_list))

    rows = []
    for jobs in _JOB_COUNTS:
        scheduler = ShardedFaultScheduler(jobs=jobs)
        seconds, result = _time_run(
            lambda: scheduler.run(simulator, patterns, fault_list))
        assert result.detection_words == baseline.detection_words
        assert result.first_detection == baseline.first_detection
        rows.append({
            "jobs": jobs,
            "seconds": seconds,
            "patterns_per_second": patterns.count / seconds,
            "faults_per_second": len(fault_list) / seconds,
        })
    one_job = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_1job"] = one_job / row["seconds"]

    document = {
        "workload": {
            "module": module.name,
            "ptp": ptp.name,
            "patterns": patterns.count,
            "faults": len(fault_list),
            "smoke": smoke,
        },
        "cpu_count": os.cpu_count(),
        "sequential_seconds": baseline_seconds,
        "runs": rows,
    }
    with open(_OUT_PATH, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)

    print()
    print("fault-sim bench ({} faults x {} patterns, {} CPU(s)):".format(
        len(fault_list), patterns.count, os.cpu_count()))
    for row in rows:
        print("  jobs={}: {:.3f}s, {:.0f} patterns/s, "
              "speedup x{:.2f}".format(row["jobs"], row["seconds"],
                                       row["patterns_per_second"],
                                       row["speedup_vs_1job"]))

    # Sanity floor, not a perf gate: every configuration computed the
    # same result and recorded a positive rate.
    assert all(row["patterns_per_second"] > 0 for row in rows)
    assert os.path.getsize(_OUT_PATH) > 0
