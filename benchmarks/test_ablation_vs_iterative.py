"""Experiment A2 — cost comparison against prior-work iterative compaction.

The paper's headline advantage (Sections I, IV, V): the proposed method
needs ONE logic simulation and ONE fault simulation per PTP, while prior
CPU-oriented techniques [13]-[16] "require as many fault simulations as the
number of instructions in a TP".  This benchmark compacts the same IMM-style
PTP with both methods and reports fault-simulation counts and wall time.
"""

import time

from conftest import run_once
from repro.baselines import compact_iteratively
from repro.core import CompactionPipeline
from repro.stl import generate_imm


def test_single_fault_sim_vs_iterative(benchmark, campaigns):
    module = campaigns.experiment.modules["decoder_unit"]
    gpu = campaigns.experiment.gpu
    # A dedicated mid-size PTP keeps the baseline tractable (it is O(SBs)
    # fault simulations) while leaving real redundancy to remove.
    ptp = generate_imm(seed=7, num_sbs=40)

    def run_both():
        t0 = time.perf_counter()
        ours = CompactionPipeline(module, gpu=gpu).compact(ptp,
                                                           evaluate=False)
        ours_seconds = time.perf_counter() - t0
        theirs = compact_iteratively(ptp, module, gpu=gpu)
        return ours, ours_seconds, theirs

    ours, ours_seconds, theirs = run_once(benchmark, run_both)

    print()
    print("ABLATION A2: proposed method vs iterative baseline "
          "(IMM-style PTP, {} instructions)".format(ptp.size))
    print("  proposed : {:4d} fault sim(s), {:7.2f}s, size {:+.2f}%".format(
        ours.fault_simulations, ours_seconds,
        ours.size_reduction_percent))
    print("  iterative: {:4d} fault sim(s), {:7.2f}s, size {:+.2f}%".format(
        theirs.fault_simulations, theirs.wall_seconds,
        theirs.size_reduction_percent))
    ratio = theirs.wall_seconds / max(ours_seconds, 1e-9)
    print("  wall-time ratio: {:.1f}x".format(ratio))

    assert ours.fault_simulations == 1
    assert theirs.fault_simulations >= 40
    assert theirs.wall_seconds > ours_seconds
    # Quality stays comparable: both remove a similar amount of code.
    assert ours.compacted_size <= ptp.size
    assert abs(ours.compacted_size - theirs.compacted_size) <= 0.5 * ptp.size
