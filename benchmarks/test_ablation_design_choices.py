"""Experiment A3 — ablations of the method's design choices.

(i)  Labeling against the fault simulator's *dropping* detections vs all
     detections: without dropping, every repeatedly-detecting instruction
     looks essential and compaction collapses — dropping is what powers
     the method.
(ii) SFU_IMM stage-3 pattern order, forward vs reversed: the paper applied
     the SFU patterns "in reverse order during the fault simulation of
     stage 3"; the order changes which SBs are labeled essential.
(iii) Removal granularity, SB vs single instruction: removing individual
     unessential instructions (instead of whole load/execute/propagate
     SBs) strips operand loads from surviving test operations, so the
     survivors no longer apply the patterns the labeling certified — the
     compacted program's pattern stream is corrupted (its FC becomes
     accidental), which is why the method removes whole SBs.
"""

from conftest import run_once
from repro.core import (
    CompactionPipeline,
    evaluate_fc,
    label_instructions,
    partition_ptp,
    reduce_ptp,
    run_logic_tracing,
)
from repro.core.labeling import ESSENTIAL
from repro.core.reduction import segment_small_blocks
from repro.faults.fault_sim import FaultSimulator
from repro.isa.instruction import Program
from repro.stl import generate_imm, generate_sfu_imm


def test_labeling_requires_fault_dropping(benchmark, campaigns):
    module = campaigns.experiment.modules["decoder_unit"]
    gpu = campaigns.experiment.gpu
    ptp = generate_imm(seed=13, num_sbs=40)

    def run():
        tracing = run_logic_tracing(ptp, module, gpu=gpu)
        patterns = tracing.pattern_report.to_pattern_set()
        result = FaultSimulator(module.netlist).run(patterns)
        partition = partition_ptp(ptp)
        with_drop = reduce_ptp(label_instructions(
            ptp, tracing.trace, tracing.pattern_report, result,
            dropping=True), partition)
        without_drop = reduce_ptp(label_instructions(
            ptp, tracing.trace, tracing.pattern_report, result,
            dropping=False), partition)
        return with_drop, without_drop

    with_drop, without_drop = run_once(benchmark, run)
    print()
    print("ABLATION A3(i): labeling with vs without fault dropping")
    print("  with dropping   : {} -> {} instructions".format(
        ptp.size, with_drop.compacted.size))
    print("  without dropping: {} -> {} instructions".format(
        ptp.size, without_drop.compacted.size))
    # Without dropping nearly everything is "essential": compaction dies.
    assert with_drop.compacted.size < without_drop.compacted.size
    assert without_drop.compacted.size > 0.9 * ptp.size


def test_sfu_pattern_order_matters(benchmark, campaigns):
    module = campaigns.experiment.modules["sfu"]
    gpu = campaigns.experiment.gpu
    ptp, __ = generate_sfu_imm(module, seed=13, atpg_random_patterns=96,
                               atpg_max_backtracks=5)

    def run():
        forward = CompactionPipeline(module, gpu=gpu).compact(
            ptp, reverse_patterns=False, evaluate=False)
        backward = CompactionPipeline(module, gpu=gpu).compact(
            ptp, reverse_patterns=True, evaluate=False)
        return forward, backward

    forward, backward = run_once(benchmark, run)
    print()
    print("ABLATION A3(ii): SFU_IMM stage-3 pattern order")
    print("  forward : {} -> {} instructions".format(
        ptp.size, forward.compacted.size))
    print("  reversed: {} -> {} instructions (paper's configuration)"
          .format(ptp.size, backward.compacted.size))
    # Both compact; the surviving sets differ (first-detection shifts).
    fwd_kept = {pc for pc, new in enumerate(forward.reduction.pc_map)
                if new is not None}
    bwd_kept = {pc for pc, new in enumerate(backward.reduction.pc_map)
                if new is not None}
    assert fwd_kept != bwd_kept
    # Detected fault population is order-independent.
    assert (forward.fault_result.num_detected
            == backward.fault_result.num_detected)


def test_sb_granularity_preserves_certified_patterns(benchmark, campaigns):
    # SFU_IMM is the PTP whose SBs are fully data-independent (Section IV),
    # so SB-granular removal must preserve every surviving pattern exactly;
    # pseudorandom SP PTPs deliberately read stale pool registers across
    # SBs, which is the SpT re-chaining effect, not a granularity issue.
    from collections import Counter

    module = campaigns.experiment.modules["sfu"]
    gpu = campaigns.experiment.gpu

    ptp, __atpg = generate_sfu_imm(module, seed=13,
                                   atpg_random_patterns=96,
                                   atpg_max_backtracks=5)

    def run():
        tracing = run_logic_tracing(ptp, module, gpu=gpu)
        patterns = tracing.pattern_report.to_pattern_set()
        result = FaultSimulator(module.netlist).run(patterns)
        partition = partition_ptp(ptp)
        labeled = label_instructions(ptp, tracing.trace,
                                     tracing.pattern_report, result)
        sb_level = reduce_ptp(labeled, partition)

        # Instruction-granular removal: drop every unessential instruction
        # outside the pinned SBs individually.
        pinned = {pc for sb in segment_small_blocks(ptp, partition)
                  if not sb.removable for pc in sb.pcs()}
        instructions = list(ptp.program)
        kept = [instr for pc, instr in enumerate(instructions)
                if pc in pinned or labeled.labels[pc] == ESSENTIAL]
        instr_level = ptp.with_program(Program(kept, {}),
                                       name=ptp.name + "_instr")

        def pattern_multiset(candidate):
            run_result = run_logic_tracing(candidate, module, gpu=gpu)
            return Counter(record.values
                           for record in run_result.pattern_report.records)

        original = pattern_multiset(ptp)
        sb_patterns = pattern_multiset(sb_level.compacted)
        instr_patterns = pattern_multiset(instr_level)
        sb_fc = evaluate_fc(sb_level.compacted, module, gpu=gpu).fc_percent
        instr_fc = evaluate_fc(instr_level, module, gpu=gpu).fc_percent
        return (ptp, sb_level, instr_level, original, sb_patterns,
                instr_patterns, sb_fc, instr_fc)

    (ptp, sb_level, instr_level, original, sb_patterns, instr_patterns,
     sb_fc, instr_fc) = run_once(benchmark, run)
    print()
    print("ABLATION A3(iii): SB-granular vs instruction-granular removal")
    print("  SB granularity    : {} instructions, FC {:.2f}%, patterns "
          "preserved".format(sb_level.compacted.size, sb_fc))
    novel = +(instr_patterns - original)
    print("  instr granularity : {} instructions, FC {:.2f}%, {} novel "
          "(uncertified) patterns".format(instr_level.size, instr_fc,
                                          sum(novel.values())))
    # SB-granular removal keeps each surviving instruction's original
    # patterns: the compacted stream is a sub-multiset of the original.
    assert not +(sb_patterns - original)
    # Instruction-granular removal strips operand loads: the survivors
    # apply patterns the fault simulation never certified.
    assert +(instr_patterns - original)
    assert instr_level.size <= sb_level.compacted.size
