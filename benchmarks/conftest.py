"""Shared benchmark state: one experiment campaign per session.

The campaigns are expensive (they are the paper's Tables I-III), so they
run once and the per-table benchmarks measure/report from the shared
:class:`Campaigns` cache.  Scale is the package default
(:data:`repro.analysis.DEFAULT`); set ``REPRO_BENCH_SMOKE=1`` to run the
whole harness at test scale.
"""

import os

import pytest

from repro.analysis import DEFAULT, SMOKE, Experiment


class Campaigns:
    """Lazily-computed, cached campaign results shared by the benches."""

    def __init__(self, scale):
        self.experiment = Experiment(scale)
        self._cache = {}

    def _get(self, key, compute):
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    def table1(self):
        return self._get("table1", self.experiment.table1_features)

    def du(self):
        return self._get("du", self.experiment.run_du_campaign)

    def sp(self):
        return self._get("sp", self.experiment.run_sp_campaign)

    def sfu(self):
        return self._get("sfu", self.experiment.run_sfu_campaign)

    def du_combined_fc(self):
        outcomes, __ = self.du()
        return self._get("du_fc", lambda: self.experiment.combined_fc_pair(
            outcomes, ("IMM", "MEM", "CNTRL")))

    def sp_combined_fc(self):
        outcomes, __ = self.sp()
        return self._get("sp_fc", lambda: self.experiment.combined_fc_pair(
            outcomes, ("TPGEN", "RAND")))


@pytest.fixture(scope="session")
def campaigns():
    scale = SMOKE if os.environ.get("REPRO_BENCH_SMOKE") else DEFAULT
    return Campaigns(scale)


def run_once(benchmark, fn):
    """Measure *fn* exactly once (campaigns are minutes-long)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
