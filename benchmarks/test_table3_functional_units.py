"""Experiment T3 — Table III: compaction of the functional-unit PTPs.

Runs the pipeline on TPGEN then RAND (SP cores, shared fault dropping) and
on SFU_IMM (SFU, stage-3 patterns applied in reverse order, as the paper
does), printing rows next to the published Table III.

Shape checks (paper values in parentheses):
* RAND — pseudorandom, compacted after TPGEN — compacts much harder than
  TPGEN (-97.79% vs -75.81% size) but its standalone FC collapses
  (-17.07): its instructions mostly re-detect TPGEN's faults;
* TPGEN's own FC delta stays small (-1.31);
* the TPGEN+RAND *combined* FC delta is much smaller than RAND's (-3.13);
* SFU_IMM compacts least (ATPG patterns are information-dense; -41.20%)
  and its FC delta is exactly 0.0 (no inter-SB data dependence).
"""

from conftest import run_once
from repro.analysis import (
    combined_outcome_row,
    compaction_rows,
    paper_data,
    render_compaction_table,
)


def test_table3_functional_units(benchmark, campaigns):
    def run_both():
        sp_outcomes, __ = campaigns.sp()
        sfu_outcomes, __sfu = campaigns.sfu()
        return sp_outcomes, sfu_outcomes

    sp_outcomes, sfu_outcomes = run_once(benchmark, run_both)
    fc_orig, fc_comp = campaigns.sp_combined_fc()

    rows = dict(sp_outcomes)
    rows["TPGEN+RAND"] = combined_outcome_row(
        list(sp_outcomes.values()), fc_orig, fc_comp)
    rows["SFU_IMM"] = sfu_outcomes["SFU_IMM"]
    print()
    print(render_compaction_table(
        compaction_rows(rows, paper_data.TABLE3),
        "TABLE III. COMPACTION RESULTS, FUNCTIONAL-UNIT PTPS "
        "(measured | paper)"))

    tpgen = sp_outcomes["TPGEN"]
    rand = sp_outcomes["RAND"]
    sfu = sfu_outcomes["SFU_IMM"]

    # RAND (post-TPGEN dropping) compacts harder than TPGEN.
    assert rand.size_reduction_percent < tpgen.size_reduction_percent
    # ... and loses much more standalone FC than TPGEN does.
    assert rand.fc_diff < tpgen.fc_diff
    assert rand.fc_diff < -1.0            # paper: -17.07
    assert tpgen.fc_diff > -8.0           # paper: -1.31
    # The combined FC delta recovers most of RAND's standalone loss.
    combined_diff = fc_comp - fc_orig
    assert combined_diff > rand.fc_diff
    # SFU_IMM: smallest compaction of the table, FC exactly preserved.
    assert sfu.fc_diff == 0.0             # paper: 0.0
    assert sfu.size_reduction_percent > rand.size_reduction_percent
    for outcome in (tpgen, rand, sfu):
        assert outcome.fault_simulations == 3
