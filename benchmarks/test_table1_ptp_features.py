"""Experiment T1 — Table I: main features of the evaluated PTPs.

Regenerates, for the scaled STL, the exact rows of the paper's Table I
(size, ARC %, duration in ccs, FC %) including the IMM+MEM+CNTRL and
TPGEN+RAND combined rows, and prints them next to the published values.

Shape checks (paper values in parentheses):
* every pseudorandom PTP is 100% ARC, CNTRL is below 100% (90.0);
* combined FCs exceed each constituent's FC;
* SP-core FC lands in the paper's 80-90 band.
"""

from conftest import run_once
from repro.analysis import render_table1, table1_rows


def test_table1_features(benchmark, campaigns):
    features = run_once(benchmark, campaigns.table1)
    print()
    print(render_table1(table1_rows(features)))

    assert features["IMM"]["arc"] == 100.0
    assert features["MEM"]["arc"] == 100.0
    assert features["RAND"]["arc"] == 100.0
    assert features["TPGEN"]["arc"] == 100.0
    assert features["SFU_IMM"]["arc"] == 100.0
    assert 75.0 < features["CNTRL"]["arc"] < 100.0  # paper: 90.0

    assert features["IMM+MEM+CNTRL"]["fc"] >= max(
        features[name]["fc"] for name in ("IMM", "MEM", "CNTRL"))
    assert features["TPGEN+RAND"]["fc"] >= max(
        features[name]["fc"] for name in ("TPGEN", "RAND"))

    for name in ("IMM", "MEM", "CNTRL", "TPGEN", "RAND", "SFU_IMM"):
        assert 30.0 < features[name]["fc"] < 100.0
        assert features[name]["duration"] > features[name]["size"]
