"""Signature-per-thread model: MISR fold properties (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.gpu import Gpu, KernelConfig
from repro.isa import Instruction, Program
from repro.isa.opcodes import Op, SpecialReg
from repro.stl.signature import (
    SIG_REG,
    difference_fold,
    emit_misr_update,
    misr_fold,
    misr_update,
    rotl,
)

word32 = st.integers(0, 0xFFFFFFFF)


@given(word32, st.integers(0, 64))
@settings(max_examples=60, deadline=None)
def test_rotl_inverse(value, amount):
    rotated = rotl(value, amount)
    assert rotl(rotated, (32 - amount) % 32) == value


@given(word32)
@settings(max_examples=30, deadline=None)
def test_rotl_identity_at_width(value):
    assert rotl(value, 32) == value
    assert rotl(value, 0) == value


@given(st.lists(word32, min_size=0, max_size=20))
@settings(max_examples=50, deadline=None)
def test_fold_matches_step_by_step(values):
    signature = 0
    for value in values:
        signature = misr_update(signature, value)
    assert misr_fold(values) == signature


@given(st.lists(word32, min_size=1, max_size=12),
       st.lists(word32, min_size=1, max_size=12))
@settings(max_examples=50, deadline=None)
def test_fold_linearity(values, diffs):
    """misr_fold(v ^ d) == misr_fold(v) ^ difference-fold(d).

    This XOR linearity is what lets the signature-observability fault
    evaluation work from per-pattern diffs alone.
    """
    length = min(len(values), len(diffs))
    values = values[:length]
    diffs = diffs[:length]
    corrupted = [v ^ d for v, d in zip(values, diffs)]
    expected = misr_fold(values) ^ difference_fold(
        {i: d for i, d in enumerate(diffs)}, length)
    assert misr_fold(corrupted) == expected


@given(st.lists(word32, min_size=1, max_size=10), st.integers(0, 9), word32)
@settings(max_examples=50, deadline=None)
def test_difference_fold_single_position(values, pos, diff):
    pos %= len(values)
    corrupted = list(values)
    corrupted[pos] ^= diff
    assert misr_fold(corrupted) == misr_fold(values) ^ difference_fold(
        {pos: diff}, len(values))


def test_difference_fold_aliasing_case():
    """Two equal diffs 32 updates apart cancel exactly (rotation period)."""
    diff = 0x1234
    fold = difference_fold({0: diff, 32: diff}, 33)
    assert fold == 0


def test_emitted_sequence_computes_misr_update(gpu):
    """The 4-instruction emission really computes rotl(sig,1) ^ result."""
    sig_init = 0x80000001
    result_value = 0xDEADBEEF
    program = Program([
        Instruction(Op.S2R, dst=0, sreg=SpecialReg.TID_X),
        Instruction(Op.MOV32I, dst=SIG_REG, imm=sig_init),
        Instruction(Op.MOV32I, dst=9, imm=result_value),
        *emit_misr_update(9),
        Instruction(Op.GST, src_a=0, src_b=SIG_REG, imm=0),
        Instruction(Op.EXIT),
    ])
    out = gpu.run_kernel(program, KernelConfig())
    assert out.global_memory[0] == misr_update(sig_init, result_value)


@given(st.lists(word32, min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_emitted_chain_matches_fold(values):
    gpu = Gpu()
    instructions = [
        Instruction(Op.S2R, dst=0, sreg=SpecialReg.TID_X),
        Instruction(Op.MOV32I, dst=SIG_REG, imm=0),
    ]
    for value in values:
        instructions.append(Instruction(Op.MOV32I, dst=9, imm=value))
        instructions.extend(emit_misr_update(9))
    instructions.append(Instruction(Op.GST, src_a=0, src_b=SIG_REG, imm=0))
    instructions.append(Instruction(Op.EXIT))
    out = gpu.run_kernel(Program(instructions), KernelConfig())
    assert out.global_memory[0] == misr_fold(values)
