"""ParallelTestProgram / SelfTestLibrary container semantics."""

import pytest

from repro.errors import CompactionError
from repro.gpu.config import KernelConfig
from repro.isa import Instruction, Program
from repro.isa.opcodes import Op
from repro.stl.ptp import ParallelTestProgram, SelfTestLibrary


def _ptp(name="A", size=3):
    instructions = [Instruction(Op.NOP) for __ in range(size - 1)]
    instructions.append(Instruction(Op.EXIT))
    return ParallelTestProgram(name=name, target="decoder_unit",
                               program=Program(instructions),
                               kernel=KernelConfig())


def test_size_property():
    assert _ptp(size=5).size == 5


def test_with_program_replaces_and_clears_hints():
    ptp = _ptp()
    ptp.sb_hints.append((0, 1))
    replaced = ptp.with_program(Program([Instruction(Op.EXIT)]),
                                name="A_compacted")
    assert replaced.size == 1
    assert replaced.name == "A_compacted"
    assert replaced.sb_hints == []
    assert replaced.target == ptp.target
    assert ptp.size == 3  # original untouched


def test_stl_rejects_duplicate_names():
    with pytest.raises(CompactionError):
        SelfTestLibrary([_ptp("A"), _ptp("A")])
    stl = SelfTestLibrary([_ptp("A")])
    with pytest.raises(CompactionError):
        stl.add(_ptp("A"))


def test_stl_lookup_by_name_and_index():
    stl = SelfTestLibrary([_ptp("A"), _ptp("B")])
    assert stl["B"].name == "B"
    assert stl[0].name == "A"
    with pytest.raises(KeyError):
        stl["C"]


def test_stl_replace_unknown_name():
    stl = SelfTestLibrary([_ptp("A")])
    with pytest.raises(KeyError):
        stl.replace("B", _ptp("B"))


def test_targeting_filters_in_order():
    a = _ptp("A")
    b = ParallelTestProgram(name="B", target="sp_core",
                            program=Program([Instruction(Op.EXIT)]),
                            kernel=KernelConfig())
    c = _ptp("C")
    stl = SelfTestLibrary([a, b, c])
    assert [p.name for p in stl.targeting("decoder_unit")] == ["A", "C"]
    assert [p.name for p in stl.targeting("sp_core")] == ["B"]
    assert stl.targeting("sfu") == []


def _hinted(hints, size=4):
    instructions = [Instruction(Op.NOP) for __ in range(size - 1)]
    instructions.append(Instruction(Op.EXIT))
    return ParallelTestProgram(name="H", target="decoder_unit",
                               program=Program(instructions),
                               sb_hints=hints)


def test_valid_sb_hints_accepted():
    ptp = _hinted([(0, 2), (2, 3), (3, 4)])
    assert ptp.sb_hints == [(0, 2), (2, 3), (3, 4)]


def test_sb_hint_must_be_a_pair():
    with pytest.raises(CompactionError, match="not a .start, end. pair"):
        _hinted(["abc"])
    with pytest.raises(CompactionError, match="not a .start, end. pair"):
        _hinted([(0, 1, 2)])


def test_sb_hint_bounds_are_checked():
    with pytest.raises(CompactionError, match="0 <= start < end"):
        _hinted([(2, 2)])  # empty
    with pytest.raises(CompactionError, match="0 <= start < end"):
        _hinted([(-1, 2)])  # negative start
    with pytest.raises(CompactionError, match="0 <= start < end"):
        _hinted([(0, 5)])  # past the end
    with pytest.raises(CompactionError, match="0 <= start < end"):
        _hinted([(1.0, 2)])  # non-integer


def test_sb_hints_must_be_ordered_and_disjoint():
    with pytest.raises(CompactionError, match="non-overlapping"):
        _hinted([(0, 2), (1, 3)])
    with pytest.raises(CompactionError, match="non-overlapping"):
        _hinted([(2, 3), (0, 1)])


def test_sb_hint_error_names_the_ptp():
    with pytest.raises(CompactionError, match="'H'"):
        _hinted([(0, 9)])
