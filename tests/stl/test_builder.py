"""PtpBuilder: SB bookkeeping, data allocation, label resolution."""

import pytest

from repro.errors import CompactionError
from repro.gpu.config import KernelConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.stl.builder import DATA_BASE, OUTPUT_BASE, SIGNATURE_BASE, PtpBuilder


def _builder(**kw):
    return PtpBuilder("X", "decoder_unit",
                      kernel=KernelConfig(block_threads=32), **kw)


def test_sb_hints_recorded():
    builder = _builder()
    builder.emit_prologue()
    builder.begin_sb()
    builder.emit(Instruction(Op.MOV32I, dst=2, imm=1))
    builder.emit(Instruction(Op.IADD, dst=3, src_a=2, src_b=2))
    builder.end_sb()
    builder.emit_epilogue()
    ptp = builder.build()
    assert ptp.sb_hints == [(1, 3)]
    assert ptp.size == 4  # S2R + 2 + EXIT


def test_nested_begin_sb_rejected():
    builder = _builder()
    builder.begin_sb()
    with pytest.raises(CompactionError):
        builder.begin_sb()


def test_end_without_begin_rejected():
    with pytest.raises(CompactionError):
        _builder().end_sb()


def test_unclosed_sb_rejected_at_build():
    builder = _builder()
    builder.begin_sb()
    builder.emit(Instruction(Op.NOP))
    with pytest.raises(CompactionError):
        builder.build()


def test_alloc_data_places_words_per_thread():
    builder = _builder()
    offset = builder.alloc_data([10, 20, 30])
    assert offset == DATA_BASE
    assert builder.global_image[offset] == 10
    assert builder.global_image[offset + 2] == 30
    # Next allocation starts at least one thread-block further.
    assert builder.alloc_data([1]) >= offset + 32


def test_alloc_data_overflow_guard():
    builder = _builder()
    with pytest.raises(CompactionError):
        for __ in range(OUTPUT_BASE // 32 + 2):
            builder.alloc_data([0])


def test_output_offsets_rotate_in_observable_region():
    builder = _builder()
    offsets = {builder.next_output_offset() for __ in range(100)}
    assert all(OUTPUT_BASE <= off < SIGNATURE_BASE for off in offsets)
    assert len(offsets) == 64  # the rotation window


def test_labels_resolve_forward():
    builder = _builder()
    builder.emit_branch(Op.BRA, "end")
    builder.emit(Instruction(Op.NOP))
    builder.label("end")
    builder.emit(Instruction(Op.EXIT))
    ptp = builder.build()
    assert ptp.program[0].target == 2
    assert ptp.program.labels == {"end": 2}


def test_undefined_label_rejected():
    builder = _builder()
    builder.emit_branch(Op.BRA, "nowhere")
    with pytest.raises(CompactionError):
        builder.build()


def test_duplicate_label_rejected():
    builder = _builder()
    builder.label("x")
    with pytest.raises(CompactionError):
        builder.label("x")


def test_signature_epilogue():
    builder = PtpBuilder("X", "sp_core", uses_signature=True)
    builder.emit_prologue()
    builder.emit_epilogue()
    ptp = builder.build()
    ops = [i.op for i in ptp.program]
    assert ops == [Op.S2R, Op.MOV32I, Op.GST, Op.EXIT]
    assert ptp.program[2].imm == SIGNATURE_BASE
    assert ptp.uses_signature
