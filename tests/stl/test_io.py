"""PTP save/load round trips."""

import pytest

from repro.errors import ReportError
from repro.stl import generate_cntrl, generate_imm, generate_mem
from repro.stl.io import load_ptp, save_ptp


@pytest.mark.parametrize("generator,kwargs", [
    (generate_imm, {"num_sbs": 4}),
    (generate_mem, {"num_sbs": 4}),
    (generate_cntrl, {"num_sbs": 3}),
])
def test_round_trip(tmp_path, generator, kwargs):
    ptp = generator(seed=6, **kwargs)
    save_ptp(ptp, str(tmp_path / "ptp"))
    loaded = load_ptp(str(tmp_path / "ptp"))
    assert loaded.name == ptp.name
    assert loaded.target == ptp.target
    assert list(loaded.program) == list(ptp.program)
    assert loaded.program.labels == {}  # labels are not persisted
    assert loaded.global_image == ptp.global_image
    assert loaded.kernel == ptp.kernel
    assert loaded.sb_hints == ptp.sb_hints
    assert loaded.uses_signature == ptp.uses_signature
    assert loaded.style == ptp.style


def test_loaded_ptp_compacts_identically(tmp_path, du_module, gpu):
    from repro.core import CompactionPipeline

    ptp = generate_imm(seed=6, num_sbs=8)
    save_ptp(ptp, str(tmp_path / "p"))
    loaded = load_ptp(str(tmp_path / "p"))
    a = CompactionPipeline(du_module, gpu=gpu).compact(ptp, evaluate=False)
    b = CompactionPipeline(du_module, gpu=gpu).compact(loaded,
                                                       evaluate=False)
    assert list(a.compacted.program) == list(b.compacted.program)


def test_missing_directory_raises(tmp_path):
    with pytest.raises(ReportError):
        load_ptp(str(tmp_path / "nope"))
