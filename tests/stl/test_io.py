"""PTP/STL save/load round trips."""

import json
import os

import pytest

from repro.errors import ReportError
from repro.stl import SelfTestLibrary, generate_cntrl, generate_imm, generate_mem
from repro.stl.io import load_ptp, load_stl, ptp_from_dict, ptp_to_dict, save_ptp, save_stl


@pytest.mark.parametrize("generator,kwargs", [
    (generate_imm, {"num_sbs": 4}),
    (generate_mem, {"num_sbs": 4}),
    (generate_cntrl, {"num_sbs": 3}),
])
def test_round_trip(tmp_path, generator, kwargs):
    ptp = generator(seed=6, **kwargs)
    save_ptp(ptp, str(tmp_path / "ptp"))
    loaded = load_ptp(str(tmp_path / "ptp"))
    assert loaded.name == ptp.name
    assert loaded.target == ptp.target
    assert list(loaded.program) == list(ptp.program)
    assert loaded.program.labels == {}  # labels are not persisted
    assert loaded.global_image == ptp.global_image
    assert loaded.kernel == ptp.kernel
    assert loaded.sb_hints == ptp.sb_hints
    assert loaded.uses_signature == ptp.uses_signature
    assert loaded.style == ptp.style


def test_loaded_ptp_compacts_identically(tmp_path, du_module, gpu):
    from repro.core import CompactionPipeline

    ptp = generate_imm(seed=6, num_sbs=8)
    save_ptp(ptp, str(tmp_path / "p"))
    loaded = load_ptp(str(tmp_path / "p"))
    a = CompactionPipeline(du_module, gpu=gpu).compact(ptp, evaluate=False)
    b = CompactionPipeline(du_module, gpu=gpu).compact(loaded,
                                                       evaluate=False)
    assert list(a.compacted.program) == list(b.compacted.program)


def test_missing_directory_raises(tmp_path):
    with pytest.raises(ReportError):
        load_ptp(str(tmp_path / "nope"))


def test_corrupt_meta_raises(tmp_path):
    save_ptp(generate_imm(seed=6, num_sbs=3), str(tmp_path / "p"))
    (tmp_path / "p" / "ptp.json").write_text("{ nope")
    with pytest.raises(ReportError, match="corrupt"):
        load_ptp(str(tmp_path / "p"))


def test_ptp_dict_round_trip():
    ptp = generate_mem(seed=6, num_sbs=4)
    data = json.loads(json.dumps(ptp_to_dict(ptp)))  # via real JSON
    loaded = ptp_from_dict(data)
    assert loaded.name == ptp.name
    assert list(loaded.program) == list(ptp.program)
    assert loaded.global_image == ptp.global_image
    assert loaded.kernel == ptp.kernel


def test_ptp_from_dict_rejects_garbage():
    with pytest.raises(ReportError, match="malformed"):
        ptp_from_dict({"name": "X"})


def test_stl_round_trip_preserves_order(tmp_path):
    stl = SelfTestLibrary([generate_mem(seed=6, num_sbs=3),
                           generate_imm(seed=6, num_sbs=3)])
    save_stl(stl, str(tmp_path / "stl"))
    loaded = load_stl(str(tmp_path / "stl"))
    # MEM before IMM — the manifest keeps the (non-alphabetical) order.
    assert [p.name for p in loaded] == ["MEM", "IMM"]
    for original, reloaded in zip(stl, loaded):
        assert list(reloaded.program) == list(original.program)


def test_load_stl_without_manifest_sorts_subdirs(tmp_path):
    save_ptp(generate_mem(seed=6, num_sbs=3), str(tmp_path / "s" / "MEM"))
    save_ptp(generate_imm(seed=6, num_sbs=3), str(tmp_path / "s" / "IMM"))
    loaded = load_stl(str(tmp_path / "s"))
    assert [p.name for p in loaded] == ["IMM", "MEM"]


def test_load_stl_empty_directory_raises(tmp_path):
    os.makedirs(str(tmp_path / "empty"))
    with pytest.raises(ReportError, match="no PTP"):
        load_stl(str(tmp_path / "empty"))


def test_load_stl_corrupt_manifest_raises(tmp_path):
    save_stl(SelfTestLibrary([generate_imm(seed=6, num_sbs=3)]),
             str(tmp_path / "stl"))
    (tmp_path / "stl" / "stl.json").write_text("[]")
    with pytest.raises(ReportError, match="manifest"):
        load_stl(str(tmp_path / "stl"))
