"""The six PTP generators: structure, determinism, executability."""

import pytest

from repro.core.partition import partition_ptp
from repro.core.reduction import segment_small_blocks
from repro.core.tracing import run_logic_tracing
from repro.isa.opcodes import Op, Unit, info
from repro.stl import (
    SelfTestLibrary,
    generate_cntrl,
    generate_imm,
    generate_mem,
    generate_rand,
    generate_sfu_imm,
    generate_tpgen,
)


@pytest.fixture(scope="module")
def imm():
    return generate_imm(seed=5, num_sbs=10)


@pytest.fixture(scope="module")
def mem():
    return generate_mem(seed=5, num_sbs=10)


@pytest.fixture(scope="module")
def cntrl():
    return generate_cntrl(seed=5, num_sbs=6)


@pytest.fixture(scope="module")
def rand_ptp():
    return generate_rand(seed=5, num_sbs=10)


@pytest.fixture(scope="module")
def tpgen(sp_module):
    ptp, atpg = generate_tpgen(sp_module, seed=5, atpg_random_patterns=32,
                               atpg_max_backtracks=4)
    return ptp, atpg


@pytest.fixture(scope="module")
def sfu_imm(sfu_module):
    ptp, atpg = generate_sfu_imm(sfu_module, seed=5,
                                 atpg_random_patterns=32,
                                 atpg_max_backtracks=3)
    return ptp, atpg


def test_generators_are_deterministic():
    a = generate_imm(seed=11, num_sbs=4)
    b = generate_imm(seed=11, num_sbs=4)
    assert list(a.program) == list(b.program)
    assert a.global_image == b.global_image
    c = generate_imm(seed=12, num_sbs=4)
    assert list(a.program) != list(c.program)


def test_imm_targets_du_with_immediate_coverage(imm):
    assert imm.target == "decoder_unit"
    used = {instr.op for instr in imm.program}
    from repro.stl.generators.base import IMMEDIATE_OPS
    assert len(used & set(IMMEDIATE_OPS)) >= 6


def test_imm_sb_sizes_in_paper_band(imm):
    # Section IV: IMM/MEM SBs are 15-18 instructions; ours 13-18.
    for start, end in imm.sb_hints:
        assert 13 <= end - start <= 18


def test_mem_exercises_all_memory_spaces(mem):
    used = {instr.op for instr in mem.program}
    assert {Op.GLD, Op.GST, Op.SLD, Op.SST, Op.CLD} <= used
    assert mem.kernel.const_words  # CLD coverage needs constants


def test_cntrl_has_divergence_and_parametric_loop(cntrl):
    used = {instr.op for instr in cntrl.program}
    assert {Op.SSY, Op.BRA, Op.JOIN, Op.CLD} <= used
    partition = partition_ptp(cntrl)
    assert partition.inadmissible_blocks, "parametric loop must be excluded"
    assert any(loop["parametric"] for loop in partition.loops)
    assert 75.0 < partition.arc_percent() < 99.0


def test_straight_line_ptps_are_fully_admissible(imm, mem, rand_ptp):
    for ptp in (imm, mem, rand_ptp):
        assert partition_ptp(ptp).arc_percent() == 100.0


def test_rand_uses_signature(rand_ptp):
    assert rand_ptp.uses_signature
    from repro.stl.signature import SIG_REG
    stores = [i for i in rand_ptp.program
              if i.op is Op.GST and i.src_b == SIG_REG]
    assert stores, "signature must be flushed to memory"


def test_sb_hints_are_contiguous_partition(imm, rand_ptp):
    for ptp in (imm, rand_ptp):
        hints = ptp.sb_hints
        for (s1, e1), (s2, __) in zip(hints, hints[1:]):
            assert e1 == s2
        assert hints[0][0] >= 1  # prologue precedes the first SB


def test_structural_segmentation_recovers_hinted_boundaries(imm, rand_ptp,
                                                            mem):
    """Every generator-known SB start must be a detected SB boundary."""
    for ptp in (imm, rand_ptp, mem):
        partition = partition_ptp(ptp)
        detected = {sb.start for sb in segment_small_blocks(ptp, partition)}
        hinted = {start for start, __ in ptp.sb_hints}
        assert hinted <= detected


def test_all_ptps_execute_on_gpu(gpu, du_module, sp_module, sfu_module, imm,
                                 mem, cntrl, rand_ptp, tpgen, sfu_imm):
    modules = {"decoder_unit": du_module, "sp_core": sp_module,
               "sfu": sfu_module}
    for ptp in (imm, mem, cntrl, rand_ptp, tpgen[0], sfu_imm[0]):
        tracing = run_logic_tracing(ptp, modules[ptp.target], gpu=gpu)
        assert tracing.cycles > 0
        assert tracing.pattern_report.count > 0


def test_tpgen_structure(tpgen, sp_module):
    ptp, atpg = tpgen
    assert ptp.target == "sp_core"
    assert ptp.style == "atpg"
    assert ptp.uses_signature
    loads = [i for i in ptp.program if i.op is Op.GLD]
    assert loads, "TPGEN loads per-thread operands from memory"
    for load in loads:
        base = load.imm
        for t in range(ptp.kernel.block_threads):
            assert base + t in ptp.global_image


def test_tpgen_patterns_grouped_by_op(tpgen):
    ptp, atpg = tpgen
    # Instructions carrying the test op must come from the SPOP_TO_ISA map.
    from repro.stl.generators.atpg_based import SPOP_TO_ISA
    body_ops = {i.op for i in ptp.program
                if info(i.op).unit is Unit.SP and i.op is not Op.MOV32I}
    assert body_ops <= set(SPOP_TO_ISA.values()) | {
        Op.SHL32I, Op.SHR32I, Op.OR, Op.XOR, Op.SEL,
        Op.S2R}  # + MISR helpers and the tid prologue


def test_sfu_imm_structure(sfu_imm):
    ptp, atpg = sfu_imm
    assert ptp.target == "sfu"
    assert not ptp.uses_signature  # results stored directly, no SpT
    sfu_ops = [i for i in ptp.program if info(i.op).unit is Unit.SFU]
    movs = [i for i in ptp.program if i.op is Op.MOV32I]
    stores = [i for i in ptp.program if i.op is Op.GST]
    # One SB per converted pattern: MOV32I / SFU-op / GST.
    assert len(sfu_ops) == len(ptp.sb_hints)
    assert len(movs) >= len(sfu_ops)
    assert len(stores) >= len(sfu_ops)


def test_atpg_conversion_reports_skips(tpgen, sfu_imm):
    for ptp, __ in (tpgen, sfu_imm):
        assert "skipped in conversion" in ptp.description


def test_stl_container_round_trip(imm, mem, cntrl):
    stl = SelfTestLibrary([imm, mem, cntrl])
    assert len(stl) == 3
    assert stl["MEM"] is mem
    assert [p.name for p in stl.targeting("decoder_unit")] == [
        "IMM", "MEM", "CNTRL"]
    assert stl.total_size == imm.size + mem.size + cntrl.size
    replacement = imm.with_program(imm.program, name="IMM")
    stl.replace("IMM", replacement)
    assert stl["IMM"] is replacement
