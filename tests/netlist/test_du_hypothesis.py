"""Property test: the DU netlist equals its reference on arbitrary words.

Feeds fully random 64-bit words — including illegal opcodes and garbage
field combinations — through the synthesized Decoder Unit and the
pure-Python reference decoder.
"""

from hypothesis import given, settings, strategies as st

from repro.netlist.modules.decoder_unit import reference_decode


@given(st.lists(st.integers(0, (1 << 64) - 1), min_size=1, max_size=24))
@settings(max_examples=30, deadline=None)
def test_du_matches_reference_on_random_words(du_module, words):
    patterns = du_module.new_pattern_set()
    for word in words:
        du_module.add_pattern(patterns, instr=word)
    out = du_module.simulate(patterns)
    for k, word in enumerate(words):
        ref = reference_decode(word)
        for port, expected in ref.items():
            assert out[port][k] == expected, (hex(word), port)
