"""Gate-evaluation properties: bit-parallel == bit-serial (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.netlist.gates import ARITY, GateType, evaluate, is_inverting

words = st.integers(0, (1 << 64) - 1)


@given(st.sampled_from(list(GateType)), st.data())
@settings(max_examples=120, deadline=None)
def test_packed_evaluation_equals_per_bit(gate_type, data):
    arity = ARITY[gate_type]
    packed_inputs = tuple(data.draw(words) for __ in range(arity))
    mask = (1 << 64) - 1
    packed = evaluate(gate_type, packed_inputs, mask)
    for bit in range(0, 64, 7):
        scalar_inputs = tuple((value >> bit) & 1
                              for value in packed_inputs)
        scalar = evaluate(gate_type, scalar_inputs, 1)
        assert (packed >> bit) & 1 == scalar


@given(st.sampled_from(list(GateType)), st.data())
@settings(max_examples=60, deadline=None)
def test_output_stays_within_mask(gate_type, data):
    arity = ARITY[gate_type]
    mask = (1 << 17) - 1
    inputs = tuple(data.draw(st.integers(0, mask)) for __ in range(arity))
    assert evaluate(gate_type, inputs, mask) >> 17 == 0


def test_inverting_classification():
    assert is_inverting(GateType.NOT)
    assert is_inverting(GateType.NAND)
    assert is_inverting(GateType.NOR)
    assert is_inverting(GateType.XNOR)
    assert not is_inverting(GateType.AND)
    assert not is_inverting(GateType.MUX)
    assert not is_inverting(GateType.BUF)
