"""Netlist IR: construction, validation, levelization, cones."""

import pytest

from repro.errors import NetlistError
from repro.netlist import CONST0, CONST1, GateType, Netlist


def _tiny():
    nl = Netlist("tiny")
    a = nl.add_input("a")
    b = nl.add_input("b")
    x = nl.add_gate(GateType.AND, a, b)
    y = nl.add_gate(GateType.NOT, x)
    nl.mark_output(y, "y")
    return nl, a, b, x, y


def test_constants_are_nets_0_and_1():
    assert CONST0 == 0 and CONST1 == 1


def test_construction_and_stats():
    nl, a, b, x, y = _tiny()
    nl.finalize()
    stats = nl.stats()
    assert stats["gates"] == 2
    assert stats["inputs"] == 2
    assert stats["outputs"] == 1
    assert stats["depth"] == 2
    assert stats["by_type"] == {"AND": 1, "NOT": 1}


def test_gate_arity_checked():
    nl = Netlist("bad")
    a = nl.add_input()
    with pytest.raises(NetlistError):
        nl.add_gate(GateType.AND, a)
    with pytest.raises(NetlistError):
        nl.add_gate(GateType.NOT, a, a)


def test_unknown_input_net_rejected():
    nl = Netlist("bad")
    a = nl.add_input()
    with pytest.raises(NetlistError):
        nl.add_gate(GateType.NOT, 99)


def test_undriven_output_rejected():
    nl = Netlist("bad")
    nl.add_input()
    nl.mark_output(nl.new_net())
    with pytest.raises(NetlistError):
        nl.finalize()


def test_finalize_is_idempotent_and_freezes():
    nl, *_ = _tiny()
    nl.finalize()
    nl.finalize()
    with pytest.raises(NetlistError):
        nl.add_input()
    with pytest.raises(NetlistError):
        nl.add_gate(GateType.NOT, 2)


def test_driver_and_fanout():
    nl, a, b, x, y = _tiny()
    nl.finalize()
    assert nl.driver_of(a) is None
    assert nl.gates[nl.driver_of(x)].gate_type is GateType.AND
    assert nl.fanout_gates(x) == [1]
    assert nl.fanout_gates(y) == []


def test_cone_from_net():
    nl = Netlist("cone")
    a = nl.add_input()
    b = nl.add_input()
    x = nl.add_gate(GateType.AND, a, b)     # gate 0
    y = nl.add_gate(GateType.OR, x, b)      # gate 1
    z = nl.add_gate(GateType.NOT, b)        # gate 2 (not in cone of a)
    w = nl.add_gate(GateType.XOR, y, z)     # gate 3
    nl.mark_output(w)
    nl.finalize()
    assert nl.cone_from_net(a) == [0, 1, 3]
    assert nl.cone_from_net(b) == [0, 1, 2, 3]
    assert nl.cone_from_gate(1) == [1, 3]


def test_levelized_order_is_topological():
    nl, *_ = _tiny()
    nl.finalize()
    seen = set(nl.inputs) | {CONST0, CONST1}
    for gate in nl.levelized_gates:
        assert all(n in seen for n in gate.inputs)
        seen.add(gate.output)
