"""Builder macros verified against Python integer arithmetic (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.netlist import LogicSimulator, Netlist, PatternSet, builder as bd

W = 8
word8 = st.integers(0, (1 << W) - 1)


def _eval(build, inputs_spec, cases):
    """Build a netlist via *build*, apply *cases*, return output values.

    Args:
        build: fn(nl, input_words) -> dict name -> word (lists of nets).
        inputs_spec: list of (name, width).
        cases: list of dicts name -> value.
    """
    nl = Netlist("t")
    words = {name: nl.add_inputs(width, name) for name, width in inputs_spec}
    outs = build(nl, words)
    for word in outs.values():
        for net in word:
            nl.mark_output(net)
    nl.finalize()
    patterns = PatternSet(nl)
    for case in cases:
        patterns.add_words([(words[name], value)
                            for name, value in case.items()])
    return LogicSimulator(nl).run_words(patterns, outs)


@given(st.lists(st.tuples(word8, word8), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_ripple_adder(pairs):
    def build(nl, words):
        total, carry = bd.ripple_adder(nl, words["a"], words["b"])
        return {"sum": total, "carry": [carry]}
    out = _eval(build, [("a", W), ("b", W)],
                [{"a": a, "b": b} for a, b in pairs])
    for k, (a, b) in enumerate(pairs):
        assert out["sum"][k] == (a + b) & 0xFF
        assert out["carry"][k] == (a + b) >> 8


@given(st.lists(st.tuples(word8, word8), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_subtractor(pairs):
    def build(nl, words):
        diff, no_borrow = bd.subtractor(nl, words["a"], words["b"])
        return {"diff": diff, "nb": [no_borrow]}
    out = _eval(build, [("a", W), ("b", W)],
                [{"a": a, "b": b} for a, b in pairs])
    for k, (a, b) in enumerate(pairs):
        assert out["diff"][k] == (a - b) & 0xFF
        assert out["nb"][k] == (1 if a >= b else 0)


@given(st.lists(st.tuples(word8, word8), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_array_multiplier(pairs):
    def build(nl, words):
        return {"p": bd.array_multiplier(nl, words["a"], words["b"])}
    out = _eval(build, [("a", W), ("b", W)],
                [{"a": a, "b": b} for a, b in pairs])
    for k, (a, b) in enumerate(pairs):
        assert out["p"][k] == (a * b) & 0xFF


@given(st.lists(st.tuples(word8, st.integers(0, 15)), min_size=1,
                max_size=8))
@settings(max_examples=40, deadline=None)
def test_barrel_shifter_left_and_right(cases):
    def build(nl, words):
        return {
            "shl": bd.barrel_shifter(nl, words["a"], words["s"]),
            "shr": bd.barrel_shifter(nl, words["a"], words["s"], right=True),
        }
    out = _eval(build, [("a", W), ("s", 4)],
                [{"a": a, "s": s} for a, s in cases])
    for k, (a, s) in enumerate(cases):
        expected_l = (a << s) & 0xFF if s < 8 else 0
        expected_r = a >> s if s < 8 else 0
        assert out["shl"][k] == expected_l
        assert out["shr"][k] == expected_r


def test_barrel_shifter_arithmetic_right():
    def build(nl, words):
        return {"sar": bd.barrel_shifter(nl, words["a"], words["s"],
                                         right=True, arithmetic=True)}
    cases = [{"a": 0x80, "s": 3}, {"a": 0x40, "s": 3}, {"a": 0xFF, "s": 8}]
    out = _eval(build, [("a", W), ("s", 4)], cases)
    assert out["sar"][0] == 0xF0
    assert out["sar"][1] == 0x08
    assert out["sar"][2] == 0xFF  # overflow fills with sign


@given(word8, word8)
@settings(max_examples=40, deadline=None)
def test_comparators(a, b):
    def build(nl, words):
        def signed(v):
            return v - 256 if v >= 128 else v
        return {
            "eq": [bd.equal_words(nl, words["a"], words["b"])],
            "ltu": [bd.less_than_unsigned(nl, words["a"], words["b"])],
            "lts": [bd.less_than_signed(nl, words["a"], words["b"])],
        }
    out = _eval(build, [("a", W), ("b", W)], [{"a": a, "b": b}])
    signed = lambda v: v - 256 if v >= 128 else v
    assert out["eq"][0] == int(a == b)
    assert out["ltu"][0] == int(a < b)
    assert out["lts"][0] == int(signed(a) < signed(b))


@given(word8, st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_equality_comparator_constant(a, const):
    def build(nl, words):
        return {"eq": [bd.equality_comparator(nl, words["a"], const)]}
    out = _eval(build, [("a", W)], [{"a": a}])
    assert out["eq"][0] == int(a == const)


def test_one_hot_decoder():
    def build(nl, words):
        return {"hot": bd.one_hot_decoder(nl, words["a"])}
    out = _eval(build, [("a", 3)], [{"a": v} for v in range(8)])
    for v in range(8):
        assert out["hot"][v] == 1 << v


def test_rom_contents():
    contents = [0xAB, 0x00, 0xFF, 0x5A]
    def build(nl, words):
        return {"data": bd.rom(nl, words["addr"], contents, 8)}
    out = _eval(build, [("addr", 2)], [{"addr": v} for v in range(4)])
    assert out["data"] == contents


def test_mux_tree_selects():
    def build(nl, words):
        values = [bd.constant_word(v, 8) for v in (11, 22, 33, 44, 55)]
        return {"out": bd.mux_tree(nl, values, words["sel"])}
    out = _eval(build, [("sel", 3)], [{"sel": v} for v in range(8)])
    assert out["out"][:5] == [11, 22, 33, 44, 55]
    # Out-of-range selections collapse to zero words padded by the tree.
    assert out["out"][5] == 0


def test_reduce_trees():
    def build(nl, words):
        bits = words["a"]
        return {
            "and": [bd.and_reduce(nl, bits)],
            "or": [bd.or_reduce(nl, bits)],
            "xor": [bd.xor_reduce(nl, bits)],
        }
    cases = [{"a": v} for v in (0x00, 0xFF, 0x01, 0xFE, 0xAA)]
    out = _eval(build, [("a", W)], cases)
    for k, case in enumerate(cases):
        v = case["a"]
        assert out["and"][k] == int(v == 0xFF)
        assert out["or"][k] == int(v != 0)
        assert out["xor"][k] == bin(v).count("1") % 2


def test_empty_reduce_defaults():
    nl = Netlist("t")
    assert bd.and_reduce(nl, []) == 1
    assert bd.or_reduce(nl, []) == 0
    assert bd.xor_reduce(nl, []) == 0
