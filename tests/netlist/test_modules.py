"""The three synthesized target modules vs their reference models."""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Pred, assemble, encode
from repro.isa.opcodes import CmpOp, Op
from repro.netlist.modules import SPOp
from repro.netlist.modules.decoder_unit import UNIT_ORDER, reference_decode
from repro.netlist.modules.sfu import FUNC_CODES, SEG_BITS, sfu_reference_result
from repro.netlist.modules.sp_core import ISA_TO_SPOP, sp_reference_result

W = 8  # conftest TEST_WIDTH


# --- Decoder Unit ----------------------------------------------------------

def test_du_dimensions(du_module):
    assert len(du_module.input_words["instr"]) == 64
    assert du_module.netlist.num_gates > 500


def test_du_decodes_every_opcode(du_module):
    patterns = du_module.new_pattern_set()
    words = []
    for op in Op:
        instr = Instruction(op)
        words.append(encode(instr))
        du_module.add_pattern(patterns, instr=words[-1])
    out = du_module.simulate(patterns)
    for k, word in enumerate(words):
        ref = reference_decode(word)
        for port, expected in ref.items():
            assert out[port][k] == expected, (list(Op)[k], port)


def test_du_illegal_opcode(du_module):
    patterns = du_module.new_pattern_set()
    du_module.add_pattern(patterns, instr=0xFE << 56)
    out = du_module.simulate(patterns)
    assert out["valid"][0] == 0
    assert out["illegal"][0] == 1
    assert out["writes_reg"][0] == 0


def test_du_predicate_guard_decode(du_module):
    instr = Instruction(Op.IADD, dst=1, src_a=2, src_b=3,
                        pred=Pred(2, True))
    patterns = du_module.new_pattern_set()
    du_module.add_pattern(patterns, instr=encode(instr))
    out = du_module.simulate(patterns)
    assert out["pred_en"][0] == 1
    assert out["pred_idx"][0] == 2
    assert out["pred_neg"][0] == 1


def test_du_unit_one_hot_is_exclusive(du_module):
    patterns = du_module.new_pattern_set()
    for op in Op:
        du_module.add_pattern(patterns, instr=encode(Instruction(op)))
    out = du_module.simulate(patterns)
    for k, op in enumerate(Op):
        unit_bits = out["unit"][k]
        assert bin(unit_bits).count("1") == 1
        from repro.isa.opcodes import info
        assert unit_bits == 1 << UNIT_ORDER.index(info(op).unit)


def test_du_matches_reference_on_program(du_module):
    program = assemble("""
        MOV32I R1, 0xFFFF0000
        IADD32I R2, R1, 0x7F
        ISETP P1, R2, R1, LE
    @!P1 BRA 0
        GLD R3, [R2+0x100]
        SST [R3+0x10], R2
        CLD R4, c[0x20]
        IMAD R5, R1, R2, R3
        COS R6, R5
        EXIT
    """)
    patterns = du_module.new_pattern_set()
    words = [encode(i) for i in program]
    for word in words:
        du_module.add_pattern(patterns, instr=word)
    out = du_module.simulate(patterns)
    for k, word in enumerate(words):
        for port, expected in reference_decode(word).items():
            assert out[port][k] == expected, (k, port)


# --- SP core ---------------------------------------------------------------

def test_isa_to_spop_covers_all_sp_instructions():
    from repro.isa.opcodes import INFO, Unit
    sp_ops = {op for op, info in INFO.items() if info.unit is Unit.SP}
    assert set(ISA_TO_SPOP) == sp_ops


@given(st.sampled_from(list(SPOp)), st.integers(0, 255),
       st.integers(0, 255), st.integers(0, 255),
       st.sampled_from(list(CmpOp)))
@settings(max_examples=150, deadline=None)
def test_sp_netlist_matches_reference(sp_module, op, a, b, c, cmp_op):
    patterns = sp_module.new_pattern_set()
    sp_module.add_pattern(patterns, op=op.value, cmp=cmp_op.value,
                          a=a, b=b, c=c)
    out = sp_module.simulate(patterns)
    result, pred = sp_reference_result(op, a, b, c, cmp_op, W)
    assert out["result"][0] == result
    assert out["pred"][0] == pred


def test_sp_undefined_opcode_yields_zero(sp_module):
    patterns = sp_module.new_pattern_set()
    sp_module.add_pattern(patterns, op=15, a=0xAB, b=0x1)
    out = sp_module.simulate(patterns)
    assert out["result"][0] == 0
    assert out["pred"][0] == 0


def test_sp_shift_flush_semantics(sp_module):
    # Shift amounts at/above the width flush the barrel shifter output.
    patterns = sp_module.new_pattern_set()
    sp_module.add_pattern(patterns, op=SPOp.SHL.value, a=0xFF, b=8)
    sp_module.add_pattern(patterns, op=SPOp.SHR.value, a=0xFF, b=9)
    sp_module.add_pattern(patterns, op=SPOp.SHL.value, a=0xFF, b=3)
    out = sp_module.simulate(patterns)
    assert out["result"][0] == 0
    assert out["result"][1] == 0
    assert out["result"][2] == 0xF8


def test_sp_setp_only_raises_pred(sp_module):
    patterns = sp_module.new_pattern_set()
    sp_module.add_pattern(patterns, op=SPOp.SETP.value,
                          cmp=CmpOp.EQ.value, a=5, b=5)
    out = sp_module.simulate(patterns)
    assert out["pred"][0] == 1
    assert out["result"][0] == 0


# --- SFU ------------------------------------------------------------------

def test_sfu_dimensions(sfu_module):
    assert len(sfu_module.input_words["x"]) == W
    assert len(sfu_module.input_words["func"]) == 3


@given(st.integers(0, 5), st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_sfu_netlist_matches_reference(sfu_module, func, x):
    patterns = sfu_module.new_pattern_set()
    sfu_module.add_pattern(patterns, func=func, x=x)
    out = sfu_module.simulate(patterns)
    assert out["y"][0] == sfu_reference_result(func, x, W)


def test_sfu_distinct_functions_differ(sfu_module):
    """RCP and SIN tables must actually differ (non-degenerate ROM)."""
    patterns = sfu_module.new_pattern_set()
    for func in range(6):
        sfu_module.add_pattern(patterns, func=func, x=0x40)
    out = sfu_module.simulate(patterns)
    assert len(set(out["y"])) > 2


def test_sfu_segments_differ(sfu_module):
    """Different input segments hit different coefficients."""
    patterns = sfu_module.new_pattern_set()
    step = 1 << (W - SEG_BITS)
    for seg in range(1 << SEG_BITS):
        sfu_module.add_pattern(patterns, func=FUNC_CODES["RCP"],
                               x=seg * step)
    out = sfu_module.simulate(patterns)
    assert len(set(out["y"])) > 2
