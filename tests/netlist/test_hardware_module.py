"""HardwareModule wrapper: port validation and simulation helpers."""

import pytest

from repro.errors import NetlistError
from repro.netlist import GateType, Netlist
from repro.netlist.modules import HardwareModule


def _module():
    nl = Netlist("toy")
    a = nl.add_inputs(4, "a")
    b = nl.add_inputs(4, "b")
    out = [nl.add_gate(GateType.XOR, x, y) for x, y in zip(a, b)]
    for net in out:
        nl.mark_output(net)
    nl.finalize()
    return HardwareModule(name="toy", netlist=nl,
                          input_words={"a": a, "b": b},
                          output_words={"out": out})


def test_add_pattern_and_simulate():
    module = _module()
    patterns = module.new_pattern_set()
    module.add_pattern(patterns, a=0b1010, b=0b0110)
    module.add_pattern(patterns, a=0xF)  # b defaults to 0
    out = module.simulate(patterns)
    assert out["out"] == [0b1100, 0xF]


def test_unknown_port_rejected():
    module = _module()
    patterns = module.new_pattern_set()
    with pytest.raises(NetlistError):
        module.add_pattern(patterns, nope=1)


def test_pattern_index_returned():
    module = _module()
    patterns = module.new_pattern_set()
    assert module.add_pattern(patterns, a=1) == 0
    assert module.add_pattern(patterns, a=2) == 1
