"""Bit-parallel logic simulator: gate semantics and pattern packing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist import CONST0, CONST1, GateType, LogicSimulator, Netlist, PatternSet
from repro.netlist.gates import ARITY, evaluate
from repro.netlist.simulator import iter_set_bits


@pytest.mark.parametrize("gate_type,table", [
    (GateType.BUF, {(0,): 0, (1,): 1}),
    (GateType.NOT, {(0,): 1, (1,): 0}),
    (GateType.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    (GateType.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
    (GateType.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
    (GateType.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
    (GateType.XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
    (GateType.XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    (GateType.MUX, {(0, 0, 0): 0, (1, 0, 0): 1, (0, 1, 0): 0, (1, 1, 0): 1,
                    (0, 0, 1): 0, (1, 0, 1): 0, (0, 1, 1): 1, (1, 1, 1): 1}),
])
def test_gate_truth_tables(gate_type, table):
    for inputs, expected in table.items():
        assert evaluate(gate_type, inputs, 1) == expected
    assert ARITY[gate_type] == len(next(iter(table)))


def _xor_netlist():
    nl = Netlist("xor")
    a = nl.add_input("a")
    b = nl.add_input("b")
    out = nl.add_gate(GateType.XOR, a, b)
    nl.mark_output(out, "out")
    nl.finalize()
    return nl, a, b, out


def test_pattern_set_add_and_mask():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    assert patterns.mask == 0
    patterns.add({a: 1})
    patterns.add({a: 0, b: 1})
    patterns.add({a: 1, b: 1})
    assert patterns.count == 3
    assert patterns.mask == 0b111
    assert patterns.value_of(a, 0) == 1
    assert patterns.value_of(b, 0) == 0
    assert patterns.value_of(b, 2) == 1


def test_pattern_set_rejects_non_input_nets():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    with pytest.raises(NetlistError):
        patterns.add({out: 1})


def test_simulation_packs_all_patterns():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    cases = [(0, 0), (0, 1), (1, 0), (1, 1)]
    for av, bv in cases:
        patterns.add({a: av, b: bv})
    values = LogicSimulator(nl).run(patterns)
    for k, (av, bv) in enumerate(cases):
        assert (values[out] >> k) & 1 == (av ^ bv)
    assert values[CONST0] == 0
    assert values[CONST1] == patterns.mask


def test_run_words():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 1, b: 0})
    patterns.add({a: 1, b: 1})
    results = LogicSimulator(nl).run_words(patterns, {"out": [out]})
    assert results["out"] == [1, 0]


def test_subset_and_reversed():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    for av, bv in [(1, 0), (0, 1), (1, 1), (0, 0)]:
        patterns.add({a: av, b: bv})
    rev = patterns.reversed()
    assert rev.count == 4
    assert rev.value_of(a, 0) == patterns.value_of(a, 3)
    assert rev.value_of(b, 3) == patterns.value_of(b, 0)
    sub = patterns.subset([2, 0])
    assert sub.count == 2
    assert sub.value_of(a, 0) == patterns.value_of(a, 2)
    assert sub.value_of(a, 1) == patterns.value_of(a, 0)


def test_cross_netlist_pattern_rejected():
    nl1, a1, b1, _ = _xor_netlist()
    nl2, *_ = _xor_netlist()
    patterns = PatternSet(nl1)
    patterns.add({a1: 1})
    with pytest.raises(NetlistError):
        LogicSimulator(nl2).run(patterns)


def test_value_of_rejects_out_of_range_indices():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 1})
    patterns.add({a: 0, b: 1})
    with pytest.raises(IndexError):
        patterns.value_of(a, 2)
    with pytest.raises(IndexError):
        patterns.value_of(a, -1)
    with pytest.raises(IndexError):
        PatternSet(nl).value_of(a, 0)  # empty set has no pattern 0


def test_subset_rejects_out_of_range_indices():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    patterns.add({a: 1})
    with pytest.raises(IndexError):
        patterns.subset([0, 1])
    with pytest.raises(IndexError):
        patterns.subset([-1])


def test_iter_set_bits_walks_ascending_and_rejects_negatives():
    assert list(iter_set_bits(0)) == []
    assert list(iter_set_bits(0b1011001)) == [0, 3, 4, 6]
    # A negative int has infinitely many two's-complement set bits; the
    # walk must fail loudly instead of looping forever.
    with pytest.raises(ValueError):
        list(iter_set_bits(-1))


def test_pattern_set_version_counts_every_mutation():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    assert patterns.version == 0
    patterns.add({a: 1})
    patterns.add_words([([a, b], 0b10)])
    assert patterns.version == 2
    assert patterns.subset([0]).version == 0  # fresh set, fresh counter


def test_add_words_applies_lsb_first_and_validates():
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    patterns.add_words([([a, b], 0b01)])
    assert patterns.value_of(a, 0) == 1
    assert patterns.value_of(b, 0) == 0
    with pytest.raises(NetlistError, match="does not fit"):
        patterns.add_words([([a, b], 0b100)])
    with pytest.raises(NetlistError, match="negative"):
        patterns.add_words([([a, b], -1)])
    with pytest.raises(NetlistError, match="more than one word"):
        patterns.add_words([([a], 1), ([b, a], 0b10)])
    # Failed calls must not half-apply: only the first valid pattern
    # landed.
    assert patterns.count == 1
    assert patterns.version == 1


@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                max_size=24),
       st.data())
@settings(max_examples=40, deadline=None)
def test_subset_repacking_matches_per_bit_reference(cases, data):
    """The linear shift/mask repack equals the naive per-(index, net)
    probe loop, including duplicated and reordered indices."""
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    for av, bv in cases:
        patterns.add({a: int(av), b: int(bv)})
    indices = data.draw(st.lists(
        st.integers(0, patterns.count - 1), min_size=0, max_size=30))
    sub = patterns.subset(indices)
    assert sub.count == len(indices)
    for net in nl.inputs:
        expected = 0
        for new_index, old_index in enumerate(indices):
            if (patterns.packed[net] >> old_index) & 1:
                expected |= 1 << new_index
        assert sub.packed[net] == expected


@given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1,
                max_size=24))
@settings(max_examples=40, deadline=None)
def test_run_words_matches_per_bit_reference(cases):
    """The set-bit transposition equals probing every (pattern, bit)."""
    nl, a, b, out = _xor_netlist()
    patterns = PatternSet(nl)
    for av, bv in cases:
        patterns.add({a: int(av), b: int(bv)})
    sim = LogicSimulator(nl)
    words = {"out": [out], "echo": [a, b]}
    results = sim.run_words(patterns, words)
    values = sim.run(patterns)
    for name, word in words.items():
        expected = []
        for k in range(patterns.count):
            value = 0
            for i, net in enumerate(word):
                value |= ((values[net] >> k) & 1) << i
            expected.append(value)
        assert results[name] == expected


@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()),
                min_size=1, max_size=70))
@settings(max_examples=30, deadline=None)
def test_parallel_simulation_matches_serial(cases):
    """Simulating N patterns at once equals N single-pattern runs."""
    nl = Netlist("mix")
    a = nl.add_input()
    b = nl.add_input()
    c = nl.add_input()
    g1 = nl.add_gate(GateType.NAND, a, b)
    g2 = nl.add_gate(GateType.MUX, g1, c, b)
    g3 = nl.add_gate(GateType.XNOR, g2, a)
    nl.mark_output(g3)
    nl.finalize()
    sim = LogicSimulator(nl)

    batch = PatternSet(nl)
    for av, bv, cv in cases:
        batch.add({a: int(av), b: int(bv), c: int(cv)})
    packed = sim.run(batch)[g3]

    for k, (av, bv, cv) in enumerate(cases):
        single = PatternSet(nl)
        single.add({a: int(av), b: int(bv), c: int(cv)})
        assert sim.run(single)[g3] == (packed >> k) & 1
