"""Baseline program rebuilding: branch remap and label survival."""

from repro.baselines.iterative import _rebuild
from repro.gpu.config import KernelConfig
from repro.isa import assemble
from repro.isa.opcodes import Op
from repro.stl.ptp import ParallelTestProgram


def _ptp():
    program = assemble("""
        S2R R0, TID_X
        MOV32I R2, 0x1
        BRA tgt
        MOV32I R3, 0x2
    tgt:
        GST [R0+0x0], R2
        EXIT
    """)
    return ParallelTestProgram(name="P", target="decoder_unit",
                               program=program, kernel=KernelConfig())


def test_rebuild_keeps_everything_is_identity():
    ptp = _ptp()
    instructions = list(ptp.program)
    rebuilt = _rebuild(ptp, instructions, [True] * len(instructions), "_x")
    assert list(rebuilt.program) == instructions
    assert rebuilt.name == "P_x"


def test_rebuild_remaps_branch_past_removed_code():
    ptp = _ptp()
    instructions = list(ptp.program)
    keep = [True, True, True, False, True, True]  # drop the dead MOV32I
    rebuilt = _rebuild(ptp, instructions, keep, "_x")
    ops = [i.op for i in rebuilt.program]
    assert ops == [Op.S2R, Op.MOV32I, Op.BRA, Op.GST, Op.EXIT]
    bra = rebuilt.program[2]
    assert rebuilt.program[bra.target].op is Op.GST
    assert rebuilt.program.labels["tgt"] == bra.target


def test_rebuild_target_at_removed_instruction_falls_forward():
    ptp = _ptp()
    instructions = list(ptp.program)
    keep = [True, True, True, False, False, True]  # drop target GST too
    rebuilt = _rebuild(ptp, instructions, keep, "_x")
    bra = rebuilt.program[2]
    assert rebuilt.program[bra.target].op is Op.EXIT
