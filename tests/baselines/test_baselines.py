"""Prior-work baselines: correctness and the fault-simulation cost gap."""

import pytest

from repro.baselines import compact_by_reordering, compact_iteratively
from repro.core import CompactionPipeline, run_logic_tracing
from repro.faults import FaultList, FaultSimulator
from repro.stl import generate_imm, generate_sfu_imm


@pytest.fixture(scope="module")
def imm():
    return generate_imm(seed=8, num_sbs=8)


def test_iterative_preserves_fc_exactly(du_module, gpu, imm):
    outcome = compact_iteratively(imm, du_module, gpu=gpu)
    assert outcome.compacted_fc == pytest.approx(outcome.original_fc)
    assert outcome.compacted_size <= outcome.original_size


def test_iterative_needs_one_fault_sim_per_candidate(du_module, gpu, imm):
    outcome = compact_iteratively(imm, du_module, gpu=gpu)
    # initial + one per candidate SB + final
    assert outcome.fault_simulations == outcome.candidates_tried + 2
    assert outcome.candidates_tried >= 8


def test_iterative_vs_pipeline_cost_gap(du_module, gpu, imm):
    """The paper's headline: our method uses ONE fault simulation for the
    compaction; the iterative baseline uses one per candidate."""
    pipeline = CompactionPipeline(du_module, gpu=gpu)
    ours = pipeline.compact(imm, evaluate=False)
    theirs = compact_iteratively(imm, du_module, gpu=gpu)
    assert ours.fault_simulations == 1
    assert theirs.fault_simulations > 5 * ours.fault_simulations
    # At this tiny scale every SB may be essential; neither method may
    # grow the program, and both agree when nothing is removable.
    assert ours.compacted_size <= imm.size
    assert theirs.compacted_size <= imm.size


def test_iterative_max_candidates_cap(du_module, gpu, imm):
    outcome = compact_iteratively(imm, du_module, gpu=gpu, max_candidates=3)
    assert outcome.candidates_tried == 3
    assert outcome.fault_simulations == 5


def test_iterative_compacted_is_executable(du_module, gpu, imm):
    outcome = compact_iteratively(imm, du_module, gpu=gpu)
    tracing = run_logic_tracing(outcome.compacted, du_module, gpu=gpu)
    assert tracing.cycles == outcome.compacted_cycles


def test_reordering_baseline_on_sfu(sfu_module, gpu):
    ptp, __ = generate_sfu_imm(sfu_module, seed=8, atpg_random_patterns=24,
                               atpg_max_backtracks=3)
    outcome = compact_by_reordering(ptp, sfu_module, gpu=gpu)
    assert outcome.fault_simulations == 1
    assert outcome.compacted_size <= outcome.original_size
    # The reordered program still executes and preserves module FC.
    fault_list = FaultList(sfu_module.netlist)
    simulator = FaultSimulator(sfu_module.netlist)
    original = simulator.run(
        run_logic_tracing(ptp, sfu_module, gpu=gpu)
        .pattern_report.to_pattern_set(), fault_list)
    reordered = simulator.run(
        run_logic_tracing(outcome.compacted, sfu_module, gpu=gpu)
        .pattern_report.to_pattern_set(), fault_list)
    assert reordered.num_detected == original.num_detected
