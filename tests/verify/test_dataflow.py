"""Def-use dataflow rules (DF001..DF003) on handcrafted programs."""

from repro.verify import build_context
from repro.verify.dataflow import check_dataflow


def _df(make_ptp, source, **kwargs):
    ctx = build_context(make_ptp(source, **kwargs))
    return [(d.rule, d.pc) for d in check_dataflow(ctx)]


def test_use_before_def_fires_df001(make_ptp):
    diags = _df(make_ptp, """
        IADD R2, R3, R4
        GST [R0+0x8000], R2
        EXIT
    """)
    assert ("DF001", 0) in diags


def test_tid_and_sig_registers_are_predefined(make_ptp):
    # R0 (TID) and R1 (signature) are live-in by convention; reading
    # them is never a use-before-def.
    diags = _df(make_ptp, """
        IADD R2, R0, R1
        GST [R0+0x8000], R2
        EXIT
    """)
    assert all(rule != "DF001" for rule, _ in diags)


def test_straight_line_def_use_chain_is_clean(make_ptp):
    assert _df(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
    """) == []


def test_overwritten_value_fires_df002(make_ptp):
    diags = _df(make_ptp, """
        MOV32I R2, 1
        MOV32I R2, 2
        GST [R0+0x8000], R2
        EXIT
    """)
    assert diags == [("DF002", 0)]


def test_guarded_redefinition_does_not_kill_the_first_write(make_ptp):
    # When the guard is false the pc-0 value survives to the store, so
    # the first write is NOT dead.
    assert _df(make_ptp, """
        MOV32I R2, 1
        MOV32I R3, 2
        ISETP  P0, R0, R3, LT
        @P0 MOV32I R2, 9
        GST [R0+0x8000], R2
        EXIT
    """) == []


def test_predicate_read_before_late_definition_fires_df003(make_ptp):
    diags = _df(make_ptp, """
        @P1 MOV32I R2, 1
        ISETP P1, R0, R0, EQ
        @P1 GST [R0+0x8000], R2
        EXIT
    """)
    assert ("DF003", 0) in diags


def test_never_written_guard_predicate_is_silent(make_ptp):
    # The IMM generator deliberately guards with a never-written
    # predicate (launch-False); DF003 must not fire on the idiom.
    diags = _df(make_ptp, """
        @P2 MOV32I R2, 1
        GST [R0+0x8000], R2
        EXIT
    """)
    assert all(rule != "DF003" for rule, _ in diags)


def test_sig_register_is_live_out_at_exit(make_ptp):
    # The final fold into R1 (signature) must not be a dead write.
    diags = _df(make_ptp, """
        XOR R1, R1, R0
        EXIT
    """)
    assert all(rule != "DF002" for rule, _ in diags)
