"""Observability reachability rules (OBS001..OBS003)."""

from repro.verify import build_context, verify_ptp
from repro.verify.observability import check_observability


def _obs(make_ptp, source, **kwargs):
    ctx = build_context(make_ptp(source, **kwargs))
    return [(d.rule, d.pc) for d in check_observability(ctx)]


def test_value_reaching_store_is_clean(make_ptp):
    assert _obs(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
    """) == []


def test_unobserved_result_fires_obs001(make_ptp):
    diags = _obs(make_ptp, """
        MOV32I R2, 5
        MOV32I R3, 6
        GST [R0+0x8000], R3
        EXIT
    """)
    assert diags == [("OBS001", 0)]


def test_isetp_counts_as_observable_sink(make_ptp):
    # The compare steers which stores execute, so a value feeding it is
    # observable even though it never lands in memory itself.
    assert _obs(make_ptp, """
        MOV32I R2, 5
        ISETP P0, R2, R0, LT
        @P0 GST [R0+0x8000], R2
        EXIT
    """) == []


def test_signature_ptp_without_flush_fires_obs002(make_ptp):
    diags = _obs(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
    """, uses_signature=True)
    assert ("OBS002", None) in diags


def test_signature_flush_before_exit_satisfies_obs002(make_ptp):
    # A GST of R1 (the signature register) immediately before EXIT is
    # the stage-4 pinned flush.
    assert _obs(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        GST [R0+0xF000], R1
        EXIT
    """, uses_signature=True) == []


def test_storeless_program_fires_obs003(make_ptp):
    diags = _obs(make_ptp, "MOV32I R2, 5\nEXIT")
    assert ("OBS003", None) in diags


def test_verifier_suppresses_obs001_shadowed_by_df002(make_ptp):
    # pc 0 is a dead write AND unobservable; one finding (DF002) is
    # enough.
    report = verify_ptp(make_ptp("""
        MOV32I R2, 5
        MOV32I R2, 6
        GST [R0+0x8000], R2
        EXIT
    """))
    assert [(d.rule, d.pc) for d in report.diagnostics] == [("DF002", 0)]
