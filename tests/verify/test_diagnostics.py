"""Diagnostic model: severities, ordering, serialization, rendering."""

import pytest

from repro.verify import ERROR, RULES, WARNING, Diagnostic, VerificationReport


def test_catalog_severities_are_valid():
    assert RULES
    for rule, (severity, title) in RULES.items():
        assert severity in (ERROR, WARNING)
        assert title


def test_of_takes_severity_from_catalog():
    assert Diagnostic.of("CFG001", "x").severity == ERROR
    assert Diagnostic.of("DF001", "x").severity == WARNING


def test_of_rejects_unknown_rule():
    with pytest.raises(KeyError):
        Diagnostic.of("XYZ999", "x")


def test_render_mentions_rule_severity_and_pc():
    line = Diagnostic.of("MEM001", "missing word", pc=7).render()
    assert line == "[MEM001 error] pc 7: missing word"
    blockwide = Diagnostic.of("CFG004", "dead", block=3).render()
    assert blockwide == "[CFG004 warning] BB3: dead"


def test_diagnostic_dict_round_trip():
    diag = Diagnostic.of("CMP003", "pinned gone", pc=2, block=1)
    assert Diagnostic.from_dict(diag.to_dict()) == diag


def test_report_sorts_errors_first_then_program_order():
    report = VerificationReport("X")
    report.add(Diagnostic.of("DF002", "w", pc=1))
    report.add(Diagnostic.of("MEM001", "e", pc=9))
    report.add(Diagnostic.of("CFG001", "e", pc=3))
    report.add(Diagnostic.of("OBS001", "w", pc=0))
    assert [d.rule for d in report.diagnostics] == [
        "CFG001", "MEM001", "OBS001", "DF002"]


def test_report_ok_and_partitions():
    clean = VerificationReport("X")
    assert clean.ok and not clean.errors and not clean.warnings
    warned = VerificationReport("X", [Diagnostic.of("DF001", "w", pc=0)])
    assert warned.ok and len(warned.warnings) == 1
    failed = VerificationReport("X", [Diagnostic.of("MEM001", "e", pc=0)])
    assert not failed.ok and len(failed.errors) == 1


def test_report_by_rule_and_rule_ids():
    report = VerificationReport("X", [Diagnostic.of("DF001", "a", pc=0),
                                      Diagnostic.of("DF001", "b", pc=1),
                                      Diagnostic.of("OBS003", "c")])
    assert len(report.by_rule("DF001")) == 2
    assert report.rule_ids == {"DF001", "OBS003"}


def test_report_dict_round_trip():
    report = VerificationReport("IMM", [Diagnostic.of("MEM001", "e", pc=4),
                                        Diagnostic.of("DF002", "w", pc=2)])
    data = report.to_dict()
    assert data["ptp"] == "IMM"
    assert data["errors"] == 1 and data["warnings"] == 1
    restored = VerificationReport.from_dict(data)
    assert restored.ptp_name == "IMM"
    assert restored.diagnostics == report.diagnostics


def test_render_text_clean_and_dirty():
    assert VerificationReport("IMM").render_text() == \
        "IMM: 0 error(s), 0 warning(s) — clean"
    dirty = VerificationReport("IMM", [Diagnostic.of("MEM001", "gone", pc=4)])
    text = dirty.render_text()
    assert text.startswith("IMM: 1 error(s), 0 warning(s)")
    assert "[MEM001 error] pc 4: gone" in text
