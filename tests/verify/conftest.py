"""Shared helpers for the verifier tests: assemble-and-wrap factories."""

import pytest

from repro.isa import assemble
from repro.stl.ptp import ParallelTestProgram


@pytest.fixture
def make_ptp():
    """Factory: assembly source -> ParallelTestProgram."""

    def build(source, name="T", target="sp_core", **kwargs):
        return ParallelTestProgram(name, target, assemble(source), **kwargs)

    return build
