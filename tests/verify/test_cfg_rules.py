"""CFG well-formedness rules (CFG001..CFG007) on handcrafted programs."""

from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import Op
from repro.stl.ptp import ParallelTestProgram
from repro.verify import build_context, verify_ptp
from repro.verify.cfg_rules import check_cfg, out_of_range_targets


def _rules(report):
    return report.rule_ids


def test_out_of_range_target_fires_cfg001_without_crashing():
    # The assembler rejects this, so build the program by hand — the
    # verifier must still survive it (build_cfg would crash).
    program = Program([Instruction(Op.BRA, target=99),
                       Instruction(Op.EXIT)])
    ptp = ParallelTestProgram("T", "sp_core", program)
    report = verify_ptp(ptp)
    assert _rules(report) == {"CFG001"}
    assert not report.ok
    assert report.diagnostics[0].pc == 0


def test_out_of_range_targets_helper():
    program = [Instruction(Op.BRA, target=5), Instruction(Op.EXIT)]
    assert [pc for pc, _ in out_of_range_targets(program)] == [0]
    assert out_of_range_targets([Instruction(Op.EXIT)]) == []


def test_empty_program_is_cfg003(make_ptp):
    ptp = ParallelTestProgram("T", "sp_core", Program([]))
    diags = check_cfg(build_context(ptp))
    assert [d.rule for d in diags] == ["CFG003"]


def test_fall_off_end_fires_cfg002_and_cfg003(make_ptp):
    report = verify_ptp(make_ptp("IADD R2, R2, R2"))
    assert {"CFG002", "CFG003"} <= _rules(report)
    assert not report.ok


def test_infinite_loop_has_no_reachable_exit(make_ptp):
    report = verify_ptp(make_ptp("BRA 0"))
    assert "CFG003" in _rules(report)
    assert "CFG002" not in _rules(report)  # the BRA cannot fall through


def test_code_after_exit_is_unreachable_cfg004(make_ptp):
    report = verify_ptp(make_ptp("""
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
        NOP
        EXIT
    """))
    assert _rules(report) == {"CFG004"}
    assert report.ok  # dead code is a warning, not an error


def test_ssy_to_non_join_fires_cfg005(make_ptp):
    report = verify_ptp(make_ptp("SSY 2\nEXIT\nNOP\nEXIT"))
    assert "CFG005" in _rules(report)


def test_paired_ssy_join_is_clean(make_ptp):
    report = verify_ptp(make_ptp("""
        MOV32I R2, 1
        SSY 3
        BRA 3
        JOIN
        GST [R0+0x8000], R2
        EXIT
    """))
    assert report.rule_ids == set()


def test_bare_join_fires_cfg006(make_ptp):
    report = verify_ptp(make_ptp("JOIN\nEXIT"))
    assert "CFG006" in _rules(report)


def test_ret_without_cal_fires_cfg007(make_ptp):
    report = verify_ptp(make_ptp("NOP\nRET"))
    assert "CFG007" in _rules(report)


def test_ret_with_cal_is_accepted(make_ptp):
    report = verify_ptp(make_ptp("CAL 2\nEXIT\nRET"))
    assert "CFG007" not in _rules(report)
