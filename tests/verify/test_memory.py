"""Memory-image consistency rules (MEM001..MEM003)."""

from repro.gpu.config import KernelConfig
from repro.verify import build_context
from repro.verify.memory import check_memory


def _mem(make_ptp, source, **kwargs):
    ctx = build_context(make_ptp(source, **kwargs))
    return [(d.rule, d.pc) for d in check_memory(ctx)]


def test_gld_of_missing_operand_array_fires_mem001(make_ptp):
    diags = _mem(make_ptp, """
        GLD R2, [R0+0x0]
        GST [R0+0x8000], R2
        EXIT
    """, kernel=KernelConfig(block_threads=4))
    assert diags == [("MEM001", 0)]


def test_gld_of_present_array_is_clean(make_ptp):
    assert _mem(make_ptp, """
        GLD R2, [R0+0x0]
        GST [R0+0x8000], R2
        EXIT
    """, kernel=KernelConfig(block_threads=4),
        global_image={0: 1, 1: 2, 2: 3, 3: 4}) == []


def test_partial_array_still_fires_mem001(make_ptp):
    # Only 2 of the 4 per-thread words exist.
    diags = _mem(make_ptp, """
        GLD R2, [R0+0x0]
        GST [R0+0x8000], R2
        EXIT
    """, kernel=KernelConfig(block_threads=4), global_image={0: 1, 1: 2})
    assert diags == [("MEM001", 0)]


def test_cld_of_undefined_constant_fires_mem001(make_ptp):
    diags = _mem(make_ptp, """
        CLD R2, c[0x4]
        GST [R0+0x8000], R2
        EXIT
    """)
    assert diags == [("MEM001", 0)]
    assert _mem(make_ptp, """
        CLD R2, c[0x4]
        GST [R0+0x8000], R2
        EXIT
    """, kernel=KernelConfig(const_words={4: 7})) == []


def test_orphaned_operand_words_fire_mem002(make_ptp):
    diags = _mem(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
    """, global_image={0x10: 1, 0x11: 2})
    assert diags == [("MEM002", None)]


def test_unknown_base_register_suppresses_mem002(make_ptp):
    # A GLD through a computed base may read anything; stay quiet.
    assert _mem(make_ptp, """
        GLD R2, [R3+0x0]
        GST [R0+0x8000], R2
        EXIT
    """, global_image={0x10: 1}) == []


def test_store_into_operand_region_fires_mem003(make_ptp):
    diags = _mem(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x10], R2
        EXIT
    """)
    assert ("MEM003", 1) in diags


def test_store_at_output_base_is_clean(make_ptp):
    assert _mem(make_ptp, """
        MOV32I R2, 5
        GST [R0+0x8000], R2
        EXIT
    """) == []
