"""Compaction-safety diff rules (CMP001..CMP007) against real stage-4
output: the pipeline's own reductions must pass, targeted corruptions of
them must trip exactly the invariant they break."""

from dataclasses import replace

import pytest

from repro.core.pipeline import CompactionPipeline
from repro.gpu.config import KernelConfig
from repro.isa.instruction import Instruction, Program
from repro.isa.opcodes import Op
from repro.netlist.modules import build_decoder_unit
from repro.stl import generate_cntrl, generate_imm
from repro.verify import check_compaction


@pytest.fixture(scope="module")
def imm_pair():
    module = build_decoder_unit()
    ptp = generate_imm(seed=2, num_sbs=5)
    outcome = CompactionPipeline(module, verify="off").compact(
        ptp, evaluate=False)
    return ptp, outcome


@pytest.fixture(scope="module")
def cntrl_pair():
    module = build_decoder_unit()
    ptp = generate_cntrl(seed=2, num_sbs=4)
    outcome = CompactionPipeline(module, verify="off").compact(
        ptp, evaluate=False)
    return ptp, outcome


def _rules(diags):
    return {d.rule for d in diags}


def test_identity_pair_is_clean(imm_pair):
    ptp, _ = imm_pair
    assert check_compaction(ptp, ptp) == []


def test_real_reduction_is_clean_with_and_without_pc_map(imm_pair):
    ptp, outcome = imm_pair
    assert check_compaction(ptp, outcome.compacted,
                            pc_map=outcome.reduction.pc_map,
                            partition=outcome.partition) == []
    assert check_compaction(ptp, outcome.compacted) == []


def test_inserted_instruction_fires_cmp001(imm_pair):
    ptp, outcome = imm_pair
    instrs = list(outcome.compacted.program)
    alien = Instruction(Op.MOV32I, dst=60, imm=0xDEAD)
    mutated = outcome.compacted.with_program(
        Program(instrs[:3] + [alien] + instrs[3:]))
    assert "CMP001" in _rules(check_compaction(ptp, mutated))


def test_bogus_pc_map_fires_cmp001(imm_pair):
    ptp, outcome = imm_pair
    bad_map = [0] * len(ptp.program)  # not strictly increasing
    diags = check_compaction(ptp, outcome.compacted, pc_map=bad_map)
    assert "CMP001" in _rules(diags)


def test_altered_inadmissible_block_fires_cmp002(cntrl_pair):
    ptp, outcome = cntrl_pair
    inadmissible = sorted(outcome.partition.inadmissible_blocks)
    assert inadmissible, "CNTRL must have a parametric loop"
    block = outcome.partition.cfg.blocks[inadmissible[0]]
    instrs = list(ptp.program)
    mutated = ptp.with_program(
        Program(instrs[:block.start] + instrs[block.start + 1:]))
    diags = check_compaction(ptp, mutated, partition=outcome.partition)
    assert "CMP002" in _rules(diags)


def test_dropped_preamble_fires_cmp003(imm_pair):
    ptp, outcome = imm_pair
    instrs = list(outcome.compacted.program)
    mutated = outcome.compacted.with_program(Program(instrs[1:]))
    assert "CMP003" in _rules(check_compaction(ptp, mutated))


def test_dropped_loop_branch_fires_cmp004(cntrl_pair):
    ptp, outcome = cntrl_pair
    instrs = list(outcome.compacted.program)
    backward = [pc for pc, instr in enumerate(instrs)
                if instr.op is Op.BRA and instr.target <= pc]
    assert backward, "compacted CNTRL must keep its loop"
    pc = backward[0]
    mutated = outcome.compacted.with_program(
        Program(instrs[:pc] + instrs[pc + 1:]))
    assert "CMP004" in _rules(check_compaction(ptp, mutated))


def test_altered_image_word_fires_cmp005(imm_pair, cntrl_pair):
    for ptp, outcome in (imm_pair, cntrl_pair):
        image = dict(outcome.compacted.global_image)
        if image:
            address = next(iter(image))
            image[address] ^= 0xFF
        else:
            image[0x4000] = 1  # added word: equally forbidden
        mutated = replace(outcome.compacted, global_image=image)
        assert "CMP005" in _rules(check_compaction(ptp, mutated))


def test_changed_kernel_fires_cmp006(imm_pair):
    ptp, outcome = imm_pair
    mutated = replace(outcome.compacted,
                      kernel=KernelConfig(block_threads=64))
    assert "CMP006" in _rules(check_compaction(ptp, mutated))


def test_retargeted_branch_fires_cmp007(cntrl_pair):
    ptp, outcome = cntrl_pair
    instrs = list(outcome.compacted.program)
    branches = [pc for pc, instr in enumerate(instrs)
                if instr.op is Op.BRA]
    assert branches
    pc = branches[0]
    wrong = (instrs[pc].target + 1) % len(instrs)
    instrs[pc] = replace(instrs[pc], target=wrong)
    mutated = outcome.compacted.with_program(Program(instrs))
    assert "CMP007" in _rules(check_compaction(ptp, mutated))
