"""Acceptance: every seed generator's PTP lints with zero errors, and
targeted mutations of clean seeds trip exactly the intended rule."""

from dataclasses import replace

import pytest

from repro.isa.instruction import Program
from repro.isa.opcodes import Op
from repro.stl import generate_cntrl, generate_imm, generate_mem, generate_rand
from repro.stl.generators.atpg_based import generate_sfu_imm, generate_tpgen
from repro.stl.signature import SIG_REG
from repro.verify import verify_ptp


@pytest.mark.parametrize("generate", [
    lambda: generate_imm(seed=4, num_sbs=10),
    lambda: generate_mem(seed=4, num_sbs=10),
    lambda: generate_cntrl(seed=4, num_sbs=6),
    lambda: generate_rand(seed=4, num_sbs=10),
], ids=["imm", "mem", "cntrl", "rand"])
def test_pseudorandom_seed_ptps_have_zero_errors(generate):
    report = verify_ptp(generate())
    assert report.ok, report.render_text()


def test_atpg_seed_ptps_have_zero_errors(sp_module, sfu_module):
    tpgen, _ = generate_tpgen(sp_module, atpg_random_patterns=32,
                              atpg_max_backtracks=4)
    report = verify_ptp(tpgen)
    assert report.ok, report.render_text()
    sfu, _ = generate_sfu_imm(sfu_module, atpg_random_patterns=32,
                              atpg_max_backtracks=3)
    report = verify_ptp(sfu)
    assert report.ok, report.render_text()


def test_dropping_a_definition_fires_df001():
    ptp = generate_rand(seed=4, num_sbs=6)
    instrs = list(ptp.program)
    baseline = len(verify_ptp(ptp).by_rule("DF001"))
    # pc 2 defines a pool register whose value is read downstream and
    # has no earlier definition; removing it orphans the read.
    assert instrs[2].op is Op.MOV32I
    mutated = ptp.with_program(Program(instrs[:2] + instrs[3:]))
    report = verify_ptp(mutated)
    assert len(report.by_rule("DF001")) > baseline


def test_deleting_signature_flush_fires_obs002():
    ptp = generate_rand(seed=4, num_sbs=6)
    assert ptp.uses_signature
    instrs = list(ptp.program)
    flush = {pc for pc, instr in enumerate(instrs)
             if instr.op is Op.GST and instr.src_b == SIG_REG}
    assert flush
    mutated = ptp.with_program(
        Program([i for pc, i in enumerate(instrs) if pc not in flush]))
    report = verify_ptp(mutated)
    assert "OBS002" in report.rule_ids
    assert not report.ok


def test_orphaning_operand_arrays_fires_mem002():
    ptp = generate_mem(seed=4, num_sbs=6)
    instrs = list(ptp.program)
    glds = {pc for pc, instr in enumerate(instrs) if instr.op is Op.GLD}
    assert glds
    mutated = ptp.with_program(
        Program([i for pc, i in enumerate(instrs) if pc not in glds]))
    report = verify_ptp(mutated)
    assert "MEM002" in report.rule_ids


def test_retargeting_a_branch_out_of_range_fires_cfg001():
    ptp = generate_cntrl(seed=4, num_sbs=6)
    instrs = list(ptp.program)
    branches = [pc for pc, instr in enumerate(instrs)
                if instr.op is Op.BRA]
    assert branches
    pc = branches[0]
    instrs[pc] = replace(instrs[pc], target=len(instrs) + 50)
    report = verify_ptp(ptp.with_program(Program(instrs)))
    assert report.rule_ids == {"CFG001"}
    assert not report.ok
