"""Verify gate wired into pipeline, campaign, checkpoint, and metrics."""

import pytest

from repro.core import CampaignCheckpoint, CompactionPipeline, run_stl_campaign
from repro.core.campaign import COMPACTED, FAILED
from repro.core.pipeline import STAGES, VERIFY_MODES
from repro.core.reduction import ReductionResult
from repro.errors import CompactionError, VerificationError
from repro.exec.metrics import RunMetrics
from repro.isa.instruction import Program
from repro.stl import SelfTestLibrary, generate_imm
from repro.verify import VerificationReport


def _break_reduction(monkeypatch):
    """Make stage 4 drop the pinned preamble instruction — a CMP003
    violation the verifier must catch."""
    from repro.core import pipeline as pipeline_module

    real = pipeline_module.reduce_ptp

    def broken(labeled, partition):
        result = real(labeled, partition)
        instrs = list(result.compacted.program)
        return ReductionResult(
            compacted=result.compacted.with_program(Program(instrs[1:])),
            small_blocks=result.small_blocks,
            removed_blocks=result.removed_blocks,
            kept_blocks=result.kept_blocks,
            pc_map=None)

    monkeypatch.setattr(pipeline_module, "reduce_ptp", broken)


def test_verify_is_a_pipeline_stage():
    assert "verify" in STAGES
    assert STAGES.index("verify") == STAGES.index("evaluation") - 1
    assert VERIFY_MODES == ("strict", "warn", "off")


def test_unknown_verify_mode_rejected(du_module):
    with pytest.raises(CompactionError, match="verify"):
        CompactionPipeline(du_module, verify="loud")


def test_strict_gate_passes_clean_compaction_and_counts_metrics(du_module):
    metrics = RunMetrics()
    pipe = CompactionPipeline(du_module, verify="strict", metrics=metrics)
    outcome = pipe.compact(generate_imm(seed=4, num_sbs=5), evaluate=False)
    assert isinstance(outcome.verification, VerificationReport)
    assert outcome.verification.ok
    assert metrics.counters["verify.runs"] == 1
    assert metrics.counters.get("verify.errors", 0) == 0
    assert "verify" in metrics.stage_seconds
    assert "verify" in metrics.summary_table()


def test_strict_gate_rejects_broken_reduction(du_module, monkeypatch):
    _break_reduction(monkeypatch)
    pipe = CompactionPipeline(du_module, verify="strict")
    with pytest.raises(VerificationError) as excinfo:
        pipe.compact(generate_imm(seed=4, num_sbs=5), evaluate=False)
    assert excinfo.value.stage == "verify"
    report = excinfo.value.report
    assert report is not None and not report.ok
    assert "CMP003" in report.rule_ids


def test_warn_mode_records_but_does_not_raise(du_module, monkeypatch):
    _break_reduction(monkeypatch)
    pipe = CompactionPipeline(du_module, verify="warn")
    outcome = pipe.compact(generate_imm(seed=4, num_sbs=5), evaluate=False)
    assert not outcome.verification.ok
    assert "CMP003" in outcome.verification.rule_ids


def test_off_mode_skips_verification(du_module, monkeypatch):
    _break_reduction(monkeypatch)
    pipe = CompactionPipeline(du_module, verify="off")
    outcome = pipe.compact(generate_imm(seed=4, num_sbs=5), evaluate=False)
    assert outcome.verification is None


def test_campaign_isolates_verify_failure_and_checkpoints_diagnostics(
        du_module, gpu, monkeypatch, tmp_path):
    _break_reduction(monkeypatch)
    checkpoint = CampaignCheckpoint(str(tmp_path / "campaign.json"))
    stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=5)])
    reports = run_stl_campaign(stl, {"decoder_unit": du_module}, gpu=gpu,
                               checkpoint=checkpoint, evaluate=False,
                               verify="strict")
    record = reports[0].records[0]
    assert record.status == FAILED
    assert record.failure.error_code == "VerificationError"
    assert record.failure.stage == "verify"
    diagnostics = record.failure.context["diagnostics"]
    assert any(d["rule"] == "CMP003" for d in diagnostics)
    # The checkpoint carries the findings for post-mortems and resumes.
    reloaded = CampaignCheckpoint.load(str(tmp_path / "campaign.json"))
    assert reloaded.ptp_entry("IMM")["status"] == FAILED
    saved = reloaded.ptp_diagnostics("IMM")
    assert any(d["rule"] == "CMP003" for d in saved)


def test_campaign_warn_mode_checkpoints_compacted_diagnostics(
        du_module, gpu, tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path / "campaign.json"))
    stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=5)])
    reports = run_stl_campaign(stl, {"decoder_unit": du_module}, gpu=gpu,
                               checkpoint=checkpoint, evaluate=False,
                               verify="warn")
    assert reports[0].records[0].status == COMPACTED
    reloaded = CampaignCheckpoint.load(str(tmp_path / "campaign.json"))
    saved = reloaded.ptp_diagnostics("IMM")
    assert all(d["severity"] == "warning" for d in saved)
    numbers = reloaded.ptp_entry("IMM")["numbers"]
    assert numbers["verify_errors"] == 0
    assert numbers["verify_warnings"] == len(saved)


def test_checkpoint_diagnostics_accessor_defaults_empty(tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path / "c.json"))
    assert checkpoint.ptp_diagnostics("nope") == []
    checkpoint.record_ptp("X", "failed")
    assert checkpoint.ptp_diagnostics("X") == []
    checkpoint.save()
    assert CampaignCheckpoint.load(
        str(tmp_path / "c.json")).ptp_diagnostics("X") == []
