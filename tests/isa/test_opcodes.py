"""Opcode table invariants."""


from repro.isa import opcodes
from repro.isa.opcodes import Fmt, Op, Unit


def test_exactly_52_opcodes():
    # FlexGripPlus supports up to 52 assembly instructions (Section II.B).
    assert opcodes.NUM_OPCODES == 52
    assert len(list(Op)) == 52


def test_binary_opcodes_are_unique():
    codes = [info.code for info in opcodes.INFO.values()]
    assert len(set(codes)) == len(codes)


def test_codes_fit_in_one_byte():
    assert all(0 < info.code < 256 for info in opcodes.INFO.values())


def test_by_code_round_trip():
    for op, info in opcodes.INFO.items():
        assert opcodes.BY_CODE[info.code] is op


def test_by_mnemonic_round_trip():
    for op in Op:
        assert opcodes.BY_MNEMONIC[op.value] is op


def test_every_unit_is_populated():
    used_units = {info.unit for info in opcodes.INFO.values()}
    assert used_units == set(Unit)


def test_sfu_ops_are_fp_unary():
    for op in (Op.RCP, Op.RSQ, Op.SIN, Op.COS, Op.LG2, Op.EX2):
        info = opcodes.info(op)
        assert info.unit is Unit.SFU
        assert info.fmt is Fmt.RR
        assert info.is_fp


def test_immediate_forms_flagged():
    assert opcodes.is_immediate_form(Op.IADD32I)
    assert opcodes.is_immediate_form(Op.MOV32I)
    assert not opcodes.is_immediate_form(Op.IADD)
    assert not opcodes.is_immediate_form(Op.GLD)


def test_branch_classification():
    assert opcodes.is_branch(Op.BRA)
    assert opcodes.is_branch(Op.EXIT)
    assert not opcodes.is_branch(Op.SSY)
    assert opcodes.is_control(Op.SSY)
    assert opcodes.is_control(Op.JOIN)
    assert not opcodes.is_control(Op.IADD)


def test_memory_classification():
    for op in (Op.GLD, Op.GST, Op.SLD, Op.SST, Op.CLD):
        assert opcodes.is_memory(op)
    assert not opcodes.is_memory(Op.MOV)


def test_control_ops_never_write_registers():
    for op, info in opcodes.INFO.items():
        if info.unit is Unit.CTRL:
            assert not info.writes_reg, op


def test_latencies_positive():
    assert all(info.latency >= 1 for info in opcodes.INFO.values())


def test_cmp_and_sreg_tables():
    assert len(opcodes.CmpOp) == 6
    assert opcodes.CMP_BY_NAME["LT"] is opcodes.CmpOp.LT
    assert opcodes.CMP_BY_CODE[4] is opcodes.CmpOp.EQ
    assert opcodes.SREG_BY_NAME["TID_X"] is opcodes.SpecialReg.TID_X
    assert opcodes.SREG_BY_CODE[5] is opcodes.SpecialReg.WARPID
