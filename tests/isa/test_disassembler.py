"""Disassembler output formats and assembler round trips (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.isa import Instruction, Pred, assemble, disassemble, format_instruction
from repro.isa.opcodes import CmpOp, Op, SpecialReg


def test_each_format_rendering():
    cases = [
        (Instruction(Op.IADD, dst=1, src_a=2, src_b=3),
         "IADD R1, R2, R3"),
        (Instruction(Op.IMAD, dst=1, src_a=2, src_b=3, src_c=4),
         "IMAD R1, R2, R3, R4"),
        (Instruction(Op.IADD32I, dst=1, src_a=2, imm=0xFF),
         "IADD32I R1, R2, 0xFF"),
        (Instruction(Op.MOV32I, dst=1, imm=0xDEAD),
         "MOV32I R1, 0xDEAD"),
        (Instruction(Op.NOT, dst=1, src_a=2), "NOT R1, R2"),
        (Instruction(Op.ISET, dst=1, src_a=2, src_b=3, cmp=CmpOp.GE),
         "ISET R1, R2, R3, GE"),
        (Instruction(Op.ISETP, dst=1, src_a=2, src_b=3, cmp=CmpOp.NE),
         "ISETP P1, R2, R3, NE"),
        (Instruction(Op.SEL, dst=1, src_a=2, src_b=3, src_c=0),
         "SEL R1, P0, R2, R3"),
        (Instruction(Op.S2R, dst=1, sreg=SpecialReg.LANEID),
         "S2R R1, LANEID"),
        (Instruction(Op.GLD, dst=1, src_a=2, imm=0x10),
         "GLD R1, [R2+0x10]"),
        (Instruction(Op.GST, src_a=2, src_b=3, imm=0x10),
         "GST [R2+0x10], R3"),
        (Instruction(Op.CLD, dst=1, imm=0x4), "CLD R1, c[0x4]"),
        (Instruction(Op.BRA, target=7), "BRA 7"),
        (Instruction(Op.EXIT), "EXIT"),
        (Instruction(Op.NOP, pred=Pred(2, True)), "@!P2 NOP"),
    ]
    for instr, expected in cases:
        assert format_instruction(instr) == expected


def test_disassemble_joins_lines():
    text = disassemble([Instruction(Op.NOP), Instruction(Op.EXIT)])
    assert text == "NOP\nEXIT"


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_generated_ptps_round_trip_through_text(seed):
    """Disassembling a generated PTP and re-assembling reproduces it."""
    from repro.stl import generate_imm

    ptp = generate_imm(seed=seed, num_sbs=2)
    text = disassemble(list(ptp.program))
    again = assemble(text)
    assert list(again) == list(ptp.program)
