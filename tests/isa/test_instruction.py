"""Instruction model: validation, dataflow queries, predication."""

import pytest

from repro.errors import IsaError
from repro.isa import NUM_PREDS, NUM_REGS, Instruction, Pred
from repro.isa.opcodes import CmpOp, Op, SpecialReg


def test_basic_construction():
    instr = Instruction(Op.IADD, dst=1, src_a=2, src_b=3)
    assert instr.dst == 1
    assert instr.unit.value == "sp"


def test_register_bounds_checked():
    with pytest.raises(IsaError):
        Instruction(Op.IADD, dst=NUM_REGS, src_a=0, src_b=0)
    with pytest.raises(IsaError):
        Instruction(Op.IADD, dst=0, src_a=-1, src_b=0)


def test_predicate_bounds_checked():
    with pytest.raises(IsaError):
        Instruction(Op.ISETP, dst=NUM_PREDS, src_a=0, src_b=0)
    with pytest.raises(IsaError):
        Pred(5)


def test_imm32_normalized_to_unsigned():
    instr = Instruction(Op.MOV32I, dst=1, imm=-1)
    assert instr.imm == 0xFFFFFFFF


def test_imm32_range_checked():
    with pytest.raises(IsaError):
        Instruction(Op.MOV32I, dst=1, imm=1 << 33)


def test_imm24_range_checked():
    with pytest.raises(IsaError):
        Instruction(Op.GLD, dst=1, src_a=0, imm=1 << 24)
    Instruction(Op.GLD, dst=1, src_a=0, imm=(1 << 24) - 1)  # ok


def test_branch_target_checked():
    with pytest.raises(IsaError):
        Instruction(Op.BRA, target=-1)


def test_with_pred():
    base = Instruction(Op.IADD, dst=1, src_a=2, src_b=3)
    guarded = base.with_pred(2, negate=True)
    assert guarded.pred == Pred(2, True)
    assert base.pred is None  # immutability


def test_with_target_only_on_branches():
    bra = Instruction(Op.BRA, target=4)
    assert bra.with_target(9).target == 9
    with pytest.raises(IsaError):
        Instruction(Op.IADD, dst=1, src_a=2, src_b=3).with_target(0)


def test_regs_read_written_rrr():
    instr = Instruction(Op.IADD, dst=1, src_a=2, src_b=3)
    assert instr.regs_read() == {2, 3}
    assert instr.regs_written() == {1}


def test_regs_read_written_imad():
    instr = Instruction(Op.IMAD, dst=1, src_a=2, src_b=3, src_c=4)
    assert instr.regs_read() == {2, 3, 4}


def test_regs_read_store():
    instr = Instruction(Op.GST, src_a=5, src_b=6, imm=0)
    assert instr.regs_read() == {5, 6}
    assert instr.regs_written() == set()


def test_regs_written_isetp_is_predicate_not_gpr():
    instr = Instruction(Op.ISETP, dst=1, src_a=2, src_b=3, cmp=CmpOp.LT)
    assert instr.regs_written() == set()
    assert instr.preds_written() == {1}


def test_preds_read_includes_guard_and_sel():
    instr = Instruction(Op.SEL, dst=1, src_a=2, src_b=3, src_c=2)
    assert instr.preds_read() == {2}
    guarded = instr.with_pred(0)
    assert guarded.preds_read() == {0, 2}


def test_mov32i_reads_nothing():
    instr = Instruction(Op.MOV32I, dst=1, imm=5)
    assert instr.regs_read() == set()


def test_s2r_fields():
    instr = Instruction(Op.S2R, dst=7, sreg=SpecialReg.LANEID)
    assert instr.regs_read() == set()
    assert instr.regs_written() == {7}


def test_str_is_disassembly():
    instr = Instruction(Op.IADD, dst=1, src_a=2, src_b=3)
    assert str(instr) == "IADD R1, R2, R3"
