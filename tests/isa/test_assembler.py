"""Assembler: syntax coverage, label resolution, error reporting."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Instruction, Pred, assemble, disassemble
from repro.isa.opcodes import CmpOp, Op, SpecialReg


def test_all_formats_assemble():
    program = assemble("""
        MOV32I R1, 0x10
        IADD   R2, R1, R1
        IADD32I R3, R2, 0xFF
        IMAD   R4, R1, R2, R3
        NOT    R5, R4
        ISET   R6, R1, R2, GE
        ISETP  P1, R1, R2, NE
        SEL    R7, P1, R1, R2
        S2R    R8, LANEID
        GLD    R9, [R8+0x40]
        GST    [R8+0x44], R9
        SLD    R10, [R8]
        SST    [R8], R10
        CLD    R11, c[0x4]
        FADD   R12, R1, R2
        SIN    R13, R12
        SSY    18
        BRA    18
        JOIN
        BAR
        NOP
        EXIT
    """)
    assert len(program) == 22
    assert program[0] == Instruction(Op.MOV32I, dst=1, imm=0x10)
    assert program[6].cmp is CmpOp.NE
    assert program[8].sreg is SpecialReg.LANEID
    assert program[11].imm == 0  # [R8] means offset zero


def test_labels_forward_and_backward():
    program = assemble("""
    top:
        IADD R1, R1, R2
        BRA bottom
        BRA top
    bottom:
        EXIT
    """)
    assert program[1].target == 3
    assert program[2].target == 0
    assert program.labels == {"top": 0, "bottom": 3}


def test_numeric_branch_targets():
    program = assemble("BRA 5\nNOP\nNOP\nNOP\nNOP\nEXIT")
    assert program[0].target == 5


def test_predicates():
    program = assemble("""
        ISETP P0, R1, R2, LT
    @P0 IADD R3, R1, R2
    @!P1 NOP
    """)
    assert program[1].pred == Pred(0, False)
    assert program[2].pred == Pred(1, True)


def test_comments_and_blank_lines():
    program = assemble("""
        ; full comment line
        NOP          ; trailing
        NOP          // c++ style
        NOP          # hash style
    """)
    assert len(program) == 3


def test_error_unknown_mnemonic():
    with pytest.raises(AssemblyError, match="FROB"):
        assemble("FROB R1, R2")


def test_error_wrong_operand_count():
    with pytest.raises(AssemblyError, match="expects 3"):
        assemble("IADD R1, R2")


def test_error_undefined_label_reports_line():
    with pytest.raises(AssemblyError, match="nowhere"):
        assemble("BRA nowhere")


def test_error_duplicate_label():
    with pytest.raises(AssemblyError, match="duplicate"):
        assemble("x:\nNOP\nx:\nNOP")


def test_error_bad_memory_operand():
    with pytest.raises(AssemblyError):
        assemble("GLD R1, [R2*4]")


def test_error_bad_guard():
    with pytest.raises(AssemblyError):
        assemble("@P9 NOP")


def test_error_line_numbers():
    try:
        assemble("NOP\nNOP\nBOGUS")
    except AssemblyError as exc:
        assert exc.line == 3
    else:
        pytest.fail("expected AssemblyError")


def test_disassemble_round_trip():
    source = """
        MOV32I R1, 0xDEAD
        IADD32I R2, R1, 0x1
        ISETP P0, R2, R1, GT
    @P0 BRA 0
        GST [R2+0x8], R1
        EXIT
    """
    program = assemble(source)
    again = assemble(disassemble(program.instructions))
    assert list(again) == list(program)


def test_error_numeric_branch_target_out_of_range():
    with pytest.raises(AssemblyError, match="outside the program"):
        assemble("NOP\nBRA 7\nEXIT")


def test_error_out_of_range_target_reports_line():
    try:
        assemble("NOP\nBRA 7\nEXIT")
    except AssemblyError as exc:
        assert exc.line == 2
    else:
        pytest.fail("expected AssemblyError")


def test_error_negative_branch_target():
    with pytest.raises(AssemblyError, match="outside the program"):
        assemble("BRA -1\nEXIT")


def test_error_trailing_label_is_out_of_range():
    # A label after the last instruction resolves to len(program).
    with pytest.raises(AssemblyError, match="outside the program"):
        assemble("BRA end\nEXIT\nend:")


def test_branch_to_last_instruction_is_in_range():
    program = assemble("BRA 1\nEXIT")
    assert program[0].target == 1


def test_error_out_of_range_cal_and_ssy():
    with pytest.raises(AssemblyError, match="outside the program"):
        assemble("CAL 9\nEXIT")
    with pytest.raises(AssemblyError, match="outside the program"):
        assemble("SSY 9\nJOIN\nEXIT")
