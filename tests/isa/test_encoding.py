"""64-bit codec: field placement, round trips (incl. hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.isa import (
    Instruction,
    Pred,
    bits_to_word,
    decode,
    decode_program,
    encode,
    encode_program,
    word_to_bits,
)
from repro.isa.opcodes import CmpOp, Fmt, Op, SpecialReg, info

ALL_OPS = list(Op)


def test_opcode_field_is_top_byte():
    word = encode(Instruction(Op.NOP))
    assert (word >> 56) & 0xFF == info(Op.NOP).code


def test_unguarded_pred_field_is_7():
    word = encode(Instruction(Op.NOP))
    assert (word >> 53) & 0x7 == 7


def test_guard_encoding():
    word = encode(Instruction(Op.NOP, pred=Pred(2, True)))
    assert (word >> 53) & 0x7 == 2
    assert (word >> 52) & 1 == 1


def test_imm32_occupies_low_word():
    word = encode(Instruction(Op.MOV32I, dst=3, imm=0xDEADBEEF))
    assert word & 0xFFFFFFFF == 0xDEADBEEF


def test_branch_target_low_24():
    word = encode(Instruction(Op.BRA, target=0x123456))
    assert word & 0xFFFFFF == 0x123456


def test_memory_fields():
    word = encode(Instruction(Op.GST, src_a=9, src_b=33, imm=0xABCDE))
    assert (word >> 40) & 0x3F == 9
    assert (word >> 30) & 0x3F == 33
    assert word & 0xFFFFFF == 0xABCDE


def test_decode_rejects_unknown_opcode():
    with pytest.raises(EncodingError):
        decode(0xFF << 56)


def test_decode_rejects_out_of_range_word():
    with pytest.raises(EncodingError):
        decode(1 << 64)
    with pytest.raises(EncodingError):
        decode(-1)


def test_decode_rejects_bad_pred_index():
    word = encode(Instruction(Op.NOP))
    word = (word & ~(0x7 << 53)) | (5 << 53)  # pred index 5 is invalid
    with pytest.raises(EncodingError):
        decode(word)


def _random_instruction(draw):
    op = draw(st.sampled_from(ALL_OPS))
    fmt = info(op).fmt
    reg = st.integers(0, 63)
    pred_reg = st.integers(0, 3)
    kwargs = {"op": op}
    if draw(st.booleans()):
        kwargs["pred"] = Pred(draw(pred_reg), draw(st.booleans()))
    if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RR, Fmt.RRC, Fmt.RSEL, Fmt.RSREG,
               Fmt.RRI32, Fmt.RI32, Fmt.LD, Fmt.CONSTLD):
        kwargs["dst"] = draw(reg)
    if fmt is Fmt.PRC:
        kwargs["dst"] = draw(pred_reg)
    if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RR, Fmt.RSEL,
               Fmt.RRI32, Fmt.LD, Fmt.ST):
        kwargs["src_a"] = draw(reg)
    if fmt in (Fmt.RRR, Fmt.RRRR, Fmt.RRC, Fmt.PRC, Fmt.RSEL, Fmt.ST):
        kwargs["src_b"] = draw(reg)
    if fmt is Fmt.RRRR:
        kwargs["src_c"] = draw(reg)
    if fmt is Fmt.RSEL:
        kwargs["src_c"] = draw(pred_reg)
    if fmt in (Fmt.RRI32, Fmt.RI32):
        kwargs["imm"] = draw(st.integers(0, 0xFFFFFFFF))
    if fmt in (Fmt.LD, Fmt.ST, Fmt.CONSTLD):
        kwargs["imm"] = draw(st.integers(0, (1 << 24) - 1))
    if fmt in (Fmt.RRC, Fmt.PRC):
        kwargs["cmp"] = draw(st.sampled_from(list(CmpOp)))
    if fmt is Fmt.RSREG:
        kwargs["sreg"] = draw(st.sampled_from(list(SpecialReg)))
    if fmt is Fmt.BRANCH:
        kwargs["target"] = draw(st.integers(0, (1 << 24) - 1))
    return Instruction(**kwargs)


@given(st.data())
@settings(max_examples=300, deadline=None)
def test_encode_decode_round_trip(data):
    instr = _random_instruction(data.draw)
    assert decode(encode(instr)) == instr


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_encoding_is_injective_on_distinct_instructions(data):
    a = _random_instruction(data.draw)
    b = _random_instruction(data.draw)
    if a != b:
        assert encode(a) != encode(b)


def test_program_codec_round_trip():
    program = [Instruction(Op.MOV32I, dst=1, imm=7),
               Instruction(Op.IADD, dst=2, src_a=1, src_b=1),
               Instruction(Op.EXIT)]
    assert decode_program(encode_program(program)) == program


@given(st.integers(0, (1 << 64) - 1))
@settings(max_examples=100, deadline=None)
def test_word_bits_round_trip(word):
    assert bits_to_word(word_to_bits(word)) == word
