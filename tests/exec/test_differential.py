"""Differential oracle: pool runs are bit-identical to inline runs.

The reproduction's correctness rests on fault-coverage numbers being
independent of *how* the simulation executes, so the load-bearing test is
a hypothesis oracle over random netlists and pattern sets: detection
words, first-detection ccs, and SpT signature verdicts must be
bit-identical across {inline, pool} x {cone, event, batch} x jobs in
{1, 2, 4, 7} x chunk sizes — including the cross-PTP fault-dropping
carry-over with the drop broadcast active.

The schedulers (and their worker pools) are module-scoped: every example
streams through the same long-lived workers, which is exactly the
campaign-lifetime reuse the pool exists for (and what surfaces stale-state
bugs a fresh-pool-per-test suite would hide).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import RunMetrics, ShardedFaultScheduler
from repro.faults import FaultList, FaultSimulator
from repro.faults.dropping import FaultListReport
from repro.faults.fault import enumerate_faults
from repro.netlist import GateType, Netlist, PatternSet
from repro.netlist.gates import ARITY

#: Explicit job counts force real pools even on this 1-CPU CI machine
#: (resolve_jobs only clamps env/default-resolved counts).
JOB_COUNTS = (1, 2, 4, 7)

#: Chunk sizes cycled per example: degenerate (1), tiny, and dynamic.
CHUNK_SIZES = (None, 1, 3, 17)


def _random_netlist(rng, num_inputs=4, num_gates=18, num_outputs=3):
    nl = Netlist("rand")
    nets = [nl.add_input() for __ in range(num_inputs)]
    for __ in range(num_gates):
        gate_type = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR, GateType.NOT,
                                GateType.XNOR, GateType.MUX, GateType.BUF])
        ins = [rng.choice(nets) for __ in range(ARITY[gate_type])]
        nets.append(nl.add_gate(gate_type, *ins))
    for net in rng.sample(nets[-(num_outputs * 3):], num_outputs):
        nl.mark_output(net)
    nl.finalize()
    return nl


def _random_patterns(rng, nl, count):
    patterns = PatternSet(nl)
    for __ in range(count):
        patterns.add({net: rng.getrandbits(1) for net in nl.inputs})
    return patterns


@pytest.fixture(scope="module")
def pools():
    """One persistent scheduler per job count, shared by every example."""
    metrics = RunMetrics()
    schedulers = {
        jobs: ShardedFaultScheduler(jobs=jobs, min_faults_per_shard=1,
                                    metrics=metrics)
        for jobs in JOB_COUNTS
    }
    yield schedulers
    for scheduler in schedulers.values():
        scheduler.close()


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=8, deadline=None)
def test_pool_is_bit_identical_across_engines_jobs_and_chunks(pools, seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, rng.randrange(1, 12))
    # The uncollapsed list mixes canonical faults (shipped as ids) with
    # input-pin faults outside the collapsed enumeration (shipped as
    # literal StuckAtFault objects) — both entry paths stay covered.
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    reference = FaultSimulator(nl, engine="cone").run(patterns, fault_list)

    for engine in ("event", "cone", "batch"):
        simulator = FaultSimulator(nl, engine=engine)
        inline = simulator.run(patterns, fault_list)
        assert inline.detection_words == reference.detection_words
        assert inline.first_detection == reference.first_detection
        for jobs in JOB_COUNTS:
            scheduler = pools[jobs]
            scheduler.chunk_size = CHUNK_SIZES[seed % len(CHUNK_SIZES)]
            pooled = scheduler.run(simulator, patterns, fault_list)
            assert pooled.detection_words == reference.detection_words
            assert pooled.first_detection == reference.first_detection
            assert pooled.pattern_count == reference.pattern_count


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=6, deadline=None)
def test_cross_ptp_dropping_carry_over_matches_sequential(pools, seed):
    """Three simulated PTPs under fault dropping with the drop broadcast
    active: per-PTP detection results AND the drop-state fingerprint after
    every PTP must match the sequential cone-walk reference exactly."""
    rng = random.Random(seed)
    nl = _random_netlist(rng, num_gates=24)
    ptp_patterns = [_random_patterns(rng, nl, rng.randrange(1, 10))
                    for __ in range(3)]

    sequential = FaultListReport(nl)
    reference_sim = FaultSimulator(nl, engine="cone")
    history = []
    for i, patterns in enumerate(ptp_patterns):
        result = reference_sim.run(patterns, sequential.remaining)
        sequential.drop_result(result, "ptp{}".format(i))
        history.append((result.detection_words, result.first_detection,
                        sequential.fingerprint()))

    for jobs in (2, 7):
        for engine in ("event", "cone", "batch"):
            report = FaultListReport(nl)
            simulator = FaultSimulator(nl, engine=engine)
            scheduler = pools[jobs]
            scheduler.chunk_size = CHUNK_SIZES[(seed + jobs)
                                               % len(CHUNK_SIZES)]
            for i, patterns in enumerate(ptp_patterns):
                result = scheduler.run(simulator, patterns,
                                       report.remaining,
                                       skip_dropped=True)
                __, records = report.drop_result(result,
                                                 "ptp{}".format(i))
                scheduler.broadcast_drops(simulator, records)
                words, firsts, fingerprint = history[i]
                assert result.detection_words == words
                assert result.first_detection == firsts
                assert report.fingerprint() == fingerprint


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=6, deadline=None)
def test_signature_verdicts_match_across_engines_with_pooled_module_run(
        pools, seed):
    """SpT verdicts are engine-independent, and the module-observability
    view of the same workload through the pool matches them too (the
    signature fold itself is sequential by design — per-thread MISR state
    does not shard)."""
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    count = rng.randrange(2, 10)
    patterns = _random_patterns(rng, nl, count)
    fault_list = FaultList(nl)
    result_word = list(dict.fromkeys(nl.outputs))
    sequences = {"t0": list(range(count))}

    cone_result, cone_verdicts = FaultSimulator(
        nl, engine="cone").run_signature(patterns, fault_list, result_word,
                                         sequences)
    event_result, event_verdicts = FaultSimulator(
        nl, engine="event").run_signature(patterns, fault_list,
                                          result_word, sequences)
    assert event_verdicts == cone_verdicts
    assert event_result.detection_words == cone_result.detection_words
    batch_result, batch_verdicts = FaultSimulator(
        nl, engine="batch").run_signature(patterns, fault_list,
                                          result_word, sequences)
    assert batch_verdicts == cone_verdicts
    assert batch_result.detection_words == cone_result.detection_words

    simulator = FaultSimulator(nl, engine="event")
    pooled = pools[4].run(simulator, patterns, fault_list)
    assert pooled.detection_words == cone_result.detection_words
    assert pooled.first_detection == cone_result.first_detection
