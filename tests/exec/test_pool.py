"""Worker pool: persistence, drop broadcast, death recovery, poison.

The soak-style tests here kill workers (idle and mid-run) and feed the
pool a poisoned chunk, asserting the merged results stay bit-identical to
the sequential run and the pool remains usable afterwards — the scheduler
layer's fault isolation must never corrupt a FaultListReport.
"""

import os
import signal

import pytest

from repro.core.tracing import run_logic_tracing
from repro.errors import SchedulerError
from repro.exec import RunMetrics, ShardedFaultScheduler, WorkerPool
from repro.faults import OUTPUT_PIN, FaultList, FaultSimulator, StuckAtFault
from repro.faults.dropping import FaultListReport
from repro.stl import generate_imm


@pytest.fixture(scope="module")
def workload(du_module):
    """(simulator, patterns, fault_list) for one decoder-unit PTP."""
    ptp = generate_imm(seed=3, num_sbs=4)
    tracing = run_logic_tracing(ptp, du_module)
    patterns = tracing.pattern_report.to_pattern_set()
    return (FaultSimulator(du_module.netlist), patterns,
            FaultList(du_module.netlist))


# -- persistence ------------------------------------------------------------

def test_workers_and_priming_persist_across_runs(workload):
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    metrics = RunMetrics()
    with WorkerPool(2, metrics=metrics) as pool:
        for __ in range(3):
            words, firsts, busy, stats, skipped = pool.simulate(
                simulator, patterns, fault_list)
            assert words == sequential.detection_words
            assert firsts == sequential.first_detection
            assert skipped == 0
    # Spawned once, primed once per worker — not once per run.
    assert metrics.pool["workers_spawned"] == 2
    assert metrics.pool["contexts_shipped"] == 2
    assert metrics.pool["patterns_shipped"] == 2
    assert metrics.pool["worker_init_events"] == 2
    assert metrics.pool["worker_init_seconds"] > 0.0


def test_broadcast_drops_skip_without_stealing_attribution(workload):
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    detected = [(fault, first)
                for fault, first in zip(fault_list,
                                        sequential.first_detection)
                if first is not None]
    assert detected, "workload must detect something"
    metrics = RunMetrics()
    with WorkerPool(2, metrics=metrics) as pool:
        added = pool.broadcast_drops(simulator, detected[:10])
        assert added == 10
        # Re-broadcast is first-writer-wins: nothing new.
        assert pool.broadcast_drops(simulator, detected[:10]) == 0
        words, firsts, __, __, skipped = pool.simulate(
            simulator, patterns, fault_list, skip_dropped=True)
        dropped = {fault for fault, __ in detected[:10]}
        for i, fault in enumerate(fault_list):
            if fault in dropped:
                # A skipped fault reports undetected — its detection
                # credit stays with the PTP that dropped it.
                assert words[i] == 0 and firsts[i] is None
            else:
                assert words[i] == sequential.detection_words[i]
                assert firsts[i] == sequential.first_detection[i]
        assert skipped == 10
        # Without opting in, broadcast drops change nothing.
        words, firsts, __, __, skipped = pool.simulate(
            simulator, patterns, fault_list)
        assert words == sequential.detection_words
        assert skipped == 0
    assert metrics.pool["drops_broadcast"] == 10


# -- worker death -----------------------------------------------------------

def test_idle_worker_kill_is_respawned_next_run(workload):
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    metrics = RunMetrics()
    with WorkerPool(2, metrics=metrics) as pool:
        words, __, __, __, __ = pool.simulate(simulator, patterns,
                                              fault_list)
        assert words == sequential.detection_words
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        words, firsts, __, __, __ = pool.simulate(simulator, patterns,
                                                  fault_list)
        assert words == sequential.detection_words
        assert firsts == sequential.first_detection
    assert metrics.pool["worker_deaths"] >= 1
    assert metrics.pool["workers_spawned"] >= 3


def test_mid_run_worker_death_requeues_orphans(workload, monkeypatch):
    """Kill one worker right after it is primed (so its dispatched chunks
    are orphaned mid-run): the survivor must absorb the requeued chunks
    and the merge must stay bit-identical."""
    import repro.exec.pool as pool_mod

    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    metrics = RunMetrics()
    original_prime = pool_mod.WorkerPool._prime
    killed = []

    def killing_prime(self, worker, context, pats, pat_id):
        original_prime(self, worker, context, pats, pat_id)
        if not killed:
            killed.append(worker.worker_id)
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=5)

    monkeypatch.setattr(pool_mod.WorkerPool, "_prime", killing_prime)
    with WorkerPool(2, metrics=metrics) as pool:
        words, firsts, __, __, __ = pool.simulate(
            simulator, patterns, fault_list, chunk_size=16)
    assert killed, "the kill hook never fired"
    assert words == sequential.detection_words
    assert firsts == sequential.first_detection
    assert metrics.pool["worker_deaths"] >= 1
    assert metrics.pool["chunks_requeued"] >= 1


def test_every_worker_dead_finishes_inline(workload):
    """With no survivors the parent simulates the rest itself — the run
    completes (venue changes, result doesn't) instead of hanging."""
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    metrics = RunMetrics()
    with WorkerPool(1, metrics=metrics) as pool:
        words, __, __, __, __ = pool.simulate(simulator, patterns,
                                              fault_list)
        assert words == sequential.detection_words
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=5)
        # Keep the pool from respawning so the inline path is forced.
        pool.target_workers = 0
        words, firsts, __, __, __ = pool.simulate(simulator, patterns,
                                                  fault_list)
    assert words == sequential.detection_words
    assert firsts == sequential.first_detection
    assert metrics.pool["chunks_inline"] >= 1


# -- poisoned chunks --------------------------------------------------------

def _poison(netlist):
    """A structurally valid-looking fault whose net does not exist — it
    crashes any engine that simulates it, on any worker."""
    return StuckAtFault(net=netlist.num_nets + 1000, gate=None,
                        pin=OUTPUT_PIN, stuck_at=1)


def test_poisoned_chunk_raises_scheduler_error_and_pool_survives(workload):
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    poisoned = FaultList(simulator.netlist,
                         list(fault_list)[:40] + [_poison(simulator.netlist)])
    metrics = RunMetrics()
    with ShardedFaultScheduler(jobs=2, min_faults_per_shard=1,
                               metrics=metrics) as scheduler:
        with pytest.raises(SchedulerError):
            scheduler.run(simulator, patterns, poisoned)
        # Retried on another worker, then failed inline too.
        assert metrics.pool["chunk_errors"] >= 2
        assert metrics.pool["chunks_requeued"] >= 1
        # The pool is still usable and still exact afterwards.
        result = scheduler.run(simulator, patterns, fault_list)
        assert result.detection_words == sequential.detection_words
        assert result.first_detection == sequential.first_detection


def test_poisoned_chunk_failure_does_not_corrupt_fault_report(workload):
    """Campaign-style soak: PTP 1 drops normally, PTP 2's simulation hits
    a poisoned chunk and fails — the report must still hold exactly PTP
    1's drops, and PTP 3 must then simulate as if PTP 2 never happened."""
    simulator, patterns, __ = workload
    report = FaultListReport(simulator.netlist)
    with ShardedFaultScheduler(jobs=2, min_faults_per_shard=1,
                               metrics=RunMetrics()) as scheduler:
        first = scheduler.run(simulator, patterns, report.remaining,
                              skip_dropped=True)
        __, records = report.drop_result(first, "PTP1")
        scheduler.broadcast_drops(simulator, records)
        fingerprint = report.fingerprint()

        poisoned = FaultList(simulator.netlist,
                             list(report.remaining)[:20]
                             + [_poison(simulator.netlist)])
        with pytest.raises(SchedulerError):
            scheduler.run(simulator, patterns, poisoned)
        # Isolation: the failed simulation left no trace in the report.
        assert report.fingerprint() == fingerprint

        third = scheduler.run(simulator, patterns, report.remaining,
                              skip_dropped=True)
        reference = simulator.run(patterns, report.remaining)
        assert third.detection_words == reference.detection_words
        assert third.first_detection == reference.first_detection


# -- scheduler-level switches ----------------------------------------------

def test_no_pool_and_single_job_run_inline(workload):
    simulator, patterns, fault_list = workload
    sequential = simulator.run(patterns, fault_list)
    for scheduler in (ShardedFaultScheduler(jobs=1, metrics=RunMetrics()),
                      ShardedFaultScheduler(jobs=4, pool=False,
                                            metrics=RunMetrics())):
        with scheduler:
            assert scheduler.broadcast_drops(simulator, []) == 0
            result = scheduler.run(simulator, patterns, fault_list)
            assert result.detection_words == sequential.detection_words
            assert scheduler._pool is None, "no pool may be constructed"
        (run,) = scheduler.metrics.fault_sim_runs
        assert run["jobs"] == 1
