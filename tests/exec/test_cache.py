"""Artifact cache: content addressing, atomicity, LRU cap, memoization."""

import json
import os

import pytest

from repro.exec import (
    ArtifactCache,
    RunMetrics,
    cached_logic_tracing,
    default_cache_dir,
    module_fingerprint,
)
from repro.gpu import Gpu
from repro.gpu.config import GpuConfig
from repro.stl import generate_imm


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


# -- keys -------------------------------------------------------------------

def test_key_is_stable_and_content_sensitive(cache, du_module, sp_module):
    ptp_a = generate_imm(seed=1, num_sbs=3)
    ptp_b = generate_imm(seed=2, num_sbs=3)
    config = GpuConfig()
    key = cache.key_for(ptp_a, config, du_module, "tracing")
    assert key == cache.key_for(ptp_a, config, du_module, "tracing")
    assert len(key) == 64 and int(key, 16) >= 0
    # Any key ingredient changing changes the key.
    assert key != cache.key_for(ptp_b, config, du_module, "tracing")
    assert key != cache.key_for(ptp_a, config, du_module, "other-stage")
    assert key != cache.key_for(ptp_a, GpuConfig(num_sps=16), du_module,
                                "tracing")
    assert key != cache.key_for(ptp_a, config, sp_module, "tracing")


def test_module_fingerprint_distinguishes_builds(du_module, sp_module,
                                                 sfu_module):
    prints = {module_fingerprint(m)
              for m in (du_module, sp_module, sfu_module)}
    assert len(prints) == 3
    assert module_fingerprint(du_module) == module_fingerprint(du_module)


def test_default_cache_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == str(tmp_path / "elsewhere")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir().endswith(os.path.join(".cache", "repro"))


# -- store ------------------------------------------------------------------

def test_put_get_round_trip_and_counters(cache):
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, {"cycles": 42, "rows": [[1, 2]]})
    assert cache.get(key) == {"cycles": 42, "rows": [[1, 2]]}
    assert cache.stats == {"hits": 1, "misses": 1, "puts": 1,
                           "evictions": 0, "corrupt": 0}
    # Entries fan out under the first two key hex chars.
    assert os.path.exists(os.path.join(cache.directory, "ab",
                                       key + ".json"))


def test_corrupt_entry_is_a_miss_and_deleted(cache):
    key = "cd" + "1" * 62
    cache.put(key, {"ok": True})
    path = os.path.join(cache.directory, "cd", key + ".json")
    with open(path, "w") as handle:
        handle.write("{torn")
    assert cache.get(key) is None
    assert not os.path.exists(path)
    assert cache.stats["misses"] == 1


def test_no_temp_files_left_behind(cache):
    for i in range(5):
        cache.put("{:064x}".format(i), {"i": i})
    leftovers = [name for __, __d, files in os.walk(cache.directory)
                 for name in files if name.endswith(".tmp")]
    assert leftovers == []


def test_lru_eviction_drops_oldest_first(tmp_path):
    # Cap sized to hold one entry (~80 bytes) but not two.
    cache = ArtifactCache(str(tmp_path / "small"), max_bytes=100)
    old_key, new_key = "{:064x}".format(1), "{:064x}".format(2)
    cache.put(old_key, {"payload": "x" * 64})
    # Backdate the first entry so mtime ordering is unambiguous.
    old_path = cache._path_of(old_key)
    assert os.path.exists(old_path)
    os.utime(old_path, (1, 1))
    cache.put(new_key, {"payload": "y" * 64})
    assert not os.path.exists(old_path)
    assert cache.stats["evictions"] == 1
    # The newest entry survives the cap sweep that its own put triggered.
    assert cache.get(new_key) is not None


def test_clear_removes_entries(cache):
    for i in range(3):
        cache.put("{:064x}".format(i), {"i": i})
    cache.clear()
    assert cache._entries() == []


# -- tracing memoization ----------------------------------------------------

def test_cached_logic_tracing_round_trip(cache, du_module):
    ptp = generate_imm(seed=4, num_sbs=4)
    gpu = Gpu()
    metrics = RunMetrics()
    first, key, hit = cached_logic_tracing(ptp, du_module, gpu, cache,
                                           metrics)
    assert not hit and key is not None
    second, key2, hit2 = cached_logic_tracing(ptp, du_module, gpu, cache,
                                              metrics)
    assert hit2 and key2 == key
    # The reconstructed artifact is equivalent in every consumed field...
    assert second.cycles == first.cycles
    assert second.instructions == first.instructions
    assert second.trace == first.trace
    assert second.pattern_report.records == first.pattern_report.records
    # ...except the deliberately uncached raw kernel result.
    assert second.kernel_result is None
    assert metrics.cache == {"hits": 1, "misses": 1, "puts": 0,
                             "evictions": 0}


def test_cached_payload_feeds_identical_fault_sim(cache, du_module):
    from repro.faults import FaultList, FaultSimulator

    ptp = generate_imm(seed=4, num_sbs=4)
    gpu = Gpu()
    fresh, __, __h = cached_logic_tracing(ptp, du_module, gpu, cache)
    cached, __k, hit = cached_logic_tracing(ptp, du_module, gpu, cache)
    assert hit
    simulator = FaultSimulator(du_module.netlist)
    fault_list = FaultList(du_module.netlist)
    a = simulator.run(fresh.pattern_report.to_pattern_set(), fault_list)
    b = simulator.run(cached.pattern_report.to_pattern_set(), fault_list)
    assert a.detection_words == b.detection_words
    assert a.first_detection == b.first_detection


def test_without_cache_degrades_to_plain_tracing(du_module):
    ptp = generate_imm(seed=4, num_sbs=3)
    tracing, key, hit = cached_logic_tracing(ptp, du_module, Gpu(), None)
    assert key is None and not hit
    assert tracing.kernel_result is not None


def test_entry_files_are_compact_json(cache, du_module):
    ptp = generate_imm(seed=4, num_sbs=3)
    __, key, __h = cached_logic_tracing(ptp, du_module, Gpu(), cache)
    with open(cache._path_of(key)) as handle:
        payload = json.load(handle)
    assert set(payload) == {"cycles", "instructions", "trace", "patterns"}
