"""Sharded fault simulation: bit-identical merge, dropping, fallback."""

import pytest

from repro.core.pipeline import CompactionPipeline
from repro.core.tracing import run_logic_tracing
from repro.errors import SchedulerError
from repro.exec import RunMetrics, ShardedFaultScheduler, resolve_jobs, run_sharded, shard_bounds
from repro.faults import FaultList, FaultSimulator
from repro.stl import generate_imm, generate_mem


@pytest.fixture(scope="module")
def du_workload(du_module):
    """(simulator, patterns, fault_list) for one decoder-unit PTP."""
    ptp = generate_imm(seed=11, num_sbs=5)
    tracing = run_logic_tracing(ptp, du_module)
    patterns = tracing.pattern_report.to_pattern_set()
    return (FaultSimulator(du_module.netlist), patterns,
            FaultList(du_module.netlist))


# -- shard geometry ---------------------------------------------------------

def test_shard_bounds_cover_exactly_once():
    for count in (0, 1, 5, 7, 100):
        for shards in (1, 2, 4, 7, 200):
            bounds = shard_bounds(count, shards)
            covered = [i for start, stop in bounds
                       for i in range(start, stop)]
            assert covered == list(range(count))
            assert all(stop > start for start, stop in bounds)
            # Balanced: sizes differ by at most one.
            sizes = [stop - start for start, stop in bounds]
            assert not sizes or max(sizes) - min(sizes) <= 1


def test_resolve_jobs_env_and_validation(monkeypatch):
    import repro.exec.scheduler as sched_mod

    monkeypatch.setattr(sched_mod.os, "cpu_count", lambda: 8)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(None, default=6) == 6
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2          # explicit beats the env
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(SchedulerError):
        resolve_jobs(None)
    with pytest.raises(SchedulerError):
        resolve_jobs(0)
    with pytest.raises(SchedulerError):
        resolve_jobs(-2)


def test_resolve_jobs_clamps_to_inline_on_one_cpu(monkeypatch):
    """Regression: on a 1-CPU machine a pool can only lose, so env- and
    default-resolved job counts short-circuit to the inline path.  An
    explicit count is still honored (tests and benchmarks deliberately
    exercise pools on one CPU)."""
    import repro.exec.scheduler as sched_mod

    monkeypatch.setattr(sched_mod.os, "cpu_count", lambda: 1)
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert resolve_jobs(None) == 1
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None, default=6) == 1
    assert resolve_jobs(4) == 4          # explicit stays explicit
    # cpu_count() can return None; treat it like one CPU.
    monkeypatch.setattr(sched_mod.os, "cpu_count", lambda: None)
    assert resolve_jobs(None, default=2) == 1


# -- merge equivalence ------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2, 4, 7])
def test_sharded_result_bit_identical_to_sequential(du_workload, jobs):
    simulator, patterns, fault_list = du_workload
    sequential = simulator.run(patterns, fault_list)
    sharded = run_sharded(simulator, patterns, fault_list, jobs=jobs)
    assert sharded.pattern_count == sequential.pattern_count
    assert sharded.detection_words == sequential.detection_words
    assert sharded.first_detection == sequential.first_detection
    assert list(sharded.fault_list) == list(sequential.fault_list)


def test_sharded_run_records_metrics(du_workload):
    simulator, patterns, fault_list = du_workload
    metrics = RunMetrics()
    with ShardedFaultScheduler(jobs=2, metrics=metrics) as scheduler:
        scheduler.run(simulator, patterns, fault_list)
    (run,) = metrics.fault_sim_runs
    assert run["faults"] == len(fault_list)
    assert run["patterns"] == patterns.count
    assert run["jobs"] == 2
    # Chunk streaming: several chunks per worker, one busy sample each.
    assert run["chunks"] == run["shards"] >= 2
    assert run["shard_utilization"] > 0.0
    assert metrics.pool["workers_spawned"] == 2
    assert metrics.pool["chunks_dispatched"] >= run["chunks"]


def test_small_fault_lists_run_inline(du_workload):
    simulator, patterns, fault_list = du_workload
    metrics = RunMetrics()
    scheduler = ShardedFaultScheduler(jobs=4, metrics=metrics)
    small = FaultList(simulator.netlist, list(fault_list)[:16])
    result = scheduler.run(simulator, patterns, small)
    assert result.detection_words == simulator.run(
        patterns, small).detection_words
    (run,) = metrics.fault_sim_runs
    assert run["jobs"] == 1              # below jobs * min_faults_per_shard


def test_pool_failure_falls_back_inline(du_workload, monkeypatch):
    import repro.exec.scheduler as sched_mod

    class BrokenPool:
        def __init__(self, *args, **kwargs):
            pass

        def simulate(self, *args, **kwargs):
            raise OSError("no process spawning in this sandbox")

        def close(self):
            pass

    monkeypatch.setattr(sched_mod, "WorkerPool", BrokenPool)
    simulator, patterns, fault_list = du_workload
    metrics = RunMetrics()
    with ShardedFaultScheduler(jobs=4, metrics=metrics) as scheduler:
        result = scheduler.run(simulator, patterns, fault_list)
    assert result.first_detection == simulator.run(
        patterns, fault_list).first_detection
    assert metrics.counters["scheduler_inline_fallback"] == 1


# -- dropping carried across PTPs ------------------------------------------

def _run_dropping_pipeline(du_module, job_count, engine):
    """IMM then MEM under fault dropping; returns (pipeline, outcomes,
    per-PTP drop-state fingerprint sequence)."""
    pipeline = CompactionPipeline(du_module, jobs=job_count, engine=engine)
    outcomes = []
    fingerprints = []
    for ptp in (generate_imm(seed=7, num_sbs=4),
                generate_mem(seed=7, num_sbs=4)):
        outcomes.append(pipeline.compact(ptp, evaluate=False))
        fingerprints.append(pipeline.fault_report.fingerprint())
    return pipeline, outcomes, fingerprints


@pytest.mark.parametrize("engine", ["event", "cone"])
@pytest.mark.parametrize("jobs", [2, 4])
def test_dropping_across_two_ptps_survives_sharding_and_engine(
        du_module, jobs, engine):
    """IMM then MEM under fault dropping: every per-PTP artifact of the
    sharded pipeline — under either propagation engine — is bit-identical
    to the sequential cone-walk pipeline's, including the fingerprint of
    the drop state after every PTP."""
    seq_pipeline, seq_outcomes, seq_fps = _run_dropping_pipeline(
        du_module, 1, "cone")
    par_pipeline, par_outcomes, par_fps = _run_dropping_pipeline(
        du_module, jobs, engine)

    for seq, par in zip(seq_outcomes, par_outcomes):
        # Stage-3 results merge bit-identically...
        assert (par.fault_result.detection_words
                == seq.fault_result.detection_words)
        assert (par.fault_result.first_detection
                == seq.fault_result.first_detection)
        # ...so the second PTP simulated the same remaining list and the
        # whole compaction is equivalent.
        assert len(par.fault_result.fault_list) == len(
            seq.fault_result.fault_list)
        assert par.newly_dropped_faults == seq.newly_dropped_faults
        assert list(par.compacted.program) == list(seq.compacted.program)
    # The drop state agreed after EVERY PTP, not just at the end.
    assert par_fps == seq_fps
    assert (par_pipeline.fault_report.remaining_faults
            == seq_pipeline.fault_report.remaining_faults)
    seq_pipeline.close()
    par_pipeline.close()
