"""Run metrics: timers, throughput, serialization, summary rendering."""

import json

from repro.exec import RunMetrics


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def test_stage_timer_accumulates_across_entries():
    clock = FakeClock()
    metrics = RunMetrics(clock=clock)
    with metrics.stage_timer("tracing"):
        clock.advance(1.5)
    with metrics.stage_timer("tracing"):
        clock.advance(0.5)
    with metrics.stage_timer("reduction"):
        clock.advance(0.25)
    assert metrics.stage_seconds["tracing"] == 2.0
    assert metrics.stage_counts["tracing"] == 2
    assert metrics.stage_seconds["reduction"] == 0.25


def test_stage_timer_records_on_exception():
    clock = FakeClock()
    metrics = RunMetrics(clock=clock)
    try:
        with metrics.stage_timer("partition"):
            clock.advance(3.0)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert metrics.stage_seconds["partition"] == 3.0


def test_fault_sim_rates_and_utilization():
    metrics = RunMetrics()
    metrics.record_fault_sim(faults=1000, patterns=100, seconds=2.0,
                             jobs=4, shard_busy_seconds=[1.0, 1.0, 1.0,
                                                         1.0])
    metrics.record_fault_sim(faults=500, patterns=50, seconds=0.5)
    assert metrics.total_faults_simulated == 1500
    assert metrics.aggregate_rate("faults") == 1500 / 2.5
    assert metrics.aggregate_rate("patterns") == 150 / 2.5
    assert metrics.mean_shard_utilization() == 4.0 / 8.0
    zero = RunMetrics()
    assert zero.aggregate_rate("faults") is None
    assert zero.mean_shard_utilization() is None


def test_to_dict_and_save_round_trip(tmp_path):
    metrics = RunMetrics()
    metrics.record_fault_sim(faults=10, patterns=5, seconds=1.0, jobs=2,
                             shard_busy_seconds=[0.4, 0.4])
    metrics.record_cache_event(True)
    metrics.record_cache_event(False)
    metrics.bump("scheduler_inline_fallback")
    path = tmp_path / "out" / "metrics.json"
    metrics.save(str(path))
    document = json.loads(path.read_text())
    assert document["version"] == 3
    assert document["fault_sim"]["total_faults"] == 10
    assert document["fault_sim"]["mean_shard_utilization"] == 0.4
    assert document["cache"] == {"hits": 1, "misses": 1, "puts": 0,
                                 "evictions": 0}
    assert document["counters"]["scheduler_inline_fallback"] == 1
    leftovers = [p.name for p in path.parent.iterdir()
                 if p.name.endswith(".tmp")]
    assert leftovers == []


def test_absorb_cache_stats_overwrites_counters():
    metrics = RunMetrics()
    metrics.record_cache_event(True)
    metrics.absorb_cache_stats({"hits": 7, "misses": 2, "puts": 3,
                                "evictions": 1})
    assert metrics.cache["hits"] == 7
    assert metrics.cache["evictions"] == 1


def test_summary_table_mentions_headline_numbers():
    clock = FakeClock()
    metrics = RunMetrics(clock=clock)
    with metrics.stage_timer("fault_simulation"):
        clock.advance(2.0)
    metrics.record_fault_sim(faults=200, patterns=40, seconds=2.0, jobs=2,
                             shard_busy_seconds=[0.9, 0.9])
    metrics.absorb_cache_stats({"hits": 3, "misses": 1, "puts": 1,
                                "evictions": 0})
    table = metrics.summary_table()
    assert "RUN METRICS" in table
    assert "fault_simulation" in table
    assert "3 hit(s), 1 miss(es)" in table
    assert "shard utilization : 45%" in table
    empty = RunMetrics().summary_table()
    assert "no sharded runs" in empty
