"""Incremental fault-state restore: unit semantics, corruption fallback,
and the pattern-level edit oracle.

The load-bearing property mirrors the differential suite: a warm
:class:`IncrementalFaultSim` run over an *edited* pattern set must be
bit-identical to a from-scratch simulation — detection words and first
detections — across {cone, event, batch} x {inline, pooled}, for every
edit the record is designed to absorb (delete a chunk, reorder, append,
rewrite values).  Corruption tests pin the fallback contract: a torn or
bit-flipped record on disk costs a full re-simulation, never an
exception and never a wrong bit.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IncrementalError
from repro.exec import (
    ArtifactCache,
    IncrementalFaultSim,
    RunMetrics,
    ShardedFaultScheduler,
    fault_site_key,
    validate_incremental_mode,
)
from repro.exec.cache import _sha256_of
from repro.faults import FaultList, FaultSimulator
from repro.faults.fault import enumerate_faults
from repro.netlist import PatternSet

from .test_differential import _random_netlist, _random_patterns


def _key(tag):
    """A well-formed 64-hex record key for unit tests (no module build)."""
    return _sha256_of(["test-fault-state", tag])


def _patterns_as_rows(patterns, nl):
    """Explicit per-pattern input-value dicts (editable representation)."""
    return [{net: patterns.packed.get(net, 0) >> k & 1 for net in nl.inputs}
            for k in range(patterns.count)]


def _rows_to_patterns(rows, nl):
    patterns = PatternSet(nl)
    for row in rows:
        patterns.add(row)
    return patterns


def _edit_rows(rng, nl, rows):
    """Apply 1-3 random STL-style edits at the pattern level: delete a
    chunk, reorder, append fresh patterns, rewrite values in place."""
    rows = [dict(row) for row in rows]
    for __ in range(rng.randrange(1, 4)):
        op = rng.choice(("delete", "reorder", "append", "rewrite"))
        if op == "delete" and len(rows) > 1:
            lo = rng.randrange(len(rows))
            hi = min(len(rows), lo + rng.randrange(1, 4))
            del rows[lo:hi]
        elif op == "reorder":
            rng.shuffle(rows)
        elif op == "append":
            for __a in range(rng.randrange(1, 4)):
                rows.append({net: rng.getrandbits(1)
                             for net in nl.inputs})
        elif op == "rewrite":
            row = rng.choice(rows)
            net = rng.choice(list(nl.inputs))
            row[net] ^= 1
    if not rows:
        rows.append({net: rng.getrandbits(1) for net in nl.inputs})
    return rows


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "cache"))


# -- mode validation -----------------------------------------------------


def test_mode_validation():
    for mode in ("off", "on", "strict"):
        assert validate_incremental_mode(mode) == mode
    with pytest.raises(IncrementalError, match="unknown incremental"):
        validate_incremental_mode("maybe")


def test_constructor_requires_cache_and_active_mode(cache):
    with pytest.raises(IncrementalError, match="requires an artifact"):
        IncrementalFaultSim(None)
    with pytest.raises(IncrementalError, match="'off'"):
        IncrementalFaultSim(cache, mode="off")
    with pytest.raises(IncrementalError, match="unknown"):
        IncrementalFaultSim(cache, mode="bogus")


def test_fault_site_key_is_stable_and_distinct():
    rng = random.Random(7)
    nl = _random_netlist(rng)
    faults = enumerate_faults(nl, collapse=False)
    keys = [fault_site_key(f) for f in faults]
    assert len(set(keys)) == len(keys)
    assert keys == [fault_site_key(f) for f in faults]


# -- restore semantics ---------------------------------------------------


def test_identical_rerun_restores_everything(cache):
    rng = random.Random(11)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 6)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="event")
    inc = IncrementalFaultSim(cache, mode="strict")
    key = _key("identical")

    cold, info0 = inc.run(None, simulator, patterns, fault_list, key)
    assert not info0["record_hit"]
    assert info0["faults_resimulated"] == len(fault_list)
    assert info0["faults_restored"] == 0

    warm, info1 = inc.run(None, simulator, patterns, fault_list, key)
    assert info1["record_hit"]
    assert info1["groups_invalidated"] == 0
    assert info1["faults_resimulated"] == 0
    assert info1["faults_restored"] == len(fault_list)
    assert info1["strict_checks"] == 1
    assert warm.detection_words == cold.detection_words
    assert warm.first_detection == cold.first_detection


def test_restore_is_pattern_order_independent(cache):
    """Detections are keyed by support *value*, not pattern index: a
    shuffled subset of the recorded patterns restores without a single
    re-simulation, and the words match a from-scratch run exactly."""
    rng = random.Random(23)
    nl = _random_netlist(rng)
    rows = _patterns_as_rows(_random_patterns(rng, nl, 8), nl)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="event")
    inc = IncrementalFaultSim(cache, mode="strict")
    key = _key("order")

    inc.run(None, simulator, _rows_to_patterns(rows, nl), fault_list, key)
    subset = rows[1:7]
    rng.shuffle(subset)
    edited = _rows_to_patterns(subset, nl)
    warm, info = inc.run(None, simulator, edited, fault_list, key)
    assert info["record_hit"]
    assert info["groups_invalidated"] == 0
    assert info["faults_resimulated"] == 0

    reference = FaultSimulator(nl, engine="cone").run(edited, fault_list)
    assert warm.detection_words == reference.detection_words
    assert warm.first_detection == reference.first_detection


def test_unseen_values_invalidate_only_affected_cones(cache):
    """Rewriting one input value invalidates the cones whose support sees
    the new value — other cones restore — and the merged result is
    bit-identical to scratch either way."""
    rng = random.Random(37)
    nl = _random_netlist(rng, num_inputs=6, num_gates=24)
    rows = _patterns_as_rows(_random_patterns(rng, nl, 6), nl)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="event")
    inc = IncrementalFaultSim(cache, mode="strict")
    key = _key("invalidate")

    inc.run(None, simulator, _rows_to_patterns(rows, nl), fault_list, key)
    edited_rows = [dict(row) for row in rows]
    edited_rows[2][sorted(nl.inputs)[0]] ^= 1
    edited = _rows_to_patterns(edited_rows, nl)
    warm, info = inc.run(None, simulator, edited, fault_list, key)
    assert info["record_hit"]
    assert info["groups_restored"] + info["groups_invalidated"] == (
        info["groups_total"])

    reference = FaultSimulator(nl, engine="cone").run(edited, fault_list)
    assert warm.detection_words == reference.detection_words
    assert warm.first_detection == reference.first_detection


def test_new_faults_in_a_known_group_are_resimulated(cache):
    """A fault the record never saw re-simulates even when its cone group
    otherwise restores (collapsed run first, uncollapsed rerun)."""
    rng = random.Random(43)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 5)
    collapsed = FaultList(nl)
    full = FaultList(nl, enumerate_faults(nl, collapse=False))
    assert len(full) > len(collapsed)
    simulator = FaultSimulator(nl, engine="event")
    inc = IncrementalFaultSim(cache, mode="strict")
    key = _key("growth")

    inc.run(None, simulator, patterns, collapsed, key)
    warm, info = inc.run(None, simulator, patterns, full, key)
    assert info["record_hit"]
    assert 0 < info["faults_restored"] <= len(collapsed)
    assert info["faults_resimulated"] >= len(full) - len(collapsed)
    reference = FaultSimulator(nl, engine="cone").run(patterns, full)
    assert warm.detection_words == reference.detection_words


def test_empty_pattern_set_and_empty_fault_list_bypass_the_record(cache):
    rng = random.Random(5)
    nl = _random_netlist(rng)
    simulator = FaultSimulator(nl, engine="event")
    inc = IncrementalFaultSim(cache, mode="on")
    no_patterns = FaultList(nl)
    result, info = inc.run(None, simulator, PatternSet(nl), no_patterns,
                           _key("empty"))
    assert result.detection_words == [0] * len(no_patterns)
    assert info["groups_total"] == 0
    assert not info["record_hit"]
    result, info = inc.run(None, simulator,
                           _random_patterns(rng, nl, 3),
                           FaultList(nl, []), _key("empty-faults"))
    assert result.detection_words == []
    assert info["groups_total"] == 0


# -- corruption fallback (regression) ------------------------------------


def _cold_then_corrupt(cache, how):
    """Cold run, then corrupt the on-disk record via *how*(path, payload).
    Returns everything a warm run needs."""
    rng = random.Random(61)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 6)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    simulator = FaultSimulator(nl, engine="event")
    metrics = RunMetrics()
    inc = IncrementalFaultSim(cache, metrics=metrics, mode="on")
    key = _key("corrupt")
    cold, __ = inc.run(None, simulator, patterns, fault_list, key)
    path = cache._path_of(key)
    with open(path) as handle:
        payload = json.load(handle)
    how(path, payload)
    return inc, simulator, patterns, fault_list, key, cold, metrics, path


def test_truncated_record_falls_back_to_full_resimulation(cache):
    """Satellite regression: a torn write (invalid JSON) must cost a full
    re-simulation and a ``cache.corrupt`` bump — never an exception."""
    def truncate(path, payload):
        with open(path, "w") as handle:
            handle.write(json.dumps(payload)[:40])

    (inc, simulator, patterns, fault_list, key, cold, metrics,
     path) = _cold_then_corrupt(cache, truncate)
    warm, info = inc.run(None, simulator, patterns, fault_list, key)
    assert not info["record_hit"]
    assert info["faults_resimulated"] == len(fault_list)
    assert warm.detection_words == cold.detection_words
    assert cache.stats["corrupt"] >= 1
    assert metrics.counters["cache.corrupt"] >= 1
    # The torn entry was deleted, and the re-run rewrote a fresh one.
    assert os.path.exists(path)
    with open(path) as handle:
        assert json.load(handle)["checksum"]


def test_bit_flipped_record_is_detected_deleted_and_resimulated(cache):
    """Satellite regression: a flip that still parses as JSON is caught
    by the whole-payload checksum at load — entry deleted, corrupt
    counter bumped, full re-simulation, bit-identical result."""
    def flip(path, payload):
        gkey = sorted(payload["groups"])[0]
        sites = payload["groups"][gkey]["sites"]
        skey = sorted(sites)[0]
        sites[skey] = format(int(sites[skey], 16) ^ 1, "x")
        with open(path, "w") as handle:
            json.dump(payload, handle)

    (inc, simulator, patterns, fault_list, key, cold, metrics,
     __path) = _cold_then_corrupt(cache, flip)
    warm, info = inc.run(None, simulator, patterns, fault_list, key)
    assert not info["record_hit"]
    assert info["faults_resimulated"] == len(fault_list)
    assert warm.detection_words == cold.detection_words
    assert warm.first_detection == cold.first_detection
    assert cache.stats["corrupt"] >= 1
    assert metrics.counters["cache.corrupt"] >= 1


def test_stale_format_version_is_ignored_not_corrupt(cache):
    def stale(path, payload):
        payload["format"] = -1
        with open(path, "w") as handle:
            json.dump(payload, handle)

    (inc, simulator, patterns, fault_list, key, cold, metrics,
     __path) = _cold_then_corrupt(cache, stale)
    warm, info = inc.run(None, simulator, patterns, fault_list, key)
    assert not info["record_hit"]
    assert warm.detection_words == cold.detection_words
    assert cache.stats["corrupt"] == 0


def test_strict_mode_catches_a_forged_record(cache):
    """The strict oracle: a tampered record whose checksum was *re-forged*
    passes integrity checks, restores wrong bits, and must be caught by
    the from-scratch comparison with :class:`IncrementalError`."""
    def forge(path, payload):
        flipped = False
        for gkey in sorted(payload["groups"]):
            entry = payload["groups"][gkey]
            values = payload["supports"][entry["skey"]]["values"]
            for skey in sorted(entry["sites"]):
                mask = int(entry["sites"][skey], 16)
                if values:
                    entry["sites"][skey] = format(mask ^ 1, "x")
                    flipped = True
                    break
            if flipped:
                break
        assert flipped
        body = {field: payload[field]
                for field in ("format", "observed", "supports", "groups")}
        payload["checksum"] = _sha256_of(body)
        with open(path, "w") as handle:
            json.dump(payload, handle)

    (inc, simulator, patterns, fault_list, key, __cold, __metrics,
     __path) = _cold_then_corrupt(cache, forge)
    strict = IncrementalFaultSim(cache, mode="strict")
    with pytest.raises(IncrementalError, match="strict incremental"):
        strict.run(None, simulator, patterns, fault_list, key)


# -- the pattern-level edit oracle ---------------------------------------


@pytest.fixture(scope="module")
def pools():
    metrics = RunMetrics()
    schedulers = {
        jobs: ShardedFaultScheduler(jobs=jobs, min_faults_per_shard=1,
                                    metrics=metrics)
        for jobs in (2, 7)
    }
    yield schedulers
    for scheduler in schedulers.values():
        scheduler.close()


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=6, deadline=None)
def test_edit_oracle_across_engines_inline_and_pooled(pools, tmp_path_factory,
                                                      seed):
    """The tentpole oracle at the exec layer: cold run, random pattern
    edits (delete/reorder/append/rewrite), warm run — bit-identical to a
    from-scratch cone simulation for every engine, inline and pooled.
    Warm runs use strict mode, so the internal from-scratch comparison
    runs as well whenever anything was restored."""
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    base_rows = _patterns_as_rows(
        _random_patterns(rng, nl, rng.randrange(3, 10)), nl)
    edited_rows = _edit_rows(rng, nl, base_rows)
    fault_list = FaultList(nl, enumerate_faults(nl, collapse=False))
    base = _rows_to_patterns(base_rows, nl)
    edited = _rows_to_patterns(edited_rows, nl)
    reference = FaultSimulator(nl, engine="cone").run(edited, fault_list)

    cache = ArtifactCache(str(tmp_path_factory.mktemp("incr-oracle")))
    for engine in ("cone", "event", "batch"):
        simulator = FaultSimulator(nl, engine=engine)
        inc = IncrementalFaultSim(cache, mode="strict")
        key = _sha256_of(["oracle", engine])
        __, info0 = inc.run(None, simulator, base, fault_list, key)
        assert not info0["record_hit"]
        warm, info1 = inc.run(None, simulator, edited, fault_list, key)
        assert info1["record_hit"]
        assert warm.detection_words == reference.detection_words
        assert warm.first_detection == reference.first_detection

        jobs = (2, 7)[seed % 2]
        scheduler = pools[jobs]
        pooled_key = _sha256_of(["oracle-pooled", engine])
        inc.run(scheduler, simulator, base, fault_list, pooled_key)
        pooled, pinfo = inc.run(scheduler, simulator, edited, fault_list,
                                pooled_key)
        assert pinfo["record_hit"]
        assert pooled.detection_words == reference.detection_words
        assert pooled.first_detection == reference.first_detection
