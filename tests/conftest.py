"""Shared fixtures: small synthesized modules and a GPU model.

Module builds are session-scoped (the netlists are immutable once
finalized) so the suite pays construction cost once.
"""

import pytest

from repro.gpu import Gpu
from repro.netlist.modules import build_decoder_unit, build_sfu, build_sp_core

TEST_WIDTH = 8


@pytest.fixture(scope="session")
def du_module():
    return build_decoder_unit()


@pytest.fixture(scope="session")
def sp_module():
    return build_sp_core(TEST_WIDTH)


@pytest.fixture(scope="session")
def sfu_module():
    return build_sfu(TEST_WIDTH)


@pytest.fixture(scope="session")
def gpu():
    return Gpu()


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(monkeypatch, tmp_path_factory):
    """Point the default artifact cache at a per-test temp dir so tests
    never touch (or depend on) the user's ~/.cache/repro.  REPRO_JOBS is
    deliberately left alone — CI runs the whole suite under REPRO_JOBS=2
    to exercise the sharded scheduler path."""
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("artifact-cache")))
