"""Shared fixtures: small synthesized modules and a GPU model.

Module builds are session-scoped (the netlists are immutable once
finalized) so the suite pays construction cost once.
"""

import pytest

from repro.gpu import Gpu
from repro.netlist.modules import build_decoder_unit, build_sfu, build_sp_core

TEST_WIDTH = 8


@pytest.fixture(scope="session")
def du_module():
    return build_decoder_unit()


@pytest.fixture(scope="session")
def sp_module():
    return build_sp_core(TEST_WIDTH)


@pytest.fixture(scope="session")
def sfu_module():
    return build_sfu(TEST_WIDTH)


@pytest.fixture(scope="session")
def gpu():
    return Gpu()
