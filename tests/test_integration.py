"""Full-stack integration: the smoke-scale experiment campaign.

Exercises every subsystem together exactly as the benchmarks do, at the
small SMOKE scale, and checks the cross-cutting invariants that the
paper's story depends on.
"""

import pytest

from repro.analysis import SMOKE, Experiment, stl_aggregate


@pytest.fixture(scope="module")
def experiment():
    return Experiment(SMOKE)


@pytest.fixture(scope="module")
def du_campaign(experiment):
    return experiment.run_du_campaign()


@pytest.fixture(scope="module")
def sp_campaign(experiment):
    return experiment.run_sp_campaign()


@pytest.fixture(scope="module")
def sfu_campaign(experiment):
    return experiment.run_sfu_campaign()


def test_du_dropping_order_effects(du_campaign):
    outcomes, pipeline = du_campaign
    # Every DU PTP was compacted against a shrinking fault list.
    assert pipeline.fault_report.detected_faults >= max(
        outcome.newly_dropped_faults for outcome in outcomes.values())
    # IMM is first: its FC is exactly preserved (context-free DU patterns).
    assert outcomes["IMM"].fc_diff == pytest.approx(0.0)


def test_sp_campaign_rand_redundancy(sp_campaign):
    outcomes, __ = sp_campaign
    tpgen, rand = outcomes["TPGEN"], outcomes["RAND"]
    # RAND follows TPGEN under dropping: it compacts harder and its
    # standalone FC falls further (Table III's -17.07 mechanism).
    assert rand.size_reduction_percent <= tpgen.size_reduction_percent
    assert rand.fc_diff <= tpgen.fc_diff + 0.5


def test_sfu_campaign_fc_exact(sfu_campaign):
    outcomes, __ = sfu_campaign
    assert outcomes["SFU_IMM"].fc_diff == pytest.approx(0.0)


def test_compacted_programs_all_run(experiment, du_campaign, sp_campaign,
                                     sfu_campaign):
    from repro.core import run_logic_tracing

    for outcomes, __ in (du_campaign, sp_campaign, sfu_campaign):
        for outcome in outcomes.values():
            module = experiment.modules[outcome.ptp.target]
            tracing = run_logic_tracing(outcome.compacted, module,
                                        gpu=experiment.gpu)
            assert tracing.cycles == outcome.compacted_cycles


def test_every_compaction_used_one_fault_sim(du_campaign, sp_campaign,
                                             sfu_campaign):
    for outcomes, __ in (du_campaign, sp_campaign, sfu_campaign):
        for outcome in outcomes.values():
            assert outcome.fault_simulations == 3  # 1 + 2 validation


def test_aggregate_combines_all_campaigns(du_campaign, sp_campaign,
                                          sfu_campaign):
    outcomes = []
    for campaign, __ in (du_campaign, sp_campaign, sfu_campaign):
        outcomes.extend(campaign.values())
    aggregate = stl_aggregate(outcomes)
    assert -100.0 < aggregate["size_reduction_pct"] <= 0.0
    assert -100.0 < aggregate["duration_reduction_pct"] <= 0.0


def test_sizes_shrink_nowhere_grow(du_campaign, sp_campaign, sfu_campaign):
    for outcomes, __ in (du_campaign, sp_campaign, sfu_campaign):
        for outcome in outcomes.values():
            assert outcome.compacted_size <= outcome.original_size
            assert outcome.compacted_cycles <= outcome.original_cycles
