"""FlexGripPlus configuration variants: 8 / 16 / 32 SPs per SM.

The model keeps FlexGripPlus's flexibility of selecting the number of
execution units (Section II.B); more lanes means fewer execute beats per
warp and therefore shorter kernels, with identical architectural results.
"""

import pytest

from repro.gpu import Gpu, GpuConfig, KernelConfig, SpCoreCollector
from repro.isa import assemble

SOURCE = """
    S2R R0, TID_X
    MOV32I R2, 0x1F
    IADD R3, R0, R2
    IMUL R4, R3, R3
    GST [R0+0x0], R4
    EXIT
"""


@pytest.mark.parametrize("num_sps", [8, 16, 32])
def test_results_identical_across_lane_counts(num_sps):
    gpu = Gpu(GpuConfig(num_sps=num_sps))
    result = gpu.run_kernel(assemble(SOURCE), KernelConfig())
    for tid in range(32):
        assert result.global_memory[tid] == ((tid + 0x1F) ** 2) & 0xFFFFFFFF


def test_more_lanes_fewer_cycles():
    cycles = {}
    for num_sps in (8, 16, 32):
        gpu = Gpu(GpuConfig(num_sps=num_sps))
        cycles[num_sps] = gpu.run_kernel(assemble(SOURCE),
                                         KernelConfig()).cycles
    assert cycles[32] < cycles[16] < cycles[8]


def test_lane_mapping_follows_configuration():
    gpu = Gpu(GpuConfig(num_sps=16))
    collector = SpCoreCollector(16)
    gpu.run_kernel(assemble(SOURCE), KernelConfig(),
                   collectors=[collector])
    lanes = {record.lane for record in collector.records}
    assert lanes == set(range(16))
    for record in collector.records:
        assert record.lane == record.thread % 16


def test_beat_count_scales_with_lanes():
    # 32 active threads: 4 beats on 8 SPs, 1 beat on 32 SPs -> the
    # execute span shrinks accordingly.
    spans = {}
    for num_sps in (8, 32):
        gpu = Gpu(GpuConfig(num_sps=num_sps))
        result = gpu.run_kernel(assemble(SOURCE), KernelConfig())
        record = next(r for r in result.trace if r.mnemonic == "IMUL")
        spans[num_sps] = record.exec_end_cc - record.exec_start_cc + 1
    assert spans[8] == 4 * spans[32]
