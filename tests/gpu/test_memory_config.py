"""Memory spaces, register file, and launch-configuration validation."""

import pytest

from repro.errors import KernelLaunchError, SimulationError
from repro.gpu.config import WARP_SIZE, GpuConfig, KernelConfig
from repro.gpu.memory import MemorySystem, WordMemory
from repro.gpu.regfile import RegisterFile


def test_word_memory_baslics():
    mem = WordMemory("m", size_words=16)
    assert mem.load(3) == 0
    mem.store(3, 0x1_2345_6789)        # wraps to 32 bits
    assert mem.load(3) == 0x2345_6789
    assert mem.reads == 2 and mem.writes == 1


def test_word_memory_bounds():
    mem = WordMemory("m", size_words=4)
    with pytest.raises(SimulationError):
        mem.load(4)
    with pytest.raises(SimulationError):
        mem.store(-1, 0)


def test_read_only_memory():
    mem = WordMemory("c", size_words=8, read_only=True)
    mem.preload({2: 7})
    assert mem.load(2) == 7
    with pytest.raises(SimulationError):
        mem.store(2, 9)


def test_snapshot_and_clear():
    mem = WordMemory("m")
    mem.store(1, 10)
    snap = mem.snapshot()
    mem.store(2, 20)
    assert snap == {1: 10}
    mem.clear()
    assert mem.load(1) == 0 and mem.reads == 1


def test_memory_system_space_codes():
    system = MemorySystem(GpuConfig(), const_image={0: 5})
    assert system.space(0) is system.global_mem
    assert system.space(1) is system.shared
    assert system.space(2) is system.constant
    assert system.constant.load(0) == 5
    with pytest.raises(SimulationError):
        system.space(3)


def test_register_file_per_thread_isolation():
    regs = RegisterFile(4)
    regs.write(5, 0, 111)
    regs.write(5, 1, 222)
    assert regs.read(5, 0) == 111
    assert regs.read(5, 1) == 222
    assert regs.read(5, 2) == 0


def test_register_file_predicates():
    regs = RegisterFile(2)
    assert regs.read_pred(0, 0) is False
    regs.write_pred(0, 0, 1)
    assert regs.read_pred(0, 0) is True
    assert regs.read_pred(0, 1) is False


def test_register_file_thread_bounds():
    regs = RegisterFile(2)
    with pytest.raises(SimulationError):
        regs.read(0, 2)
    with pytest.raises(SimulationError):
        RegisterFile(0)


def test_gpu_config_validates_sp_count():
    GpuConfig(num_sps=8)
    GpuConfig(num_sps=16)
    GpuConfig(num_sps=32)
    with pytest.raises(KernelLaunchError):
        GpuConfig(num_sps=12)


def test_kernel_config_validation_and_warps():
    cfg = KernelConfig(grid_blocks=2, block_threads=96)
    assert cfg.warps_per_block == 3
    assert cfg.total_threads == 192
    assert KernelConfig(block_threads=1).warps_per_block == 1
    with pytest.raises(KernelLaunchError):
        KernelConfig(grid_blocks=0)
    with pytest.raises(KernelLaunchError):
        KernelConfig(block_threads=0)
    with pytest.raises(KernelLaunchError):
        KernelConfig(block_threads=2048)


def test_warp_size_is_32():
    assert WARP_SIZE == 32
