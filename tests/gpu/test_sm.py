"""SM execution: SIMT semantics, divergence, barriers, memory, timing."""

import pytest

from repro.errors import SimulationError
from repro.gpu import Gpu, KernelConfig
from repro.isa import assemble


def run(gpu, source, **kw):
    return gpu.run_kernel(assemble(source), KernelConfig(**kw))


def test_per_thread_computation(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        IMUL32I R1, R0, 0x3
        IADD32I R1, R1, 0x7
        GST [R0+0x100], R1
        EXIT
    """)
    for tid in range(32):
        assert result.global_memory[0x100 + tid] == tid * 3 + 7


def test_special_registers(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        S2R R1, NTID_X
        S2R R2, CTAID_X
        S2R R3, NCTAID_X
        S2R R4, LANEID
        S2R R5, WARPID
        SHL32I R6, R0, 0x3
        GST [R6+0x0], R1
        GST [R6+0x1], R2
        GST [R6+0x2], R3
        GST [R6+0x3], R4
        GST [R6+0x4], R5
        EXIT
    """, grid_blocks=2, block_threads=64)
    # thread 33 of block 1: warp 1, lane 1.
    base = 33 * 8
    assert result.global_memory[base + 0] == 64
    assert result.global_memory[base + 2] == 2
    assert result.global_memory[base + 3] == 1
    assert result.global_memory[base + 4] == 1


def test_predicated_execution(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x10
        ISETP P0, R0, R1, LT
        MOV32I R2, 0x0
    @P0 MOV32I R2, 0xAA
    @!P0 MOV32I R2, 0xBB
        GST [R0+0x0], R2
        EXIT
    """)
    for tid in range(32):
        assert result.global_memory[tid] == (0xAA if tid < 16 else 0xBB)


def test_divergence_reconverges(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x8
        ISETP P0, R0, R1, LT
        MOV32I R2, 0x1
        SSY join
    @P0 BRA join
        IADD32I R2, R2, 0x10      ; only threads >= 8
    join:
        JOIN
        IADD32I R2, R2, 0x100     ; everyone again
        GST [R0+0x0], R2
        EXIT
    """)
    for tid in range(32):
        expected = 0x101 if tid < 8 else 0x111
        assert result.global_memory[tid] == expected


def test_nested_divergence(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x10
        ISETP P0, R0, R1, LT       ; P0: tid < 16
        MOV32I R3, 0x8
        ISETP P1, R0, R3, LT       ; P1: tid < 8
        MOV32I R2, 0x0
        SSY outer
    @P0 BRA outer
        IADD32I R2, R2, 0x1        ; tid >= 16
        SSY inner
    @P1 BRA inner                  ; never taken here (P1 false for >=16)
        IADD32I R2, R2, 0x2
    inner:
        JOIN
    outer:
        JOIN
        GST [R0+0x0], R2
        EXIT
    """)
    for tid in range(32):
        assert result.global_memory[tid] == (0 if tid < 16 else 3)


def test_loop_execution(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x0
        MOV32I R2, 0x5
    loop:
        IADD32I R1, R1, 0x3
        IADD32I R2, R2, -1
        MOV32I R3, 0x0
        ISETP P0, R2, R3, GT
    @P0 BRA loop
        GST [R0+0x0], R1
        EXIT
    """)
    assert result.global_memory[0] == 15


def test_call_return(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x1
        CAL sub
        CAL sub
        GST [R0+0x0], R1
        EXIT
    sub:
        IADD32I R1, R1, 0x10
        RET
    """)
    assert result.global_memory[0] == 0x21


def test_barrier_synchronizes_warps(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        SST [R0+0x0], R0
        BAR
        MOV32I R2, 0x3F
        AND R3, R0, R2
        XOR R3, R3, R2          ; partner thread id = 63 - tid
        SLD R4, [R3+0x0]
        GST [R0+0x0], R4
        EXIT
    """, block_threads=64)
    for tid in range(64):
        assert result.global_memory[tid] == 63 - tid


def test_shared_and_constant_memory(gpu):
    program = assemble("""
        S2R R0, TID_X
        CLD R1, c[0x5]
        SST [R0+0x20], R1
        SLD R2, [R0+0x20]
        GST [R0+0x0], R2
        EXIT
    """)
    result = Gpu().run_kernel(program, KernelConfig(
        const_words={0x5: 0xCAFE}))
    assert result.global_memory[0] == 0xCAFE


def test_multi_block_serializes_on_one_sm(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        S2R R1, CTAID_X
        MOV32I R2, 0x20
        IMUL R3, R1, R2
        IADD R3, R3, R0
        GST [R3+0x0], R1
        EXIT
    """, grid_blocks=3, block_threads=32)
    assert result.global_memory[0] == 0
    assert result.global_memory[33] == 1
    assert result.global_memory[70] == 2


def test_cycle_accounting_monotonic_and_positive(gpu):
    short = run(gpu, "NOP\nEXIT")
    longer = run(gpu, "NOP\nNOP\nNOP\nNOP\nEXIT")
    assert 0 < short.cycles < longer.cycles


def test_sel_uses_predicate(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        MOV32I R1, 0x1
        MOV32I R2, 0x2
        MOV32I R3, 0x10
        ISETP P1, R0, R3, LT
        SEL R4, P1, R1, R2
        GST [R0+0x0], R4
        EXIT
    """)
    assert result.global_memory[0] == 1
    assert result.global_memory[31] == 2


def test_runaway_kernel_guard(gpu):
    with pytest.raises(SimulationError, match="budget"):
        gpu.run_kernel(assemble("loop:\nBRA loop"), KernelConfig(),
                       max_instructions=100)


def test_pc_out_of_program_raises(gpu):
    with pytest.raises(SimulationError):
        gpu.run_kernel(assemble("NOP"), KernelConfig())  # falls off the end


def test_ragged_block_tail(gpu):
    result = run(gpu, """
        S2R R0, TID_X
        GST [R0+0x0], R0
        EXIT
    """, block_threads=40)  # 1 full warp + 8-thread warp
    assert result.global_memory[39] == 39
    assert 40 not in result.global_memory
