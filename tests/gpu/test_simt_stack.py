"""SIMT stack unit behavior."""

import pytest

from repro.errors import SimulationError
from repro.gpu.simt_stack import DIV, SYNC, SimtStack


def test_push_pop_order():
    stack = SimtStack()
    stack.push_sync(10, 0xFFFF)
    stack.push_div(5, 0x00FF)
    assert stack.depth == 2
    top = stack.pop()
    assert top.kind == DIV and top.pc == 5 and top.mask == 0x00FF
    top = stack.pop()
    assert top.kind == SYNC and top.pc == 10 and top.mask == 0xFFFF


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        SimtStack().pop()


def test_overflow_guard():
    stack = SimtStack(max_depth=2)
    stack.push_sync(0, 1)
    stack.push_sync(0, 1)
    with pytest.raises(SimulationError):
        stack.push_div(0, 1)


def test_peek_is_nondestructive():
    stack = SimtStack()
    assert stack.peek() is None
    stack.push_sync(3, 7)
    assert stack.peek().pc == 3
    assert stack.depth == 1
