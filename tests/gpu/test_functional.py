"""Architectural instruction semantics (32-bit int, FP32, SFU)."""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import functional as fn
from repro.isa import Instruction
from repro.isa.opcodes import CmpOp, Op

word32 = st.integers(0, 0xFFFFFFFF)


def _run(op, a=0, b=0, c=0, cmp_op=CmpOp.EQ, **kw):
    instr = Instruction(op, dst=1, **kw)
    return fn.execute_arith(instr, a, b, c, cmp_op)


@given(word32, word32)
@settings(max_examples=80, deadline=None)
def test_iadd_wraps(a, b):
    result, __ = _run(Op.IADD, a, b)
    assert result == (a + b) & 0xFFFFFFFF


@given(word32, word32)
@settings(max_examples=80, deadline=None)
def test_isub_imul_wrap(a, b):
    assert _run(Op.ISUB, a, b)[0] == (a - b) & 0xFFFFFFFF
    sa, sb = fn.to_signed(a), fn.to_signed(b)
    assert _run(Op.IMUL, a, b)[0] == (sa * sb) & 0xFFFFFFFF


@given(word32, word32, word32)
@settings(max_examples=50, deadline=None)
def test_imad(a, b, c):
    expected = (fn.to_signed(a) * fn.to_signed(b) + fn.to_signed(c))
    assert _run(Op.IMAD, a, b, c)[0] == expected & 0xFFFFFFFF


def test_min_max_are_signed():
    assert _run(Op.IMIN, 0xFFFFFFFF, 1)[0] == 0xFFFFFFFF  # -1 < 1
    assert _run(Op.IMAX, 0xFFFFFFFF, 1)[0] == 1


@given(word32, word32)
@settings(max_examples=50, deadline=None)
def test_bitwise(a, b):
    assert _run(Op.AND, a, b)[0] == a & b
    assert _run(Op.OR, a, b)[0] == a | b
    assert _run(Op.XOR, a, b)[0] == a ^ b
    assert _run(Op.NOT, a)[0] == (~a) & 0xFFFFFFFF


@pytest.mark.parametrize("amount,expected_shl,expected_shr", [
    (0, 0xFFFF0000, 0xFFFF0000),
    (4, 0xFFF00000, 0x0FFFF000),
    (31, 0x00000000, 0x00000001),
    (32, 0, 0),     # >= 32 flushes
    (63, 0, 0),
])
def test_shifts(amount, expected_shl, expected_shr):
    assert _run(Op.SHL, 0xFFFF0000, amount)[0] == expected_shl
    assert _run(Op.SHR, 0xFFFF0000, amount)[0] == expected_shr


@pytest.mark.parametrize("cmp_op,a,b,expected", [
    (CmpOp.LT, 1, 2, True), (CmpOp.LT, 2, 1, False),
    (CmpOp.LT, 0xFFFFFFFF, 0, True),   # signed: -1 < 0
    (CmpOp.LE, 3, 3, True), (CmpOp.GT, 4, 3, True),
    (CmpOp.GE, 3, 4, False), (CmpOp.EQ, 7, 7, True),
    (CmpOp.NE, 7, 7, False),
])
def test_iset_isetp(cmp_op, a, b, expected):
    result, __ = _run(Op.ISET, a, b, cmp_op=cmp_op)
    assert result == (0xFFFFFFFF if expected else 0)
    __, pred = _run(Op.ISETP, a, b, cmp_op=cmp_op, )
    assert pred is expected


def _f2w(value):
    return struct.unpack("<I", struct.pack("<f", value))[0]


def test_fadd_fmul_fmad():
    a, b, c = _f2w(1.5), _f2w(2.0), _f2w(0.25)
    assert fn.word_to_float(_run(Op.FADD, a, b)[0]) == 3.5
    assert fn.word_to_float(_run(Op.FMUL, a, b)[0]) == 3.0
    assert fn.word_to_float(_run(Op.FMAD, a, b, c)[0]) == 3.25


def test_f2i_saturates_and_handles_nan():
    assert _run(Op.F2I, _f2w(3.9))[0] == 3
    assert _run(Op.F2I, _f2w(-2.5))[0] == fn.from_signed(-2)
    assert _run(Op.F2I, _f2w(1e20))[0] == 0x7FFFFFFF
    assert _run(Op.F2I, 0x7FC00000)[0] == 0  # NaN -> 0


def test_i2f():
    assert fn.word_to_float(_run(Op.I2F, 5)[0]) == 5.0
    assert fn.word_to_float(_run(Op.I2F, 0xFFFFFFFF)[0]) == -1.0


def test_sfu_functions():
    two = _f2w(2.0)
    assert fn.word_to_float(_run(Op.RCP, two)[0]) == pytest.approx(0.5)
    assert fn.word_to_float(_run(Op.RSQ, _f2w(4.0))[0]) == pytest.approx(0.5)
    assert fn.word_to_float(_run(Op.SIN, _f2w(0.0))[0]) == 0.0
    assert fn.word_to_float(_run(Op.COS, _f2w(0.0))[0]) == 1.0
    assert fn.word_to_float(_run(Op.LG2, _f2w(8.0))[0]) == pytest.approx(3.0)
    assert fn.word_to_float(_run(Op.EX2, _f2w(3.0))[0]) == pytest.approx(8.0)


def test_sfu_edge_cases_do_not_raise():
    for op in (Op.RCP, Op.RSQ, Op.SIN, Op.COS, Op.LG2, Op.EX2):
        for word in (0, _f2w(-1.0), 0x7F800000, 0xFF800000, 0x7FC00000):
            result, __ = _run(op, word)
            assert 0 <= result <= 0xFFFFFFFF


def test_rcp_of_zero_is_inf():
    assert _run(Op.RCP, 0)[0] == 0x7F800000


@given(word32)
@settings(max_examples=50, deadline=None)
def test_float_word_round_trip(word):
    value = fn.word_to_float(word)
    if not math.isnan(value):
        assert fn.word_to_float(fn.float_to_word(value)) == value


def test_mov_forms():
    assert _run(Op.MOV, 42)[0] == 42
    assert _run(Op.MOV32I, b=0xBEEF)[0] == 0xBEEF
