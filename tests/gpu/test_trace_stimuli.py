"""Monitor artifacts: trace report round-trip, stimulus consistency.

The central cross-abstraction invariant: for every SP stimulus captured
during a kernel run, feeding the pattern into the synthesized SP netlist
reproduces the architectural result (truncated to the datapath width).
The same holds for the SFU.  This is what makes the compaction method's
pattern reports faithful to the hardware.
"""

import pytest

from repro.gpu import DecoderUnitCollector, Gpu, KernelConfig, SfuCollector, SpCoreCollector
from repro.gpu.trace import parse_trace_report, write_trace_report
from repro.isa import assemble, decode
from repro.netlist.modules.sp_core import SPOp

W = 8

SOURCE = """
    S2R R0, TID_X
    MOV32I R1, 0x3C
    IADD R2, R0, R1
    IMUL R3, R2, R2
    XOR R4, R3, R0
    SHL32I R5, R4, 0x2
    ISET R6, R5, R1, GT
    ISETP P0, R0, R1, LT
    SEL R7, P0, R5, R6
    IMAD R8, R2, R3, R4
    SIN R9, R8
    RCP R10, R2
    GST [R0+0x40], R9
    EXIT
"""


@pytest.fixture(scope="module")
def kernel_run():
    gpu = Gpu()
    collectors = [DecoderUnitCollector(), SpCoreCollector(W), SfuCollector(W)]
    result = gpu.run_kernel(assemble(SOURCE), KernelConfig(),
                            collectors=collectors)
    return result


def test_trace_covers_every_executed_instruction(kernel_run):
    pcs = sorted({r.pc for r in kernel_run.trace})
    assert pcs == list(range(14))


def test_trace_cc_spans_do_not_overlap(kernel_run):
    spans = sorted((r.decode_cc, r.exec_end_cc) for r in kernel_run.trace)
    for (s1, e1), (s2, __) in zip(spans, spans[1:]):
        assert e1 < s2


def test_trace_report_round_trip(kernel_run):
    text = write_trace_report(kernel_run.trace)
    parsed = parse_trace_report(text)
    assert parsed == kernel_run.trace


def test_du_stimuli_decode_back_to_program(kernel_run):
    program = assemble(SOURCE)
    for record in kernel_run.stimuli["decoder_unit"]:
        word = record.value_dict["instr"]
        assert decode(word) == program[record.pc]


def test_sp_stimuli_one_per_thread_per_sp_instruction(kernel_run):
    # 10 SP-unit instructions (S2R..IMAD incl. MOV32I/SEL) x 32 threads.
    assert len(kernel_run.stimuli["sp_core"]) == 10 * 32


def test_sfu_stimuli_for_sin_and_rcp(kernel_run):
    records = kernel_run.stimuli["sfu"]
    assert len(records) == 2 * 32
    funcs = {record.value_dict["func"] for record in records}
    assert funcs == {0, 2}  # RCP, SIN


def test_stimuli_sorted_by_cc(kernel_run):
    for module in ("decoder_unit", "sp_core", "sfu"):
        ccs = [r.cc for r in kernel_run.stimuli[module]]
        assert ccs == sorted(ccs)


def test_sp_stimuli_ccs_inside_trace_exec_spans(kernel_run):
    spans = {}
    for record in kernel_run.trace:
        spans.setdefault(record.pc, []).append(
            (record.exec_start_cc, record.exec_end_cc))
    for record in kernel_run.stimuli["sp_core"]:
        assert any(start <= record.cc <= end
                   for start, end in spans[record.pc])


def test_sp_netlist_reproduces_architectural_results(kernel_run, sp_module):
    """Feed every captured SP pattern into the gate-level SP core; its
    result must equal the architectural result mod 2^W."""
    from repro.isa.opcodes import CmpOp
    from repro.netlist.modules.sp_core import sp_reference_result

    for record in kernel_run.stimuli["sp_core"]:
        v = record.value_dict
        result, __ = sp_reference_result(SPOp(v["op"]), v["a"], v["b"],
                                         v["c"], CmpOp(v["cmp"]), W)
        patterns = sp_module.new_pattern_set()
        sp_module.add_pattern(patterns, **v)
        out = sp_module.simulate(patterns)
        assert out["result"][0] == result


def test_thread_field_populated_for_lane_modules(kernel_run):
    threads = {record.thread for record in kernel_run.stimuli["sp_core"]}
    assert threads == set(range(32))
    assert all(record.thread == -1
               for record in kernel_run.stimuli["decoder_unit"])


def test_lane_mapping_is_thread_mod_width(kernel_run):
    for record in kernel_run.stimuli["sp_core"]:
        assert record.lane == record.thread % 8
    for record in kernel_run.stimuli["sfu"]:
        assert record.lane == record.thread % 2  # two SFUs
