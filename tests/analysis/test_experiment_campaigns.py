"""Experiment driver details not covered by the integration suite."""

import dataclasses

import pytest

from repro.analysis import SMOKE, Experiment, ExperimentScale


def test_scale_is_frozen_and_overridable():
    scale = ExperimentScale(datapath_width=8, imm_sbs=3)
    assert scale.datapath_width == 8
    assert scale.imm_sbs == 3
    with pytest.raises(dataclasses.FrozenInstanceError):
        scale.imm_sbs = 4  # frozen dataclass


def test_modules_and_stl_are_cached():
    experiment = Experiment(SMOKE)
    assert experiment.modules is experiment.modules
    first = experiment.stl
    assert experiment.stl is first


def test_stl_respects_scale_knobs():
    scale = ExperimentScale(datapath_width=8, imm_sbs=3, mem_sbs=2,
                            cntrl_sbs=2, rand_sbs=2,
                            tpgen_random_patterns=16,
                            tpgen_max_backtracks=2,
                            tpgen_podem_fault_limit=5,
                            sfu_random_patterns=16, sfu_max_backtracks=2,
                            sfu_podem_fault_limit=5)
    experiment = Experiment(scale)
    stl = experiment.stl
    assert len(stl["IMM"].sb_hints) == 3
    assert len(stl["MEM"].sb_hints) == 2
    assert len(stl["RAND"].sb_hints) == 2
    assert experiment.modules["sp_core"].params["width"] == 8


def test_atpg_results_exposed():
    experiment = Experiment(SMOKE)
    assert experiment.stl  # force generation
    assert set(experiment._atpg) == {"TPGEN", "SFU_IMM"}
    assert experiment._atpg["TPGEN"].patterns.count > 0
