"""Table builders and the smoke-scale experiment driver."""

import pytest

from repro.analysis import (
    SMOKE,
    Experiment,
    combined_outcome_row,
    compaction_rows,
    paper_data,
    render_compaction_table,
    render_table1,
    stl_aggregate,
    table1_rows,
)


def test_paper_constants_sanity():
    assert paper_data.TABLE1["IMM"]["size"] == 32736
    assert paper_data.TABLE2["MEM"]["size_pct"] == -98.64
    assert paper_data.TABLE3["RAND"]["fc_diff"] == -17.07
    assert paper_data.STL_SIZE_REDUCTION == -80.71


def test_table1_rendering_includes_paper_columns():
    rows = table1_rows({"IMM": {"size": 100, "arc": 100.0,
                                "duration": 1000, "fc": 65.0}})
    text = render_table1(rows)
    assert "TABLE I" in text
    assert "32736" in text  # paper reference value
    assert "65.00" in text


def test_compaction_row_from_dict_and_rendering():
    rows = compaction_rows(
        {"IMM": {"size": 10, "size_pct": -90.0, "duration": 100,
                 "duration_pct": -85.0, "fc_diff": 0.0, "seconds": 1.5}},
        paper_data.TABLE2)
    text = render_compaction_table(rows, "TABLE II")
    assert "-90.00" in text
    assert "-97.30" in text  # paper IMM size pct


class _Outcome:
    def __init__(self, osize, csize, occs, cccs, secs=1.0):
        self.original_size = osize
        self.compacted_size = csize
        self.original_cycles = occs
        self.compacted_cycles = cccs
        self.compaction_seconds = secs


def test_combined_outcome_row_weighted_sums():
    combined = combined_outcome_row(
        [_Outcome(100, 10, 1000, 100), _Outcome(100, 30, 1000, 300)],
        combined_fc_original=80.0, combined_fc_compacted=79.0)
    assert combined["size"] == 40
    assert combined["size_pct"] == pytest.approx(-80.0)
    assert combined["duration_pct"] == pytest.approx(-80.0)
    assert combined["fc_diff"] == pytest.approx(-1.0)
    assert combined["seconds"] == pytest.approx(2.0)


def test_stl_aggregate_uses_paper_shares():
    # If the compacted PTPs shrink to nothing, the STL keeps exactly the
    # non-compacted remainder share.
    aggregate = stl_aggregate([_Outcome(9069, 0, 7570, 0)])
    assert aggregate["size_reduction_pct"] == pytest.approx(-90.69, abs=0.1)
    assert aggregate["duration_reduction_pct"] == pytest.approx(-75.70,
                                                               abs=0.1)
    # No compaction at all -> no STL reduction.
    aggregate = stl_aggregate([_Outcome(1000, 1000, 1000, 1000)])
    assert aggregate["size_reduction_pct"] == pytest.approx(0.0)


@pytest.fixture(scope="module")
def experiment():
    return Experiment(SMOKE)


def test_experiment_builds_all_modules(experiment):
    assert set(experiment.modules) == {"decoder_unit", "sp_core", "sfu"}
    assert experiment.modules["sp_core"].params["width"] == 8


def test_experiment_builds_six_ptp_stl(experiment):
    names = [ptp.name for ptp in experiment.stl]
    assert names == ["IMM", "MEM", "CNTRL", "TPGEN", "RAND", "SFU_IMM"]


def test_du_campaign_smoke(experiment):
    outcomes, pipeline = experiment.run_du_campaign()
    assert set(outcomes) == {"IMM", "MEM", "CNTRL"}
    for outcome in outcomes.values():
        assert outcome.compacted_size <= outcome.original_size
        assert outcome.fault_simulations == 3
    # Dropping accumulated across the three PTPs.
    assert pipeline.fault_report.detected_faults > 0
