"""Table rendering edge cases."""

from repro.analysis.tables import (
    TableRow,
    _fmt,
    compaction_rows,
    render_compaction_table,
    render_table1,
    table1_rows,
)


def test_fmt_handles_none_float_int():
    assert _fmt(None) == "-"
    assert _fmt(1.234) == "1.23"
    assert _fmt(42) == "42"
    assert _fmt(-98.6, "{:+.2f}") == "-98.60"


def test_table1_unknown_ptp_gets_dash_paper_columns():
    rows = table1_rows({"MYSTERY": {"size": 9, "arc": 50.0,
                                    "duration": 99, "fc": 12.0}})
    text = render_table1(rows)
    assert "MYSTERY" in text
    assert " - " in text or text.rstrip().endswith("-")


def test_compaction_table_with_missing_fc():
    rows = compaction_rows(
        {"X": {"size": 1, "size_pct": -50.0, "duration": 10,
               "duration_pct": -40.0, "fc_diff": None, "seconds": None}},
        {})
    text = render_compaction_table(rows, "T")
    assert "X" in text
    assert "-50.00" in text


def test_table_row_defaults():
    row = TableRow("n", {"size": 1})
    assert row.paper == {}
