"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or (
                obj is errors.ReproError)


def test_assembly_error_carries_line():
    exc = errors.AssemblyError("bad", line=7)
    assert exc.line == 7
    assert "line 7" in str(exc)
    exc = errors.AssemblyError("bad")
    assert exc.line is None


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.FaultSimError("x")
    with pytest.raises(errors.IsaError):
        raise errors.AssemblyError("y")
