"""CLI tool: subcommands, artifacts, error handling."""

import os

import pytest

from repro.cli import main
from repro.stl.io import load_ptp


def test_info_prints_module_summary(capsys):
    assert main(["info", "--module", "sp_core", "--width", "8"]) == 0
    out = capsys.readouterr().out
    assert "sp_core" in out
    assert "collapsed stuck-at" in out


def test_info_unknown_module():
    with pytest.raises(SystemExit):
        main(["info", "--module", "warp_scheduler"])


def test_generate_writes_ptp_directory(tmp_path, capsys):
    out_dir = str(tmp_path / "imm")
    assert main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "4",
                 "--out", out_dir]) == 0
    assert os.path.exists(os.path.join(out_dir, "program.asm"))
    ptp = load_ptp(out_dir)
    assert ptp.name == "IMM"
    assert len(ptp.sb_hints) == 4


def test_generate_unknown_ptp(tmp_path):
    with pytest.raises(SystemExit, match="SFU_IMM"):
        main(["generate", "--ptp", "SFU_IMM", "--out", str(tmp_path)])


def test_compact_round_trip(tmp_path, capsys):
    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "6",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
                 "--no-evaluate", "--reports"]) == 0
    out = capsys.readouterr().out
    assert "PTP IMM" in out
    compacted = load_ptp(out_dir)
    original = load_ptp(src_dir)
    assert compacted.size <= original.size
    reports = os.path.join(out_dir, "reports")
    for name in ("trace.txt", "patterns.vcde", "fault_sim.txt",
                 "labeled.txt"):
        path = os.path.join(reports, name)
        assert os.path.getsize(path) > 0


def test_compact_reports_parse_back(tmp_path, capsys, du_module):
    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    main(["generate", "--ptp", "MEM", "--seed", "5", "--sbs", "5",
          "--out", src_dir])
    main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
          "--no-evaluate", "--reports"])
    capsys.readouterr()
    from repro.core.patterns import parse_pattern_report
    from repro.core.reports import parse_fault_sim_report
    from repro.gpu.trace import parse_trace_report

    reports = os.path.join(out_dir, "reports")
    with open(os.path.join(reports, "trace.txt")) as handle:
        assert parse_trace_report(handle.read())
    with open(os.path.join(reports, "patterns.vcde")) as handle:
        assert parse_pattern_report(handle.read(), du_module).count > 0
    with open(os.path.join(reports, "fault_sim.txt")) as handle:
        header, rows = parse_fault_sim_report(handle.read())
        assert rows
