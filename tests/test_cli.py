"""CLI tool: subcommands, artifacts, error handling."""

import os

import pytest

from repro.cli import main
from repro.stl.io import load_ptp


def test_info_prints_module_summary(capsys):
    assert main(["info", "--module", "sp_core", "--width", "8"]) == 0
    out = capsys.readouterr().out
    assert "sp_core" in out
    assert "collapsed stuck-at" in out


def test_info_unknown_module():
    with pytest.raises(SystemExit):
        main(["info", "--module", "warp_scheduler"])


def test_generate_writes_ptp_directory(tmp_path, capsys):
    out_dir = str(tmp_path / "imm")
    assert main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "4",
                 "--out", out_dir]) == 0
    assert os.path.exists(os.path.join(out_dir, "program.asm"))
    ptp = load_ptp(out_dir)
    assert ptp.name == "IMM"
    assert len(ptp.sb_hints) == 4


def test_generate_unknown_ptp(tmp_path):
    with pytest.raises(SystemExit, match="SFU_IMM"):
        main(["generate", "--ptp", "SFU_IMM", "--out", str(tmp_path)])


def test_analyze_text_report(capsys):
    assert main(["analyze", "--module", "decoder_unit"]) == 0
    out = capsys.readouterr().out
    assert "TESTABILITY decoder_unit" in out
    assert "dominance" in out
    assert "untestable" in out
    assert "scoap CC0" in out


def test_analyze_json_covers_all_modules(capsys):
    import json

    assert main(["analyze", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert [doc["module"] for doc in data] == \
        ["decoder_unit", "sfu", "sp_core"]
    for doc in data:
        assert doc["faults"]["untestable"] > 0
        assert doc["faults"]["testable"] + doc["faults"]["untestable"] == \
            doc["faults"]["total"]
        assert len(doc["proofs"]) == doc["faults"]["untestable"]
        assert doc["scoap"]["co"]["max"] is not None


def test_compact_static_prune_strict_smoke(tmp_path, capsys):
    """The CI soundness smoke: strict mode cross-checks every pruned
    fault against the batch engine and the metrics record the triage."""
    import json

    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    metrics_path = str(tmp_path / "metrics.json")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "4",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
                 "--static-prune", "strict", "--rank", "scoap",
                 "--no-evaluate", "--no-pool", "--no-cache",
                 "--metrics-out", metrics_path]) == 0
    capsys.readouterr()
    with open(metrics_path) as handle:
        metrics = json.load(handle)
    assert metrics["static"]["prune_mode"] == "strict"
    assert metrics["static"]["rank_mode"] == "scoap"
    assert metrics["static"]["faults_pruned_static"] > 0
    assert metrics["static"]["cross_checked"] == \
        metrics["static"]["faults_pruned_static"]


def test_compact_round_trip(tmp_path, capsys):
    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "6",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
                 "--no-evaluate", "--reports"]) == 0
    out = capsys.readouterr().out
    assert "PTP IMM" in out
    compacted = load_ptp(out_dir)
    original = load_ptp(src_dir)
    assert compacted.size <= original.size
    reports = os.path.join(out_dir, "reports")
    for name in ("trace.txt", "patterns.vcde", "fault_sim.txt",
                 "labeled.txt"):
        path = os.path.join(reports, name)
        assert os.path.getsize(path) > 0


def test_repro_error_exits_2_with_one_line_diagnostic(tmp_path, capsys):
    """Any ReproError must become exit code 2 + a one-line stderr
    diagnostic, never an unhandled traceback."""
    code = main(["compact", "--ptp-dir", str(tmp_path / "missing"),
                 "--out", str(tmp_path / "out")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert err.startswith("repro: ReportError:")
    assert "Traceback" not in err


def _write_stl(tmp_path, capsys):
    from repro.stl import SelfTestLibrary, generate_imm, generate_mem
    from repro.stl.io import save_stl

    stl_dir = str(tmp_path / "stl")
    save_stl(SelfTestLibrary([generate_imm(seed=5, num_sbs=4),
                              generate_mem(seed=5, num_sbs=4)]), stl_dir)
    capsys.readouterr()
    return stl_dir


def test_campaign_subcommand_end_to_end(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    out_dir = str(tmp_path / "out")
    assert main(["campaign", "--stl-dir", stl_dir, "--out", out_dir,
                 "--no-evaluate"]) == 0
    out = capsys.readouterr().out
    assert "CAMPAIGN decoder_unit" in out
    assert "compacted" in out
    assert os.path.exists(os.path.join(out_dir, "campaign.json"))
    from repro.stl.io import load_stl

    compacted = load_stl(out_dir)
    assert [p.name for p in compacted] == ["IMM_compacted",
                                           "MEM_compacted"]


def test_campaign_resume_skips_completed(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    out_dir = str(tmp_path / "out")
    main(["campaign", "--stl-dir", stl_dir, "--out", out_dir,
          "--no-evaluate"])
    capsys.readouterr()
    assert main(["campaign", "--stl-dir", stl_dir, "--out", out_dir,
                 "--no-evaluate", "--resume"]) == 0
    out = capsys.readouterr().out
    assert out.count("skipped") == 2


def test_campaign_resume_without_checkpoint_exits_2(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    code = main(["campaign", "--stl-dir", stl_dir,
                 "--out", str(tmp_path / "fresh"), "--resume"])
    assert code == 2
    assert "CheckpointError" in capsys.readouterr().err


def test_campaign_failed_ptp_exits_1(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    code = main(["campaign", "--stl-dir", stl_dir,
                 "--out", str(tmp_path / "out"),
                 "--no-evaluate", "--max-trace-cycles", "1"])
    assert code == 1
    out = capsys.readouterr().out
    assert "CycleBudgetError" in out


def test_compact_reports_parse_back(tmp_path, capsys, du_module):
    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    main(["generate", "--ptp", "MEM", "--seed", "5", "--sbs", "5",
          "--out", src_dir])
    main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
          "--no-evaluate", "--reports"])
    capsys.readouterr()
    from repro.core.patterns import parse_pattern_report
    from repro.core.reports import parse_fault_sim_report
    from repro.gpu.trace import parse_trace_report

    reports = os.path.join(out_dir, "reports")
    with open(os.path.join(reports, "trace.txt")) as handle:
        assert parse_trace_report(handle.read())
    with open(os.path.join(reports, "patterns.vcde")) as handle:
        assert parse_pattern_report(handle.read(), du_module).count > 0
    with open(os.path.join(reports, "fault_sim.txt")) as handle:
        header, rows = parse_fault_sim_report(handle.read())
        assert rows


# -- exec subsystem flags (--jobs / --cache-dir / --no-cache / --metrics) ---

def test_compact_warm_cache_and_metrics(tmp_path, capsys):
    src_dir = str(tmp_path / "src")
    cache_dir = str(tmp_path / "cache")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "5",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir,
                 "--out", str(tmp_path / "out1"), "--jobs", "2",
                 "--cache-dir", cache_dir,
                 "--metrics-out", str(tmp_path / "m1.json")]) == 0
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir,
                 "--out", str(tmp_path / "out2"), "--jobs", "2",
                 "--cache-dir", cache_dir,
                 "--metrics-out", str(tmp_path / "m2.json")]) == 0
    out = capsys.readouterr().out
    assert "RUN METRICS" in out
    import json

    warm = json.loads((tmp_path / "m2.json").read_text())
    assert warm["cache"]["hits"] >= 1
    assert warm["cache"]["misses"] == 0
    cold = json.loads((tmp_path / "m1.json").read_text())
    assert cold["cache"]["puts"] >= 1
    # Identical compaction either way.
    from repro.stl.io import load_ptp as _load

    assert list(_load(str(tmp_path / "out1")).program) == list(
        _load(str(tmp_path / "out2")).program)


def test_campaign_emits_metrics_and_cache_keys(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    out_dir = str(tmp_path / "out")
    cache_dir = str(tmp_path / "cache")
    assert main(["campaign", "--stl-dir", stl_dir, "--out", out_dir,
                 "--no-evaluate", "--jobs", "2",
                 "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "RUN METRICS" in out
    assert "metrics at" in out
    import json

    metrics_path = os.path.join(out_dir, "metrics.json")
    assert os.path.exists(metrics_path)
    with open(metrics_path) as handle:
        document = json.load(handle)
    assert document["fault_sim"]["runs"]
    # Checkpoint entries carry the artifact content keys + the dropping
    # fingerprint for resume-time artifact reuse.
    with open(os.path.join(out_dir, "campaign.json")) as handle:
        checkpoint = json.load(handle)
    for entry in checkpoint["ptps"].values():
        keys = entry["cache_keys"]
        assert "fault_state" in keys
        assert "tracing" in keys and len(keys["tracing"]) == 64


def test_campaign_no_cache_runs_without_cache_dir(tmp_path, capsys):
    stl_dir = _write_stl(tmp_path, capsys)
    out_dir = str(tmp_path / "out")
    assert main(["campaign", "--stl-dir", stl_dir, "--out", out_dir,
                 "--no-evaluate", "--no-cache",
                 "--cache-dir", str(tmp_path / "never")]) == 0
    out = capsys.readouterr().out
    assert "0 hit(s), 0 miss(es)" in out
    assert not os.path.exists(str(tmp_path / "never"))


def test_compact_pool_flags(tmp_path, capsys):
    """--chunk-size streams through a real pool; --no-pool forces the
    per-run inline path.  Both compact identically."""
    src_dir = str(tmp_path / "src")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "5",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir,
                 "--out", str(tmp_path / "pooled"), "--jobs", "2",
                 "--chunk-size", "64", "--no-cache",
                 "--metrics-out", str(tmp_path / "pooled.json")]) == 0
    assert main(["compact", "--ptp-dir", src_dir,
                 "--out", str(tmp_path / "inline"), "--jobs", "2",
                 "--no-pool", "--no-cache",
                 "--metrics-out", str(tmp_path / "inline.json")]) == 0
    capsys.readouterr()
    import json

    pooled = json.loads((tmp_path / "pooled.json").read_text())
    inline = json.loads((tmp_path / "inline.json").read_text())
    assert pooled["pool"]["workers_spawned"] == 2
    assert pooled["pool"]["chunks_dispatched"] >= 2
    assert inline["pool"] == {}
    assert all(run["jobs"] == 1 for run in inline["fault_sim"]["runs"])
    from repro.stl.io import load_ptp as _load

    assert list(_load(str(tmp_path / "pooled")).program) == list(
        _load(str(tmp_path / "inline")).program)


def test_help_documents_exec_flags(capsys):
    for command in ("compact", "campaign"):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        out = capsys.readouterr().out
        assert "--no-cache" in out
        assert "--jobs" in out
        assert "--cache-dir" in out
        assert "--metrics-out" in out
        assert "--chunk-size" in out
        assert "--no-pool" in out


def test_lint_clean_ptp_exits_0(tmp_path, capsys):
    ptp_dir = str(tmp_path / "imm")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "4",
          "--out", ptp_dir])
    capsys.readouterr()
    assert main(["lint", "--ptp-dir", ptp_dir]) == 0
    out = capsys.readouterr().out
    assert "IMM: 0 error(s)" in out
    assert "lint: 1 PTP(s), 0 error(s)" in out


def test_lint_stl_dir_json_output(tmp_path, capsys):
    import json

    stl_dir = _write_stl(tmp_path, capsys)
    assert main(["lint", "--stl-dir", stl_dir, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["errors"] == 0
    assert [p["ptp"] for p in data["ptps"]] == ["IMM", "MEM"]
    for ptp in data["ptps"]:
        for diag in ptp["diagnostics"]:
            assert diag["severity"] == "warning"


def test_lint_json_rule_counts_summary(tmp_path, capsys):
    import json

    stl_dir = _write_stl(tmp_path, capsys)
    assert main(["lint", "--stl-dir", stl_dir, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    # The per-rule-id block aggregates the diagnostic arrays exactly.
    expected = {}
    for ptp in data["ptps"]:
        for diag in ptp["diagnostics"]:
            expected[diag["rule"]] = expected.get(diag["rule"], 0) + 1
    assert data["rule_counts"] == expected
    assert sum(data["rule_counts"].values()) == \
        data["errors"] + data["warnings"]


def test_lint_broken_ptp_exits_1(tmp_path, capsys):
    ptp_dir = str(tmp_path / "mem")
    main(["generate", "--ptp", "MEM", "--seed", "5", "--sbs", "4",
          "--out", ptp_dir])
    capsys.readouterr()
    asm_path = os.path.join(ptp_dir, "program.asm")
    with open(asm_path) as handle:
        lines = handle.read().splitlines()
    # Drop the EXIT: execution now falls off the end (CFG002 + CFG003).
    lines = [line for line in lines if line.strip() != "EXIT"]
    with open(asm_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    assert main(["lint", "--ptp-dir", ptp_dir]) == 1
    out = capsys.readouterr().out
    assert "CFG002" in out or "CFG003" in out


def test_lint_missing_dir_exits_2(tmp_path, capsys):
    assert main(["lint", "--ptp-dir", str(tmp_path / "nope")]) == 2
    assert "repro:" in capsys.readouterr().err


def test_compact_verify_strict_flag(tmp_path, capsys):
    src_dir = str(tmp_path / "src")
    out_dir = str(tmp_path / "out")
    main(["generate", "--ptp", "IMM", "--seed", "5", "--sbs", "4",
          "--out", src_dir])
    capsys.readouterr()
    assert main(["compact", "--ptp-dir", src_dir, "--out", out_dir,
                 "--no-evaluate", "--verify", "strict"]) == 0
    assert "verify" in capsys.readouterr().out
