"""Campaign-level incremental oracle: STL edits, kill/resume, drop carry-over.

The acceptance property for ``--incremental``: a warm campaign over an
*edited* STL — one store block deleted, store blocks reordered, a
global-image word rewritten, a whole PTP swapped for a different build —
must end bit-identical to a from-scratch campaign over the same edited
STL.  "Bit-identical" means the detected-fault attribution, the module
fault coverage, and :meth:`FaultListReport.fingerprint` all match, for
every propagation engine, sequential and pooled.  Warm runs use
``strict`` mode, so the built-in from-scratch comparison doubles as an
oracle inside every example.
"""

import os
import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CampaignCheckpoint, CompactionCampaign, CompactionPipeline
from repro.core.campaign import COMPACTED, SKIPPED
from repro.core.pipeline import CompactionPipeline as _Pipeline
from repro.exec import ArtifactCache, RunMetrics
from repro.isa.instruction import Program
from repro.stl import (
    SelfTestLibrary,
    generate_cntrl,
    generate_imm,
    generate_mem,
)

NUM_SBS = 3


def _du_stl(imm_seed=4, mem_seed=4, cntrl_seed=4):
    return SelfTestLibrary([
        generate_imm(seed=imm_seed, num_sbs=NUM_SBS),
        generate_mem(seed=mem_seed, num_sbs=NUM_SBS),
        generate_cntrl(seed=cntrl_seed, num_sbs=NUM_SBS),
    ])


def _fault_state(pipeline):
    """Detected-fault attribution plus the remaining list, the campaign's
    bit-identity witness (same shape as the checkpoint suite uses)."""
    report = pipeline.fault_report
    return (list(report.remaining),
            {report.full_list.id_of(f): report.detected_by(f)
             for f in report.full_list if report.detected_by(f)})


# -- STL edit operations -------------------------------------------------
#
# Splice edits (delete / reorder store blocks) only apply to branch-free
# PTPs — CNTRL's programs carry absolute branch targets that a splice
# would break, which is an STL-authoring constraint, not an incremental
# one.  Swapping and image rewrites apply to any PTP.


def _spliceable(ptp):
    return len(ptp.sb_hints) >= 2 and not ptp.program.labels


def _delete_sb(rng, ptp):
    lo, hi = ptp.sb_hints[rng.randrange(len(ptp.sb_hints))]
    ins = ptp.program.instructions
    return ptp.with_program(Program(ins[:lo] + ins[hi:]))


def _reorder_sbs(rng, ptp):
    spans = [(lo, hi) for lo, hi in ptp.sb_hints]
    ins = ptp.program.instructions
    head = ins[:spans[0][0]]
    tail = ins[spans[-1][1]:]
    blocks = [ins[lo:hi] for lo, hi in spans]
    rng.shuffle(blocks)
    return ptp.with_program(Program(
        head + [i for block in blocks for i in block] + tail))


def _rewrite_image_word(rng, ptp):
    if not ptp.global_image:
        return ptp
    image = dict(ptp.global_image)
    address = rng.choice(sorted(image))
    image[address] ^= 1 << rng.randrange(32)
    return replace(ptp, global_image=image)


def _swap_ptp(rng, ptp):
    """A different build of the same PTP (new seed, same name): the
    maximal edit — everything about its patterns may change."""
    generator = {"IMM": generate_imm, "MEM": generate_mem,
                 "CNTRL": generate_cntrl}[ptp.name]
    return generator(seed=rng.randrange(5, 1000), num_sbs=NUM_SBS)


def _edit_stl(rng, stl):
    """Apply 1-2 random edits, returning a fresh edited STL."""
    ptps = list(stl)
    for __ in range(rng.randrange(1, 3)):
        index = rng.randrange(len(ptps))
        ptp = ptps[index]
        ops = [_rewrite_image_word, _swap_ptp]
        if _spliceable(ptp):
            ops += [_delete_sb, _reorder_sbs]
        ptps[index] = rng.choice(ops)(rng, ptp)
    return SelfTestLibrary(ptps)


# -- the STL-edit oracle -------------------------------------------------


def _run_campaign(module, stl, cache, incremental, engine, jobs=None,
                  pool=True, evaluate=False):
    metrics = RunMetrics()
    pipeline = CompactionPipeline(module, cache=cache, metrics=metrics,
                                  engine=engine, jobs=jobs, pool=pool,
                                  incremental=incremental)
    campaign = CompactionCampaign(pipeline)
    try:
        report = campaign.run(stl, evaluate=evaluate)
    finally:
        pipeline.close()
    return report, _fault_state(pipeline), \
        pipeline.fault_report.fingerprint(), metrics


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=5, deadline=None)
def test_stl_edit_oracle_across_engines(du_module, tmp_path_factory, seed):
    cache_dir = str(tmp_path_factory.mktemp("stl-edit"))

    for engine in ("cone", "event", "batch"):
        cache = ArtifactCache(os.path.join(cache_dir, engine))
        # Cold campaign over the unedited STL populates the records.
        __r, __s, __f, cold = _run_campaign(du_module, _du_stl(), cache,
                                            "on", engine)
        assert cold.incremental["records_missing"] > 0

        # The same edit sequence is re-derived from the seed for every
        # run that needs it (campaigns mutate their STL in place).
        edited = _edit_stl(random.Random(seed), _du_stl())
        warm_report, warm_state, warm_print, warm = _run_campaign(
            du_module, edited, cache, "strict", engine)
        scratch_report, scratch_state, scratch_print, __ = _run_campaign(
            du_module, _edit_stl(random.Random(seed), _du_stl()),
            ArtifactCache(os.path.join(cache_dir, engine + "-scratch")),
            "off", engine)

        assert warm_state == scratch_state
        assert warm_print == scratch_print
        assert warm_report.coverage_percent == (
            scratch_report.coverage_percent)
        assert warm_report.remaining_faults == (
            scratch_report.remaining_faults)
        assert warm.incremental["records_loaded"] > 0


def test_stl_edit_oracle_pooled_with_fc_evaluation(du_module, tmp_path):
    """The pooled variant, with stage-5 FC evaluation on: per-PTP original
    and compacted FC numbers must match a from-scratch pooled campaign
    after a single-SB deletion."""
    cache = ArtifactCache(str(tmp_path / "cache"))
    _run_campaign(du_module, _du_stl(), cache, "on", "event", jobs=2,
                  evaluate=True)

    rng = random.Random(99)
    edited = SelfTestLibrary([
        _delete_sb(rng, generate_imm(seed=4, num_sbs=NUM_SBS)),
        generate_mem(seed=4, num_sbs=NUM_SBS),
        generate_cntrl(seed=4, num_sbs=NUM_SBS),
    ])
    warm_report, warm_state, warm_print, warm = _run_campaign(
        du_module, edited, cache, "strict", "event", jobs=2, evaluate=True)

    rng = random.Random(99)
    scratch = SelfTestLibrary([
        _delete_sb(rng, generate_imm(seed=4, num_sbs=NUM_SBS)),
        generate_mem(seed=4, num_sbs=NUM_SBS),
        generate_cntrl(seed=4, num_sbs=NUM_SBS),
    ])
    scratch_report, scratch_state, scratch_print, __ = _run_campaign(
        du_module, scratch, cache=ArtifactCache(str(tmp_path / "c2")),
        incremental="off", engine="event", jobs=2, evaluate=True)

    assert warm_state == scratch_state
    assert warm_print == scratch_print
    for ours, theirs in zip(warm_report.records, scratch_report.records):
        assert ours.status == theirs.status == COMPACTED
        assert ours.outcome.original_fc == theirs.outcome.original_fc
        assert ours.outcome.compacted_fc == theirs.outcome.compacted_fc
        assert ours.outcome.compacted_size == theirs.outcome.compacted_size
    # The deleted SB invalidated strictly less than everything: the warm
    # run restored detection state rather than re-simulating it all.
    assert warm.incremental["faults_restored"] > 0


# -- satellite: kill mid-run, resume incrementally -----------------------


@pytest.mark.parametrize("engine", ["cone", "event", "batch"])
def test_kill_and_incremental_resume_is_bit_identical(du_module, gpu,
                                                      tmp_path,
                                                      monkeypatch, engine):
    """Kill a ``--incremental on`` campaign after one PTP, resume with the
    same cache and checkpoint: the merged result must be bit-identical to
    an uninterrupted from-scratch campaign, per engine."""
    reference = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu, engine=engine))
    reference_report = reference.run(_du_stl(), evaluate=False)
    reference_state = _fault_state(reference.pipeline)
    reference_print = reference.pipeline.fault_report.fingerprint()
    reference.pipeline.close()

    cache = ArtifactCache(str(tmp_path / "cache"))
    path = str(tmp_path / "campaign.json")
    killed = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu, engine=engine, cache=cache,
                           incremental="on"),
        checkpoint=CampaignCheckpoint(path))
    compacted = {"n": 0}
    real_compact = _Pipeline.compact

    def compact_and_kill(self, ptp, **kwargs):
        if compacted["n"] == 1:
            raise KeyboardInterrupt("killed")
        compacted["n"] += 1
        return real_compact(self, ptp, **kwargs)

    monkeypatch.setattr(_Pipeline, "compact", compact_and_kill)
    with pytest.raises(KeyboardInterrupt):
        killed.run(_du_stl(), evaluate=False)
    monkeypatch.setattr(_Pipeline, "compact", real_compact)
    killed.pipeline.close()

    resumed = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu, engine=engine, cache=cache,
                           incremental="on"),
        checkpoint=CampaignCheckpoint.load(path))
    resumed_report = resumed.run(_du_stl(), evaluate=False, resume=True)
    assert _fault_state(resumed.pipeline) == reference_state
    assert resumed.pipeline.fault_report.fingerprint() == reference_print
    assert resumed_report.coverage_percent == (
        reference_report.coverage_percent)
    statuses = [r.status for r in resumed_report.records]
    assert statuses == [SKIPPED] + [COMPACTED] * 2
    resumed.pipeline.close()


# -- satellite: cross-PTP drop carry-over under restore ------------------


def test_drop_carry_over_when_first_ptp_restores_from_cache(du_module,
                                                            tmp_path):
    """A fault dropped by IMM stays dropped — and stays attributed to
    IMM — when IMM is restored verbatim from the fault-state record and
    only the edited MEM re-simulates."""
    cache = ArtifactCache(str(tmp_path / "cache"))
    imm = generate_imm(seed=4, num_sbs=NUM_SBS)
    mem = generate_mem(seed=4, num_sbs=NUM_SBS)

    cold = CompactionPipeline(du_module, cache=cache, incremental="on")
    cold.compact(imm, evaluate=False)
    cold.compact(mem, evaluate=False)
    cold.close()

    edited_mem = _rewrite_image_word(random.Random(3), mem)
    assert edited_mem.global_image != mem.global_image

    metrics = RunMetrics()
    warm = CompactionPipeline(du_module, cache=cache, metrics=metrics,
                              incremental="strict")
    warm.compact(imm, evaluate=False)
    imm_resimulated = metrics.incremental["faults_resimulated"]
    assert imm_resimulated == 0  # IMM unchanged: restored verbatim
    assert metrics.incremental["faults_restored"] > 0
    warm.compact(edited_mem, evaluate=False)
    warm.close()

    scratch = CompactionPipeline(du_module,
                                 cache=ArtifactCache(str(tmp_path / "c2")))
    scratch.compact(imm, evaluate=False)
    scratch.compact(edited_mem, evaluate=False)
    scratch.close()

    assert _fault_state(warm) == _fault_state(scratch)
    assert warm.fault_report.fingerprint() == (
        scratch.fault_report.fingerprint())
    # Attribution: every IMM drop in the scratch run is an IMM drop in
    # the warm run (no edited-MEM leakage into restored-IMM credit).
    warm_by = _fault_state(warm)[1]
    assert any(name == "IMM" for name in warm_by.values())
    assert any(name == "MEM" for name in warm_by.values())
