"""Pattern report (VCDE), fault-sim report, LPTP listing round trips."""

import pytest

from repro.core.labeling import label_instructions
from repro.core.patterns import parse_pattern_report, write_pattern_report
from repro.core.reports import (
    parse_fault_sim_report,
    write_compaction_summary,
    write_fault_sim_report,
    write_labeled_ptp,
)
from repro.core.tracing import run_logic_tracing
from repro.errors import ReportError
from repro.faults import FaultList, FaultSimulator
from repro.gpu.config import KernelConfig
from repro.isa import assemble
from repro.stl.ptp import ParallelTestProgram

SOURCE = """
    S2R R0, TID_X
    MOV32I R2, 0x4D
    IADD R3, R2, R0
    GST [R0+0x0], R3
    MOV32I R4, 0xF0
    XOR R5, R4, R0
    GST [R0+0x1], R5
    EXIT
"""


@pytest.fixture(scope="module")
def artifacts(du_module, gpu):
    ptp = ParallelTestProgram(name="P", target="decoder_unit",
                              program=assemble(SOURCE),
                              kernel=KernelConfig())
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    patterns = tracing.pattern_report.to_pattern_set()
    result = FaultSimulator(du_module.netlist).run(
        patterns, FaultList(du_module.netlist))
    return ptp, tracing, result


def test_pattern_report_to_pattern_set(artifacts, du_module):
    ptp, tracing, __ = artifacts
    report = tracing.pattern_report
    patterns = report.to_pattern_set()
    assert patterns.count == report.count == ptp.size
    # Pattern k must be the encoded instruction word of record k.
    for k, record in enumerate(report.records):
        word = 0
        for i, net in enumerate(du_module.input_words["instr"]):
            word |= patterns.value_of(net, k) << i
        assert word == record.value_dict["instr"]


def test_vcde_round_trip(artifacts, du_module):
    __, tracing, __result = artifacts
    text = write_pattern_report(tracing.pattern_report)
    assert text.startswith("#VCDE module=decoder_unit")
    parsed = parse_pattern_report(text, du_module)
    assert parsed.records == tracing.pattern_report.records


def test_vcde_rejects_wrong_module(artifacts, sp_module):
    __, tracing, __result = artifacts
    text = write_pattern_report(tracing.pattern_report)
    with pytest.raises(ReportError):
        parse_pattern_report(text, sp_module)


def test_vcde_rejects_garbage():
    import types

    fake = types.SimpleNamespace(name="decoder_unit", input_words={})
    with pytest.raises(ReportError):
        parse_pattern_report("not a report", fake)


def test_reversed_report(artifacts):
    __, tracing, __result = artifacts
    report = tracing.pattern_report
    rev = report.reversed()
    assert rev.records == list(reversed(report.records))
    assert rev.cc_of_pattern() == list(reversed(report.cc_of_pattern()))


def test_thread_sequences_partition_patterns(artifacts):
    __, tracing, __result = artifacts
    sequences = tracing.pattern_report.thread_sequences()
    all_indices = sorted(k for seq in sequences.values() for k in seq)
    assert all_indices == list(range(tracing.pattern_report.count))
    for seq in sequences.values():
        assert seq == sorted(seq)


def test_fault_sim_report_round_trip(artifacts):
    __, tracing, result = artifacts
    text = write_fault_sim_report(result, tracing.pattern_report)
    header, rows = parse_fault_sim_report(text)
    assert header["module"] == "decoder_unit"
    assert int(header["detected"]) == result.num_detected
    assert len(rows) == tracing.pattern_report.count
    counts = result.detections_per_pattern()
    for k, cc, detected in rows:
        assert counts[k] == detected
        assert cc == tracing.pattern_report.records[k].cc
    assert sum(r[2] for r in rows) == result.num_detected


def test_labeled_ptp_listing(artifacts):
    ptp, tracing, result = artifacts
    labeled = label_instructions(ptp, tracing.trace, tracing.pattern_report,
                                 result)
    text = write_labeled_ptp(labeled)
    lines = text.strip().splitlines()
    assert lines[0].startswith("#LPTP name=P")
    assert len(lines) == 1 + ptp.size
    flags = {line.split()[0] for line in lines[1:]}
    assert flags <= {"E", "u"}


def test_compaction_summary_mentions_single_fault_sim(du_module, gpu):
    from repro.core.pipeline import CompactionPipeline
    from repro.stl import generate_imm

    pipeline = CompactionPipeline(du_module, gpu=gpu)
    outcome = pipeline.compact(generate_imm(seed=2, num_sbs=4))
    text = write_compaction_summary(outcome)
    assert "PTP IMM" in text
    assert "1 for the compaction itself" in text
    assert "FC:" in text
