"""Resilient campaign runner: isolation, watchdog, FC guard, summary."""

import pytest

from repro.core import (
    CampaignCheckpoint,
    CompactionCampaign,
    CompactionPipeline,
    run_stl_campaign,
    write_campaign_summary,
)
from repro.core.campaign import COMPACTED, FAILED, ROLLED_BACK, SKIPPED, Watchdog
from repro.errors import CampaignError, CompactionError, CycleBudgetError, PtpTimeoutError
from repro.stl import SelfTestLibrary, generate_cntrl, generate_imm, generate_mem, generate_rand


def _du_stl(num_sbs=5):
    return SelfTestLibrary([generate_imm(seed=4, num_sbs=num_sbs),
                            generate_mem(seed=4, num_sbs=num_sbs),
                            generate_cntrl(seed=4, num_sbs=num_sbs)])


def _fail_reduction_for(monkeypatch, ptp_name):
    """Make stage-4 reduction raise for one named PTP."""
    from repro.core import pipeline as pipeline_module

    real = pipeline_module.reduce_ptp

    def exploding(labeled, partition):
        if labeled.ptp.name == ptp_name:
            raise CompactionError("injected stage-4 failure")
        return real(labeled, partition)

    monkeypatch.setattr(pipeline_module, "reduce_ptp", exploding)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_watchdog_timeout_fires_at_stage_boundary():
    clock = FakeClock()
    watchdog = Watchdog(timeout=10.0, clock=clock)
    watchdog.start()
    watchdog("partition")
    clock.now = 11.0
    with pytest.raises(PtpTimeoutError) as excinfo:
        watchdog("tracing")
    assert excinfo.value.stage == "tracing"


def test_watchdog_cycle_budget():
    watchdog = Watchdog(max_trace_cycles=100)
    watchdog.start()
    watchdog("fault_simulation", cycles=100)  # at the budget: fine
    with pytest.raises(CycleBudgetError) as excinfo:
        watchdog("fault_simulation", cycles=101)
    assert excinfo.value.stage == "tracing"


def test_failed_ptp_is_isolated_and_campaign_continues(du_module, gpu,
                                                       monkeypatch):
    """Acceptance: one PTP raising mid-compaction must not lose the
    campaign — the remaining PTPs complete, the failing PTP's original
    stays in the STL, and the failure is reported."""
    _fail_reduction_for(monkeypatch, "MEM")
    stl = _du_stl()
    original_mem_size = stl["MEM"].size
    original_imm_size = stl["IMM"].size
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu))
    report = campaign.run(stl, evaluate=False)

    statuses = {r.name: r.status for r in report.records}
    assert statuses == {"IMM": COMPACTED, "MEM": FAILED,
                        "CNTRL": COMPACTED}
    # The failing PTP's original is retained, untouched.
    assert stl["MEM"].size == original_mem_size
    # The others were compacted and replaced in the STL.
    assert stl["IMM_compacted"].size <= original_imm_size
    failure = report.by_status(FAILED)[0].failure
    assert failure.error_code == "CompactionError"
    assert failure.stage == "reduction"
    assert failure.ptp_name == "MEM"
    assert "injected" in failure.message


def test_fail_fast_aborts_after_recording(du_module, gpu, monkeypatch,
                                          tmp_path):
    _fail_reduction_for(monkeypatch, "IMM")
    checkpoint = CampaignCheckpoint(str(tmp_path / "campaign.json"))
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                  keep_going=False, checkpoint=checkpoint)
    with pytest.raises(CampaignError, match="fail-fast"):
        campaign.run(_du_stl(num_sbs=4), evaluate=False)
    # The failure was checkpointed before the abort.
    reloaded = CampaignCheckpoint.load(str(tmp_path / "campaign.json"))
    assert reloaded.ptp_entry("IMM")["status"] == FAILED


def test_cycle_budget_breach_keeps_original(du_module, gpu):
    stl = _du_stl(num_sbs=4)
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                  max_trace_cycles=1)
    report = campaign.run(stl, evaluate=False)
    assert all(r.status == FAILED for r in report.records)
    assert all(r.failure.error_code == "CycleBudgetError"
               for r in report.records)
    assert stl["IMM"].size > 0  # originals untouched
    assert report.remaining_faults == report.total_faults


def test_ptp_timeout_recorded_as_failure(du_module, gpu):
    class JumpyClock(FakeClock):
        def __call__(self):
            value = self.now
            self.now += 60.0  # every look at the clock costs a minute
            return value

    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                  ptp_timeout=30.0, clock=JumpyClock())
    report = campaign.run(_du_stl(num_sbs=4), evaluate=False)
    assert all(r.status == FAILED for r in report.records)
    assert all(r.failure.error_code == "PtpTimeoutError"
               for r in report.records)


def test_fc_guard_rolls_back_regressions(du_module, gpu):
    """MEM after IMM loses FC on this configuration; with a tight guard
    the compaction must be rolled back and the original retained."""
    stl = _du_stl(num_sbs=6)
    original_mem_size = stl["MEM"].size
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                  max_fc_drop=0.5)
    report = campaign.run(stl)
    by_name = {r.name: r for r in report.records}
    assert by_name["IMM"].status == COMPACTED  # fc_diff == 0 on fresh list
    assert by_name["MEM"].status == ROLLED_BACK
    assert by_name["MEM"].numbers["fc_diff"] < -0.5
    assert stl["MEM"].size == original_mem_size
    assert by_name["MEM"].kept_original


def test_fc_guard_disabled_without_threshold(du_module, gpu):
    stl = _du_stl(num_sbs=6)
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu))
    report = campaign.run(stl)
    assert all(r.status == COMPACTED for r in report.records)


def test_negative_max_fc_drop_rejected(du_module, gpu):
    with pytest.raises(CampaignError):
        CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                           max_fc_drop=-1.0)


def test_resume_without_checkpoint_rejected(du_module, gpu):
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu))
    with pytest.raises(CampaignError):
        campaign.run(_du_stl(), resume=True)


def test_run_stl_campaign_covers_multiple_modules(du_module, sp_module,
                                                  gpu):
    stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=4),
                           generate_rand(seed=4, num_sbs=3)])
    reports = run_stl_campaign(stl,
                               {"decoder_unit": du_module,
                                "sp_core": sp_module},
                               gpu=gpu, evaluate=False)
    assert [r.module_name for r in reports] == ["decoder_unit", "sp_core"]
    assert all(rec.status == COMPACTED
               for r in reports for rec in r.records)
    assert stl["IMM_compacted"] and stl["RAND_compacted"]


def test_run_stl_campaign_missing_module(du_module, gpu):
    stl = SelfTestLibrary([generate_rand(seed=4, num_sbs=3)])
    with pytest.raises(CampaignError, match="sp_core"):
        run_stl_campaign(stl, {"decoder_unit": du_module}, gpu=gpu)


def test_campaign_summary_lists_every_status(du_module, gpu, monkeypatch):
    _fail_reduction_for(monkeypatch, "CNTRL")
    stl = _du_stl(num_sbs=6)
    campaign = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                  max_fc_drop=0.5)
    text = write_campaign_summary(campaign.run(stl))
    assert "IMM" in text and "compacted" in text
    assert "rolled-back" in text
    assert "CompactionError" in text
    assert "coverage:" in text


def test_skipped_records_report_prior_status(du_module, gpu, tmp_path):
    checkpoint = CampaignCheckpoint(str(tmp_path / "c.json"))
    stl = _du_stl(num_sbs=4)
    CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                       checkpoint=checkpoint).run(stl, evaluate=False)
    resumed = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu),
        checkpoint=CampaignCheckpoint.load(str(tmp_path / "c.json")))
    report = resumed.run(_du_stl(num_sbs=4), resume=True)
    assert all(r.status == SKIPPED for r in report.records)
    assert all(r.prior_status == COMPACTED for r in report.records)
    text = write_campaign_summary(report)
    assert "skipped" in text and "interrupted run" in text
