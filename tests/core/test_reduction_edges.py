"""Reduction edge cases: hammocks, inadmissible regions, pc maps."""

from repro.core.labeling import label_instructions
from repro.core.partition import partition_ptp
from repro.core.reduction import _hammock_spans, reduce_ptp, segment_small_blocks
from repro.core.tracing import run_logic_tracing
from repro.faults.fault_sim import FaultSimResult
from repro.gpu.config import KernelConfig
from repro.isa import assemble
from repro.stl.ptp import ParallelTestProgram


def _ptp(source):
    return ParallelTestProgram(name="T", target="decoder_unit",
                               program=assemble(source),
                               kernel=KernelConfig())


def test_hammock_detection_simple():
    ptp = _ptp("""
        S2R R0, TID_X
        ISETP P0, R0, R2, LT
        SSY j
    @P0 BRA j
        MOV32I R3, 0x1
    j:
        JOIN
        EXIT
    """)
    partition = partition_ptp(ptp)
    spans = _hammock_spans(list(ptp.program), partition)
    assert spans == {2: 5}


def test_hammock_rejected_when_branch_escapes():
    ptp = _ptp("""
        S2R R0, TID_X
        SSY j
    @P0 BRA 0
        MOV32I R3, 0x1
    j:
        JOIN
        EXIT
    """)
    partition = partition_ptp(ptp)
    assert _hammock_spans(list(ptp.program), partition) == {}


def test_hammock_rejected_when_entered_from_outside():
    ptp = _ptp("""
        S2R R0, TID_X
        BRA inside
        SSY j
    @P0 BRA j
    inside:
        MOV32I R3, 0x1
    j:
        JOIN
        EXIT
    """)
    partition = partition_ptp(ptp)
    assert 2 not in _hammock_spans(list(ptp.program), partition)


def test_hammock_rejected_with_nested_ssy():
    ptp = _ptp("""
        S2R R0, TID_X
        SSY j
        SSY j2
    @P0 BRA j2
    j2:
        JOIN
    j:
        JOIN
        EXIT
    """)
    partition = partition_ptp(ptp)
    spans = _hammock_spans(list(ptp.program), partition)
    # The outer span contains another SSY: rejected; the inner qualifies.
    assert 1 not in spans
    assert spans.get(2) == 4


def test_inadmissible_blocks_stay_pinned():
    ptp = _ptp("""
        S2R R0, TID_X
        CLD R20, c[0x0]
        MOV32I R21, 0x0
    loop:
        IADD32I R21, R21, 0x1
        ISETP P1, R21, R20, LT
    @P1 BRA loop
        EXIT
    """)
    partition = partition_ptp(ptp)
    blocks = segment_small_blocks(ptp, partition)
    loop_pcs = {3, 4, 5}
    for sb in blocks:
        if set(sb.pcs()) & loop_pcs:
            assert not sb.removable


def test_pc_map_is_monotonic(du_module, gpu):
    from repro.stl import generate_imm

    ptp = generate_imm(seed=17, num_sbs=8)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    result = FaultSimResult(
        _FakeList(1), tracing.pattern_report.count, [1], [0])
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition_ptp(ptp))
    kept = [(old, new) for old, new in enumerate(reduction.pc_map)
            if new is not None]
    news = [new for __, new in kept]
    assert news == sorted(news)
    assert news == list(range(len(news)))
    for old, new in kept:
        assert reduction.compacted.program[new] == ptp.program[old]


class _FakeList:
    def __init__(self, n):
        self._n = n

    def __len__(self):
        return self._n

    def __iter__(self):
        return iter(range(self._n))
