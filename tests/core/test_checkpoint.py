"""Checkpoint persistence and kill/resume equivalence.

The acceptance property: a campaign killed after any PTP and re-run with
resume must end with a bit-identical remaining fault list and identical
final FC to an uninterrupted run.
"""

import json
import os

import pytest

from repro.core import CampaignCheckpoint, CompactionCampaign, CompactionPipeline
from repro.core.campaign import COMPACTED, SKIPPED
from repro.core.pipeline import CompactionPipeline as _Pipeline
from repro.errors import CheckpointError
from repro.stl import SelfTestLibrary, generate_cntrl, generate_imm, generate_mem


def _du_stl(num_sbs=4):
    return SelfTestLibrary([generate_imm(seed=4, num_sbs=num_sbs),
                            generate_mem(seed=4, num_sbs=num_sbs),
                            generate_cntrl(seed=4, num_sbs=num_sbs)])


# -- file format ---------------------------------------------------------


def test_save_is_atomic_rename(tmp_path):
    path = str(tmp_path / "c.json")
    checkpoint = CampaignCheckpoint(path)
    checkpoint.record_ptp("IMM", COMPACTED, numbers={"original_size": 10})
    checkpoint.save()
    # No temp litter left behind, only the complete file.
    assert os.listdir(str(tmp_path)) == ["c.json"]
    reloaded = CampaignCheckpoint.load(path)
    assert reloaded.ptp_entry("IMM")["numbers"]["original_size"] == 10
    assert reloaded.order == ["IMM"]


def test_load_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        CampaignCheckpoint.load(str(tmp_path / "absent.json"))


def test_load_corrupt_json(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{ not json")
    with pytest.raises(CheckpointError, match="corrupt"):
        CampaignCheckpoint.load(str(path))


def test_load_wrong_version(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"version": 999, "ptps": {}, "order": [],
                                "modules": {}}))
    with pytest.raises(CheckpointError, match="version"):
        CampaignCheckpoint.load(str(path))


def test_load_order_entry_mismatch(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"version": 1, "ptps": {},
                                "order": ["ghost"], "modules": {}}))
    with pytest.raises(CheckpointError, match="ghost"):
        CampaignCheckpoint.load(str(path))


def test_load_or_create_requires_file_on_resume(tmp_path):
    path = str(tmp_path / "c.json")
    fresh = CampaignCheckpoint.load_or_create(path, resume=False)
    assert fresh.ptps == {}
    with pytest.raises(CheckpointError):
        CampaignCheckpoint.load_or_create(path, resume=True)


# -- kill/resume equivalence ---------------------------------------------


def _fault_state(pipeline):
    report = pipeline.fault_report
    return (list(report.remaining),
            {report.full_list.id_of(f): report.detected_by(f)
             for f in report.full_list if report.detected_by(f)})


@pytest.mark.parametrize("kill_after", [1, 2])
def test_kill_and_resume_matches_uninterrupted(du_module, gpu, tmp_path,
                                               monkeypatch, kill_after):
    """Kill the campaign after PTP *kill_after*, resume, and compare the
    final fault list and FC to an uninterrupted run — bit-identical."""
    # Reference: uninterrupted campaign.
    reference_stl = _du_stl()
    reference = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu))
    reference_report = reference.run(reference_stl, evaluate=False)
    reference_state = _fault_state(reference.pipeline)

    # Interrupted campaign: a hard kill (not a ReproError) mid-campaign.
    path = str(tmp_path / "campaign.json")
    killed = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                                checkpoint=CampaignCheckpoint(path))
    compacted_count = {"n": 0}
    real_compact = _Pipeline.compact

    def compact_and_kill(self, ptp, **kwargs):
        if compacted_count["n"] == kill_after:
            raise KeyboardInterrupt("killed")
        compacted_count["n"] += 1
        return real_compact(self, ptp, **kwargs)

    monkeypatch.setattr(_Pipeline, "compact", compact_and_kill)
    with pytest.raises(KeyboardInterrupt):
        killed.run(_du_stl(), evaluate=False)
    monkeypatch.setattr(_Pipeline, "compact", real_compact)

    # Resume with a fresh pipeline and a fresh copy of the STL.
    resumed_stl = _du_stl()
    resumed = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu),
        checkpoint=CampaignCheckpoint.load(path))
    resumed_report = resumed.run(resumed_stl, resume=True)
    resumed_state = _fault_state(resumed.pipeline)

    # Bit-identical remaining fault list (same faults, same order) and
    # identical detected-by attribution.
    assert resumed_state[0] == reference_state[0]
    assert resumed_state[1] == reference_state[1]
    # Identical final FC.
    assert resumed_report.coverage_percent == (
        reference_report.coverage_percent)
    assert resumed_report.remaining_faults == (
        reference_report.remaining_faults)
    # The resumed STL ends up with the same compacted programs.
    for reference_ptp, resumed_ptp in zip(reference_stl, resumed_stl):
        assert resumed_ptp.name == reference_ptp.name
        assert list(resumed_ptp.program) == list(reference_ptp.program)
    # Statuses: first *kill_after* skipped, the rest compacted fresh.
    statuses = [r.status for r in resumed_report.records]
    assert statuses == [SKIPPED] * kill_after + (
        [COMPACTED] * (3 - kill_after))


def test_resume_restores_dropping_order_semantics(du_module, gpu,
                                                  tmp_path):
    """A resumed MEM-after-IMM campaign must label MEM against exactly
    the post-IMM remaining list, not the full list."""
    path = str(tmp_path / "c.json")
    stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=5)])
    first = CompactionCampaign(CompactionPipeline(du_module, gpu=gpu),
                               checkpoint=CampaignCheckpoint(path))
    first.run(stl, evaluate=False)
    dropped_by_imm = (first.pipeline.fault_report.total_faults
                      - first.pipeline.fault_report.remaining_faults)
    assert dropped_by_imm > 0

    # Continue the campaign with MEM appended, resuming from checkpoint.
    resumed = CompactionCampaign(
        CompactionPipeline(du_module, gpu=gpu),
        checkpoint=CampaignCheckpoint.load(path))
    continued_stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=5),
                                     generate_mem(seed=4, num_sbs=5)])
    report = resumed.run(continued_stl, resume=True)
    mem_record = report.records[1]
    assert mem_record.status == COMPACTED
    # MEM's fault simulation ran against the restored (reduced) list.
    assert len(mem_record.outcome.fault_result.fault_list) == (
        first.pipeline.fault_report.remaining_faults)


def test_cache_keys_round_trip_and_backward_compat(tmp_path):
    from repro.core.checkpoint import CampaignCheckpoint

    path = str(tmp_path / "ck.json")
    checkpoint = CampaignCheckpoint(path)
    keys = {"tracing": "a" * 64, "fault_state": "b" * 64}
    checkpoint.record_ptp("IMM", "compacted", cache_keys=keys)
    checkpoint.record_ptp("MEM", "failed")
    checkpoint.save()

    loaded = CampaignCheckpoint.load(path)
    assert loaded.ptp_cache_keys("IMM") == keys
    assert loaded.ptp_cache_keys("MEM") == {}
    assert loaded.ptp_cache_keys("missing") == {}

    # Version-1 checkpoints written before the exec subsystem lack the
    # field entirely; they must still load and report no keys.
    import json

    with open(path) as handle:
        document = json.load(handle)
    for entry in document["ptps"].values():
        entry.pop("cache_keys", None)
    with open(path, "w") as handle:
        json.dump(document, handle)
    legacy = CampaignCheckpoint.load(path)
    assert legacy.ptp_cache_keys("IMM") == {}
