"""End-to-end pipeline invariants (stage 1-5 integration)."""

import pytest

from repro.core import CompactionPipeline, evaluate_fc, run_logic_tracing
from repro.errors import CompactionError
from repro.stl import SelfTestLibrary, generate_cntrl, generate_imm, generate_mem, generate_rand


@pytest.fixture()
def du_pipeline(du_module, gpu):
    return CompactionPipeline(du_module, gpu=gpu)


def test_compact_rejects_wrong_target(du_pipeline):
    rand = generate_rand(seed=1, num_sbs=3)
    with pytest.raises(CompactionError):
        du_pipeline.compact(rand)


def test_compaction_reduces_and_preserves_fc(du_pipeline, du_module, gpu):
    """First PTP on a fresh module: module-output FC must be exactly
    preserved (DU patterns are context-free, every first-detecting pattern
    is kept)."""
    ptp = generate_imm(seed=4, num_sbs=20)
    outcome = du_pipeline.compact(ptp)
    assert outcome.compacted_size < outcome.original_size
    assert outcome.compacted_cycles < outcome.original_cycles
    assert outcome.fc_diff == pytest.approx(0.0)
    assert outcome.fault_simulations == 3  # 1 compaction + 2 validation


def test_essential_instructions_survive(du_pipeline):
    from repro.core.labeling import ESSENTIAL

    ptp = generate_imm(seed=4, num_sbs=12)
    outcome = du_pipeline.compact(ptp)
    labeled = outcome.labeled
    kept = {pc for pc, new in enumerate(outcome.reduction.pc_map)
            if new is not None}
    for pc, label in enumerate(labeled.labels):
        if label == ESSENTIAL:
            assert pc in kept


def test_dropping_carries_across_ptps(du_pipeline):
    imm = generate_imm(seed=4, num_sbs=15)
    mem = generate_mem(seed=4, num_sbs=15)
    first = du_pipeline.compact(imm)
    before = du_pipeline.fault_report.remaining_faults
    second = du_pipeline.compact(mem)
    after = du_pipeline.fault_report.remaining_faults
    assert first.newly_dropped_faults > 0
    assert after <= before
    # MEM (second) must compact at least as hard as it would standalone.
    fresh = CompactionPipeline(du_pipeline.module, gpu=du_pipeline.gpu)
    standalone = fresh.compact(generate_mem(seed=4, num_sbs=15))
    assert second.compacted_size <= standalone.compacted_size


def test_dropping_false_leaves_report_untouched(du_module, gpu):
    pipeline = CompactionPipeline(du_module, gpu=gpu)
    pipeline.compact(generate_imm(seed=4, num_sbs=8), dropping=False)
    assert pipeline.fault_report.remaining_faults == (
        pipeline.fault_report.total_faults)


def test_cntrl_duration_compacts_less_than_size(du_pipeline):
    outcome = du_pipeline.compact(generate_cntrl(seed=4, num_sbs=18))
    # The parametric loop survives whole, so duration reduction lags size
    # reduction (the paper's CNTRL row: -73.51% size vs -36.95% duration).
    assert outcome.size_reduction_percent < 0
    assert outcome.duration_reduction_percent >= (
        outcome.size_reduction_percent)
    from repro.isa.opcodes import Op

    kept_ops = [i.op for i in outcome.compacted.program]
    assert Op.CLD in kept_ops  # the parametric loop's trip-count load


def test_compacted_ptp_is_executable(du_pipeline, du_module, gpu):
    for gen, kw in ((generate_imm, {"num_sbs": 10}),
                    (generate_mem, {"num_sbs": 10}),
                    (generate_cntrl, {"num_sbs": 8})):
        outcome = du_pipeline.compact(gen(seed=6, **kw))
        tracing = run_logic_tracing(outcome.compacted, du_module, gpu=gpu)
        assert tracing.cycles == outcome.compacted_cycles


def test_compact_stl_replaces_in_place(du_module, gpu):
    stl = SelfTestLibrary([generate_imm(seed=4, num_sbs=8),
                           generate_mem(seed=4, num_sbs=8),
                           generate_rand(seed=4, num_sbs=4)])
    pipeline = CompactionPipeline(du_module, gpu=gpu)
    outcomes = pipeline.compact_stl(stl, evaluate=False)
    assert [o.ptp.name for o in outcomes] == ["IMM", "MEM"]
    assert stl[0].name == "IMM_compacted"
    assert stl[1].name == "MEM_compacted"
    assert stl["RAND"].name == "RAND"  # different module: untouched


def test_sp_pipeline_uses_signature_observability(sp_module, gpu):
    pipeline = CompactionPipeline(sp_module, gpu=gpu)
    outcome = pipeline.compact(generate_rand(seed=4, num_sbs=10))
    assert outcome.original_fc is not None
    evaluation = evaluate_fc(outcome.ptp, sp_module, gpu=gpu)
    assert evaluation.observability == "signature"
    assert evaluation.fc_percent == pytest.approx(outcome.original_fc)


def test_signature_fc_not_above_module_fc(sp_module, gpu):
    ptp = generate_rand(seed=4, num_sbs=10)
    sig = evaluate_fc(ptp, sp_module, gpu=gpu, observability="signature")
    mod = evaluate_fc(ptp, sp_module, gpu=gpu, observability="module")
    assert sig.fc_percent <= mod.fc_percent
    assert sig.detected <= mod.detected


def test_reverse_patterns_changes_first_detections(sfu_module, gpu):
    from repro.stl import generate_sfu_imm

    ptp, __ = generate_sfu_imm(sfu_module, seed=4, atpg_random_patterns=24,
                               atpg_max_backtracks=3)
    forward = CompactionPipeline(sfu_module, gpu=gpu).compact(
        ptp, reverse_patterns=False, evaluate=False)
    backward = CompactionPipeline(sfu_module, gpu=gpu).compact(
        ptp, reverse_patterns=True, evaluate=False)
    # Same detected fault set either way, but different essential labels.
    assert forward.fault_result.num_detected == (
        backward.fault_result.num_detected)


def test_sfu_compaction_preserves_fc_exactly(sfu_module, gpu):
    """No inter-SB data dependence in SFU_IMM: FC diff must be 0.0
    (Table III's SFU_IMM row)."""
    from repro.stl import generate_sfu_imm

    ptp, __ = generate_sfu_imm(sfu_module, seed=4, atpg_random_patterns=24,
                               atpg_max_backtracks=3)
    pipeline = CompactionPipeline(sfu_module, gpu=gpu)
    outcome = pipeline.compact(ptp, reverse_patterns=True)
    assert outcome.fc_diff == pytest.approx(0.0)


def test_outcome_percentages_consistent(du_pipeline):
    outcome = du_pipeline.compact(generate_imm(seed=9, num_sbs=10))
    expected = -100.0 * (outcome.original_size - outcome.compacted_size) \
        / outcome.original_size
    assert outcome.size_reduction_percent == pytest.approx(expected)
    assert outcome.compaction_seconds > 0
