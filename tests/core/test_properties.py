"""Property-based tests over the compaction pipeline's core invariants.

Each property runs the real pipeline on freshly generated PTPs under many
seeds; these are the contracts the paper's method guarantees by
construction.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CompactionPipeline, run_logic_tracing
from repro.core.labeling import ESSENTIAL
from repro.core.partition import partition_ptp
from repro.core.reduction import segment_small_blocks
from repro.stl import generate_cntrl, generate_imm

seeds = st.integers(0, 10_000)


@given(seeds)
@settings(max_examples=8, deadline=None)
def test_compaction_is_idempotent(du_module, gpu, seed):
    """Compacting a compacted PTP removes nothing further (all surviving
    SBs carry essential instructions against the same fault list)."""
    ptp = generate_imm(seed=seed, num_sbs=10)
    first = CompactionPipeline(du_module, gpu=gpu).compact(ptp,
                                                           evaluate=False)
    second = CompactionPipeline(du_module, gpu=gpu).compact(
        first.compacted, evaluate=False)
    assert second.compacted_size == first.compacted_size


@given(seeds)
@settings(max_examples=8, deadline=None)
def test_segmentation_is_a_partition(du_module, seed):
    """SBs cover every pc exactly once, in order."""
    ptp = generate_cntrl(seed=seed, num_sbs=5)
    partition = partition_ptp(ptp)
    blocks = segment_small_blocks(ptp, partition)
    covered = [pc for sb in blocks for pc in sb.pcs()]
    assert covered == list(range(ptp.size))


@given(seeds)
@settings(max_examples=6, deadline=None)
def test_detected_faults_never_lost_by_compaction(du_module, gpu, seed):
    """Module-output observability: every fault the stage-3 simulation
    detected is still detected by the compacted PTP (DU patterns are
    context-free, and every first-detecting pattern survives)."""
    from repro.faults import FaultSimulator

    ptp = generate_imm(seed=seed, num_sbs=8)
    pipeline = CompactionPipeline(du_module, gpu=gpu)
    outcome = pipeline.compact(ptp, evaluate=False)
    detected_before = set(outcome.fault_result.detected_faults)

    tracing = run_logic_tracing(outcome.compacted, du_module, gpu=gpu)
    result = FaultSimulator(du_module.netlist).run(
        tracing.pattern_report.to_pattern_set(),
        outcome.fault_result.fault_list)
    assert detected_before <= set(result.detected_faults)


@given(seeds)
@settings(max_examples=6, deadline=None)
def test_essential_count_bounds_compacted_size(du_module, gpu, seed):
    """The CPTP keeps at least every essential instruction and never
    exceeds the original size."""
    ptp = generate_imm(seed=seed, num_sbs=8)
    outcome = CompactionPipeline(du_module, gpu=gpu).compact(
        ptp, evaluate=False)
    essential = sum(1 for label in outcome.labeled.labels
                    if label == ESSENTIAL)
    assert essential <= outcome.compacted_size <= ptp.size


@given(seeds)
@settings(max_examples=6, deadline=None)
def test_compacted_duration_counts_match_rerun(du_module, gpu, seed):
    ptp = generate_imm(seed=seed, num_sbs=6)
    outcome = CompactionPipeline(du_module, gpu=gpu).compact(
        ptp, evaluate=False)
    rerun = run_logic_tracing(outcome.compacted, du_module, gpu=gpu)
    assert rerun.cycles == outcome.compacted_cycles
