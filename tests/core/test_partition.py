"""Stage 1 — ARC identification."""

from repro.core.partition import partition_ptp
from repro.gpu.config import KernelConfig
from repro.isa import assemble
from repro.stl.ptp import ParallelTestProgram


def _ptp(source, name="T"):
    return ParallelTestProgram(name=name, target="decoder_unit",
                               program=assemble(source),
                               kernel=KernelConfig())


def test_straight_line_is_fully_admissible():
    partition = partition_ptp(_ptp("""
        MOV32I R1, 0x1
        IADD R2, R1, R1
        GST [R2+0x0], R1
        EXIT
    """))
    assert partition.arc_percent() == 100.0
    assert not partition.inadmissible_blocks
    assert not partition.loops


def test_immediate_trip_count_loop_is_admissible():
    """A loop whose steering values are immediate-only stays in the ARC."""
    partition = partition_ptp(_ptp("""
        MOV32I R1, 0x0
        MOV32I R2, 0x4
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        EXIT
    """))
    assert len(partition.loops) == 1
    assert not partition.loops[0]["parametric"]
    assert partition.arc_percent() == 100.0


def test_constant_memory_trip_count_is_parametric():
    partition = partition_ptp(_ptp("""
        CLD R2, c[0x10]
        MOV32I R1, 0x0
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        EXIT
    """))
    assert len(partition.loops) == 1
    assert partition.loops[0]["parametric"]
    assert partition.inadmissible_blocks
    assert partition.arc_percent() < 100.0


def test_tid_dependent_trip_count_is_parametric():
    partition = partition_ptp(_ptp("""
        S2R R2, TID_X
        MOV32I R1, 0x0
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        EXIT
    """))
    assert partition.loops[0]["parametric"]


def test_unconditional_infinite_loop_is_conservatively_parametric():
    partition = partition_ptp(_ptp("""
        NOP
    loop:
        NOP
        BRA loop
    """))
    assert partition.loops and partition.loops[0]["parametric"]


def test_is_admissible_pc_matches_blocks():
    partition = partition_ptp(_ptp("""
        CLD R2, c[0x0]
        MOV32I R1, 0x0
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        MOV32I R3, 0x1
        EXIT
    """))
    # The loop pcs (2..4) are inadmissible; prologue and tail admissible.
    assert partition.is_admissible_pc(0)
    assert not partition.is_admissible_pc(2)
    assert not partition.is_admissible_pc(4)
    assert partition.is_admissible_pc(5)


def test_arc_counts_are_consistent():
    partition = partition_ptp(_ptp("""
        CLD R2, c[0x0]
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        EXIT
    """))
    assert (partition.arc_instruction_count
            + sum(partition.cfg.blocks[b].size
                  for b in partition.inadmissible_blocks)
            == partition.total_instruction_count)
