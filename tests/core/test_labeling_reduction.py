"""Stages 3-4: the Fig. 2 labeling and Fig. 3 reduction algorithms.

These tests drive the algorithms with real tracing artifacts but
hand-controlled fault results, so the expected essential/unessential labels
and removals are known exactly.
"""

import pytest

from repro.core.labeling import ESSENTIAL, UNESSENTIAL, label_instructions
from repro.core.partition import partition_ptp
from repro.core.reduction import reduce_ptp, segment_small_blocks
from repro.core.tracing import run_logic_tracing
from repro.errors import CompactionError
from repro.faults.fault_sim import FaultSimResult
from repro.gpu.config import KernelConfig
from repro.isa import assemble
from repro.isa.opcodes import Op
from repro.stl.ptp import ParallelTestProgram


def _du_ptp(source, name="T"):
    return ParallelTestProgram(name=name, target="decoder_unit",
                               program=assemble(source),
                               kernel=KernelConfig())


# R1 is the reserved SpT register (stl.signature.SIG_REG); PTPs use the
# pool registers R2..R9 for operands.
THREE_SB = """
    S2R R0, TID_X
    MOV32I R8, 0x11
    IADD R2, R8, R8
    GST [R0+0x0], R2
    MOV32I R3, 0x22
    IMUL R4, R3, R3
    GST [R0+0x1], R4
    MOV32I R5, 0x33
    XOR R6, R5, R5
    GST [R0+0x2], R6
    EXIT
"""


class _FakeFaultList:
    def __init__(self, n):
        self._n = n

    def __len__(self):
        return self._n

    def __iter__(self):
        return iter(range(self._n))


def _fake_result(pattern_count, detecting):
    """FaultSimResult with one fault first-detected per index in
    *detecting*."""
    words = [1 << k for k in detecting]
    firsts = list(detecting)
    return FaultSimResult(_FakeFaultList(len(words)), pattern_count, words,
                          firsts)


@pytest.fixture()
def traced(du_module, gpu):
    ptp = _du_ptp(THREE_SB)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    return ptp, tracing


def test_labeling_marks_detecting_instructions(traced):
    ptp, tracing = traced
    report = tracing.pattern_report
    # The pattern at index k corresponds to instruction pc=k (one warp,
    # straight line): mark patterns of pc 2 and pc 5 as detecting.
    result = _fake_result(report.count, [2, 5])
    labeled = label_instructions(ptp, tracing.trace, report, result)
    assert labeled.labels[2] == ESSENTIAL
    assert labeled.labels[5] == ESSENTIAL
    assert labeled.num_essential == 2
    assert all(label == UNESSENTIAL
               for pc, label in enumerate(labeled.labels)
               if pc not in (2, 5))
    assert all(labeled.executed)


def test_labeling_with_no_detections(traced):
    ptp, tracing = traced
    result = _fake_result(tracing.pattern_report.count, [])
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    assert labeled.num_essential == 0


def test_labeling_rejects_mismatched_pattern_counts(traced):
    ptp, tracing = traced
    result = _fake_result(tracing.pattern_report.count + 5, [])
    with pytest.raises(CompactionError):
        label_instructions(ptp, tracing.trace, tracing.pattern_report,
                           result)


def test_reduction_removes_only_fully_unessential_sbs(traced, du_module,
                                                      gpu):
    ptp, tracing = traced
    partition = partition_ptp(ptp)
    # SB2 (pcs 4-6) has an essential instruction; SB1 and SB3 do not.
    result = _fake_result(tracing.pattern_report.count, [5])
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition)
    kept_ops = [i.op for i in reduction.compacted.program]
    # Pinned prologue + SB2 + pinned EXIT survive.
    assert kept_ops == [Op.S2R, Op.MOV32I, Op.IMUL, Op.GST, Op.EXIT]
    assert reduction.removed_instructions == 6
    assert len(reduction.removed_blocks) == 2
    # The compacted PTP still executes.
    out = run_logic_tracing(reduction.compacted, du_module, gpu=gpu)
    assert out.cycles > 0


def test_reduction_keeps_everything_when_all_essential(traced):
    ptp, tracing = traced
    result = _fake_result(tracing.pattern_report.count,
                          list(range(tracing.pattern_report.count)))
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    partition = partition_ptp(ptp)
    reduction = reduce_ptp(labeled, partition)
    assert reduction.compacted.size == ptp.size


def test_segmentation_three_sbs(traced):
    ptp, tracing = traced
    partition = partition_ptp(ptp)
    blocks = segment_small_blocks(ptp, partition)
    removable = [sb for sb in blocks if sb.removable]
    assert [(sb.start, sb.end) for sb in removable] == [
        (1, 4), (4, 7), (7, 10)]
    pinned = [sb for sb in blocks if not sb.removable]
    assert [(sb.start, sb.end) for sb in pinned] == [(0, 1), (10, 11)]


def test_segmentation_covers_every_pc(traced):
    ptp, tracing = traced
    partition = partition_ptp(ptp)
    blocks = segment_small_blocks(ptp, partition)
    covered = sorted(pc for sb in blocks for pc in sb.pcs())
    assert covered == list(range(ptp.size))


def test_branch_targets_remapped_after_removal(du_module, gpu):
    ptp = _du_ptp("""
        S2R R0, TID_X
        MOV32I R1, 0x1
        IADD R2, R1, R1
        GST [R0+0x0], R2
        MOV32I R3, 0x2
        IADD R4, R3, R3
        GST [R0+0x1], R4
        SSY done
        MOV32I R5, 0x10
        ISETP P0, R0, R5, LT
    @P0 BRA done
        MOV32I R6, 0x3
    done:
        JOIN
        EXIT
    """)
    tracing = run_logic_tracing(ptp, du_module, gpu=gpu)
    partition = partition_ptp(ptp)
    # Only the SSY..JOIN hammock's ISETP pattern detects faults: pcs 1-6
    # (two plain SBs) get removed, the hammock survives, targets remap.
    pc_of_pattern = [r.pc for r in tracing.pattern_report.records]
    detecting = [k for k, pc in enumerate(pc_of_pattern) if pc == 9][:1]
    result = _fake_result(tracing.pattern_report.count, detecting)
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition)
    compacted = reduction.compacted
    ops = [i.op for i in compacted.program]
    assert Op.SSY in ops and Op.JOIN in ops
    join_pc = ops.index(Op.JOIN)
    for instr in compacted.program:
        if instr.op in (Op.SSY, Op.BRA):
            assert instr.target == join_pc
    out = run_logic_tracing(compacted, du_module, gpu=gpu)
    assert out.cycles > 0


def test_data_relocation_drops_orphaned_arrays(sp_module, gpu):
    from repro.stl.generators.atpg_based import generate_tpgen

    ptp, __ = generate_tpgen(sp_module, seed=3, atpg_random_patterns=24,
                             atpg_max_backtracks=3)
    tracing = run_logic_tracing(ptp, sp_module, gpu=gpu)
    partition = partition_ptp(ptp)
    result = _fake_result(tracing.pattern_report.count, [])
    labeled = label_instructions(ptp, tracing.trace,
                                 tracing.pattern_report, result)
    reduction = reduce_ptp(labeled, partition)
    # Everything removable went away, so every operand array is orphaned.
    from repro.stl.builder import OUTPUT_BASE

    data_words = [a for a in reduction.compacted.global_image
                  if a < OUTPUT_BASE]
    assert data_words == []
    assert any(a < OUTPUT_BASE for a in ptp.global_image)
