"""CFG construction: leaders, edges, loops, immediate-only analysis."""

from repro.core.cfg import build_cfg, find_leaders, find_loops, is_immediate_only_def
from repro.isa import assemble


def test_straight_line_is_one_block():
    program = assemble("NOP\nNOP\nNOP\nEXIT")
    cfg = build_cfg(list(program))
    assert cfg.num_blocks == 1
    assert cfg.blocks[0].successors == []


def test_leaders_at_branch_targets_and_fallthroughs():
    program = assemble("""
        NOP
        BRA tgt
        NOP
    tgt:
        NOP
        EXIT
    """)
    assert find_leaders(list(program)) == [0, 2, 3]


def test_conditional_branch_has_two_successors():
    program = assemble("""
        ISETP P0, R1, R2, LT
    @P0 BRA tgt
        NOP
    tgt:
        EXIT
    """)
    cfg = build_cfg(list(program))
    head = cfg.block_at(0)
    assert sorted(head.successors) == [1, 2]


def test_unconditional_branch_single_successor():
    program = assemble("""
        BRA tgt
        NOP
    tgt:
        EXIT
    """)
    cfg = build_cfg(list(program))
    assert cfg.block_at(0).successors == [2]


def test_exit_terminates_block():
    program = assemble("EXIT\nNOP")
    cfg = build_cfg(list(program))
    assert cfg.block_at(0).successors == []


def test_single_block_self_loop():
    program = assemble("""
    loop:
        IADD32I R1, R1, 0x1
        ISETP P0, R1, R2, LT
    @P0 BRA loop
        EXIT
    """)
    cfg = build_cfg(list(program))
    loops = find_loops(cfg)
    assert len(loops) == 1
    loop = loops[0]
    assert loop["head"] == loop["tail"]
    # The natural loop must contain ONLY the loop block, not the whole CFG.
    assert loop["body"] == {loop["head"]}


def test_multi_block_loop_body():
    program = assemble("""
        NOP
    head:
        ISETP P0, R1, R2, LT
    @P0 BRA body
        BRA done
    body:
        NOP
        BRA head
    done:
        EXIT
    """)
    cfg = build_cfg(list(program))
    loops = find_loops(cfg)
    assert len(loops) == 1
    body_pcs = set()
    for block_index in loops[0]["body"]:
        block = cfg.blocks[block_index]
        body_pcs.update(range(block.start, block.end))
    assert 0 not in body_pcs      # preheader NOP outside
    assert 1 in body_pcs          # head
    assert 4 in body_pcs          # body NOP
    assert 6 not in body_pcs      # exit block outside


def test_ssy_target_is_leader():
    program = assemble("""
        SSY join
        NOP
    join:
        JOIN
        EXIT
    """)
    assert 2 in find_leaders(list(program))


def test_block_of_pc_consistent():
    program = assemble("""
        NOP
        BRA t
        NOP
    t:
        EXIT
    """)
    cfg = build_cfg(list(program))
    for block in cfg.blocks:
        for pc in range(block.start, block.end):
            assert cfg.block_of_pc[pc] == block.index


def test_immediate_only_def_chain():
    program = assemble("""
        MOV32I R1, 0x5
        IADD32I R2, R1, 0x1
        IADD R3, R1, R2
        CLD R4, c[0x0]
        IADD R5, R3, R4
        EXIT
    """)
    instrs = list(program)
    assert is_immediate_only_def(instrs, 0)
    assert is_immediate_only_def(instrs, 1)
    assert is_immediate_only_def(instrs, 2)
    assert not is_immediate_only_def(instrs, 3)   # constant-memory load
    assert not is_immediate_only_def(instrs, 4)   # tainted by R4


def test_s2r_and_loads_are_runtime_defs():
    program = assemble("""
        S2R R1, TID_X
        GLD R2, [R1+0x0]
        MOV R3, R2
        EXIT
    """)
    instrs = list(program)
    assert not is_immediate_only_def(instrs, 0)
    assert not is_immediate_only_def(instrs, 1)
    assert not is_immediate_only_def(instrs, 2)
