"""Stage-5 FC evaluation: observabilities, reversal, combination."""

import pytest

from repro.core.fc_eval import combined_fc, evaluate_fc
from repro.faults import FaultList
from repro.stl import generate_imm, generate_rand


def test_default_observability_follows_ptp(du_module, sp_module, gpu):
    imm = generate_imm(seed=3, num_sbs=4)
    rand = generate_rand(seed=3, num_sbs=4)
    assert evaluate_fc(imm, du_module, gpu=gpu).observability == "module"
    assert evaluate_fc(rand, sp_module, gpu=gpu).observability == "signature"


def test_fc_against_full_list_by_default(du_module, gpu):
    imm = generate_imm(seed=3, num_sbs=6)
    evaluation = evaluate_fc(imm, du_module, gpu=gpu)
    total = len(FaultList(du_module.netlist))
    assert evaluation.fc_percent == pytest.approx(
        100.0 * len(evaluation.detected) / total)
    assert 0.0 < evaluation.fc_percent < 100.0
    assert evaluation.pattern_count == imm.size  # one DU pattern per instr


def test_fc_against_subset_list_keeps_subset_denominator(du_module, gpu):
    imm = generate_imm(seed=3, num_sbs=6)
    full = FaultList(du_module.netlist)
    half = FaultList(du_module.netlist, list(full)[: len(full) // 2])
    evaluation = evaluate_fc(imm, du_module, gpu=gpu, fault_list=half)
    assert evaluation.detected <= set(half)


def test_reversed_patterns_same_fc(du_module, gpu):
    """Detection is order-independent; only first-detection attribution
    (used by labeling) changes with order."""
    imm = generate_imm(seed=3, num_sbs=6)
    forward = evaluate_fc(imm, du_module, gpu=gpu)
    backward = evaluate_fc(imm, du_module, gpu=gpu, reverse_patterns=True)
    assert forward.detected == backward.detected


def test_combined_fc_is_union(du_module, gpu):
    a = evaluate_fc(generate_imm(seed=3, num_sbs=5), du_module, gpu=gpu)
    b = evaluate_fc(generate_imm(seed=99, num_sbs=5), du_module, gpu=gpu)
    total = len(FaultList(du_module.netlist))
    union_fc = combined_fc([a, b], total)
    assert union_fc >= max(a.fc_percent, b.fc_percent)
    assert union_fc == pytest.approx(
        100.0 * len(a.detected | b.detected) / total)


def test_combined_fc_empty():
    assert combined_fc([], 100) == 0.0
    assert combined_fc([], 0) == 0.0
