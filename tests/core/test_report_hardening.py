"""Report parsers vs truncated/malformed input (round-trip + corruption)."""

import pytest

from repro.core import CompactionPipeline
from repro.core.reports import (
    parse_fault_sim_report,
    parse_labeled_ptp,
    write_fault_sim_report,
    write_labeled_ptp,
)
from repro.errors import ReportError
from repro.stl import generate_imm


@pytest.fixture(scope="module")
def du_reports(du_module, gpu):
    """One real compaction's FSR and LPTP texts."""
    pipeline = CompactionPipeline(du_module, gpu=gpu)
    outcome = pipeline.compact(generate_imm(seed=4, num_sbs=5),
                               evaluate=False)
    fsr = write_fault_sim_report(outcome.fault_result,
                                 outcome.tracing.pattern_report)
    lptp = write_labeled_ptp(outcome.labeled)
    return fsr, lptp, outcome


# -- Fault Sim Report ----------------------------------------------------


def test_fsr_round_trip(du_reports):
    fsr, __, outcome = du_reports
    header, rows = parse_fault_sim_report(fsr)
    assert header["module"] == "decoder_unit"
    assert int(header["patterns"]) == len(rows)
    assert sum(count for __, __c, count in rows) == (
        outcome.fault_result.num_detected)


def test_fsr_missing_header():
    with pytest.raises(ReportError, match="missing FSR header"):
        parse_fault_sim_report("0 1 2\n")


def test_fsr_malformed_header_field():
    with pytest.raises(ReportError, match="line 1.*noequals"):
        parse_fault_sim_report("#FSR module=du noequals\n0 0 0\n")


def test_fsr_wrong_field_count_carries_line_number(du_reports):
    fsr = du_reports[0]
    lines = fsr.splitlines()
    lines[3] = "1 2"
    with pytest.raises(ReportError, match="line 4"):
        parse_fault_sim_report("\n".join(lines))


def test_fsr_non_integer_field_carries_line_number(du_reports):
    fsr = du_reports[0]
    lines = fsr.splitlines()
    lines[2] = "1 xyz 0"
    with pytest.raises(ReportError, match="line 3.*non-integer"):
        parse_fault_sim_report("\n".join(lines))


def test_fsr_negative_field_rejected():
    with pytest.raises(ReportError, match="line 2.*negative"):
        parse_fault_sim_report("#FSR patterns=1\n0 -3 0\n")


def test_fsr_truncated_rows_detected(du_reports):
    fsr = du_reports[0]
    lines = fsr.splitlines()
    truncated = "\n".join(lines[:len(lines) // 2])
    with pytest.raises(ReportError, match="truncated"):
        parse_fault_sim_report(truncated)


def test_fsr_non_integer_patterns_header():
    with pytest.raises(ReportError, match="patterns"):
        parse_fault_sim_report("#FSR patterns=many\n")


# -- Labeled PTP ---------------------------------------------------------


def test_lptp_round_trip(du_reports):
    __, lptp, outcome = du_reports
    header, rows = parse_labeled_ptp(lptp)
    assert header["name"] == "IMM"
    assert len(rows) == outcome.original_size
    essential = sum(1 for is_essential, __p, __t in rows if is_essential)
    assert essential == int(header["essential"])
    assert len(rows) - essential == int(header["unessential"])
    # pcs are the dense 0..n-1 sequence.
    assert [pc for __e, pc, __t in rows] == list(range(len(rows)))


def test_lptp_missing_header():
    with pytest.raises(ReportError, match="missing LPTP header"):
        parse_labeled_ptp("E 0 EXIT\n")


def test_lptp_bad_flag_carries_line_number(du_reports):
    lptp = du_reports[1]
    lines = lptp.splitlines()
    lines[2] = lines[2].replace(lines[2].split()[0], "X", 1)
    with pytest.raises(ReportError, match="line 3.*flag"):
        parse_labeled_ptp("\n".join(lines))


def test_lptp_non_integer_pc():
    with pytest.raises(ReportError, match="line 2.*pc"):
        parse_labeled_ptp("#LPTP name=X essential=0 unessential=1\n"
                          "u abc EXIT\n")


def test_lptp_out_of_sequence_pc():
    with pytest.raises(ReportError, match="line 3.*out of sequence"):
        parse_labeled_ptp("#LPTP name=X\nE 0 EXIT\nE 5 EXIT\n")


def test_lptp_truncated_detected(du_reports):
    lptp = du_reports[1]
    lines = lptp.splitlines()
    truncated = "\n".join(lines[:len(lines) // 2])
    with pytest.raises(ReportError, match="truncated"):
        parse_labeled_ptp(truncated)


def test_lptp_truncated_line_detected(du_reports):
    lptp = du_reports[1]
    lines = lptp.splitlines()
    lines[1] = "E 0"  # assembly text chopped off
    with pytest.raises(ReportError, match="line 2"):
        parse_labeled_ptp("\n".join(lines))
