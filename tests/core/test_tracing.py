"""Stage 2 — logic tracing orchestration."""

import pytest

from repro.core.tracing import collector_for, run_logic_tracing
from repro.errors import CompactionError
from repro.gpu.stimuli import DecoderUnitCollector, SfuCollector, SpCoreCollector
from repro.stl import generate_imm, generate_rand


def test_collector_for_each_module(du_module, sp_module, sfu_module):
    assert isinstance(collector_for(du_module), DecoderUnitCollector)
    sp_collector = collector_for(sp_module)
    assert isinstance(sp_collector, SpCoreCollector)
    assert sp_collector.width == sp_module.params["width"]
    assert isinstance(collector_for(sfu_module), SfuCollector)


def test_collector_for_unknown_module_rejected():
    import types

    fake = types.SimpleNamespace(name="mystery", params={})
    with pytest.raises(CompactionError):
        collector_for(fake)


def test_tracing_rejects_mismatched_target(sp_module, gpu):
    imm = generate_imm(seed=1, num_sbs=3)
    with pytest.raises(CompactionError):
        run_logic_tracing(imm, sp_module, gpu=gpu)


def test_tracing_artifacts_consistent(du_module, gpu):
    imm = generate_imm(seed=1, num_sbs=5)
    tracing = run_logic_tracing(imm, du_module, gpu=gpu)
    assert tracing.cycles == tracing.kernel_result.cycles
    assert tracing.instructions == len(tracing.trace)
    assert tracing.pattern_report.module is du_module
    # DU patterns: one per decoded instruction per warp.
    assert tracing.pattern_report.count == len(tracing.trace)


def test_tracing_is_deterministic(du_module, gpu):
    imm = generate_imm(seed=1, num_sbs=5)
    first = run_logic_tracing(imm, du_module, gpu=gpu)
    second = run_logic_tracing(imm, du_module, gpu=gpu)
    assert first.trace == second.trace
    assert first.pattern_report.records == second.pattern_report.records


def test_tracing_pattern_report_multiwarp(sp_module, gpu):
    from repro.gpu.config import KernelConfig

    rand = generate_rand(seed=1, num_sbs=3,
                         kernel=KernelConfig(block_threads=64))
    tracing = run_logic_tracing(rand, sp_module, gpu=gpu)
    warps = {record.warp for record in tracing.pattern_report.records}
    assert warps == {0, 1}
