"""Dominance collapsing: chain rules, class-map invariants."""

from repro.faults import OUTPUT_PIN, FaultList, StuckAtFault
from repro.netlist import GateType, Netlist
from repro.testability import collapse_dominance


def _stem(nl, net, value):
    return StuckAtFault(net, nl.driver_of(net), OUTPUT_PIN, value)


def _chain(gate_type):
    nl = Netlist("chain")
    a, b = nl.add_input(), nl.add_input()
    g = nl.add_gate(gate_type, a, b)
    out = nl.add_gate(GateType.BUF, g)
    nl.mark_output(out)
    nl.finalize()
    return nl, a, b, g, out


def test_and_chain_collapses_both_output_stem_faults():
    nl, a, b, g, out = _chain(GateType.AND)
    fault_list = FaultList(nl)
    result = collapse_dominance(nl, fault_list)
    rep = result.representative
    # g s-a-0 == a s-a-0 (equivalence through the controlling value),
    # g s-a-1 dominates a s-a-1; both collapse to the input stem of the
    # first fanout-free pin (a, gate order then pin order).
    assert rep[_stem(nl, g, 0)] == \
        _stem(nl, a, 0)
    assert rep[_stem(nl, g, 1)] == \
        _stem(nl, a, 1)
    # The BUF output chains transitively down to the same representatives.
    assert rep[_stem(nl, out, 0)] == \
        _stem(nl, a, 0)


def test_nor_chain_inverts_the_linked_polarity():
    nl, a, b, g, out = _chain(GateType.NOR)
    result = collapse_dominance(nl, FaultList(nl))
    rep = result.representative
    # NOR: controlling 1 -> response 0, so g s-a-0 pairs with a s-a-1.
    assert rep[_stem(nl, g, 0)] == \
        _stem(nl, a, 1)
    assert rep[_stem(nl, g, 1)] == \
        _stem(nl, a, 0)


def test_xor_gates_break_the_chain():
    nl, a, b, g, out = _chain(GateType.XOR)
    result = collapse_dominance(nl, FaultList(nl))
    rep = result.representative
    assert rep[_stem(nl, g, 0)] == \
        _stem(nl, g, 0)


def test_fanout_and_observation_break_the_chain():
    nl = Netlist("fanout")
    a, b = nl.add_input(), nl.add_input()
    g1 = nl.add_gate(GateType.AND, a, b)    # a also feeds g2: fanout 2
    g2 = nl.add_gate(GateType.BUF, a)
    nl.mark_output(g1)
    nl.mark_output(g2)
    nl.mark_output(b)                        # b is observed directly
    nl.finalize()
    result = collapse_dominance(nl, FaultList(nl))
    for fault, rep in result.representative.items():
        assert rep == fault                  # nothing collapses


def test_class_map_covers_every_fault_and_reps_are_fixed_points():
    nl, a, b, g, out = _chain(GateType.NAND)
    fault_list = FaultList(nl)
    result = collapse_dominance(nl, fault_list)
    assert set(result.representative) == set(fault_list)
    assert sum(len(m) for m in result.classes.values()) == len(fault_list)
    for rep, members in result.classes.items():
        assert result.representative[rep] is rep
        for member in members:
            assert result.representative[member] is rep
            assert result.members_of(member) is members
    assert result.num_collapsed_away == len(fault_list) - result.num_classes
    assert len(result.collapsed) == result.num_classes


def test_classes_are_closed_over_the_given_fault_list():
    nl, a, b, g, out = _chain(GateType.AND)
    # Restrict the list: without the input stems, output stems keep
    # themselves (links to absent faults are ignored).
    subset = [_stem(nl, g, 0),
              _stem(nl, g, 1)]
    result = collapse_dominance(nl, FaultList(nl, subset))
    assert all(rep in subset for rep in result.representative.values())
