"""The prune-soundness oracle.

Over random netlists (seeded with tied-constant pins, the trigger for
UT001/UT003 proofs) and random pattern sets: no fault pruned in ``safe``
mode may ever be detected — by the cone walk, the event engine, or the
vectorized batch engine — and SCOAP rank reordering must leave every
detection set unchanged.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TestabilityError
from repro.faults import FaultList, FaultSimulator
from repro.netlist import GateType, Netlist, PatternSet
from repro.netlist.gates import ARITY
from repro.netlist.netlist import CONST0, CONST1
from repro.testability import TestabilityAnalysis, cross_check_pruned


def _random_netlist(rng, num_inputs=4, num_gates=18, num_outputs=3):
    """Like the propagate-test generator, but feeds CONST0/CONST1 into
    some pins so constant propagation has something to chew on."""
    nl = Netlist("rand")
    nets = [nl.add_input() for __ in range(num_inputs)]
    for __ in range(num_gates):
        gate_type = rng.choice([GateType.AND, GateType.OR, GateType.XOR,
                                GateType.NAND, GateType.NOR, GateType.NOT,
                                GateType.XNOR, GateType.MUX, GateType.BUF])
        ins = []
        for __p in range(ARITY[gate_type]):
            if rng.random() < 0.15:
                ins.append(rng.choice((CONST0, CONST1)))
            else:
                ins.append(rng.choice(nets))
        nets.append(nl.add_gate(gate_type, *ins))
    for net in rng.sample(nets[-(num_outputs * 3):], num_outputs):
        nl.mark_output(net)
    nl.finalize()
    return nl


def _random_patterns(rng, nl, count):
    patterns = PatternSet(nl)
    for __ in range(count):
        patterns.add({net: rng.getrandbits(1) for net in nl.inputs})
    return patterns


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_safe_pruned_faults_are_never_detected_by_any_engine(seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, rng.randrange(1, 14))
    full = FaultList(nl)
    pruned_list = FaultList(nl, prune="safe")
    pruned = set(pruned_list.pruned)
    assert set(pruned_list) | pruned == set(full)
    assert set(pruned_list).isdisjoint(pruned)
    if not pruned:
        return
    target = FaultList(nl, sorted(pruned, key=lambda f: full.id_of(f)))
    for engine in ("cone", "event", "batch"):
        simulator = FaultSimulator(nl, engine=engine)
        result = simulator.run(patterns, target)
        assert result.detected_faults == [], \
            "engine {} detected statically pruned fault(s)".format(engine)
    # The strict-mode oracle agrees (and counts what it checked).
    assert cross_check_pruned(nl, patterns, pruned) == len(pruned)


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=15, deadline=None)
def test_scoap_rank_is_a_detection_set_invariant_permutation(seed):
    rng = random.Random(seed)
    nl = _random_netlist(rng)
    patterns = _random_patterns(rng, nl, 8)
    plain = FaultList(nl)
    ranked = FaultList(nl, rank="scoap")
    assert sorted(plain, key=repr) == sorted(ranked, key=repr)
    simulator = FaultSimulator(nl, engine="event")
    detected_plain = set(simulator.run(patterns, plain).detected_faults)
    detected_ranked = set(simulator.run(patterns, ranked).detected_faults)
    assert detected_plain == detected_ranked
    # Rank is deterministic.
    again = FaultList(nl, rank="scoap")
    assert list(again) == list(ranked)


def test_cross_check_raises_on_an_unsound_prune():
    # Hand the oracle a blatantly detectable "pruned" fault: it must
    # refuse with a TestabilityError naming the witness.
    nl = Netlist("unsound")
    a = nl.add_input()
    out = nl.add_gate(GateType.BUF, a)
    nl.mark_output(out)
    nl.finalize()
    patterns = PatternSet(nl)
    patterns.add({a: 0})
    patterns.add({a: 1})
    detectable = FaultList(nl)[0:2]
    with pytest.raises(TestabilityError):
        cross_check_pruned(nl, patterns, detectable)


def test_cross_check_is_a_noop_without_faults_or_patterns():
    nl = Netlist("empty")
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.BUF, a))
    nl.finalize()
    assert cross_check_pruned(nl, PatternSet(nl), list(FaultList(nl))) == \
        len(FaultList(nl))
    patterns = PatternSet(nl)
    patterns.add({a: 1})
    assert cross_check_pruned(nl, patterns, []) == 0


def test_fault_list_knobs_validate_their_modes():
    nl = Netlist("knobs")
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.BUF, a))
    nl.finalize()
    with pytest.raises(TestabilityError):
        FaultList(nl, prune="aggressive")
    with pytest.raises(TestabilityError):
        FaultList(nl, rank="alphabetical")
    default = FaultList(nl)
    assert default.prune_mode == "off" and default.rank_mode == "none"
    assert default.pruned == [] and default.proofs == {}


def test_pruned_faults_carry_their_proofs():
    nl = Netlist("proofs")
    a = nl.add_input()
    g = nl.add_gate(GateType.AND, a, CONST0)
    nl.mark_output(g)
    nl.finalize()
    fault_list = FaultList(nl, prune="safe")
    assert fault_list.pruned
    for fault in fault_list.pruned:
        assert fault_list.proofs[fault].fault is fault
