"""Untestability proofs: constant propagation, UT001/UT002/UT003."""

from repro.faults import OUTPUT_PIN, FaultList, StuckAtFault
from repro.netlist import GateType, Netlist
from repro.netlist.netlist import CONST0, CONST1
from repro.testability import PROOF_KINDS, UntestabilityProver, propagate_constants


def test_constant_propagation_from_tied_nets():
    nl = Netlist("const")
    a = nl.add_input()
    g1 = nl.add_gate(GateType.AND, a, CONST0)      # 0
    g2 = nl.add_gate(GateType.NOT, g1)             # 1
    g3 = nl.add_gate(GateType.OR, a, g2)           # 1
    g4 = nl.add_gate(GateType.XOR, a, a)           # 0 (same-net identity)
    g5 = nl.add_gate(GateType.XNOR, a, a)          # 1
    g6 = nl.add_gate(GateType.MUX, a, a, g1)       # = a via sel const... a
    nl.mark_output(g3)
    nl.mark_output(g6)
    nl.finalize()
    const = propagate_constants(nl)
    assert const[CONST0] == 0 and const[CONST1] == 1
    assert const[g1] == 0 and const[g2] == 1 and const[g3] == 1
    assert const[g4] == 0 and const[g5] == 1
    # MUX(a, a, sel) is a but not constant; absent from the map.
    assert g6 not in const
    assert a not in const


def test_mux_select_constant_propagates_the_selected_input():
    nl = Netlist("muxsel")
    a, b = nl.add_input(), nl.add_input()
    zero = nl.add_gate(GateType.AND, a, CONST0)
    g = nl.add_gate(GateType.MUX, zero, b, CONST0)   # sel=0 -> a-branch
    nl.mark_output(g)
    nl.finalize()
    const = propagate_constants(nl)
    assert const[g] == 0


def test_ut001_constant_site_never_activates():
    nl = Netlist("ut1")
    a = nl.add_input()
    g = nl.add_gate(GateType.AND, a, CONST0)
    nl.mark_output(g)
    nl.finalize()
    prover = UntestabilityProver(nl)
    proof = prover.prove(StuckAtFault(g, 0, OUTPUT_PIN, 0))
    assert proof is not None and proof.kind == "UT001"
    # The opposite polarity IS testable (activated everywhere).
    assert prover.prove(StuckAtFault(g, 0, OUTPUT_PIN, 1)) is None


def test_ut002_dangling_cone():
    nl = Netlist("ut2")
    a = nl.add_input()
    seen = nl.add_gate(GateType.BUF, a)
    hidden = nl.add_gate(GateType.NOT, a)
    nl.mark_output(seen)
    nl.finalize()
    prover = UntestabilityProver(nl)
    for value in (0, 1):
        proof = prover.prove(StuckAtFault(hidden, 1, OUTPUT_PIN, value))
        assert proof is not None and proof.kind == "UT002"
    assert prover.prove(StuckAtFault(seen, 0, OUTPUT_PIN, 0)) is None


def test_ut003_blocked_propagation_path():
    # diff on the AND's free input dies at the constant-0 side input.
    nl = Netlist("ut3")
    a = nl.add_input()
    zero = nl.add_gate(GateType.AND, a, CONST0)     # constant 0
    mid = nl.add_gate(GateType.NOT, a)
    g = nl.add_gate(GateType.AND, mid, zero)        # blocked gate
    out = nl.add_gate(GateType.BUF, g)
    nl.mark_output(out)
    nl.finalize()
    prover = UntestabilityProver(nl)
    proof = prover.prove(StuckAtFault(mid, 1, OUTPUT_PIN, 0))
    assert proof is not None and proof.kind == "UT003"


def test_ut003_reconvergence_caveat_blocks_only_outside_the_cone():
    # The blocking "constant" is INSIDE the fault's cone: a stem fault on
    # `a` can flip it in the faulty machine, so nothing may be pruned.
    nl = Netlist("reconv")
    a = nl.add_input()
    zero = nl.add_gate(GateType.AND, a, CONST0)     # const 0, cone of a
    g = nl.add_gate(GateType.OR, a, zero)           # = a
    nl.mark_output(g)
    nl.finalize()
    prover = UntestabilityProver(nl)
    # a s-a-1: activation needs a=0; in the faulty machine `zero` could
    # (in principle, per the analysis) differ, so no UT003 proof fires.
    assert prover.prove(StuckAtFault(a, None, OUTPUT_PIN, 1)) is None
    assert prover.prove(StuckAtFault(a, None, OUTPUT_PIN, 0)) is None


def test_pin_fault_blocked_by_constant_controlling_side_input():
    nl = Netlist("pinblock")
    a, b = nl.add_input(), nl.add_input()
    zero = nl.add_gate(GateType.AND, a, CONST0)
    g = nl.add_gate(GateType.AND, b, zero)
    other = nl.add_gate(GateType.BUF, b)            # b has fanout 2
    nl.mark_output(g)
    nl.mark_output(other)
    nl.finalize()
    prover = UntestabilityProver(nl)
    # Pin fault on g's b-input: the zero side input always blocks.
    proof = prover.prove(StuckAtFault(b, 1, 0, 1))
    assert proof is not None and proof.kind == "UT003"
    # The stem fault on b itself reaches the BUF output: testable.
    assert prover.prove(StuckAtFault(b, None, OUTPUT_PIN, 1)) is None


def test_mux_pin_faults_with_constant_select():
    nl = Netlist("muxpin")
    a, b = nl.add_input(), nl.add_input()
    one = nl.add_gate(GateType.OR, a, CONST1)       # constant 1
    g = nl.add_gate(GateType.MUX, a, b, one)        # always the b branch
    seen_a = nl.add_gate(GateType.BUF, a)
    seen_b = nl.add_gate(GateType.BUF, b)
    nl.mark_output(g)
    nl.mark_output(seen_a)
    nl.mark_output(seen_b)
    nl.finalize()
    prover = UntestabilityProver(nl)
    mux = nl.driver_of(g)
    proof = prover.prove(StuckAtFault(a, mux, 0, 1))  # a-pin of the MUX
    assert proof is not None and proof.kind == "UT003"
    assert prover.prove(StuckAtFault(b, mux, 1, 1)) is None


def test_untestable_collects_ordered_proofs_and_records_render():
    nl = Netlist("collect")
    a = nl.add_input("a")
    g = nl.add_gate(GateType.AND, a, CONST0)
    nl.mark_output(g)
    nl.finalize()
    prover = UntestabilityProver(nl)
    fault_list = FaultList(nl)
    proofs = prover.untestable(fault_list)
    assert proofs
    order = [fault_list.id_of(f) for f in proofs]
    assert order == sorted(order)
    for fault, proof in proofs.items():
        assert proof.fault is fault
        assert proof.kind in PROOF_KINDS
        text = proof.render(nl)
        assert text.startswith("[{}]".format(proof.kind))
        doc = proof.to_dict()
        assert doc["title"] == PROOF_KINDS[proof.kind]
        assert doc["fault"]["net"] == fault.net
