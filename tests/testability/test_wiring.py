"""Flow wiring: report accounting, checkpoint compat, metrics, facade."""

import json

import pytest

from repro.errors import FaultSimError, TestabilityError
from repro.exec.metrics import RunMetrics
from repro.faults import FaultList
from repro.faults.dropping import FaultListReport
from repro.netlist import GateType, Netlist
from repro.netlist.netlist import CONST0
from repro.testability import TestabilityAnalysis, analyze_module


def _module_netlist():
    """A netlist with all three proof kinds represented."""
    nl = Netlist("wired")
    a, b = nl.add_input("a"), nl.add_input("b")
    g = nl.add_gate(GateType.AND, a, b)
    const = nl.add_gate(GateType.AND, a, CONST0)    # UT001 site
    blocked = nl.add_gate(GateType.OR, b, CONST0)
    dead = nl.add_gate(GateType.AND, blocked, const)  # UT003 feeds
    dangling = nl.add_gate(GateType.NOT, g)         # UT002 cone
    nl.mark_output(g)
    nl.mark_output(dead)
    nl.finalize()
    return nl


def test_report_accounting_under_safe_prune():
    nl = _module_netlist()
    off = FaultListReport(nl)
    safe = FaultListReport(nl, static_prune="safe")
    assert off.static_prune == "off" and off.untestable_faults == 0
    assert safe.total_faults == off.total_faults
    assert safe.untestable_faults > 0
    assert safe.testable_faults == \
        safe.total_faults - safe.untestable_faults
    assert safe.remaining_faults == safe.testable_faults
    assert safe.detected_faults == 0
    # Remaining excludes exactly the untestable bucket.
    assert set(safe.remaining) == \
        set(off.remaining) - set(safe.untestable)
    for fault in safe.untestable:
        assert safe.proofs[fault].kind in ("UT001", "UT002", "UT003")


def test_coverage_denominator_excludes_untestable_bucket():
    nl = _module_netlist()
    off = FaultListReport(nl)
    safe = FaultListReport(nl, static_prune="safe")
    detected = list(safe.remaining)[:3]
    off.drop(detected, "PTP")
    safe.drop(detected, "PTP")
    assert off.coverage() == pytest.approx(
        100.0 * 3 / off.total_faults)
    assert safe.coverage() == pytest.approx(
        100.0 * 3 / safe.testable_faults)
    assert safe.coverage() > off.coverage()
    safe.reset()
    assert safe.remaining_faults == safe.testable_faults
    assert safe.coverage() == 0.0


def test_checkpoint_state_roundtrip_and_mode_guard():
    nl = _module_netlist()
    safe = FaultListReport(nl, static_prune="safe")
    safe.drop(list(safe.remaining)[:2], "IMM")
    state = json.loads(json.dumps(safe.state_dict()))
    assert state["static_prune"] == "safe"

    fresh = FaultListReport(nl, static_prune="safe")
    fresh.restore_state(state)
    assert fresh.fingerprint() == safe.fingerprint()
    assert list(fresh.remaining) == list(safe.remaining)

    # Seed snapshots (no static_prune key) only restore into "off".
    off = FaultListReport(nl)
    off_state = off.state_dict()
    assert "static_prune" not in off_state
    with pytest.raises(FaultSimError):
        FaultListReport(nl, static_prune="safe").restore_state(off_state)
    with pytest.raises(FaultSimError):
        FaultListReport(nl).restore_state(state)


def test_metrics_static_gauges_accumulate_and_render():
    metrics = RunMetrics()
    assert metrics.static["prune_mode"] == "off"
    metrics.record_static_triage("safe", "scoap", 7, 42)
    metrics.record_static_triage("safe", "scoap", 3, 8)
    metrics.record_cross_check(7)
    assert metrics.static == {"prune_mode": "safe", "rank_mode": "scoap",
                              "faults_pruned_static": 10,
                              "dominance_classes": 50, "cross_checked": 7}
    assert metrics.to_dict()["static"]["faults_pruned_static"] == 10
    assert "static triage" in metrics.summary_table()
    assert "prune=safe" in metrics.summary_table()


def test_analysis_facade_validates_and_scores():
    nl = _module_netlist()
    analysis = TestabilityAnalysis(nl)
    fault_list = FaultList(nl)
    scores = [analysis.fault_score(f) for f in fault_list]
    assert all(s >= 2 for s in scores)   # >= 1 activation + observability
    ranked = analysis.rank(fault_list)
    finite = [analysis.fault_score(f) for f in ranked
              if analysis.fault_score(f) != float("inf")]
    assert finite == sorted(finite)
    from repro.testability import validate_prune_mode, validate_rank_mode
    assert validate_prune_mode(None) == "off"
    assert validate_rank_mode(None) == "none"
    with pytest.raises(TestabilityError):
        validate_prune_mode("bogus")
    with pytest.raises(TestabilityError):
        validate_rank_mode("bogus")


def test_analyze_module_report_document():
    nl = _module_netlist()
    report = analyze_module(nl)
    assert report.module == "wired"
    assert report.total_faults == len(FaultList(nl))
    assert report.untestable_count == len(report.proofs)
    assert report.testable_faults == \
        report.total_faults - report.untestable_count
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["faults"]["total"] == report.total_faults
    assert doc["faults"]["dominance_classes"] == report.dominance_classes
    assert sum(doc["untestable_by_kind"].values()) == \
        report.untestable_count
    text = report.render_text(nl, max_proofs=2)
    assert "TESTABILITY wired" in text
    assert "... {} more".format(report.untestable_count - 2) in text \
        or report.untestable_count <= 2
